#!/usr/bin/env python3
"""The full kill chain: recon -> stakeout -> attack (paper threat model).

One unprivileged process lands on the device (OTA update / malware).
It enumerates /sys/class/hwmon, recognizes the INA226 devices, waits
for the victim to start, then records and classifies.

Run:  python examples/attack_campaign.py
"""

from repro.core.campaign import AttackCampaign
from repro.core.fingerprint import DnnFingerprinter, FingerprintConfig
from repro.dpu.models import build_model
from repro.dpu.runner import DpuRunner
from repro.soc import Soc

ZOO = ["mobilenet-v1-1.0", "squeezenet-1.1", "inception-v3",
       "resnet-50", "vgg-19"]


def main():
    soc = Soc("ZCU102", seed=17)
    campaign = AttackCampaign(soc, seed=17)

    print("Stage 1 — recon (unprivileged 'name' file reads):")
    report = campaign.recon()
    print(f"  enumerated {len(report.devices)} hwmon devices")
    for domain, path in sorted(report.sensitive_paths.items()):
        print(f"  {domain:5s} -> {path}")

    print("\nStage 0 (offline, attacker's own board) — train classifiers:")
    config = FingerprintConfig(duration=5.0, traces_per_model=10,
                               n_folds=5, forest_trees=30)
    fingerprinter = DnnFingerprinter(soc=soc, config=config, seed=17)
    datasets = fingerprinter.collect_datasets(
        models=ZOO, channels=[("fpga", "current")]
    )
    classifier = fingerprinter.train(datasets[("fpga", "current")])
    print(f"  trained on {len(datasets[('fpga', 'current')])} traces of "
          f"{len(ZOO)} architectures")

    print("\nStage 2 — stakeout: victim deploys at t=+8 s...")
    victim_name = "inception-v3"
    runner = DpuRunner()
    stakeout_from = fingerprinter._clock + 1.0
    victim_start = stakeout_from + 8.0
    runner.deploy(
        soc, build_model(victim_name), duration=30.0, seed=99,
        start=victim_start,
    )
    found, onset = campaign.wait_for_victim(
        start=stakeout_from, timeout=30.0
    )
    print(f"  victim detected: {found}, onset ~t+{onset - stakeout_from:.1f} s")

    print("\nStage 3 — attack: record 5 s and classify:")
    trace = campaign.record_victim(
        start=onset + 0.1, duration=5.0
    )
    prediction = fingerprinter.classify(classifier, trace)
    top3 = fingerprinter.classify_topk(classifier, trace, k=3)
    print(f"  victim actually ran: {victim_name}")
    print(f"  campaign concluded:  {prediction}  (top-3: {', '.join(top3)})")
    print(f"  {'SUCCESS' if prediction == victim_name else 'MISS'} — "
          f"no crafted circuit, no privileges, no PDN assumptions.")


if __name__ == "__main__":
    main()
