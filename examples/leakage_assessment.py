#!/usr/bin/env python3
"""Leakage assessment of the hwmon channels (TVLA / SNR methodology).

Applies the standard side-channel evaluation toolkit to the simulated
board: Welch t-tests between RSA keys, Mangard SNR across key classes,
and spectral serving-rate recovery for a DPU victim — the analyses an
evaluator would run before (or instead of) mounting full attacks.

Run:  python examples/leakage_assessment.py
"""


from repro.analysis import (
    TVLA_THRESHOLD,
    estimate_serving_rate,
    pairwise_tvla,
    snr,
    welch_t_test,
)
from repro.core.rsa_attack import RsaHammingWeightAttack
from repro.core.sampler import HwmonSampler
from repro.dpu.models import build_model
from repro.dpu.runner import DpuRunner
from repro.soc import Soc


def main():
    print("1. TVLA: does the current channel leak the RSA key?")
    attack = RsaHammingWeightAttack(seed=13)
    light = attack.profile_key(attack.make_circuit(256), n_samples=4000)
    heavy = attack.profile_key(attack.make_circuit(320), n_samples=4000)
    result = welch_t_test(light.values, heavy.values)
    print(f"   HW=256 vs HW=320 on curr1_input: |t| = "
          f"{abs(result.statistic):.1f}  "
          f"({'LEAKS' if result.leaks else 'ok'}; threshold "
          f"{TVLA_THRESHOLD})")

    print("\n2. Per-step leakage profile over six adjacent keys:")
    sweep = attack.sweep(weights=(64, 128, 192, 256, 320, 384),
                         n_samples=4000)
    groups = [profile.values for profile in sweep.profiles]
    statistics = pairwise_tvla(groups)
    for (a, b), t in zip(
        zip(sweep.weights, sweep.weights[1:]), statistics
    ):
        print(f"   HW {a:4d} vs {b:4d}: |t| = {t:5.1f}")
    print(f"   SNR across the six keys: {snr(groups):.2f}")

    print("\n3. Spectral recon: recover a victim's serving rate.")
    soc = Soc("ZCU102", seed=13)
    runner = DpuRunner()
    model = build_model("vgg-19")
    runner.deploy(soc, model, start=1.0)
    sampler = HwmonSampler(soc, seed=13)
    trace = sampler.collect("fpga", "current", start=1.0, duration=20.0)
    peak = estimate_serving_rate(trace)
    true_rate = 1.0 / runner.cycle_period(model)
    print(f"   victim: vgg-19 at {true_rate:.1f} inferences/s")
    print(f"   spectral estimate: {peak.frequency_hz:.1f} Hz "
          f"(prominence {peak.prominence:.0f}x)")
    print("\nAll three analyses run from unprivileged sysfs reads only.")


if __name__ == "__main__":
    main()
