#!/usr/bin/env python3
"""DNN model fingerprinting on the DPU (paper §IV-B, scaled down).

Offline phase: run known architectures on the (encrypted) DPU, record
FPGA-current traces through hwmon, and train a random forest.
Online phase: record one trace of a black-box victim model and name it.

Run:  python examples/dnn_fingerprinting.py
"""

from repro import DnnFingerprinter, FingerprintConfig, build_model

#: One representative per family — swap in repro.dpu.list_models() for
#: the full 39-model evaluation (see benchmarks/).
ZOO = [
    "mobilenet-v1-1.0",
    "squeezenet-1.1",
    "efficientnet-lite0",
    "inception-v3",
    "resnet-50",
    "vgg-19",
    "densenet-121",
]


def main():
    config = FingerprintConfig(
        duration=5.0, traces_per_model=10, n_folds=5, forest_trees=30
    )
    fingerprinter = DnnFingerprinter(config=config, seed=11)

    print(f"Offline phase: recording {len(ZOO)} models x "
          f"{config.traces_per_model} traces on 2 channels...")
    datasets = fingerprinter.collect_datasets(
        models=ZOO,
        channels=[("fpga", "current"), ("fpga", "voltage")],
    )

    for channel, dataset in datasets.items():
        result = fingerprinter.evaluate_channel(dataset)
        domain, quantity = channel
        print(f"  {domain}/{quantity:8s}: top-1 = {result.top1:.3f}, "
              f"top-5 = {result.top5:.3f} (10-fold CV equivalent)")

    print("\nOnline phase: fingerprinting a black-box accelerator...")
    classifier = fingerprinter.train(datasets[("fpga", "current")])
    victim_name = "resnet-50"  # unknown to the attacker
    victim = build_model(victim_name)
    run = fingerprinter.record_run(
        victim, channels=[("fpga", "current")], run_index=1000
    )
    trace = run[("fpga", "current")]
    prediction = fingerprinter.classify(classifier, trace)
    top3 = fingerprinter.classify_topk(classifier, trace, k=3)

    print(f"  victim ran: {victim_name}")
    print(f"  attacker says: {prediction}  (top-3: {', '.join(top3)})")
    print(f"  {'SUCCESS' if prediction == victim_name else 'MISS'} — from "
          f"one 5 s unprivileged polling session of curr1_input.")


if __name__ == "__main__":
    main()
