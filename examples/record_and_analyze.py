#!/usr/bin/env python3
"""Record once, analyze anywhere: the two-plane attack workflow.

The on-device foothold only needs to *read sysfs files* — all the
expensive analysis (forest training, cross-validation) can happen
later, on the attacker's own machine, from an archived trace set.
This example records a fingerprinting session into a streaming v2
archive, throws the SoC away, and re-derives the exact same accuracy
numbers purely from disk.

Run:  python examples/record_and_analyze.py
"""

import tempfile
from pathlib import Path

from repro.core.fingerprint import (
    DnnFingerprinter,
    FingerprintAnalyzer,
    FingerprintConfig,
)
from repro.core.io import TraceArchiveReader, TraceArchiveWriter

MODELS = ["resnet-50", "vgg-19", "squeezenet-1.1"]
CONFIG = FingerprintConfig(
    duration=2.0, traces_per_model=6, n_folds=3, forest_trees=8
)
CHANNELS = [("fpga", "current")]


def main():
    workdir = Path(tempfile.mkdtemp(prefix="amperebleed-"))
    archive = workdir / "session-0"

    # --- Acquisition plane: on the victim board. -------------------
    print(f"Recording {len(MODELS)} models -> {archive}")
    recorder = DnnFingerprinter(config=CONFIG, seed=7)
    with TraceArchiveWriter(
        archive, meta=recorder.archive_meta(MODELS, CHANNELS)
    ) as writer:
        recorder.collect_datasets(
            models=MODELS, channels=CHANNELS, sink=writer
        )
    n_chunks = len(TraceArchiveReader(archive).entries)
    print(f"  archive sealed: {n_chunks} trace chunks + manifest\n")

    # --- Analysis plane: anywhere, later, no SoC. ------------------
    print("Evaluating purely from the archive (no SoC constructed):")
    analyzer, datasets = FingerprintAnalyzer.from_archive(archive)
    for channel, dataset in sorted(datasets.items()):
        result = analyzer.evaluate_channel(dataset)
        print(f"  {channel[0]}/{channel[1]}: "
              f"top-1 {result.top1:.3f}  top-5 {result.top5:.3f}")

    print("\nThe same numbers an in-process run prints — bit-exactly;")
    print("the CLI equivalent is `record --experiment fingerprint`")
    print("followed by `analyze --archive <dir>`.")


if __name__ == "__main__":
    main()
