#!/usr/bin/env python3
"""Covert channel across the FPGA/CPU boundary (AmpereBleed corollary).

A conspirator circuit on the FPGA has no bus, no shared memory, and no
network path to the unprivileged process on the ARM cores.  But it can
modulate its own power draw — and the process can watch that draw in
the world-readable current file.  This example sends a short message
across that gap and sweeps the signaling rate against the sensor's
35 ms refresh wall.

Run:  python examples/covert_channel.py
"""


from repro.core.covert_channel import CovertChannel


def text_to_bits(text):
    return [int(bit) for byte in text.encode() for bit in f"{byte:08b}"]


def bits_to_text(bits):
    data = bytearray()
    for index in range(0, len(bits) - 7, 8):
        data.append(int("".join(map(str, bits[index:index + 8])), 2))
    return data.decode(errors="replace")


def main():
    channel = CovertChannel(seed=21)
    message = "AMPERE"
    bits = text_to_bits(message)

    print(f"Sending {message!r} ({len(bits)} bits) through the FPGA "
          f"current sensor at 5 bps...")
    report = channel.transmit(bits, bit_period=0.2)
    print(f"  received: {bits_to_text(list(report.received))!r}  "
          f"(BER {report.bit_error_rate:.3f})")

    print("\nCapacity sweep (the wall is the 35 ms hwmon refresh):")
    print(f"  {'bit period':>11s} {'raw bps':>8s} {'BER':>6s} "
          f"{'goodput':>8s}")
    for report in channel.capacity_sweep(
        bit_periods=[0.4, 0.2, 0.1, 0.06, 0.04], n_bits=64, seed=2
    ):
        print(f"  {report.bit_period * 1e3:9.0f} ms "
              f"{report.raw_throughput_bps:8.1f} "
              f"{report.bit_error_rate:6.3f} "
              f"{report.effective_throughput_bps:8.1f}")

    print("\nBelow ~3x the update interval the channel is error-free;")
    print("at the interval itself it collapses — the root-only")
    print("update_interval knob directly caps covert bandwidth.")


if __name__ == "__main__":
    main()
