#!/usr/bin/env python3
"""Sensor characterization: a scaled-down Fig 2 sweep with ASCII plots.

Activates 0..160 groups of power-virus instances and compares how the
four observation channels track the victim: hwmon current, voltage and
power, plus the crafted ring-oscillator baseline of prior work.

Run:  python examples/characterize_sensors.py
"""


from repro import characterize


def ascii_plot(name, levels, means, width=60):
    """One-line-per-decile ASCII rendering of a sweep curve."""
    lo, hi = means.min(), means.max()
    span = hi - lo if hi > lo else 1.0
    print(f"  {name} (min={lo:.6g}, max={hi:.6g})")
    for index in range(0, levels.size, max(1, levels.size // 8)):
        bar = int((means[index] - lo) / span * width)
        print(f"    level {levels[index]:3d} | {'#' * bar}")


def main():
    print("Running the characterization sweep "
          "(161 levels x 1000 samples)...")
    result = characterize(samples_per_level=1000, seed=7)

    print("\nPer-channel statistics (paper Fig 2):")
    print(f"  {'channel':8s} {'pearson':>8s} {'LSB/step':>9s}")
    for sweep in (result.current, result.voltage, result.power, result.ro):
        print(f"  {sweep.name:8s} {sweep.pearson:8.3f} {sweep.lsb_step:9.2f}")

    ratio = result.current_vs_ro_variation
    print(f"\nCurrent shows {ratio:.0f}x greater relative variation than "
          f"the RO baseline (paper: 261x).")
    print()

    ascii_plot("FPGA current (mA)", result.levels, result.current.means)
    ascii_plot("FPGA voltage (mV)", result.levels, result.voltage.means)
    ascii_plot("RO counts", result.levels, result.ro.means)

    print("\nReading the curves: current climbs ~40 mA per activated")
    print("group; voltage moves ~3 mV across the whole sweep (inside the")
    print("0.825-0.876 V stabilizer band); the RO count drops by barely")
    print("one count end to end — the crafted circuit is nearly blind.")


if __name__ == "__main__":
    main()
