#!/usr/bin/env python3
"""Quickstart: read on-chip current sensors like an unprivileged attacker.

Builds a simulated ZCU102 (the paper's evaluation board), deploys a
victim circuit on the FPGA, and then — using nothing but world-readable
hwmon sysfs files — watches the victim's activity appear in the FPGA
current readings while the stabilized voltage stays flat.

Run:  python examples/quickstart.py
"""


from repro import HwmonSampler, Soc
from repro.soc import ConstantActivity


def main():
    # The platform: a ZCU102 with 18 INA226 sensors behind hwmon.
    soc = Soc("ZCU102", seed=42)
    print(f"Platform: {soc}")
    print("Sensitive sensors (paper Table II):")
    for domain, designator in soc.sensitive_channels():
        path = soc.sysfs_path(domain, "current")
        print(f"  {domain:5s} -> ina226_{designator}  {path}")
    print()

    # The attacker: an ordinary process polling sysfs.
    sampler = HwmonSampler(soc, seed=42)

    # Phase 1: idle board.
    idle = sampler.collect("fpga", "current", start=0.0, duration=2.0)
    idle_volt = sampler.collect("fpga", "voltage", start=0.0, duration=2.0)

    # Phase 2: a victim circuit starts switching on the FPGA (2 W).
    soc.attach_workload("fpga", "victim", ConstantActivity(2.0))
    busy = sampler.collect("fpga", "current", start=10.0, duration=2.0)
    busy_volt = sampler.collect("fpga", "voltage", start=10.0, duration=2.0)

    print("FPGA rail through unprivileged hwmon reads:")
    print(f"  idle: current = {idle.values.mean():7.1f} mA   "
          f"voltage = {idle_volt.values.mean():6.1f} mV")
    print(f"  busy: current = {busy.values.mean():7.1f} mA   "
          f"voltage = {busy_volt.values.mean():6.1f} mV")
    delta_i = busy.values.mean() - idle.values.mean()
    delta_v = busy_volt.values.mean() - idle_volt.values.mean()
    print(f"  delta: {delta_i:+.1f} mA of current leakage vs "
          f"{delta_v:+.2f} mV of (stabilized) voltage movement")
    print()
    print("The PDN stabilizer hides the victim from voltage sensors —")
    print("but P = V * I, so the current channel sees everything.")

    # Root-only controls stay root-only.
    try:
        soc.hwmon.write(
            f"{soc.device('fpga').path}/update_interval", "2",
            privileged=False,
        )
    except Exception as error:
        print(f"\nAs expected, speeding up the sensor needs root: {error}")


if __name__ == "__main__":
    main()
