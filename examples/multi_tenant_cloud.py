#!/usr/bin/env python3
"""Cloud scenario: PDN isolation vs AmpereBleed.

Two tenants share an FPGA behind ISO-TENANT-style per-tenant
regulators.  Tenant A runs a victim accelerator; tenant B hosts the
classic attacker with a ring-oscillator bank.  Meanwhile an
unprivileged process on the ARM cores polls the board-level INA226.

Run:  python examples/multi_tenant_cloud.py
"""

import numpy as np

from repro.analysis import pearson
from repro.fpga import IsolatedTenantPdn, PowerVirusArray, RoSensorBank
from repro.soc import Soc


def main():
    soc = Soc("ZCU102", seed=29)
    pdn = IsolatedTenantPdn(n_tenants=2)
    pdn.install(soc)
    print("Topology: upstream VCCINT (monitored by ina226_u79)")
    print("          -> per-tenant regulators -> TENANT0 (victim), "
          "TENANT1 (RO attacker)\n")

    victim = PowerVirusArray(seed=29)
    ro = RoSensorBank()
    device = soc.device("fpga")
    period = device.update_period
    rng = np.random.default_rng(1)

    levels = np.arange(0, 161, 20)
    current_means, ro_means = [], []
    for position, level in enumerate(levels):
        start = 1.0 + position * 210 * period
        victim.set_active_groups(int(level))
        pdn.tenant(0).replace("victim", victim.timeline())

        times = start + np.arange(200) * period
        current_means.append(soc.sample("fpga", "current", times).mean())
        windows = start + np.arange(200) * ro.sample_window
        tenant_v = pdn.tenant_voltage(1, windows, windows + ro.sample_window)
        ro_means.append(ro.counts(tenant_v, rng=rng).mean())

    current_means = np.asarray(current_means)
    ro_means = np.asarray(ro_means)

    print(f"{'level':>6s} {'hwmon mA':>9s} {'RO counts':>10s}")
    for level, i, c in zip(levels, current_means, ro_means):
        print(f"{level:6d} {i:9.0f} {c:10.3f}")

    print(f"\ncorrelation with victim activity:")
    print(f"  upstream INA226 current: r = {pearson(levels, current_means):+.4f}")
    print(f"  tenant-B ring oscillator: r = {pearson(levels, ro_means):+.4f}")
    print("\nPer-tenant regulation blinds the co-resident crafted sensor;")
    print("the board-level current sensor aggregates every tenant anyway.")


if __name__ == "__main__":
    main()
