#!/usr/bin/env python3
"""RSA-1024 Hamming-weight extraction (paper §IV-C / Fig 4, scaled down).

The victim loops RSA encryptions at 100 MHz with a secret exponent
sealed inside the encrypted bitstream.  The attacker polls the FPGA
current file at 1 kHz and reads the exponent's Hamming weight off the
current distribution — the power channel, quantized to 25 mW, cannot
tell most keys apart.

Run:  python examples/rsa_hamming_weight.py
"""

from repro import RsaHammingWeightAttack
from repro.crypto import PAPER_HAMMING_WEIGHTS


def main():
    attack = RsaHammingWeightAttack(seed=3)

    print("Profiling the paper's 17 keys (HW = 1, 64, 128, ..., 1024)")
    print("on the current channel (1 kHz polling)...")
    current = attack.sweep(n_samples=8000)
    print("...and on the power channel...")
    power = attack.sweep(quantity="power", n_samples=8000)

    print(f"\n  {'HW':>5s} {'median mA':>10s} {'IQR':>6s} {'median mW':>10s}")
    for c_profile, p_profile in zip(current.profiles, power.profiles):
        c = c_profile.summary
        p = p_profile.summary
        print(f"  {c_profile.weight:5d} {c.median:10.0f} {c.iqr:6.1f} "
              f"{p.median / 1000:10.0f}")

    print(f"\nDistinguishable groups — current: "
          f"{current.distinguishable_groups()}/17, power: "
          f"{power.distinguishable_groups()}/17")
    print("(paper: all 17 by current, ~5 groups by power)")

    calibration = current.calibration()
    print(f"\nCalibration: median_mA = {calibration.slope:.4f} * HW + "
          f"{calibration.intercept:.1f}  (r = {calibration.r:.4f})")

    print("\nOnline attack on an unknown key (true HW = 576):")
    estimate = attack.end_to_end(576, calibration, n_samples=8000)
    nearest = min(PAPER_HAMMING_WEIGHTS, key=lambda w: abs(w - estimate))
    print(f"  raw estimate {estimate:.0f} -> nearest profiled weight "
          f"{nearest}")
    print("  Knowing HW shrinks brute-force search space and feeds")
    print("  statistical key-recovery attacks (Sarkar & Maitra).")


if __name__ == "__main__":
    main()
