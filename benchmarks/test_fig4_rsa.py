"""Bench: regenerate Fig 4 — RSA-1024 Hamming weight vs FPGA readings.

Paper claims: over 17 keys with Hamming weights {1, 64, ..., 1024}, the
FPGA *current* distributions separate every key, while the *power*
channel (25 mW LSB) collapses them into ~5 groups.  The victim runs at
100 MHz; the attacker polls at 1 kHz.
"""

from conftest import full_scale, print_table

from repro.core.rsa_attack import RsaHammingWeightAttack
from repro.crypto.rsa_math import PAPER_HAMMING_WEIGHTS


def run_fig4():
    n_samples = 100_000 if full_scale() else 20_000
    attack = RsaHammingWeightAttack(seed=0)
    current = attack.sweep(n_samples=n_samples)
    power = attack.sweep(quantity="power", n_samples=n_samples)
    return attack, current, power


def test_fig4_rsa(benchmark):
    attack, current, power = benchmark.pedantic(
        run_fig4, rounds=1, iterations=1
    )

    rows = []
    for c_profile, p_profile in zip(current.profiles, power.profiles):
        c = c_profile.summary
        p = p_profile.summary
        rows.append(
            (
                c_profile.weight,
                f"{c.median:.0f}",
                f"{c.q1:.0f}-{c.q3:.0f}",
                f"{p.median / 1000:.0f}",
            )
        )
    print_table(
        "Fig 4: FPGA readings vs RSA-1024 key Hamming weight",
        ("HW", "I median (mA)", "I IQR", "P median (mW)"),
        rows,
    )

    current_groups = current.distinguishable_groups()
    power_groups = power.distinguishable_groups()
    print(
        f"\ndistinguishable groups: current {current_groups}/17 "
        f"(paper: 17), power {power_groups}/17 (paper: ~5)"
    )
    calibration = current.calibration()
    print(
        f"current calibration: {calibration.slope:.4f} mA/HW, "
        f"r={calibration.r:.4f}"
    )

    # --- Shape assertions. ---
    # Current separates all 17 keys; medians strictly increase with HW.
    assert current_groups == 17
    medians = current.medians
    assert all(b > a for a, b in zip(medians, medians[1:]))
    # Power collapses most keys (~5 groups in the paper).
    assert 3 <= power_groups <= 7
    assert power_groups < current_groups
    # Current decodes HW linearly.
    assert calibration.r > 0.999
    # End-to-end: an unseen key decodes within one 64-HW grid step.
    estimate = attack.end_to_end(
        448, calibration, n_samples=10_000 if not full_scale() else 50_000
    )
    nearest = min(PAPER_HAMMING_WEIGHTS, key=lambda w: abs(w - estimate))
    print(f"online attack on HW=448: estimate {estimate:.0f} -> {nearest}")
    assert abs(estimate - 448) < 64
