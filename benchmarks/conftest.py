"""Shared helpers for the evaluation benches.

Every bench regenerates one table or figure from the paper and prints
the same rows/series the paper reports, alongside pytest-benchmark
timing.  Set ``AMPEREBLEED_FULL=1`` to run at full paper scale
(10 k samples per level, 100-tree forests, 10-fold CV); the default
scale keeps the whole suite in the minutes range while preserving the
reported shapes.
"""

from typing import Iterable, Sequence

import pytest

from repro.perf.config import full_scale

__all__ = ["full_scale", "print_table", "table_printer"]


def print_table(title: str, header: Sequence[str], rows: Iterable[Sequence]):
    """Render one paper table to stdout."""
    print(f"\n=== {title} ===")
    widths = [len(str(h)) for h in header]
    materialized = [[str(cell) for cell in row] for row in rows]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(header))
    print(line)
    print("-" * len(line))
    for row in materialized:
        print("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))


@pytest.fixture
def table_printer():
    """Inject the table renderer into benches."""
    return print_table
