"""Extension bench: does the classifier matter, or the channel?

The paper motivates random forests by their fit for high-dimensional
trace features.  This bench reruns a fingerprinting subset with kNN
and multinomial logistic regression.  The nonparametric methods (RF,
kNN) both recover the current-channel signal almost fully; the linear
model lags — raw traces wander in phase, which a linear decision
surface cannot absorb — but still lands ~3x above chance.  And no
classifier rescues the stabilized voltage channel, confirming the leak
lives in the physics, with classifier choice second-order.
"""

import numpy as np
from conftest import print_table

from repro.core.fingerprint import DnnFingerprinter, FingerprintConfig
from repro.ml.forest import RandomForestClassifier
from repro.ml.linear import LogisticRegressionClassifier
from repro.ml.metrics import accuracy
from repro.ml.neighbors import KNeighborsClassifier
from repro.ml.validation import stratified_kfold_indices

MODELS = [
    "mobilenet-v1-1.0", "mobilenet-v2-1.0", "squeezenet-1.1",
    "efficientnet-lite0", "inception-v3", "resnet-50", "vgg-19",
    "densenet-121",
]


def crossval_top1(X, y, factory, n_folds=4, seed=0):
    folds = stratified_kfold_indices(y, n_folds, seed=seed)
    scores = []
    indices = np.arange(y.size)
    for fold in folds:
        mask = np.zeros(y.size, dtype=bool)
        mask[fold] = True
        classifier = factory()
        classifier.fit(X[indices[~mask]], y[indices[~mask]])
        scores.append(accuracy(y[fold], classifier.predict(X[fold])))
    return float(np.mean(scores))


def run_comparison():
    config = FingerprintConfig(
        duration=5.0, traces_per_model=12, n_folds=4, forest_trees=30
    )
    fingerprinter = DnnFingerprinter(config=config, seed=0)
    datasets = fingerprinter.collect_datasets(
        models=MODELS,
        channels=[("fpga", "current"), ("fpga", "voltage")],
    )
    factories = {
        "random forest": lambda: RandomForestClassifier(
            n_estimators=30, max_depth=32, seed=1
        ),
        "kNN (k=3)": lambda: KNeighborsClassifier(n_neighbors=3),
        "logistic": lambda: LogisticRegressionClassifier(n_iterations=250),
    }
    scores = {}
    for channel, dataset in datasets.items():
        X, y = dataset.to_matrix(config.n_features)
        for name, factory in factories.items():
            scores[(channel[1], name)] = crossval_top1(X, y, factory)
    return scores


def test_classifier_comparison(benchmark):
    scores = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    classifiers = ("random forest", "kNN (k=3)", "logistic")
    rows = [
        (name,
         f"{scores[('current', name)]:.3f}",
         f"{scores[('voltage', name)]:.3f}")
        for name in classifiers
    ]
    print_table(
        "Classifier ablation: top-1 on 8 models (chance = 0.125)",
        ("classifier", "FPGA current", "FPGA voltage"),
        rows,
    )

    # The nonparametric classifiers extract the signal almost fully...
    assert scores[("current", "random forest")] > 0.75
    assert scores[("current", "kNN (k=3)")] > 0.75
    # ...the linear baseline lags but stays well above chance (0.125)...
    assert scores[("current", "logistic")] > 0.3
    for name in classifiers:
        # ...and none of them rescues the stabilized voltage channel.
        assert scores[("voltage", name)] < scores[("current", name)], name
    # The forest is at least competitive with the best baseline.
    best_baseline = max(
        scores[("current", "kNN (k=3)")],
        scores[("current", "logistic")],
    )
    assert scores[("current", "random forest")] > best_baseline - 0.15
