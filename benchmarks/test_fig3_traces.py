"""Bench: regenerate Fig 3 — current traces on four sensors during
inference of six DNN models.

Paper claim: MobileNet-V1, SqueezeNet, EfficientNet-Lite, Inception-V3,
ResNet-50 and VGG-19 each produce a *unique* current pattern, visible
simultaneously on the FPGA, DRAM, full-power-CPU and low-power-CPU
sensors — the DPU's encrypted internals notwithstanding.
"""

import itertools

import numpy as np
from conftest import print_table

from repro.core.fingerprint import DnnFingerprinter, FingerprintConfig
from repro.dpu.models import FIG3_MODELS, build_model

CHANNELS = (
    ("fpga", "current"),
    ("ddr", "current"),
    ("fpd", "current"),
    ("lpd", "current"),
)


def collect_traces():
    config = FingerprintConfig(duration=5.0, traces_per_model=2)
    fingerprinter = DnnFingerprinter(config=config, seed=5)
    traces = {}
    for name in FIG3_MODELS:
        traces[name] = fingerprinter.record_run(
            build_model(name), channels=CHANNELS
        )
    return traces


def test_fig3_traces(benchmark):
    traces = benchmark.pedantic(collect_traces, rounds=1, iterations=1)

    rows = []
    for name in FIG3_MODELS:
        model = build_model(name)
        fpga = traces[name][("fpga", "current")].values
        ddr = traces[name][("ddr", "current")].values
        fpd = traces[name][("fpd", "current")].values
        lpd = traces[name][("lpd", "current")].values
        rows.append(
            (
                name,
                f"{model.weight_bytes / 1e6:.1f} MB",
                f"{fpga.mean():.0f}±{fpga.std():.0f}",
                f"{ddr.mean():.0f}±{ddr.std():.0f}",
                f"{fpd.mean():.0f}±{fpd.std():.0f}",
                f"{lpd.mean():.0f}±{lpd.std():.0f}",
            )
        )
    print_table(
        "Fig 3: current traces during DNN inference (mA, mean±std "
        "over a 5 s trace)",
        ("model", "size", "FPGA", "DRAM", "FPD CPU", "LPD CPU"),
        rows,
    )

    # Every channel observes the DPU above its idle floor.
    idle_floor = {"fpga": 470, "ddr": 210, "fpd": 300, "lpd": 155}
    for name in FIG3_MODELS:
        for domain, _ in CHANNELS:
            values = traces[name][(domain, "current")].values
            assert values.mean() > idle_floor[domain], (name, domain)

    # Each of the six models produces a distinct FPGA-current pattern:
    # pairwise mean levels or temporal shapes must differ measurably.
    for a, b in itertools.combinations(FIG3_MODELS, 2):
        va = traces[a][("fpga", "current")].values.astype(float)
        vb = traces[b][("fpga", "current")].values.astype(float)
        n = min(va.size, vb.size)
        mean_gap = abs(va.mean() - vb.mean())
        shape_gap = np.abs(va[:n] - vb[:n]).mean()
        assert mean_gap > 5 or shape_gap > 25, (a, b)

    # Traces are long enough for the Table III classifier (>=140 polls).
    for name in FIG3_MODELS:
        assert traces[name][("fpga", "current")].n_samples >= 140
