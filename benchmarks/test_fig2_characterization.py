"""Bench: regenerate Fig 2 — channels vs. activated power-virus groups.

Paper numbers: current and power correlate with the activation level
at 0.999; voltage at |0.958|; the RO baseline at -0.996.  Current moves
~40 of its 1 mA LSBs per level, power 1-2 of its 25 mW LSBs, voltage
stays sub-LSB; and current varies ~261x more than the RO counts over
the same sweep (§I + §IV-A).
"""

from conftest import full_scale, print_table

from repro.core.characterize import characterize


def run_sweep():
    samples = 10_000 if full_scale() else 1_500
    return characterize(samples_per_level=samples, seed=0)


def test_fig2_characterization(benchmark):
    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    paper = {
        "current": ("0.999", "~40"),
        "voltage": ("0.958 (|r|)", "<1 overall"),
        "power": ("0.999", "1-2"),
        "ro": ("-0.996", "n/a"),
    }
    for sweep in (result.current, result.voltage, result.power, result.ro):
        rows.append(
            (
                sweep.name,
                f"{sweep.pearson:+.4f}",
                f"{sweep.lsb_step:.2f}",
                paper[sweep.name][0],
                paper[sweep.name][1],
            )
        )
    print_table(
        "Fig 2: per-level means vs activation level (161 levels)",
        ("channel", "pearson", "LSB/step", "paper r", "paper LSB/step"),
        rows,
    )
    ratio = result.current_vs_ro_variation
    print(f"\ncurrent-vs-RO variation ratio: {ratio:.1f}x  (paper: 261x)")
    print(
        "series endpoints: current "
        f"{result.current.means[0]:.0f} -> {result.current.means[-1]:.0f} mA, "
        f"voltage {result.voltage.means[0]:.1f} -> "
        f"{result.voltage.means[-1]:.1f} mV, "
        f"RO {result.ro.means[0]:.2f} -> {result.ro.means[-1]:.2f} counts"
    )

    # Shape assertions (who wins, and by roughly what factor).
    assert result.current.pearson > 0.995
    assert result.power.pearson > 0.995
    assert 0.80 < abs(result.voltage.pearson) < 0.995
    assert result.ro.pearson < -0.98
    assert 30 < result.current.lsb_step < 50
    assert 0.8 < result.power.lsb_step < 2.5
    assert result.voltage.lsb_step < 0.1
    assert 180 < ratio < 360
    # Current's floor is non-zero (static power of deployed instances).
    assert result.current.means[0] > 500
