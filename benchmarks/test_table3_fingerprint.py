"""Bench: regenerate Table III — encrypted-accelerator fingerprinting.

Paper numbers (5 s traces, 39 classes, random guess = 0.0256):

    channel              top-1   top-5
    FPD CPU current      0.837   0.982
    LPD CPU current      0.557   0.915
    DRAM current         0.958   0.999
    FPGA current         0.997   1.000
    FPGA voltage         0.116   0.330
    FPGA power           0.989   0.996

and accuracy grows with trace duration (1 s .. 5 s columns).

The default bench runs a reduced-but-faithful protocol (20 traces per
model, 5 folds, 40 trees, durations 1 s and 5 s); AMPEREBLEED_FULL=1
switches to the paper protocol (10 folds, 100 trees, all durations).
"""

from conftest import full_scale, print_table

from repro.core.fingerprint import (
    TABLE3_CHANNELS,
    DnnFingerprinter,
    FingerprintConfig,
)

#: Paper's Table III 5 s column, for side-by-side printing.
PAPER_TOP1 = {
    ("fpd", "current"): 0.837,
    ("lpd", "current"): 0.557,
    ("ddr", "current"): 0.958,
    ("fpga", "current"): 0.997,
    ("fpga", "voltage"): 0.116,
    ("fpga", "power"): 0.989,
}


def run_table3():
    if full_scale():
        config = FingerprintConfig(
            duration=5.0, traces_per_model=20, n_folds=10, forest_trees=100
        )
        durations = (1.0, 2.0, 3.0, 4.0, 5.0)
    else:
        config = FingerprintConfig(
            duration=5.0, traces_per_model=20, n_folds=5, forest_trees=40
        )
        durations = (1.0, 5.0)
    fingerprinter = DnnFingerprinter(config=config, seed=0)
    datasets = fingerprinter.collect_datasets()
    results = fingerprinter.evaluate_table3(datasets, durations=durations)
    return results, durations


def test_table3_fingerprint(benchmark):
    (results, durations) = benchmark.pedantic(
        run_table3, rounds=1, iterations=1
    )

    rows = []
    full = max(durations)
    for domain, quantity in TABLE3_CHANNELS:
        cells = [f"{domain}/{quantity}"]
        for duration in durations:
            result = results[(domain, quantity, duration)]
            cells.append(f"{result.top1:.3f}/{result.top5:.3f}")
        cells.append(f"{PAPER_TOP1[(domain, quantity)]:.3f}")
        rows.append(tuple(cells))
    header = ["channel"] + [f"{d:.0f}s top1/top5" for d in durations] + [
        "paper top1 (5s)"
    ]
    print_table(
        "Table III: accelerator fingerprinting accuracy "
        "(39 classes, chance=0.026)",
        header,
        rows,
    )

    top1 = {
        channel: results[(channel[0], channel[1], full)].top1
        for channel in TABLE3_CHANNELS
    }
    top5 = {
        channel: results[(channel[0], channel[1], full)].top5
        for channel in TABLE3_CHANNELS
    }

    # --- Shape assertions: the paper's ordering of channels. ---
    # FPGA current is the best channel and far above chance.
    assert top1[("fpga", "current")] > 0.85
    assert top5[("fpga", "current")] > 0.97
    # FPGA power is close behind current (25 mW truncation costs a bit).
    assert top1[("fpga", "power")] > 0.80
    # DRAM current is strong; FPD CPU current moderate; both informative.
    assert top1[("ddr", "current")] > 0.6
    assert top1[("fpd", "current")] > 0.35
    # LPD is weak but clearly above chance.
    assert 0.10 < top1[("lpd", "current")] < top1[("fpd", "current")] + 0.2
    assert top1[("lpd", "current")] > 4 * 0.0256
    # FPGA voltage is near-useless: the stabilizer + 1.25 mV LSB.
    assert top1[("fpga", "voltage")] < 0.30
    assert top1[("fpga", "voltage")] < top1[("lpd", "current")]
    # Current >> voltage on the same sensor: the core claim.
    assert top1[("fpga", "current")] > top1[("fpga", "voltage")] + 0.5

    # Duration helps (or at least does not hurt) on the strong channels.
    short = min(durations)
    for channel in (("fpga", "current"), ("ddr", "current")):
        gain = (
            results[(channel[0], channel[1], full)].top1
            - results[(channel[0], channel[1], short)].top1
        )
        assert gain > -0.05
