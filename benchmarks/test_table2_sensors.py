"""Bench: regenerate Table II — unprivileged sensitive sensors on ZCU102.

Paper claim: four of the ZCU102's 18 INA226 devices monitor the
security-relevant domains (FPD/LPD CPU, FPGA logic, DDR) and all of
them are readable through hwmon without privileges, while the refresh
rate stays root-controlled.
"""

import numpy as np
import pytest
from conftest import print_table

from repro.boards import sensitive_sensors
from repro.sensors.hwmon import HwmonPermissionError
from repro.soc import Soc


def enumerate_sensitive(soc):
    rows = []
    for domain, designator in soc.sensitive_channels():
        device = soc.device(domain)
        rows.append(
            (
                f"ina226_{designator}",
                domain,
                device.rail.name,
                soc.sysfs_path(domain, "current"),
            )
        )
    return rows


def test_table2_sensors(benchmark):
    soc = Soc("ZCU102", seed=0)
    rows = benchmark(enumerate_sensitive, soc)

    print_table(
        "Table II: sensitive unprivileged sensors (ZCU102)",
        ("Sensor", "Domain", "Rail", "sysfs path"),
        rows,
    )

    assert {row[0] for row in rows} == {
        "ina226_u76", "ina226_u77", "ina226_u79", "ina226_u93"
    }
    assert {row[2] for row in rows} == {
        "VCCPSINTFP", "VCCPSINTLP", "VCCINT", "VCCPSDDR"
    }
    # Descriptions match the paper's Table II wording.
    descriptions = {s.designator: s.description for s in sensitive_sensors()}
    assert "full-power domain" in descriptions["u76"]
    assert "low-power do" in descriptions["u77"].replace("-\n", "")
    assert "FPGA" in descriptions["u79"]
    assert "DDR memory" in descriptions["u93"]

    # Unprivileged reads succeed on every sensitive channel...
    for domain, _ in soc.sensitive_channels():
        for quantity in ("current", "voltage", "power"):
            value = soc.sample(domain, quantity, np.array([1.0]))[0]
            assert value >= 0
    # ...but reconfiguring the sensor needs root.
    with pytest.raises(HwmonPermissionError):
        soc.hwmon.write(
            f"{soc.device('fpga').path}/update_interval", "2",
            privileged=False,
        )
