"""Fleet bench smoke: ``BENCH_fleet.json`` at two-board scale.

Asserts the fleet bench emits a well-formed report — throughput,
latency percentiles, pool-vs-fork head-to-head — and that the
scheduler run reproduced the serial run's archives and accuracies
exactly.  Run it alone with ``pytest benchmarks -m fleet``.
"""

import json

import pytest

from repro.fleet import run_fleet_bench
from repro.perf.bench import SCHEMA_VERSION, write_bench_json
from repro.perf.pool import shutdown_pool

pytestmark = [pytest.mark.bench_smoke, pytest.mark.fleet]


@pytest.fixture(scope="module")
def report():
    result = run_fleet_bench(smoke=True, max_concurrent=3)
    yield result
    shutdown_pool()


def test_fleet_json_emitted_and_well_formed(report, tmp_path):
    path = write_bench_json(report, str(tmp_path / "BENCH_fleet.json"))
    with open(path) as handle:
        loaded = json.load(handle)
    assert loaded["benchmark"] == "fleet"
    assert loaded["schema_version"] == SCHEMA_VERSION
    assert loaded["jobs"] == len(loaded["boards"]) * 3
    for side in ("serial", "fleet"):
        stats = loaded[side]
        assert stats["ok"]
        assert stats["traces"] > 0
        assert stats["traces_per_sec"] > 0.0
        assert (
            0.0
            <= stats["p50_job_latency_s"]
            <= stats["p95_job_latency_s"]
            <= stats["max_job_latency_s"]
        )
        assert stats["failures"] == []
    assert loaded["stage_seconds"]["serial"] > 0.0
    assert loaded["stage_seconds"]["fleet"] > 0.0


def test_pool_head_to_head_reuses_warm_workers(report):
    head = report["head_to_head"]
    if not head.get("available"):  # pragma: no cover - no fork platform
        pytest.skip("fork start method unavailable")
    assert head["identical"]
    assert head["pool_seconds"] > 0.0
    assert head["fork_per_call_seconds"] > 0.0


def test_fleet_matches_serial_exactly(report):
    parity = report["parity"]
    assert parity["identical"], parity
    assert all(entry["identical"] for entry in parity["archives"])
    accuracy = parity["accuracy"]
    assert accuracy is not None and accuracy["identical"]
    assert report["fleet"]["traces"] == report["serial"]["traces"]
    assert report["fleet"]["samples"] == report["serial"]["samples"]
