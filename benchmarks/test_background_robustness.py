"""Extension bench: attack robustness under background co-activity.

The paper evaluates on a quiet, pinned system.  This bench re-runs the
fingerprinting attack with synthesized background load (OS daemons,
DMA, a co-tenant accelerator) at three intensities and reports the
degradation — the deployment question a real attacker (or defender)
cares about.
"""

from conftest import print_table

from repro.core.fingerprint import DnnFingerprinter, FingerprintConfig
from repro.soc import HEAVY_BACKGROUND, LIGHT_BACKGROUND, BackgroundLoad, Soc

MODELS = [
    "mobilenet-v1-1.0", "squeezenet-1.1", "efficientnet-lite0",
    "inception-v3", "resnet-50", "vgg-19", "densenet-121", "resnet-18",
]

SCENARIOS = (
    ("quiet", None),
    ("light", LIGHT_BACKGROUND),
    ("heavy", HEAVY_BACKGROUND),
)


def run_robustness():
    scores = {}
    for name, profiles in SCENARIOS:
        soc = Soc("ZCU102", seed=0)
        config = FingerprintConfig(
            duration=5.0, traces_per_model=10, n_folds=4, forest_trees=25
        )
        fingerprinter = DnnFingerprinter(soc=soc, config=config, seed=0)
        if profiles is not None:
            # Background spans the whole collection campaign.
            campaign_seconds = (
                len(MODELS) * config.traces_per_model
                * (config.duration + 0.5) + 60.0
            )
            BackgroundLoad(profiles, seed=11).attach(
                soc, duration=campaign_seconds
            )
        datasets = fingerprinter.collect_datasets(
            models=MODELS,
            channels=[("fpga", "current"), ("fpd", "current")],
        )
        scores[(name, "fpga")] = fingerprinter.evaluate_channel(
            datasets[("fpga", "current")]
        ).top1
        scores[(name, "fpd")] = fingerprinter.evaluate_channel(
            datasets[("fpd", "current")]
        ).top1
    return scores


def test_background_robustness(benchmark):
    scores = benchmark.pedantic(run_robustness, rounds=1, iterations=1)

    rows = [
        (
            name,
            f"{scores[(name, 'fpga')]:.3f}",
            f"{scores[(name, 'fpd')]:.3f}",
        )
        for name, _ in SCENARIOS
    ]
    print_table(
        "Fingerprinting top-1 under background load "
        f"({len(MODELS)} models, chance = {1 / len(MODELS):.3f})",
        ("background", "FPGA current", "FPD CPU current"),
        rows,
    )

    # The FPGA channel is resilient: the victim owns that rail, and
    # background fabric activity is sparse.
    assert scores[("quiet", "fpga")] > 0.9
    assert scores[("heavy", "fpga")] > 0.6
    # The CPU channel degrades much harder: background load lands
    # exactly on the rail the classifier reads.
    fpga_drop = scores[("quiet", "fpga")] - scores[("heavy", "fpga")]
    fpd_drop = scores[("quiet", "fpd")] - scores[("heavy", "fpd")]
    assert fpd_drop >= fpga_drop - 0.05
    # Even heavy load does not push the attack to chance.
    assert scores[("heavy", "fpga")] > 3.0 / len(MODELS)
