"""Bench: regenerate Table I — INA226 counts across ARM-FPGA SoC boards.

Paper claim: all eight representative boards across the Zynq
UltraScale+ and Versal families integrate 14-22 INA226 sensors, with
the UltraScale+ parts regulated to 0.825-0.876 V and the Versal parts
to 0.775-0.825 V — so the attack surface is ubiquitous, not exotic.
"""

from conftest import print_table

from repro.boards import boards_by_family, list_boards


def build_table1():
    rows = []
    for board in list_boards():
        low, high = board.fpga_voltage_range
        rows.append(
            (
                board.name,
                board.fpga_family,
                f"{low:.3f}~{high:.3f}",
                board.cpu_model,
                f"{board.dram_gib} GB",
                board.ina226_count,
                f"{board.price_usd:,.0f}",
            )
        )
    return rows


def test_table1_boards(benchmark):
    rows = benchmark(build_table1)

    print_table(
        "Table I: INA226 sensors on ARM-FPGA SoC boards",
        ("Board", "FPGA Family", "FPGA V", "CPU", "DRAM", "INA226", "USD"),
        rows,
    )

    # Paper-shape assertions.
    assert len(rows) == 8
    counts = {row[0]: row[5] for row in rows}
    assert counts == {
        "ZCU102": 18, "ZCU111": 14, "ZCU216": 14, "ZCU1285": 21,
        "VEK280": 20, "VCK190": 17, "VHK158": 22, "VPK180": 19,
    }
    # Every single board ships INA226s: the attack needs no extra HW.
    assert all(row[5] >= 14 for row in rows)
    assert len(boards_by_family("Zynq UltraScale+")) == 4
    assert len(boards_by_family("Versal")) == 4
