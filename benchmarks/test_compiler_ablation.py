"""Extension bench: is the evaluation robust to the DPU cost model?

The default core uses fixed per-kind efficiencies (conv 0.65, dwconv
0.22, ...); the compiler derives them from first principles by tiling
each layer onto the B4096 array.  The two models disagree in detail
(the naive tiling is harsher on depthwise layers than the DPU's
dedicated depthwise mode), so this bench checks what matters: the
*fingerprinting result* survives swapping the cost model — the attack
is not an artifact of one set of constants.
"""

from conftest import print_table

from repro.core.fingerprint import DnnFingerprinter, FingerprintConfig
from repro.dpu.compiler import DpuCompiler
from repro.dpu.dpu import DpuConfig, DpuCore
from repro.dpu.models import build_model
from repro.dpu.runner import DpuRunner

MODELS = [
    "mobilenet-v1-1.0", "squeezenet-1.1", "efficientnet-lite0",
    "inception-v3", "resnet-50", "vgg-19",
]


def run_ablation():
    compiler = DpuCompiler()
    latency_rows = []
    for name in MODELS:
        model = build_model(name)
        fixed_core = DpuCore()
        derived_core = DpuCore(
            DpuConfig(efficiency=compiler.derive_efficiencies(model))
        )
        latency_rows.append(
            (
                name,
                fixed_core.inference_latency(model) * 1e3,
                derived_core.inference_latency(model) * 1e3,
            )
        )

    scores = {}
    for label, runner in (
        ("fixed", DpuRunner()),
        ("compiled", None),
    ):
        config = FingerprintConfig(
            duration=5.0, traces_per_model=8, n_folds=4, forest_trees=20
        )
        fingerprinter = DnnFingerprinter(
            runner=runner, config=config, seed=0
        )
        if label == "compiled":
            # Per-model derived efficiencies: rebuild the runner's core
            # per model by monkey-free means — collect per model with a
            # model-specific runner.
            from repro.core.traces import TraceSet

            dataset = TraceSet()
            for name in MODELS:
                model = build_model(name)
                core = DpuCore(
                    DpuConfig(
                        efficiency=compiler.derive_efficiencies(model)
                    )
                )
                fingerprinter.runner = DpuRunner(dpu=core)
                for repetition in range(config.traces_per_model):
                    run = fingerprinter.record_run(
                        model,
                        channels=[("fpga", "current")],
                        run_index=repetition,
                    )
                    dataset.add(run[("fpga", "current")])
            scores[label] = fingerprinter.evaluate_channel(dataset).top1
        else:
            datasets = fingerprinter.collect_datasets(
                models=MODELS, channels=[("fpga", "current")]
            )
            scores[label] = fingerprinter.evaluate_channel(
                datasets[("fpga", "current")]
            ).top1
    return latency_rows, scores


def test_compiler_ablation(benchmark):
    latency_rows, scores = benchmark.pedantic(
        run_ablation, rounds=1, iterations=1
    )

    print_table(
        "DPU cost model: inference latency, fixed vs compiled (ms)",
        ("model", "fixed", "compiled"),
        [(n, f"{a:.2f}", f"{b:.2f}") for n, a, b in latency_rows],
    )
    print_table(
        "Fingerprinting top-1 under each cost model (6 models)",
        ("cost model", "top-1"),
        [(k, f"{v:.3f}") for k, v in scores.items()],
    )

    # Latencies agree within a small factor for conv-dominated nets.
    for name, fixed, compiled in latency_rows:
        assert compiled / fixed < 8.0, name
        assert fixed / compiled < 8.0, name
    # The attack conclusion is cost-model independent.
    assert scores["fixed"] > 0.85
    assert scores["compiled"] > 0.85
