"""Bench smoke: the live monitor must keep up with the sampler.

Runs :func:`repro.perf.bench.run_stream_bench` once at reduced scale
and holds three lines:

* **parity** — the streamed feature rows must be bit-identical to the
  batch windowing of the reassembled stream (the refactor's contract);
* **memory** — the extractor's buffer high-water mark must respect its
  O(window + chunk) bound, independent of stream length;
* **latency** — the p95 per-chunk analysis cost must stay a small
  fraction of the chunk's simulated duration.  The budget is set an
  order of magnitude above typical 1-CPU container numbers; it exists
  to catch catastrophic regressions (e.g. a per-window re-sort or an
  unbounded buffer), not to enforce exact timings.

Run alone with ``pytest benchmarks -m bench_smoke``.
"""

import pytest

from repro.perf.bench import run_stream_bench

pytestmark = pytest.mark.bench_smoke

#: Simulated seconds of stream per chunk at the smoke scale.
CHUNK_SECONDS = 0.5
#: p95 per-chunk wall cost as a fraction of the chunk's simulated
#: duration.  Typical is ~0.01 on one CPU; 0.5 still proves the
#: monitor keeps up with the sampler with headroom.
LATENCY_BUDGET_FRACTION = 0.5


@pytest.fixture(scope="module")
def report():
    return run_stream_bench(
        n_models=3,
        traces_per_model=3,
        n_folds=2,
        forest_trees=10,
        duration=1.0,
        monitor_duration=10.0,
        window_seconds=2.0,
        hop_seconds=0.5,
        chunk_seconds=CHUNK_SECONDS,
        seed=0,
    )


def test_report_shape(report):
    assert report["benchmark"] == "fingerprint-stream"
    assert report["counts"]["chunks"] > 0
    assert report["counts"]["verdicts"] > 0


def test_streamed_features_are_bit_identical(report):
    parity = report["parity"]
    assert parity["identical"], (
        f"streamed features drifted from the batch windowing "
        f"(max abs diff {parity['max_abs_diff']})"
    )
    assert parity["max_abs_diff"] == 0.0


def test_memory_stays_o_window(report):
    memory = report["memory"]
    assert memory["bounded"], (
        f"peak resident {memory['peak_resident_samples']} samples "
        f"exceeds the O(window + chunk) bound "
        f"{memory['bound_samples']}"
    )


def test_per_chunk_latency_within_budget(report):
    latency = report["per_chunk_latency"]
    assert latency["p95_fraction_of_chunk"] <= LATENCY_BUDGET_FRACTION, (
        f"p95 per-chunk cost is {latency['p95_ms']:.2f} ms — "
        f"{latency['p95_fraction_of_chunk']:.3f} of the "
        f"{CHUNK_SECONDS}s chunk budget; the monitor would fall "
        "behind the sampler"
    )


def test_verdict_lag_is_bounded_by_the_chunk(report):
    # A verdict can never be staler than the chunk that emitted it:
    # lag is simulated time between a window's last sample and the
    # end of its emitting chunk.
    lag = report["verdict_lag"]
    assert lag["max_seconds"] <= CHUNK_SECONDS + 1e-9
