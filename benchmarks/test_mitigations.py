"""Extension bench: how well do candidate mitigations actually work?

The paper's discussion proposes restricting sensor access to root.
This bench compares that against the softer driver-level alternatives
(coarsening, dithering, rate limiting) on the RSA Hamming-weight
attack, reporting how many of the 17 key groups survive each defense.

Headline findings:
* root-only access removes the attack surface entirely;
* coarsening to >= 16 mA collapses most key groups;
* dithering alone FAILS — the attacker's averaging removes it;
* rate limiting does not reduce separability, only harvest speed.
"""

import numpy as np
from conftest import print_table

from repro.core.countermeasures import (
    ROOT_ONLY,
    coarsened,
    dithered,
    rate_limited,
)
from repro.core.rsa_attack import RsaHammingWeightAttack
from repro.sensors.hwmon import HwmonPermissionError
from repro.soc import Soc

WEIGHTS = tuple(range(64, 1025, 64))  # 16 keys


def run_mitigation_matrix():
    policies = [
        ("none", None),
        ("coarsen 8 mA", coarsened(8)),
        ("coarsen 32 mA", coarsened(32)),
        ("dither 60 mA", dithered(60.0, seed=4)),
        ("rate limit 0.5 s", rate_limited(0.5)),
    ]
    rows = []
    for name, policy in policies:
        soc = Soc("ZCU102", seed=0, hardening=policy)
        attack = RsaHammingWeightAttack(soc=soc, seed=0)
        sweep = attack.sweep(weights=WEIGHTS, n_samples=6000)
        min_gap = 1.0
        if policy is not None and policy.quantize_lsb:
            min_gap = policy.quantize_lsb
        rows.append((name, sweep.distinguishable_groups(min_gap=min_gap)))
    return rows


def test_mitigation_matrix(benchmark):
    rows = benchmark.pedantic(run_mitigation_matrix, rounds=1, iterations=1)
    print_table(
        "Mitigations vs RSA Hamming-weight attack (16 keys)",
        ("policy", "distinguishable groups"),
        rows,
    )
    groups = dict(rows)
    assert groups["none"] == 16
    # Coarsening is the effective driver-level defense.
    assert groups["coarsen 32 mA"] <= 6
    assert groups["coarsen 8 mA"] <= groups["none"]
    # Dither is defeated by attacker-side averaging.
    assert groups["dither 60 mA"] >= 12
    # Rate limiting alone leaves separability intact.
    assert groups["rate limit 0.5 s"] >= 14


def test_mitigation_root_only(benchmark):
    def blocked_reads():
        soc = Soc("ZCU102", seed=0, hardening=ROOT_ONLY)
        blocked = 0
        for domain, _ in soc.sensitive_channels():
            try:
                soc.sample(domain, "current", np.array([1.0]))
            except HwmonPermissionError:
                blocked += 1
        # Privileged monitoring still works (the mitigation's cost is
        # on *unprivileged* benign tools only).
        admin = soc.sample(
            "fpga", "current", np.array([1.0]), privileged=True
        )
        return blocked, admin[0]

    blocked, admin_value = benchmark(blocked_reads)
    assert blocked == 4
    assert admin_value > 0
    print("\nroot-only policy: all 4 sensitive channels deny the attacker; "
          "privileged monitoring unaffected.")
