"""Extension bench: where do fingerprinting mistakes go?

Table III reports aggregate accuracy; this bench asks *which* models
get confused.  Measured behaviour: mistakes concentrate inside
architecture families (a MobileNet width variant gets mistaken for its
siblings) and, where they cross families, they cross to architecturally
*adjacent* ones — ResNet vs DenseNet, the two residual-conv designs
with near-identical trace shapes.  For an IP thief, family identity is
usually the valuable secret, and it is recovered more reliably than
the exact variant.
"""

import numpy as np
from conftest import print_table

from repro.core.fingerprint import DnnFingerprinter, FingerprintConfig
from repro.dpu.models import build_model, list_models
from repro.ml.forest import RandomForestClassifier
from repro.ml.validation import stratified_kfold_indices


def run_confusion():
    config = FingerprintConfig(
        duration=5.0, traces_per_model=12, n_folds=4, forest_trees=30
    )
    fingerprinter = DnnFingerprinter(config=config, seed=0)
    datasets = fingerprinter.collect_datasets(
        channels=[("fpga", "current")]
    )
    X, y = datasets[("fpga", "current")].to_matrix(config.n_features)
    family_of = {name: build_model(name).family for name in list_models()}

    folds = stratified_kfold_indices(y, 4, seed=0)
    exact_hits = 0
    family_hits = 0
    total = 0
    cross_family_pairs = {}
    for fold in folds:
        mask = np.zeros(y.size, dtype=bool)
        mask[fold] = True
        forest = RandomForestClassifier(
            n_estimators=30, max_depth=32, seed=1
        )
        forest.fit(X[~mask], y[~mask])
        predictions = forest.predict(X[mask])
        for true, predicted in zip(y[mask], predictions):
            total += 1
            if true == predicted:
                exact_hits += 1
            if family_of[true] == family_of[predicted]:
                family_hits += 1
            else:
                key = (family_of[true], family_of[predicted])
                cross_family_pairs[key] = cross_family_pairs.get(key, 0) + 1
    return (
        exact_hits / total,
        family_hits / total,
        cross_family_pairs,
        total,
    )


def test_family_confusion(benchmark):
    exact, family, cross_pairs, total = benchmark.pedantic(
        run_confusion, rounds=1, iterations=1
    )

    print_table(
        "Exact-variant vs family-level identification (39 models)",
        ("granularity", "accuracy"),
        [
            ("exact variant", f"{exact:.3f}"),
            ("architecture family", f"{family:.3f}"),
        ],
    )
    if cross_pairs:
        worst = sorted(
            cross_pairs.items(), key=lambda item: -item[1]
        )[:5]
        print_table(
            "Cross-family confusions (rare by construction)",
            ("true -> predicted family", "count"),
            [(f"{a} -> {b}", count) for (a, b), count in worst],
        )

    # Family identity is recovered more reliably than the variant...
    assert family > 0.88
    assert family >= exact
    # ...and cross-family mistakes stay a minority of all mistakes.
    cross_total = sum(cross_pairs.values())
    assert cross_total <= (1 - exact) * total * 0.8 + 1
