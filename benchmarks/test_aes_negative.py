"""Extension bench: the channel's bandwidth limit — AES stays safe.

A deliberate negative result that delimits AmpereBleed.  The RSA
attack works because the key modulates the victim's *long-run average*
power.  A pipelined AES-128 at 10^6 blocks/s does not: its
key-dependent switching averages to microwatts of mean-power spread,
orders of magnitude under the 1 mA (0.85 mW) current LSB.  TVLA
between two extreme keys through hwmon must therefore FAIL — and the
RSA pipeline run against AES must find nothing.
"""

import numpy as np
from conftest import print_table

from repro.analysis.leakage import TVLA_THRESHOLD, welch_t_test
from repro.core.sampler import HwmonSampler
from repro.fpga.aes import AesCircuit
from repro.soc import Soc


def run_aes_tvla():
    soc = Soc("ZCU102", seed=0)
    sampler = HwmonSampler(soc, seed=0)
    keys = {
        "all-zero": bytes(16),
        "all-ones": bytes([0xFF] * 16),
        "random": bytes(range(16)),
    }
    populations = {}
    power_means = {}
    clock = 1.0
    for name, key in keys.items():
        circuit = AesCircuit(key)
        soc.replace_workload("fpga", "aes", circuit.timeline(seed=1))
        trace = sampler.collect(
            "fpga", "current", start=clock, n_samples=4000, poll_hz=28.4
        )
        soc.detach_workload("fpga", "aes")
        clock += 4000 / 28.4 + 1.0
        populations[name] = trace.values.astype(np.float64)
        power_means[name] = circuit.mean_power(seed=1)
    return populations, power_means


def test_aes_does_not_leak_through_hwmon(benchmark):
    populations, power_means = benchmark.pedantic(
        run_aes_tvla, rounds=1, iterations=1
    )

    names = list(populations)
    rows = []
    statistics = []
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            result = welch_t_test(populations[names[i]],
                                  populations[names[j]])
            statistics.append(abs(result.statistic))
            rows.append(
                (
                    f"{names[i]} vs {names[j]}",
                    f"{abs(result.statistic):.2f}",
                    "LEAKS" if result.leaks else "no leak",
                )
            )
    print_table(
        "TVLA between AES-128 keys through curr1_input "
        f"(threshold {TVLA_THRESHOLD})",
        ("key pair", "|t|", "verdict"),
        rows,
    )
    spreads = [
        abs(power_means[a] - power_means[b]) * 1e6
        for a in names for b in names if a < b
    ]
    print(f"\ntrue mean-power spreads between keys: "
          f"{max(spreads):.1f} uW (current LSB = 850 uW)")

    # The negative result: no key pair crosses the TVLA threshold.
    assert all(t < TVLA_THRESHOLD for t in statistics)
    # And the physical reason: spreads sit far below one LSB.
    assert max(spreads) < 850.0
    # Contrast sanity check: the engine itself is plainly visible
    # (this is a bandwidth limit, not an amplitude one).
    assert populations["all-zero"].mean() > 700  # mA, engine running
