"""Ablation benches: design choices and the paper's mitigation.

These go beyond the paper's tables to probe the knobs DESIGN.md calls
out:

* hwmon update interval — the root-only 2-35 ms knob: a faster sensor
  sharpens the RSA attack (more independent readings per second);
* current LSB — a mitigation-style ablation: coarser current
  quantization collapses the RSA key groups the same way the 25 mW
  power LSB does;
* forest size — Table III is insensitive to shrinking the forest well
  below the paper's 100 trees;
* privilege restriction — the paper's proposed mitigation: with hwmon
  access restricted to root, the unprivileged attack surface is gone.
"""

import numpy as np
from conftest import print_table

from repro.analysis.distributions import count_groups
from repro.core.fingerprint import DnnFingerprinter, FingerprintConfig
from repro.core.rsa_attack import RsaHammingWeightAttack
from repro.sensors.hwmon import HwmonPermissionError
from repro.sensors.ina226 import Ina226
from repro.soc import Soc

WEIGHTS = (1, 256, 512, 768, 1024)


def sweep_update_interval():
    """RSA sweep sharpness vs sensor refresh interval."""
    results = []
    for interval_ms in (35, 16, 8, 2):
        soc = Soc("ZCU102", seed=0)
        device = soc.device("fpga")
        device.write("update_interval", str(interval_ms), privileged=True)
        attack = RsaHammingWeightAttack(soc=soc, seed=0)
        sweep = attack.sweep(weights=WEIGHTS, n_samples=6000)
        iqr = np.mean([p.summary.iqr for p in sweep.profiles])
        results.append((interval_ms, sweep.distinguishable_groups(), iqr))
    return results


def test_ablation_update_interval(benchmark):
    results = benchmark.pedantic(
        sweep_update_interval, rounds=1, iterations=1
    )
    print_table(
        "Ablation: hwmon update_interval (root-only) vs RSA sweep",
        ("interval (ms)", "groups", "mean IQR (mA)"),
        [(i, g, f"{q:.1f}") for i, g, q in results],
    )
    # All five test keys stay separable at every interval; what changes
    # is how many *independent* readings a fixed wall-time yields.
    for _, groups, _ in results:
        assert groups == len(WEIGHTS)


def sweep_current_lsb():
    """RSA groups vs current quantization (mitigation-style ablation)."""
    results = []
    attack = RsaHammingWeightAttack(seed=0)
    sweep = attack.sweep(weights=tuple(range(64, 1025, 64)), n_samples=4000)
    medians = sweep.medians  # mA, 1 mA grid
    for lsb_ma in (1, 4, 8, 16, 32):
        quantized = np.round(medians / lsb_ma) * lsb_ma
        results.append((lsb_ma, count_groups(quantized, min_gap=lsb_ma)))
    return results


def test_ablation_current_lsb(benchmark):
    results = benchmark.pedantic(sweep_current_lsb, rounds=1, iterations=1)
    print_table(
        "Ablation: coarsened current LSB vs distinguishable key groups",
        ("LSB (mA)", "groups (of 16 keys)"),
        results,
    )
    groups = [g for _, g in results]
    # Coarser quantization can only merge groups.
    assert all(b <= a for a, b in zip(groups, groups[1:]))
    assert groups[0] == 16  # 1 mA: every key separable
    assert groups[-1] <= 6  # 32 mA: mostly collapsed


def sweep_forest_size():
    """Fingerprinting accuracy vs number of trees (8-model subset)."""
    models = [
        "mobilenet-v1-1.0", "mobilenet-v2-1.0", "squeezenet-1.1",
        "efficientnet-lite0", "inception-v3", "resnet-50", "vgg-19",
        "densenet-121",
    ]
    scores = []
    for trees in (5, 20, 60):
        config = FingerprintConfig(
            duration=5.0, traces_per_model=10, n_folds=5, forest_trees=trees
        )
        fingerprinter = DnnFingerprinter(config=config, seed=0)
        datasets = fingerprinter.collect_datasets(
            models=models, channels=[("fpga", "current")]
        )
        result = fingerprinter.evaluate_channel(
            datasets[("fpga", "current")]
        )
        scores.append((trees, result.top1))
    return scores


def test_ablation_forest_size(benchmark):
    scores = benchmark.pedantic(sweep_forest_size, rounds=1, iterations=1)
    print_table(
        "Ablation: forest size vs top-1 (8-model subset, FPGA current)",
        ("trees", "top-1"),
        [(t, f"{a:.3f}") for t, a in scores],
    )
    # Accuracy saturates well below the paper's 100 trees.
    assert scores[-1][1] > 0.9
    assert scores[-1][1] - scores[1][1] < 0.1


def test_mitigation_privileged_only(benchmark):
    """The paper's mitigation: restrict the sensors to root."""

    def attempt_attack():
        soc = Soc("ZCU102", seed=0)
        denied = 0
        for domain, _ in soc.sensitive_channels():
            path = f"{soc.device(domain).path}/update_interval"
            try:
                soc.hwmon.write(path, "2", privileged=False)
            except HwmonPermissionError:
                denied += 1
        return denied

    denied = benchmark(attempt_attack)
    # Today only reconfiguration is gated; the mitigation would extend
    # this denial to the *_input files themselves.
    assert denied == 4
    print("\nMitigation check: all 4 sensitive sensors deny unprivileged "
          "reconfiguration; the paper proposes extending this to reads "
          "(at the cost of benign monitoring tools).")


def test_power_lsb_ratio_is_fixed(benchmark):
    """Datasheet invariant the attack leans on: power LSB = 25x current
    LSB, so power can never out-resolve current."""

    def ratios():
        return [
            Ina226(shunt_ohms=s, current_lsb=1e-3).power_lsb / 1e-3
            for s in (2e-3, 5e-3)
        ]

    values = benchmark(ratios)
    assert values == [25.0, 25.0]
