"""Extension bench: classifying workload *types* through hwmon.

Related work classifies computations on multi-tenant FPGAs with
crafted sensors (Gobulukoglu et al., DAC'21); AmpereBleed does it
circuit-free.  Four workload classes (burst accelerator, streaming
pipeline, DDR-bound mover, blocked crypto engine), randomized per
instance, recorded on the FPGA + DDR current channels and classified
with the paper's random forest.
"""

import numpy as np
from conftest import print_table

from repro.core.features import resample_values
from repro.core.sampler import HwmonSampler
from repro.fpga.workloads import WORKLOAD_CLASSES, generate_dataset
from repro.ml.forest import RandomForestClassifier
from repro.ml.metrics import accuracy, confusion_matrix
from repro.ml.validation import stratified_kfold_indices
from repro.soc import Soc

INSTANCES_PER_CLASS = 24
TRACE_SECONDS = 4.0
N_FEATURES = 110


def collect_and_classify():
    soc = Soc("ZCU102", seed=0)
    sampler = HwmonSampler(soc, seed=0)
    victims = generate_dataset(INSTANCES_PER_CLASS, seed=0)

    rows = []
    labels = []
    clock = 1.0
    for victim in victims:
        victim.attach(soc)
        fpga = sampler.collect(
            "fpga", "current", start=clock, duration=TRACE_SECONDS
        )
        ddr = sampler.collect(
            "ddr", "current", start=clock, duration=TRACE_SECONDS
        )
        victim.detach(soc)
        clock += TRACE_SECONDS + 0.5
        features = np.concatenate(
            [
                resample_values(fpga.values, N_FEATURES),
                resample_values(ddr.values, N_FEATURES),
            ]
        )
        rows.append(features)
        labels.append(victim.kind)

    X = np.vstack(rows)
    y = np.asarray(labels)
    folds = stratified_kfold_indices(y, 4, seed=0)
    all_true, all_pred = [], []
    scores = []
    for fold in folds:
        mask = np.zeros(y.size, dtype=bool)
        mask[fold] = True
        forest = RandomForestClassifier(n_estimators=40, seed=1)
        forest.fit(X[~mask], y[~mask])
        predictions = forest.predict(X[mask])
        scores.append(accuracy(y[mask], predictions))
        all_true.extend(y[mask])
        all_pred.extend(predictions)
    matrix = confusion_matrix(
        np.asarray(all_true), np.asarray(all_pred),
        labels=np.asarray(WORKLOAD_CLASSES),
    )
    return float(np.mean(scores)), matrix


def test_workload_classification(benchmark):
    top1, matrix = benchmark.pedantic(
        collect_and_classify, rounds=1, iterations=1
    )

    rows = [
        (true_kind,) + tuple(matrix[i])
        for i, true_kind in enumerate(WORKLOAD_CLASSES)
    ]
    print_table(
        f"Workload-type classification (top-1 = {top1:.3f}, chance = 0.25)",
        ("true \\ predicted",) + WORKLOAD_CLASSES,
        rows,
    )

    # Circuit-free workload classification works well above chance.
    assert top1 > 0.85
    # Every class is recognized at least half the time.
    per_class = matrix.diagonal() / matrix.sum(axis=1)
    assert np.all(per_class > 0.5)
