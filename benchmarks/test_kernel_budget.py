"""Bench smoke: per-kernel budgets for the vectorized hot path.

Runs :func:`repro.perf.kernels.run_kernel_bench` once and holds two
lines:

* every kernel must be *bit-identical* to its frozen legacy twin —
  a fast-but-different kernel is a correctness bug;
* every kernel must stay inside a generous absolute wall-time budget
  (an order of magnitude above typical, so scheduler noise never trips
  it) — catching only catastrophic regressions such as an accidental
  fallback onto the per-node argsort path.

Run alone with ``pytest benchmarks -m bench_smoke``.
"""

import pytest

from repro.perf.kernels import KERNEL_BENCHES, run_kernel_bench

pytestmark = pytest.mark.bench_smoke

#: Ceilings in seconds for the vectorized side, ~10x typical 1-CPU
#: container numbers; the point is catching order-of-magnitude
#: regressions, not enforcing exact timings.
KERNEL_BUDGETS = {
    "tree_fit": 0.5,
    "forest_fit": 5.0,
    "forest_predict": 0.25,
    "resample": 0.25,
    "summary": 0.25,
    "kfold": 0.25,
    "archive_load": 1.0,
}


@pytest.fixture(scope="module")
def report():
    return run_kernel_bench(seed=0, repeats=3)


def test_report_covers_every_kernel(report):
    assert set(report) == set(KERNEL_BENCHES)
    assert set(report) == set(KERNEL_BUDGETS)


def test_every_kernel_is_bit_identical(report):
    for kernel, entry in report.items():
        assert entry["identical"], (
            f"{kernel} drifted from the legacy implementation "
            f"(max abs diff {entry['max_abs_diff']})"
        )
        assert entry["max_abs_diff"] == 0.0


def test_every_kernel_within_budget(report):
    for kernel, entry in report.items():
        budget = KERNEL_BUDGETS[kernel]
        assert entry["vectorized_seconds"] <= budget, (
            f"{kernel} took {entry['vectorized_seconds']:.3f}s, "
            f"budget {budget}s"
        )


def test_hot_kernels_actually_beat_legacy(report):
    # The tentpole claim: the tree/forest fit path is where evaluate
    # spends its time, and the rework must win there outright.
    for kernel in ("tree_fit", "forest_fit"):
        assert report[kernel]["speedup"] > 1.5, (
            f"{kernel} speedup {report[kernel]['speedup']:.2f}x — "
            "the vectorized path regressed to legacy territory"
        )
