"""Extension bench: covert-channel capacity across the FPGA/CPU boundary.

Sweeps the OOK signaling rate against the 35 ms sensor update interval
and reports BER/goodput — quantifying the communication corollary of
AmpereBleed.  The capacity wall should sit right at the update
interval: bit periods comfortably above it are error-free, bit periods
at or below it collapse.
"""

from conftest import print_table

from repro.core.covert_channel import CovertChannel

BIT_PERIODS = (0.40, 0.20, 0.12, 0.08, 0.05, 0.035)


def run_capacity_sweep():
    channel = CovertChannel(seed=0)
    return channel.capacity_sweep(BIT_PERIODS, n_bits=96, seed=1)


def test_covert_channel_capacity(benchmark):
    reports = benchmark.pedantic(run_capacity_sweep, rounds=1, iterations=1)

    rows = [
        (
            f"{report.bit_period * 1e3:.0f} ms",
            f"{report.raw_throughput_bps:.1f}",
            f"{report.bit_error_rate:.3f}",
            f"{report.effective_throughput_bps:.1f}",
        )
        for report in reports
    ]
    print_table(
        "Covert channel: OOK over the FPGA current sensor (35 ms refresh)",
        ("bit period", "raw bps", "BER", "goodput bps"),
        rows,
    )

    by_period = {r.bit_period: r for r in reports}
    # Slow signaling is error-free.
    assert by_period[0.40].bit_error_rate == 0.0
    assert by_period[0.20].bit_error_rate == 0.0
    # At/below the sensor update interval the channel collapses.
    assert by_period[0.035].bit_error_rate > 0.15
    # BER is (weakly) monotone in rate across the sweep extremes.
    assert by_period[0.035].bit_error_rate >= by_period[0.40].bit_error_rate
    # Error-free goodput of several bits/second exists.
    best = max(r.effective_throughput_bps for r in reports
               if r.bit_error_rate == 0.0)
    assert best >= 5.0
