"""Extension bench: AmpereBleed vs per-tenant PDN isolation (ISO-TENANT).

The defense the paper's intro cites: give each tenant its own point-of-
load regulator so co-resident crafted sensors stop seeing the victim.
This bench builds that topology and measures both observers against
the same victim sweep:

* an RO bank *inside the other tenant* (the prior-work attacker) —
  its voltage no longer carries the victim at all;
* the board-level INA226 *upstream* of the tenant regulators (the
  AmpereBleed attacker) — regulators conserve power, so the upstream
  current still tracks the victim nearly perfectly.
"""

import numpy as np
from conftest import print_table

from repro.analysis.stats import pearson
from repro.fpga.multi_tenant import IsolatedTenantPdn
from repro.fpga.power_virus import PowerVirusArray
from repro.fpga.ring_osc import RoSensorBank
from repro.soc import Soc

LEVELS = np.arange(0, 161, 10)


def run_iso_tenant():
    soc = Soc("ZCU102", seed=0)
    pdn = IsolatedTenantPdn(n_tenants=2)
    pdn.install(soc)

    victim = PowerVirusArray(seed=0)
    ro = RoSensorBank()
    device = soc.device("fpga")
    period = device.update_period
    rng = np.random.default_rng(1)

    current_means = []
    ro_means = []
    samples = 400
    for position, level in enumerate(LEVELS):
        start = 1.0 + position * (samples + 8) * period
        victim.set_active_groups(int(level))
        # Victim lives in tenant 0; the crafted sensor in tenant 1.
        pdn.tenant(0).replace("virus", victim.timeline())

        times = start + np.arange(samples) * period
        current_means.append(
            soc.sample("fpga", "current", times).mean()
        )
        ro_windows = start + np.arange(samples) * ro.sample_window
        tenant_voltage = pdn.tenant_voltage(
            1, ro_windows, ro_windows + ro.sample_window
        )
        ro_means.append(ro.counts(tenant_voltage, rng=rng).mean())

    pdn.uninstall(soc)
    return np.asarray(current_means), np.asarray(ro_means)


def test_iso_tenant_defeats_ro_not_amperebleed(benchmark):
    current_means, ro_means = benchmark.pedantic(
        run_iso_tenant, rounds=1, iterations=1
    )

    r_current = pearson(LEVELS, current_means)
    r_ro = pearson(LEVELS, ro_means)
    print_table(
        "ISO-TENANT PDN isolation: who still sees the victim?",
        ("observer", "pearson r", "verdict"),
        [
            ("upstream INA226 current", f"{r_current:+.4f}",
             "still leaks"),
            ("RO in the other tenant", f"{r_ro:+.4f}", "blinded"),
        ],
    )
    print(
        f"\ncurrent span {current_means[0]:.0f} -> "
        f"{current_means[-1]:.0f} mA; RO span "
        f"{np.ptp(ro_means):.3f} counts"
    )

    # AmpereBleed survives the isolation defense...
    assert r_current > 0.995
    assert current_means[-1] - current_means[0] > 4000  # mA
    # ...while the co-resident crafted sensor is dead: its readings no
    # longer correlate with the victim (isolated sub-rail voltage).
    assert abs(r_ro) < 0.5
    assert np.ptp(ro_means) < 0.5  # counts
