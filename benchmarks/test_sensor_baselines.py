"""Extension bench: AmpereBleed vs the whole crafted-sensor family.

Fig 2 compares against ring oscillators; the related work also fields
delay-line (TDC/RDS-style) sensors.  This bench puts both crafted
baselines and the hwmon current channel through the same stabilized-
rail droop excursion and reports each observer's relative variation —
the generalization of the paper's 261x headline.
"""

import numpy as np
from conftest import print_table

from repro.analysis.stats import relative_variation
from repro.core.characterize import characterize
from repro.fpga.ring_osc import RoSensorBank
from repro.fpga.tdc import TdcSensor
from repro.soc import Soc


def run_comparison():
    # The hwmon current channel over the full sweep.
    result = characterize(samples_per_level=500, seed=0)
    current_var = relative_variation(result.current.means)

    # Both crafted sensors over the same rail-voltage excursion.
    soc = Soc("ZCU102", seed=0)
    rail = soc.rail("fpga")
    level_currents = result.current.means / 1e3  # amps
    droops = np.array(
        [rail.regulator.droop_at(i) for i in level_currents]
    )
    voltages = rail.regulator.v_set - droops

    # Crafted sensors resolve sub-quantum swings by averaging many
    # jittered samples per level — the standard attack methodology.
    samples_per_level = 2000
    ro = RoSensorBank()
    rng = np.random.default_rng(1)
    ro_means = np.array(
        [
            ro.counts(np.full(samples_per_level, v), rng=rng).mean()
            for v in voltages
        ]
    )
    tdc = TdcSensor()
    tdc_means = np.array(
        [
            tdc.counts(np.full(samples_per_level, v), rng=rng).mean()
            for v in voltages
        ]
    )
    return {
        "hwmon current": current_var,
        "ring oscillator": relative_variation(ro_means),
        "TDC delay line": relative_variation(tdc_means),
    }


def test_crafted_sensor_comparison(benchmark):
    variations = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    current = variations["hwmon current"]
    rows = [
        (name, f"{value:.5f}", f"{current / value:.0f}x")
        for name, value in variations.items()
    ]
    print_table(
        "Observer sensitivity over the 161-level sweep "
        "(relative variation; ratio vs hwmon current)",
        ("observer", "rel. variation", "current advantage"),
        rows,
    )

    # The current channel dominates every crafted voltage sensor by
    # two orders of magnitude on a stabilized rail.
    for name in ("ring oscillator", "TDC delay line"):
        advantage = current / variations[name]
        assert advantage > 100, name
    # Both crafted sensors land in the same (blind) regime.
    ratio = variations["ring oscillator"] / variations["TDC delay line"]
    assert 0.2 < ratio < 5.0
