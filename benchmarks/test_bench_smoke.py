"""Bench smoke: the fingerprint bench at tiny scale.

Fast enough for CI (seconds, not minutes): asserts that
``BENCH_fingerprint.json`` is emitted and well-formed, and that the
parallel run reproduces the serial run's accuracy numbers exactly.
Run it alone with ``pytest benchmarks -m bench_smoke``.
"""

import json

import pytest

from repro.perf.bench import (
    SCHEMA_VERSION,
    run_fingerprint_bench,
    write_bench_json,
)

pytestmark = pytest.mark.bench_smoke


@pytest.fixture(scope="module")
def report():
    return run_fingerprint_bench(
        workers=2,
        n_models=3,
        durations=(1.0, 2.0),
        traces_per_model=6,
        n_folds=3,
        forest_trees=6,
        seed=0,
    )


def test_bench_json_emitted_and_well_formed(report, tmp_path):
    path = write_bench_json(report, str(tmp_path / "BENCH_fingerprint.json"))
    with open(path) as handle:
        loaded = json.load(handle)
    assert loaded == report
    assert loaded["benchmark"] == "fingerprint"
    assert loaded["schema_version"] == SCHEMA_VERSION
    assert loaded["workers"] == 2
    assert loaded["cpu_count"] >= 1
    for stage in ("collect", "train", "evaluate"):
        entry = loaded["stages"][stage]
        assert entry["serial"] >= 0.0
        assert entry["parallel"] >= 0.0
        assert "speedup" in entry
    assert loaded["total"]["serial"] > 0.0
    assert loaded["total"]["parallel"] > 0.0


def test_serial_parallel_accuracy_parity(report):
    parity = report["parity"]
    assert parity["identical"], (
        f"parallel accuracies drifted from serial by "
        f"{parity['max_abs_diff']}"
    )
    assert parity["max_abs_diff"] == 0.0


def test_accuracy_grid_covers_all_cells(report):
    # 6 Table III channels x 2 durations.
    assert len(report["accuracy"]) == 12
    for cell, scores in report["accuracy"].items():
        assert 0.0 <= scores["top1"] <= scores["top5"] <= 1.0
    # The strongest channel separates even 3 models at tiny scale.
    assert report["accuracy"]["fpga/current/2"]["top1"] > 0.5
