"""Extension bench: attack generality across the Table I boards.

The paper's future work asks whether other FPGA SoCs are vulnerable.
Within our substrate the answer is structural: every cataloged board
ships INA226s behind hwmon, so the same unprivileged pipeline runs on
all of them — including the Versal parts with their different (0.775-
0.825 V) regulation band.  This bench mounts a small RSA sweep on each
board and confirms the leak.
"""

from conftest import print_table

from repro.boards import list_boards
from repro.core.rsa_attack import RsaHammingWeightAttack
from repro.soc import Soc

WEIGHTS = (1, 256, 512, 768, 1024)


def run_cross_board():
    rows = []
    for board in list_boards():
        soc = Soc(board.name, seed=0)
        attack = RsaHammingWeightAttack(soc=soc, seed=0)
        sweep = attack.sweep(weights=WEIGHTS, n_samples=3000)
        calibration = sweep.calibration()
        rows.append(
            (
                board.name,
                board.fpga_family,
                len(soc.hwmon.devices()),
                sweep.distinguishable_groups(),
                f"{calibration.r:.4f}",
            )
        )
    return rows


def test_cross_board_generality(benchmark):
    rows = benchmark.pedantic(run_cross_board, rounds=1, iterations=1)
    print_table(
        "Cross-board RSA Hamming-weight attack (5 test keys)",
        ("board", "family", "hwmon devices", "groups", "calibration r"),
        rows,
    )
    for name, family, devices, groups, r in rows:
        # The attack pipeline works unmodified on every board.
        assert groups == len(WEIGHTS), name
        assert float(r) > 0.999, name
        assert devices >= 14, name
    families = {row[1] for row in rows}
    assert families == {"Zynq UltraScale+", "Versal"}
