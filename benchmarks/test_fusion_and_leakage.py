"""Extension bench: channel fusion and TVLA leakage profiling.

Two analyses beyond the paper's tables:

* **Fusion** — concatenate all four current channels into one feature
  vector; the fused classifier should match or beat the best single
  channel (the attacker can poll every file at once).
* **TVLA profile** — Welch t-statistics between adjacent RSA keys on
  the current vs power channels; the standard leakage-assessment view
  of Fig 4 (|t| > 4.5 = detectable leak).
"""

import numpy as np
from conftest import print_table

from repro.analysis.leakage import TVLA_THRESHOLD, pairwise_tvla, snr
from repro.core.fingerprint import DnnFingerprinter, FingerprintConfig
from repro.core.rsa_attack import RsaHammingWeightAttack

MODELS = [
    "mobilenet-v1-1.0", "mobilenet-v2-1.0", "squeezenet-1.1",
    "efficientnet-lite0", "inception-v3", "resnet-50", "vgg-19",
    "densenet-121", "resnet-18", "vgg-16",
]
CURRENT_CHANNELS = [
    ("fpga", "current"), ("ddr", "current"),
    ("fpd", "current"), ("lpd", "current"),
]


def run_fusion():
    config = FingerprintConfig(
        duration=5.0, traces_per_model=12, n_folds=4, forest_trees=30
    )
    fingerprinter = DnnFingerprinter(config=config, seed=0)
    datasets = fingerprinter.collect_datasets(
        models=MODELS, channels=CURRENT_CHANNELS
    )
    singles = {
        channel: fingerprinter.evaluate_channel(datasets[channel]).top1
        for channel in CURRENT_CHANNELS
    }
    fused = fingerprinter.evaluate_fused(datasets).top1
    return singles, fused


def test_channel_fusion(benchmark):
    singles, fused = benchmark.pedantic(run_fusion, rounds=1, iterations=1)

    rows = [
        (f"{domain}/{quantity}", f"{top1:.3f}")
        for (domain, quantity), top1 in singles.items()
    ]
    rows.append(("fused (4 currents)", f"{fused:.3f}"))
    print_table(
        "Fusion: single channels vs concatenated currents "
        f"(10 models, chance = 0.1)",
        ("channel", "top-1"),
        rows,
    )
    best_single = max(singles.values())
    assert fused >= best_single - 0.05
    assert fused > 0.85


def run_tvla():
    attack = RsaHammingWeightAttack(seed=0)
    weights = (64, 128, 192, 256, 320, 384)
    current = attack.sweep(weights=weights, n_samples=4000)
    power = attack.sweep(weights=weights, quantity="power", n_samples=4000)
    current_groups = [p.values for p in current.profiles]
    power_groups = [p.values for p in power.profiles]
    return (
        weights,
        pairwise_tvla(current_groups),
        pairwise_tvla(power_groups),
        snr(current_groups),
        snr(power_groups),
    )


def test_tvla_leakage_profile(benchmark):
    weights, t_current, t_power, snr_current, snr_power = (
        benchmark.pedantic(run_tvla, rounds=1, iterations=1)
    )

    rows = [
        (
            f"{a} vs {b}",
            f"{tc:.1f}",
            f"{tp:.1f}",
        )
        for (a, b), tc, tp in zip(
            zip(weights, weights[1:]), t_current, t_power
        )
    ]
    print_table(
        "TVLA: Welch |t| between adjacent RSA keys (threshold 4.5)",
        ("key pair (HW)", "current |t|", "power |t|"),
        rows,
    )
    print(f"\nSNR: current {snr_current:.2f}, power {snr_power:.2f}")

    # Every adjacent pair leaks detectably on the current channel.
    assert np.all(t_current > TVLA_THRESHOLD)
    # The power channel's 25 mW LSB suppresses some adjacent pairs.
    assert np.min(t_power) < np.min(t_current)
    # Class identity dominates the current channel's variance budget.
    assert snr_current > snr_power
