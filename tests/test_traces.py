"""Tests for Trace / TraceSet and feature extraction."""

import numpy as np
import pytest

from repro.core.features import resample_values, standardize, summary_features
from repro.core.traces import Trace, TraceSet


def make_trace(n=10, label="m", domain="fpga", quantity="current", start=0.0):
    times = start + np.arange(n) * 0.0352
    values = np.arange(n) + 100
    return Trace(times=times, values=values, domain=domain,
                 quantity=quantity, label=label)


class TestTrace:
    def test_basic_properties(self):
        trace = make_trace(n=5)
        assert trace.n_samples == 5
        assert trace.duration == pytest.approx(4 * 0.0352)

    def test_validation(self):
        with pytest.raises(ValueError):
            Trace(times=np.array([0.0, 1.0]), values=np.array([1]),
                  domain="fpga", quantity="current")
        with pytest.raises(ValueError):
            Trace(times=np.array([1.0, 0.0]), values=np.array([1, 2]),
                  domain="fpga", quantity="current")
        with pytest.raises(ValueError):
            Trace(times=np.array([]), values=np.array([]),
                  domain="fpga", quantity="current")

    def test_truncated(self):
        trace = make_trace(n=100)
        short = trace.truncated(1.0)
        assert short.duration <= 1.0 + 1e-9
        assert short.n_samples < trace.n_samples
        assert short.label == trace.label

    def test_truncated_keeps_at_least_one(self):
        trace = make_trace(n=5)
        tiny = trace.truncated(1e-9)
        assert tiny.n_samples >= 1

    def test_truncated_invalid(self):
        with pytest.raises(ValueError):
            make_trace().truncated(0.0)

    def test_relabeled(self):
        trace = make_trace(label="a").relabeled("b")
        assert trace.label == "b"

    def test_repr(self):
        assert "fpga/current" in repr(make_trace())


class TestTraceSet:
    def test_add_and_len(self):
        ts = TraceSet()
        ts.add(make_trace())
        assert len(ts) == 1

    def test_add_rejects_non_trace(self):
        with pytest.raises(TypeError):
            TraceSet().add("not a trace")

    def test_labels(self):
        ts = TraceSet([make_trace(label="a"), make_trace(label="b")])
        assert ts.labels == ["a", "b"]

    def test_filter(self):
        ts = TraceSet([
            make_trace(domain="fpga", quantity="current"),
            make_trace(domain="ddr", quantity="current"),
            make_trace(domain="fpga", quantity="power"),
        ])
        assert len(ts.filter(domain="fpga")) == 2
        assert len(ts.filter(quantity="current")) == 2
        assert len(ts.filter(domain="fpga", quantity="power")) == 1

    def test_truncated(self):
        ts = TraceSet([make_trace(n=100), make_trace(n=100)])
        short = ts.truncated(1.0)
        assert all(t.duration <= 1.0 + 1e-9 for t in short)

    def test_to_matrix(self):
        ts = TraceSet([make_trace(n=50, label="a"), make_trace(n=60, label="b")])
        X, y = ts.to_matrix(32)
        assert X.shape == (2, 32)
        assert list(y) == ["a", "b"]

    def test_to_matrix_rejects_unlabeled(self):
        ts = TraceSet([make_trace(label=None)])
        with pytest.raises(ValueError, match="labeled"):
            ts.to_matrix(8)

    def test_to_matrix_empty_rejected(self):
        with pytest.raises(ValueError):
            TraceSet().to_matrix(8)

    def test_summary(self):
        ts = TraceSet([make_trace(label="a"), make_trace(label="a"),
                       make_trace(label=None)])
        assert ts.summary() == {"a": 2, "<unlabeled>": 1}


class TestFeatures:
    def test_resample_identity_length(self):
        values = np.arange(10.0)
        np.testing.assert_allclose(resample_values(values, 10), values)

    def test_resample_upsample_endpoints(self):
        out = resample_values(np.array([0.0, 1.0]), 5)
        assert out[0] == 0.0
        assert out[-1] == 1.0
        assert out.size == 5

    def test_resample_downsample(self):
        out = resample_values(np.arange(100.0), 10)
        assert out.size == 10
        assert out[0] == 0.0
        assert out[-1] == 99.0

    def test_resample_single_value(self):
        np.testing.assert_allclose(resample_values(np.array([7.0]), 4), 7.0)

    def test_resample_invalid(self):
        with pytest.raises(ValueError):
            resample_values(np.array([]), 4)

    def test_standardize(self):
        matrix = np.array([[1.0, 10.0], [3.0, 10.0]])
        out = standardize(matrix)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-12)
        # Constant column passes through as zeros.
        np.testing.assert_allclose(out[:, 1], 0.0)

    def test_standardize_needs_2d(self):
        with pytest.raises(ValueError):
            standardize(np.arange(4.0))

    def test_summary_features_shape(self):
        features = summary_features(np.arange(50.0))
        assert features.shape == (8,)

    def test_summary_features_values(self):
        features = summary_features(np.array([1.0, 2.0, 3.0]))
        assert features[0] == pytest.approx(2.0)  # mean
        assert features[7] == pytest.approx(1.0)  # mean abs step
