"""Tests for power rails."""

import numpy as np
import pytest

from repro.fpga.pdn import VoltageRegulator
from repro.soc.rails import PowerRail
from repro.soc.workload import ConstantActivity, PiecewiseActivity


class TestAttachment:
    @pytest.fixture
    def rail(self):
        return PowerRail("VCCINT", idle_power=0.5)

    def test_attach_and_names(self, rail):
        rail.attach("virus", ConstantActivity(1.0))
        assert rail.workload_names == ("virus",)

    def test_duplicate_attach_rejected(self, rail):
        rail.attach("virus", ConstantActivity(1.0))
        with pytest.raises(ValueError, match="already attached"):
            rail.attach("virus", ConstantActivity(2.0))

    def test_replace(self, rail):
        rail.attach("virus", ConstantActivity(1.0))
        rail.replace("virus", ConstantActivity(2.0))
        assert rail.mean_power(np.array([0.0]), np.array([1.0]))[0] == (
            pytest.approx(2.5)
        )

    def test_detach(self, rail):
        rail.attach("virus", ConstantActivity(1.0))
        rail.detach("virus")
        assert rail.workload_names == ()

    def test_detach_missing_raises(self, rail):
        with pytest.raises(KeyError):
            rail.detach("ghost")

    def test_clear(self, rail):
        rail.attach("a", ConstantActivity(1.0))
        rail.attach("b", ConstantActivity(1.0))
        rail.clear()
        assert rail.workload_names == ()

    def test_non_timeline_rejected(self, rail):
        with pytest.raises(TypeError):
            rail.attach("x", 3.0)


class TestPowerAggregation:
    def test_idle_only(self):
        rail = PowerRail("VCCINT", idle_power=0.7)
        np.testing.assert_allclose(
            rail.mean_power(np.array([0.0]), np.array([1.0])), [0.7]
        )

    def test_idle_plus_workloads(self):
        rail = PowerRail("VCCINT", idle_power=0.5)
        rail.attach("a", ConstantActivity(1.0))
        rail.attach("b", ConstantActivity(0.25))
        np.testing.assert_allclose(
            rail.mean_power(np.array([0.0]), np.array([1.0])), [1.75]
        )

    def test_time_varying_workload(self):
        rail = PowerRail("VCCINT", idle_power=0.0)
        rail.attach(
            "wave", PiecewiseActivity([0.0, 1.0, 2.0], [2.0, 0.0], period=2.0)
        )
        np.testing.assert_allclose(
            rail.mean_power(np.array([0.0]), np.array([2.0])), [1.0]
        )


class TestWindowState:
    def test_current_equals_power_over_voltage(self):
        regulator = VoltageRegulator(r_loadline=0.0, k_quadratic=0.0)
        rail = PowerRail("VCCINT", regulator=regulator, idle_power=0.8505)
        current, voltage = rail.window_state(np.array([0.0]), np.array([1.0]))
        assert voltage[0] == pytest.approx(0.8505)
        assert current[0] == pytest.approx(1.0)

    def test_droop_feedback_converges(self):
        regulator = VoltageRegulator(r_loadline=1e-3, k_quadratic=0.0)
        rail = PowerRail("VCCINT", regulator=regulator, idle_power=4.0)
        current, voltage = rail.window_state(np.array([0.0]), np.array([1.0]))
        # Self-consistency: V = reg(I) and I = P/V.
        assert voltage[0] == pytest.approx(
            regulator.voltage(current)[0], rel=1e-6
        )
        assert current[0] * voltage[0] == pytest.approx(4.0, rel=1e-4)

    def test_power_noise_shifts_current(self):
        rail = PowerRail("VCCINT", idle_power=1.0)
        base, _ = rail.window_state(np.array([0.0]), np.array([1.0]))
        bumped, _ = rail.window_state(
            np.array([0.0]), np.array([1.0]), power_noise=np.array([0.085])
        )
        assert bumped[0] > base[0]

    def test_negative_noise_cannot_go_below_zero_power(self):
        rail = PowerRail("VCCINT", idle_power=0.01)
        current, _ = rail.window_state(
            np.array([0.0]), np.array([1.0]), power_noise=np.array([-1.0])
        )
        assert current[0] == 0.0

    def test_ripple_moves_voltage_not_power(self):
        rail = PowerRail("VCCINT", idle_power=1.0)
        _, quiet = rail.window_state(np.array([0.0]), np.array([1.0]))
        _, rippled = rail.window_state(
            np.array([0.0]), np.array([1.0]), ripple=np.array([0.002])
        )
        assert rippled[0] == pytest.approx(quiet[0] + 0.002, abs=1e-6)

    def test_vectorized_windows(self):
        rail = PowerRail("VCCINT", idle_power=1.0)
        t0 = np.linspace(0, 1, 100)
        current, voltage = rail.window_state(t0, t0 + 0.035)
        assert current.shape == (100,)
        assert voltage.shape == (100,)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            PowerRail("x", noise_power_sigma=-1.0)

    def test_repr(self):
        assert "VCCINT" in repr(PowerRail("VCCINT"))
