"""Tests for the simulated hwmon sysfs tree."""

import numpy as np
import pytest

from repro.sensors.hwmon import (
    HwmonDevice,
    HwmonLookupError,
    HwmonPermissionError,
    HwmonTree,
)
from repro.sensors.ina226 import Ina226
from repro.soc.rails import PowerRail
from repro.soc.workload import PiecewiseActivity


def make_device(index=0, idle_power=1.0, noise_power_sigma=0.0, seed=0,
                name="ina226_u79"):
    rail = PowerRail(
        "VCCINT",
        idle_power=idle_power,
        noise_power_sigma=noise_power_sigma,
        ripple_sigma=0.0,
    )
    sensor = Ina226(shunt_ohms=2e-3, current_lsb=1e-3)
    return HwmonDevice(index, name, sensor, rail, seed=seed), rail


class TestLatchSemantics:
    def test_polls_within_one_period_return_identical_values(self):
        device, _ = make_device()
        base = device.phase + 10 * device.update_period + 1e-4
        times = base + np.linspace(0, device.update_period * 0.9, 20)
        values = device.read_series("curr1_input", times)
        assert np.unique(values).size == 1

    def test_values_refresh_across_periods(self):
        device, rail = make_device(noise_power_sigma=0.02)
        times = device.phase + device.update_period * (
            np.arange(200) + 1.5
        )
        values = device.read_series("curr1_input", times)
        assert np.unique(values).size > 1

    def test_cross_call_consistency(self):
        device, _ = make_device(noise_power_sigma=0.05)
        t = np.array([1.0, 2.0, 3.0])
        first = device.read_series("curr1_input", t)
        second = device.read_series("curr1_input", t)
        np.testing.assert_array_equal(first, second)

    def test_latch_index_monotonic(self):
        device, _ = make_device()
        times = np.linspace(0, 1, 500)
        latches = device.latch_index(times)
        assert np.all(np.diff(latches) >= 0)

    def test_devices_have_distinct_phases(self):
        a, _ = make_device(index=0, name="ina226_u76")
        b, _ = make_device(index=1, name="ina226_u79")
        assert a.phase != b.phase

    def test_window_reflects_workload_change(self):
        device, rail = make_device(idle_power=0.5)
        step_time = 50 * device.update_period
        rail.attach(
            "step",
            PiecewiseActivity([0.0, step_time, 1e9], [0.0, 4.0]),
        )
        before = device.read_series(
            "curr1_input", np.array([step_time - 5 * device.update_period])
        )[0]
        after = device.read_series(
            "curr1_input", np.array([step_time + 5 * device.update_period])
        )[0]
        assert after > before + 3000  # ~4 W / 0.85 V = ~4.7 A


class TestAttributes:
    def test_curr1_is_milliamps(self):
        device, _ = make_device(idle_power=0.8505)  # ~1 A at 0.8505 V
        value = device.read_series("curr1_input", np.array([1.0]))[0]
        assert 950 <= value <= 1050

    def test_in1_is_millivolts_in_band(self):
        device, _ = make_device()
        value = device.read_series("in1_input", np.array([1.0]))[0]
        assert 825 <= value <= 876

    def test_power1_is_microwatts(self):
        device, _ = make_device(idle_power=2.0)
        value = device.read_series("power1_input", np.array([1.0]))[0]
        assert 1.5e6 <= value <= 2.5e6

    def test_power_moves_in_25mw_steps(self):
        device, rail = make_device(idle_power=2.0)
        times = np.arange(100) * device.update_period * 1.5
        values = device.read_series("power1_input", times)
        steps = np.unique(values)
        assert np.all(steps % 25000 == 0)

    def test_in0_is_shunt_millivolts(self):
        device, _ = make_device(idle_power=2.0)  # ~2.35 A * 2 mOhm = ~4.7 mV
        value = device.read_series("in0_input", np.array([1.0]))[0]
        assert 3 <= value <= 7

    def test_update_interval_readable_unprivileged(self):
        device, _ = make_device()
        assert device.read("update_interval") == "35"

    def test_name_attribute(self):
        device, _ = make_device()
        assert device.read("name") == "ina226_u79"

    def test_read_returns_string(self):
        device, _ = make_device()
        assert isinstance(device.read("curr1_input", 1.0), str)

    def test_unknown_attribute_raises(self):
        device, _ = make_device()
        with pytest.raises(HwmonLookupError):
            device.read_series("temp1_input", np.array([0.0]))


class TestPermissions:
    def test_unprivileged_write_denied(self):
        device, _ = make_device()
        with pytest.raises(HwmonPermissionError, match="root"):
            device.write("update_interval", "2", privileged=False)

    def test_privileged_write_reconfigures(self):
        device, _ = make_device()
        device.write("update_interval", "2", privileged=True)
        assert device.update_period == pytest.approx(2e-3, rel=0.2)

    def test_interval_range_enforced(self):
        device, _ = make_device()
        with pytest.raises(ValueError):
            device.write("update_interval", "1", privileged=True)
        with pytest.raises(ValueError):
            device.write("update_interval", "100", privileged=True)

    def test_only_update_interval_writable(self):
        device, _ = make_device()
        with pytest.raises(HwmonLookupError):
            device.write("curr1_input", "0", privileged=True)


class TestTree:
    @pytest.fixture
    def tree(self):
        tree = HwmonTree()
        for index, name in enumerate(["ina226_u76", "ina226_u79"]):
            device, _ = make_device(index=index, name=name, seed=3)
            tree.register(device)
        return tree

    def test_path_read(self, tree):
        value = tree.read("/sys/class/hwmon/hwmon1/curr1_input", time=1.0)
        assert int(value) > 0

    def test_read_series_by_path(self, tree):
        values = tree.read_series(
            "/sys/class/hwmon/hwmon0/curr1_input", np.linspace(0, 1, 10)
        )
        assert values.shape == (10,)

    def test_device_by_name(self, tree):
        assert tree.device_by_name("ina226_u79").index == 1

    def test_unknown_name_raises(self, tree):
        with pytest.raises(HwmonLookupError, match="available"):
            tree.device_by_name("ina226_u99")

    def test_unknown_index_raises(self, tree):
        with pytest.raises(HwmonLookupError):
            tree.device(7)

    def test_malformed_path_raises(self, tree):
        with pytest.raises(HwmonLookupError):
            tree.read("/sys/class/thermal/thermal_zone0/temp")
        with pytest.raises(HwmonLookupError):
            tree.read("/sys/class/hwmon/hwmonX/curr1_input")

    def test_out_of_order_registration_rejected(self):
        tree = HwmonTree()
        device, _ = make_device(index=5)
        with pytest.raises(ValueError, match="out of order"):
            tree.register(device)

    def test_duplicate_name_rejected(self, tree):
        device, _ = make_device(index=2, name="ina226_u76")
        with pytest.raises(ValueError, match="duplicate"):
            tree.register(device)

    def test_list_paths(self, tree):
        paths = tree.list_paths()
        assert "/sys/class/hwmon/hwmon0/curr1_input" in paths
        assert "/sys/class/hwmon/hwmon1/update_interval" in paths

    def test_unprivileged_write_through_tree(self, tree):
        with pytest.raises(HwmonPermissionError):
            tree.write("/sys/class/hwmon/hwmon0/update_interval", "2")
