"""Persistent worker pool + zero-copy shm plane: the PR 8 substrate.

The pool must be invisible except for speed: ``WorkerPool.map`` returns
exactly ``[fn(x) for x in items]`` at any worker count, a SIGKILLed
worker is respawned with its lost tasks resubmitted in order, a task
that keeps killing workers fails with :class:`WorkerCrashError` instead
of wedging the pool, and arrays published through the shared-memory
arena resolve in workers to read-only views with the same bytes.
"""

import os
import signal

import numpy as np
import pytest

from repro.faults.policy import RetryPolicy
from repro.perf.config import POOL_ENV
from repro.perf.executor import in_worker, parallel_map
from repro.perf.pool import (
    WorkerCrashError,
    WorkerPool,
    get_pool,
    shutdown_pool,
)
from repro.perf.shm import (
    MmapSlice,
    SharedArena,
    ShmSlice,
    publish_arrays,
    resolve_array,
)


@pytest.fixture
def pool():
    worker_pool = WorkerPool(workers=2)
    yield worker_pool
    worker_pool.shutdown()


@pytest.fixture(autouse=True)
def _reset_shared_pool():
    # Tests below may widen or crash workers of the process-wide pool;
    # tear it down so later test modules fork a fresh one.
    yield
    shutdown_pool()


# ----------------------------------------------------------- task fns
# Module-level on purpose: pool tasks are pickled by reference.


def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"bad item {x}")


def _kill_self(_):
    os.kill(os.getpid(), signal.SIGKILL)


def _kill_if_flag(flag):
    if os.path.exists(flag):
        os.unlink(flag)
        os.kill(os.getpid(), signal.SIGKILL)
    return "survived"


def _sum_ref(ref):
    array = resolve_array(ref)
    if isinstance(ref, (ShmSlice, MmapSlice)):
        assert not array.flags.writeable
    return float(np.sum(array))


def _nested_map(items):
    assert in_worker()
    return parallel_map(_square, items, workers=4)


# ------------------------------------------------------------ mapping


class TestDeterministicMap:
    def test_map_matches_serial(self, pool):
        items = list(range(23))
        expected = [_square(x) for x in items]
        for chunksize in (1, 3, 50):
            assert pool.map(_square, items, chunksize=chunksize) == expected

    def test_more_workers_than_items(self):
        wide = WorkerPool(workers=4)
        try:
            assert wide.map(_square, [7]) == [49]
            assert wide.map(_square, []) == []
        finally:
            wide.shutdown()

    def test_submit_results_keep_submission_order(self, pool):
        futures = [pool.submit(_square, x) for x in range(10)]
        assert [f.result(timeout=30) for f in futures] == [
            x * x for x in range(10)
        ]

    def test_task_exception_propagates_and_pool_survives(self, pool):
        future = pool.submit(_boom, 3)
        with pytest.raises(ValueError, match="bad item 3"):
            future.result(timeout=30)
        assert pool.map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_nested_parallel_map_degrades_to_serial(self, pool):
        items = list(range(6))
        result = pool.submit(_nested_map, items).result(timeout=30)
        assert result == [x * x for x in items]

    def test_parallel_map_engines_agree(self, monkeypatch):
        items = list(range(17))
        expected = [_square(x) for x in items]
        assert parallel_map(_square, items, workers=2) == expected
        monkeypatch.setenv(POOL_ENV, "0")
        assert parallel_map(_square, items, workers=2) == expected


# ----------------------------------------------------- crash recovery


class TestCrashRecovery:
    def test_killed_worker_is_respawned_and_task_rerun(
        self, pool, tmp_path
    ):
        flag = tmp_path / "kill-once"
        flag.touch()
        future = pool.submit(_kill_if_flag, str(flag))
        assert future.result(timeout=60) == "survived"
        assert pool.respawns >= 1
        assert not flag.exists()
        assert pool.map(_square, [5, 6]) == [25, 36]

    def test_queued_tasks_on_dead_worker_are_resubmitted(self, tmp_path):
        narrow = WorkerPool(workers=1)
        try:
            flag = tmp_path / "kill-once"
            flag.touch()
            first = narrow.submit(_kill_if_flag, str(flag))
            rest = [narrow.submit(_square, x) for x in range(5)]
            assert first.result(timeout=60) == "survived"
            assert [f.result(timeout=60) for f in rest] == [
                x * x for x in range(5)
            ]
        finally:
            narrow.shutdown()

    def test_persistent_crasher_raises_worker_crash_error(self, pool):
        future = pool.submit(_kill_self, None)
        with pytest.raises(WorkerCrashError, match="crashed its worker"):
            future.result(timeout=120)
        # The crash budget is the sampler's retry policy.
        assert pool.respawns == RetryPolicy().max_retries + 1
        assert pool.map(_square, [9]) == [81]


# ----------------------------------------------------------- lifecycle


class TestLifecycle:
    def test_get_pool_is_reused_and_widens(self):
        first = get_pool(1)
        assert get_pool(1) is first
        wider = get_pool(2)
        assert wider.workers >= 2
        assert get_pool(1) is wider

    def test_shutdown_rejects_new_submissions(self):
        worker_pool = WorkerPool(workers=1)
        worker_pool.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            worker_pool.submit(_square, 1)
        worker_pool.shutdown()  # idempotent


# ------------------------------------------------------ zero-copy shm


class TestSharedMemoryPlane:
    def test_shm_round_trip_through_workers(self, pool):
        a = np.arange(1000, dtype=np.float64)
        b = np.ones((40, 50), dtype=np.float32)
        with publish_arrays([a, b]) as (a_ref, b_ref):
            assert isinstance(a_ref, ShmSlice)
            assert isinstance(b_ref, ShmSlice)
            sums = pool.map(_sum_ref, [a_ref, b_ref])
        assert sums == [float(a.sum()), float(b.sum())]

    def test_publish_disabled_passes_arrays_through(self):
        a = np.arange(4)
        with publish_arrays([a], enabled=False) as (ref,):
            assert ref is a

    def test_object_dtype_falls_back_to_raw_arrays(self):
        tagged = np.array(["resnet", "vgg"], dtype=object)
        with publish_arrays([tagged, np.arange(3)]) as (ref_a, ref_b):
            assert ref_a is tagged
            assert isinstance(ref_b, np.ndarray)

    def test_arena_resolves_locally_without_attaching(self):
        a = np.linspace(0.0, 1.0, 64)
        with SharedArena([a]) as arena:
            (slice_a,) = arena.slices
            view = resolve_array(slice_a)
            np.testing.assert_array_equal(view, a)
            assert not view.flags.writeable

    def test_mmap_slice_resolves_in_worker(self, pool, tmp_path):
        a = np.arange(128, dtype=np.int64)
        path = tmp_path / "payload.bin"
        a.tofile(path)
        ref = MmapSlice(
            path=str(path), dtype=a.dtype.str, shape=a.shape, offset=0
        )
        assert pool.map(_sum_ref, [ref]) == [float(a.sum())]
