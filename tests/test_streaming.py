"""Unit tests for the incremental streaming pipeline.

Covers the pieces in isolation — window geometry, the incremental
feature extractor, confidence smoothing, the online classifier, the
analyzer's event stream and the fault-tolerant monitor loop.  The
end-to-end batch-vs-stream bit-parity contract lives in
``test_streaming_parity.py``.
"""

import numpy as np
import pytest

from repro.core.streaming import (
    ConfidenceSmoother,
    IncrementalFeatureExtractor,
    Interruption,
    ModelSwitch,
    MonitorUpdate,
    StreamingAnalyzer,
    WindowSpec,
    batch_window_features,
    monitor_chunks,
    window_feature_matrix,
)
from repro.core.detector import OnsetDetector
from repro.core.sampler import StreamInterrupted
from repro.core.traces import Trace, TraceQuality
from repro.ml.streaming import OnlineSoftmaxClassifier
from repro.ml.validation import prequential_evaluate
from repro.utils.rng import ensure_rng

pytestmark = pytest.mark.stream


def _trace(values, start=0.0, poll_hz=100.0, quality=None, label=None):
    values = np.asarray(values)
    times = start + np.arange(values.size) / poll_hz
    return Trace(
        times=times,
        values=values,
        domain="fpga",
        quantity="current",
        label=label,
        quality=quality,
    )


class StubClassifier:
    """Deterministic two-class stub: mean(window) >= 0 -> 'hi'."""

    def __init__(self):
        self.classes_ = np.array(["hi", "lo"])

    def predict_proba(self, X):
        hot = (X.mean(axis=1) >= 0).astype(np.float64)
        return np.column_stack([0.1 + 0.8 * hot, 0.9 - 0.8 * hot])


# ------------------------------------------------------------- WindowSpec


def test_window_spec_validation():
    with pytest.raises(ValueError):
        WindowSpec(0, 1)
    with pytest.raises(ValueError):
        WindowSpec(10, 0)
    with pytest.raises(ValueError):
        WindowSpec(10, 11)  # a gap would drop samples


def test_window_spec_counts():
    spec = WindowSpec(100, 25)
    assert spec.n_windows(99) == 0
    assert spec.n_windows(100) == 1
    assert spec.n_windows(124) == 1
    assert spec.n_windows(125) == 2
    assert spec.n_windows(1000) == 37


# ------------------------------------------------------------- extractor


@pytest.mark.parametrize("chunk_size", [1, 7, 50, 128, 333, 1000])
def test_extractor_matches_batch_for_any_chunking(chunk_size):
    rng = ensure_rng(7)
    values = rng.standard_normal(1000)
    spec = WindowSpec(200, 50)
    reference = batch_window_features(values, spec, 64)
    extractor = IncrementalFeatureExtractor(spec, 64)
    rows = []
    for start in range(0, values.size, chunk_size):
        batch = extractor.push(values[start:start + chunk_size])
        if len(batch):
            rows.append(batch.features)
    streamed = np.vstack(rows)
    assert streamed.shape == reference.shape
    assert np.max(np.abs(streamed - reference)) == 0.0
    assert extractor.windows_emitted == reference.shape[0]


def test_extractor_memory_bounded_by_window_plus_chunk():
    rng = ensure_rng(3)
    spec = WindowSpec(128, 32)
    extractor = IncrementalFeatureExtractor(spec, 16)
    chunk = 48
    for _ in range(200):
        extractor.push(rng.standard_normal(chunk))
    assert extractor.peak_resident_samples <= spec.window_samples + chunk
    assert extractor.samples_seen == 200 * chunk


def test_extractor_window_metadata():
    spec = WindowSpec(10, 5)
    extractor = IncrementalFeatureExtractor(spec, 4)
    batch = extractor.push_chunk(_trace(np.arange(25), poll_hz=10.0))
    assert len(batch) == 4
    first, second = batch.windows[0], batch.windows[1]
    assert first.index == 0 and first.start_index == 0
    assert second.index == 1 and second.start_index == 5
    assert first.start_time == 0.0
    assert first.end_time == pytest.approx(0.9)
    assert second.start_time == pytest.approx(0.5)


def test_extractor_quality_spans_merge_per_window():
    spec = WindowSpec(10, 10)
    extractor = IncrementalFeatureExtractor(spec, 4)
    degraded = TraceQuality(retries=2, gaps=1)
    # Window 0: clean + degraded chunks -> merged quality.
    batch = extractor.push_chunk(_trace(np.zeros(6)))
    assert len(batch) == 0
    batch = extractor.push_chunk(
        _trace(np.zeros(6), start=0.06, quality=degraded)
    )
    assert len(batch) == 1
    quality = batch.windows[0].quality
    assert quality is not None
    assert quality.retries == 2 and quality.gaps == 1
    # Window 1 (samples 10-19) still overlaps the degraded chunk
    # (samples 6-11), so the provenance sticks to it too.
    batch = extractor.push_chunk(_trace(np.zeros(8), start=0.12))
    assert len(batch) == 1
    assert batch.windows[0].quality is not None
    # Window 2 (samples 20-29) is built from clean chunks only.
    batch = extractor.push_chunk(_trace(np.zeros(10), start=0.20))
    assert len(batch) == 1
    assert batch.windows[0].quality is None


def test_extractor_rejects_bad_input():
    extractor = IncrementalFeatureExtractor(WindowSpec(4, 4), 4)
    with pytest.raises(ValueError):
        extractor.push(np.zeros((3, 3)))
    with pytest.raises(ValueError):
        extractor.push(np.zeros(5), times=np.zeros(4))
    assert len(extractor.push(np.empty(0))) == 0


def test_window_feature_matrix_is_the_to_matrix_kernel():
    from repro.core.traces import TraceSet

    rng = ensure_rng(5)
    traces = [
        _trace(rng.standard_normal(40 + 3 * i), label=f"m{i % 2}")
        for i in range(6)
    ]
    X, y = TraceSet(traces).to_matrix(16)
    direct = window_feature_matrix([t.values for t in traces], 16)
    assert np.max(np.abs(X - direct)) == 0.0
    assert list(y) == [t.label for t in traces]


# --------------------------------------------------------------- smoother


def test_smoother_validation_and_identity():
    with pytest.raises(ValueError):
        ConfidenceSmoother(0.0)
    with pytest.raises(ValueError):
        ConfidenceSmoother(1.5)
    smoother = ConfidenceSmoother(1.0)
    first = np.array([0.25, 0.75])
    out = smoother.update(first)
    assert np.array_equal(out, first)
    out is not first  # a defensive copy, not the caller's array


def test_smoother_ema_and_reset():
    smoother = ConfidenceSmoother(0.5)
    smoother.update(np.array([1.0, 0.0]))
    blended = smoother.update(np.array([0.0, 1.0]))
    assert np.allclose(blended, [0.5, 0.5])
    smoother.reset()
    fresh = smoother.update(np.array([0.0, 1.0]))
    assert np.array_equal(fresh, [0.0, 1.0])


# ----------------------------------------------------- streaming analyzer


def test_analyzer_emits_verdicts_and_switches():
    analyzer = StreamingAnalyzer(
        StubClassifier(), WindowSpec(10, 10), n_features=8, top_k=2
    )
    hot = _trace(np.full(10, 5.0))
    cold = _trace(np.full(10, -5.0), start=0.1)
    update = analyzer.push_chunk(hot)
    assert len(update.verdicts) == 1
    first = update.verdicts[0]
    assert first.label == "hi" and first.raw_label == "hi"
    assert first.labels == ("hi", "lo")
    assert not first.switched  # no previous decision
    # The first decision still announces itself as a switch from idle.
    assert any(
        isinstance(e, ModelSwitch) and e.previous is None
        for e in update.events
    )
    update = analyzer.push_chunk(cold)
    second = update.verdicts[0]
    assert second.label == "lo" and second.switched
    switch = [e for e in update.events if isinstance(e, ModelSwitch)][0]
    assert switch.previous == "hi" and switch.label == "lo"
    assert analyzer.verdicts_emitted == 2


def test_analyzer_verdict_lag_is_simulated_time():
    analyzer = StreamingAnalyzer(
        StubClassifier(), WindowSpec(10, 10), n_features=8
    )
    # One 30-sample chunk completes 3 windows; the verdict for the
    # first window is 20 samples (0.2 s at 100 Hz) stale at emission.
    update = analyzer.push_chunk(_trace(np.ones(30)))
    lags = [v.lag_seconds for v in update.verdicts]
    assert lags[0] == pytest.approx(0.20)
    assert lags[-1] == pytest.approx(0.0)


def test_analyzer_smoothing_can_override_a_flip():
    # Heavy smoothing: one cold window after many hot ones must not
    # flip the smoothed decision, but the raw label still reports it.
    analyzer = StreamingAnalyzer(
        StubClassifier(),
        WindowSpec(10, 10),
        n_features=8,
        smoothing=0.2,
    )
    for _ in range(5):
        update = analyzer.push_chunk(_trace(np.full(10, 5.0)))
    update = analyzer.push_chunk(_trace(np.full(10, -5.0)))
    verdict = update.verdicts[0]
    assert verdict.raw_label == "lo"
    assert verdict.label == "hi"
    assert not verdict.switched


def test_analyzer_reset_restores_fresh_state():
    analyzer = StreamingAnalyzer(
        StubClassifier(),
        WindowSpec(10, 10),
        n_features=8,
        detector=OnsetDetector(baseline_window=4),
    )
    analyzer.push_chunk(_trace(np.full(10, 5.0)))
    analyzer.reset()
    assert analyzer.extractor.samples_seen == 0
    assert analyzer.tracker is not None
    assert analyzer.tracker.samples_seen == 0
    update = analyzer.push_chunk(_trace(np.full(10, 5.0)))
    assert not update.verdicts[0].switched


def test_analyzer_threads_detector_events():
    rng = ensure_rng(9)
    idle = rng.standard_normal(30)
    active = idle.copy()
    analyzer = StreamingAnalyzer(
        StubClassifier(),
        WindowSpec(10, 10),
        n_features=8,
        detector=OnsetDetector(baseline_window=8, min_gap=2),
        baseline=(0.0, 1.0),
    )
    burst = np.concatenate([idle, np.full(20, 50.0), idle])
    events = []
    for start in range(0, burst.size, 16):
        chunk = _trace(burst[start:start + 16], start=start / 100.0)
        events.extend(analyzer.push_chunk(chunk).events)
    events.extend(analyzer.finish().events)
    kinds = [e.kind for e in events if hasattr(e, "kind")]
    assert "onset" in kinds and "episode" in kinds


# ------------------------------------------------------- monitor_chunks


def test_monitor_chunks_flushes_and_survives_interruption():
    analyzer = StreamingAnalyzer(
        StubClassifier(), WindowSpec(10, 10), n_features=8
    )

    def chunks():
        yield _trace(np.full(10, 5.0))
        raise StreamInterrupted("fpga", "current", 10, "device died")

    updates = list(monitor_chunks(analyzer, chunks()))
    assert len(updates) == 2  # one chunk + the final flush
    assert len(updates[0].verdicts) == 1
    interruptions = [
        e for e in updates[-1].events if isinstance(e, Interruption)
    ]
    assert len(interruptions) == 1
    assert interruptions[0].samples_seen == 10
    assert "device died" in interruptions[0].message


def test_monitor_update_episode_filter():
    update = MonitorUpdate(verdicts=(), events=())
    assert update.episodes == ()


# ------------------------------------------------- online classifier


def test_online_softmax_validation():
    with pytest.raises(ValueError):
        OnlineSoftmaxClassifier(["only"], 4)
    clf = OnlineSoftmaxClassifier(["b", "a"], 4, seed=1)
    assert list(clf.classes_) == ["a", "b"]  # np.unique order
    with pytest.raises(ValueError):
        clf.partial_fit(np.zeros((2, 4)), np.array(["a", "zzz"]))
    with pytest.raises(ValueError):
        clf.partial_fit(np.zeros((2, 3)), np.array(["a", "b"]))
    with pytest.raises(ValueError):
        clf.partial_fit(np.zeros((2, 4)), np.array(["a"]))


def test_online_softmax_is_seed_deterministic():
    rng = ensure_rng(11)
    X = rng.standard_normal((64, 6))
    y = np.where(X[:, 0] > 0, "pos", "neg")
    runs = []
    for _ in range(2):
        clf = OnlineSoftmaxClassifier(["pos", "neg"], 6, seed=4)
        for start in range(0, 64, 8):
            clf.partial_fit(X[start:start + 8], y[start:start + 8])
        runs.append(clf.predict_proba(X))
    assert np.max(np.abs(runs[0] - runs[1])) == 0.0


def test_online_softmax_learns_a_separable_stream():
    rng = ensure_rng(2)
    n = 300
    X = np.vstack(
        [
            rng.standard_normal((n, 8)) + 2.0,
            rng.standard_normal((n, 8)) - 2.0,
        ]
    )
    y = np.array(["a"] * n + ["b"] * n)
    order = rng.permutation(2 * n)
    clf = OnlineSoftmaxClassifier(["a", "b"], 8, seed=0)
    result = prequential_evaluate(clf, X[order], y[order], batch_size=16)
    assert result.n_samples == 2 * n
    assert result.top1 > 0.9
    # Later batches outperform the cold-start ones.
    half = len(result.top1_per_batch) // 2
    assert np.mean(result.top1_per_batch[half:]) >= np.mean(
        result.top1_per_batch[:half]
    )


def test_prequential_validation():
    clf = OnlineSoftmaxClassifier(["a", "b"], 4)
    with pytest.raises(ValueError):
        prequential_evaluate(clf, np.zeros(4), np.array(["a"]))
    with pytest.raises(ValueError):
        prequential_evaluate(
            clf, np.zeros((4, 4)), np.array(["a", "b"])
        )
    with pytest.raises(ValueError):
        prequential_evaluate(
            clf, np.zeros((2, 4)), np.array(["a", "b"]), batch_size=0
        )


# ------------------------------------------------------- stream resume


def test_stream_skip_samples_is_bit_identical():
    from repro.session import AttackSession

    session = AttackSession.create(seed=5)
    full = list(
        session.sampler.stream(
            "fpga", "current", duration=0.4, poll_hz=1000,
            chunk_samples=64,
        )
    )
    skipped_stream = session.sampler.stream(
        "fpga", "current", duration=0.4, poll_hz=1000, chunk_samples=64
    )
    skip = sum(chunk.n_samples for chunk in full[:3])
    skipped_stream.skip_samples(skip)
    rest = list(skipped_stream)
    assert np.array_equal(
        np.concatenate([c.times for c in full[3:]]),
        np.concatenate([c.times for c in rest]),
    )
    assert np.array_equal(
        np.concatenate([c.values for c in full[3:]]),
        np.concatenate([c.values for c in rest]),
    )


def test_stream_skip_samples_validates_budget():
    from repro.session import AttackSession

    session = AttackSession.create(seed=5)
    stream = session.sampler.stream(
        "fpga", "current", duration=0.1, poll_hz=100
    )
    with pytest.raises(ValueError):
        stream.skip_samples(stream.n_samples + 1)


def test_partial_flush_quality_keeps_retry_provenance():
    # A faulted stream whose chunk dies mid-read must hand the retry
    # count of the failing read to the flushed partial chunk.
    from repro.session import AttackSession

    session = AttackSession.create(seed=31, faults=0.9)
    stream = session.sampler.stream(
        "fpga", "current", duration=2.0, poll_hz=200, chunk_samples=100
    )
    qualities = []
    try:
        for chunk in stream:
            if chunk.quality is not None:
                qualities.append(chunk.quality)
    except StreamInterrupted:
        pass
    assert qualities, "expected degraded chunks at a 0.9 fault rate"
    assert any(quality.retries > 0 for quality in qualities)
