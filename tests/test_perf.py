"""Unit tests for the repro.perf engine (config, executor, timer)."""

import json
import time

import pytest

from repro.perf import (
    WORKERS_ENV,
    StageTimer,
    available_cpus,
    in_worker,
    parallel_map,
    resolve_workers,
)


def _square(x):
    return x * x


def _probe_worker_flag(_):
    from repro.perf.executor import in_worker

    return in_worker()


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(None) == 1

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "7")
        assert resolve_workers(3) == 3

    def test_env_applies_when_unspecified(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "5")
        assert resolve_workers(None) == 5

    def test_zero_means_all_cpus(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(0) == available_cpus()
        assert resolve_workers(-1) == available_cpus()

    def test_custom_default(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(None, default=4) == 4

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "lots")
        with pytest.raises(ValueError):
            resolve_workers(None)

    def test_sanity_cap(self):
        with pytest.raises(ValueError):
            resolve_workers(100_000)

    def test_available_cpus_positive(self):
        assert available_cpus() >= 1


class TestParallelMap:
    def test_serial_matches_comprehension(self):
        items = list(range(20))
        assert parallel_map(_square, items, workers=1) == [
            _square(i) for i in items
        ]

    def test_parallel_preserves_order_and_values(self):
        items = list(range(23))
        assert parallel_map(_square, items, workers=3) == [
            _square(i) for i in items
        ]

    def test_empty_items(self):
        assert parallel_map(_square, [], workers=4) == []

    def test_single_item_runs_inline(self):
        assert parallel_map(_square, [6], workers=8) == [36]

    def test_workers_marked(self):
        flags = parallel_map(_probe_worker_flag, range(4), workers=2)
        assert all(flags)
        # The parent process is not a worker.
        assert not in_worker()

    def test_nested_call_degrades_to_serial(self, monkeypatch):
        # Simulate being inside a pool worker: nested fan-out must not
        # fork another pool (it would oversubscribe), just run inline.
        import repro.perf.executor as executor

        monkeypatch.setattr(executor, "_IN_WORKER", True)
        flags = parallel_map(_probe_worker_flag, range(3), workers=4)
        assert flags == [True, True, True]


class TestStageTimer:
    def test_records_stages_in_order(self):
        timer = StageTimer()
        with timer.stage("a"):
            pass
        with timer.stage("b"):
            time.sleep(0.01)
        stages = timer.as_dict()
        assert list(stages) == ["a", "b"]
        assert stages["b"] >= 0.01
        assert timer.total == pytest.approx(sum(stages.values()))

    def test_reentry_accumulates(self):
        timer = StageTimer()
        for _ in range(3):
            with timer.stage("loop"):
                time.sleep(0.002)
        assert timer.elapsed("loop") >= 0.006
        assert len(timer.as_dict()) == 1

    def test_unknown_stage_is_zero(self):
        assert StageTimer().elapsed("nope") == 0.0

    def test_exception_still_recorded(self):
        timer = StageTimer()
        with pytest.raises(RuntimeError):
            with timer.stage("boom"):
                raise RuntimeError("x")
        assert timer.elapsed("boom") > 0.0

    def test_report_is_json_serializable(self):
        timer = StageTimer()
        with timer.stage("s"):
            pass
        json.dumps(timer.as_dict())
