"""Tests for the I2C/PMBus register transport."""

import numpy as np
import pytest

from repro.sensors.ina226 import Ina226, Ina226Config
from repro.sensors.pmbus import (
    CONFIG_RESET,
    DIE_ID,
    MANUFACTURER_ID,
    REG_BUS_VOLTAGE,
    REG_CALIBRATION,
    REG_CONFIGURATION,
    REG_CURRENT,
    REG_DIE_ID,
    REG_MANUFACTURER_ID,
    REG_MASK_ENABLE,
    REG_POWER,
    REG_SHUNT_VOLTAGE,
    I2cBus,
    I2cError,
    Ina226RegisterFile,
    decode_configuration,
    encode_configuration,
)


def make_register_file(current=2.0, bus=0.85):
    sensor = Ina226(shunt_ohms=2e-3, shunt_noise_volts=0.0,
                    bus_noise_volts=0.0)

    def rail_reader(time):
        return sensor.convert(np.array([current]), np.array([bus]))

    return Ina226RegisterFile(sensor, rail_reader), sensor


class TestConfigurationCodec:
    def test_round_trip_default(self):
        config = Ina226Config()
        assert decode_configuration(encode_configuration(config)) == config

    @pytest.mark.parametrize("averages", [1, 16, 1024])
    def test_round_trip_averages(self, averages):
        config = Ina226Config(averages=averages)
        decoded = decode_configuration(encode_configuration(config))
        assert decoded.averages == averages

    def test_round_trip_conversion_times(self):
        config = Ina226Config(
            shunt_conversion_time=140e-6, bus_conversion_time=8.244e-3
        )
        decoded = decode_configuration(encode_configuration(config))
        assert decoded.shunt_conversion_time == 140e-6
        assert decoded.bus_conversion_time == 8.244e-3

    def test_reset_value_decodes(self):
        # The datasheet reset value must decode to a legal config.
        config = decode_configuration(CONFIG_RESET)
        assert config.averages in (1, 4, 16, 64, 128, 256, 512, 1024)


class TestRegisterFile:
    def test_id_registers(self):
        registers, _ = make_register_file()
        assert registers.read(REG_MANUFACTURER_ID) == MANUFACTURER_ID
        assert registers.read(REG_DIE_ID) == DIE_ID

    def test_current_register_milliamps(self):
        registers, _ = make_register_file(current=2.0)
        value = registers.read(REG_CURRENT, time=1.0)
        assert 1990 <= value <= 2010  # 1 mA LSB

    def test_bus_register(self):
        registers, _ = make_register_file(bus=0.85)
        value = registers.read(REG_BUS_VOLTAGE, time=1.0)
        assert value == round(0.85 / 1.25e-3)

    def test_shunt_register(self):
        registers, _ = make_register_file(current=2.0)
        value = registers.read(REG_SHUNT_VOLTAGE, time=1.0)
        # 2 A * 2 mOhm = 4 mV -> 1600 LSB of 2.5 uV.
        assert 1590 <= value <= 1610

    def test_power_register_product(self):
        registers, _ = make_register_file(current=4.0, bus=0.85)
        current = registers.read(REG_CURRENT)
        bus = registers.read(REG_BUS_VOLTAGE)
        power = registers.read(REG_POWER)
        assert power == (current * bus) // 20000

    def test_configuration_write_reconfigures(self):
        registers, sensor = make_register_file()
        new_config = Ina226Config(averages=64)
        registers.write(REG_CONFIGURATION, encode_configuration(new_config))
        assert sensor.config.averages == 64

    def test_reset_bit(self):
        registers, sensor = make_register_file()
        registers.write(
            REG_CONFIGURATION,
            encode_configuration(Ina226Config(averages=1024)),
        )
        registers.write(REG_CONFIGURATION, 0x8000)
        assert sensor.config == Ina226Config()

    def test_calibration_write(self):
        registers, sensor = make_register_file()
        registers.write(REG_CALIBRATION, 1280)
        assert registers.read(REG_CALIBRATION) == 1280
        assert sensor.calibration == 1280

    def test_result_registers_read_only(self):
        registers, _ = make_register_file()
        with pytest.raises(I2cError, match="read-only"):
            registers.write(REG_CURRENT, 0)

    def test_unknown_register(self):
        registers, _ = make_register_file()
        with pytest.raises(I2cError, match="does not exist"):
            registers.read(0x42)

    def test_oversized_write_rejected(self):
        registers, _ = make_register_file()
        with pytest.raises(I2cError, match="16 bits"):
            registers.write(REG_MASK_ENABLE, 0x10000)


class TestI2cBus:
    def test_attach_and_scan(self):
        bus = I2cBus()
        registers, _ = make_register_file()
        bus.attach(0x40, registers)
        assert bus.scan() == [0x40]

    def test_address_conflict(self):
        bus = I2cBus()
        a, _ = make_register_file()
        b, _ = make_register_file()
        bus.attach(0x40, a)
        with pytest.raises(I2cError, match="already in use"):
            bus.attach(0x40, b)

    def test_invalid_address(self):
        bus = I2cBus()
        registers, _ = make_register_file()
        with pytest.raises(I2cError, match="7-bit"):
            bus.attach(0x80, registers)

    def test_nack_on_empty_address(self):
        bus = I2cBus()
        with pytest.raises(I2cError, match="no ACK"):
            bus.read_word(0x41, REG_CURRENT)

    def test_read_write_through_bus(self):
        bus = I2cBus()
        registers, sensor = make_register_file()
        bus.attach(0x44, registers)
        assert bus.read_word(0x44, REG_MANUFACTURER_ID) == MANUFACTURER_ID
        bus.write_word(0x44, REG_CALIBRATION, 2000)
        assert sensor.calibration == 2000

    def test_probe_ina226(self):
        bus = I2cBus()
        registers, _ = make_register_file()
        bus.attach(0x40, registers)
        assert bus.probe_ina226(0x40)
        assert not bus.probe_ina226(0x41)

    def test_pmbus_chain_like_zcu102(self):
        # The ZCU102 hangs its INA226s off one chain; model a few.
        bus = I2cBus()
        for offset in range(4):
            registers, _ = make_register_file(current=1.0 + offset)
            bus.attach(0x40 + offset, registers)
        assert len(bus.scan()) == 4
        currents = [
            bus.read_word(0x40 + offset, REG_CURRENT) for offset in range(4)
        ]
        assert currents == sorted(currents)
