"""Tests for the CART decision tree."""

import numpy as np
import pytest

from repro.ml.tree import DecisionTreeClassifier, gini_impurity


class TestGini:
    def test_pure_node_is_zero(self):
        assert gini_impurity(np.array([10.0, 0.0])) == pytest.approx(0.0)

    def test_balanced_binary(self):
        assert gini_impurity(np.array([5.0, 5.0])) == pytest.approx(0.5)

    def test_uniform_k_classes(self):
        counts = np.full(4, 25.0)
        assert gini_impurity(counts) == pytest.approx(0.75)

    def test_empty_counts(self):
        assert gini_impurity(np.zeros(3)) == pytest.approx(1.0)

    def test_vectorized(self):
        counts = np.array([[10.0, 0.0], [5.0, 5.0]])
        np.testing.assert_allclose(gini_impurity(counts), [0.0, 0.5])


def make_blobs(n_per_class=50, n_classes=3, d=5, spread=0.3, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(n_classes, d)) * 3
    X = np.vstack(
        [
            centers[c] + spread * rng.normal(size=(n_per_class, d))
            for c in range(n_classes)
        ]
    )
    y = np.repeat(np.arange(n_classes), n_per_class)
    return X, y


class TestFitPredict:
    def test_perfectly_separable_1d(self):
        X = np.array([[0.0], [1.0], [2.0], [10.0], [11.0], [12.0]])
        y = np.array([0, 0, 0, 1, 1, 1])
        tree = DecisionTreeClassifier(seed=0).fit(X, y)
        np.testing.assert_array_equal(tree.predict(X), y)

    def test_training_accuracy_on_blobs(self):
        X, y = make_blobs()
        tree = DecisionTreeClassifier(seed=0).fit(X, y)
        assert np.mean(tree.predict(X) == y) == 1.0

    def test_generalizes_on_blobs(self):
        X, y = make_blobs(n_per_class=100, seed=1)
        train = np.arange(X.shape[0]) % 2 == 0
        tree = DecisionTreeClassifier(seed=0).fit(X[train], y[train])
        assert np.mean(tree.predict(X[~train]) == y[~train]) > 0.9

    def test_string_labels(self):
        X = np.array([[0.0], [1.0], [10.0], [11.0]])
        y = np.array(["cat", "cat", "dog", "dog"])
        tree = DecisionTreeClassifier(seed=0).fit(X, y)
        assert list(tree.predict(X)) == ["cat", "cat", "dog", "dog"]

    def test_single_class(self):
        X = np.zeros((5, 2))
        y = np.ones(5, dtype=int)
        tree = DecisionTreeClassifier(seed=0).fit(X, y)
        assert np.all(tree.predict(X) == 1)
        assert tree.node_count == 1

    def test_constant_features_stay_leaf(self):
        X = np.ones((10, 3))
        y = np.array([0, 1] * 5)
        tree = DecisionTreeClassifier(seed=0).fit(X, y)
        # No valid split: root stays a leaf, predicts the majority tie.
        assert tree.node_count == 1

    def test_max_depth_respected(self):
        X, y = make_blobs(n_per_class=100, n_classes=5, spread=3.0)
        tree = DecisionTreeClassifier(max_depth=3, seed=0).fit(X, y)
        assert tree.depth <= 3

    def test_min_samples_leaf(self):
        X, y = make_blobs(seed=3)
        tree = DecisionTreeClassifier(min_samples_leaf=10, seed=0).fit(X, y)
        leaf_sizes = []
        leaves = tree.apply(X)
        for leaf in np.unique(leaves):
            leaf_sizes.append(np.sum(leaves == leaf))
        assert min(leaf_sizes) >= 10

    def test_proba_sums_to_one(self):
        X, y = make_blobs(seed=4)
        tree = DecisionTreeClassifier(seed=0).fit(X, y)
        proba = tree.predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_feature_importances_identify_signal(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(300, 6))
        y = (X[:, 2] > 0).astype(int)  # only feature 2 matters
        tree = DecisionTreeClassifier(seed=0).fit(X, y)
        assert np.argmax(tree.feature_importances_) == 2

    def test_max_features_sqrt(self):
        X, y = make_blobs(d=16, seed=6)
        tree = DecisionTreeClassifier(max_features="sqrt", seed=0).fit(X, y)
        assert np.mean(tree.predict(X) == y) > 0.9

    def test_max_features_variants(self):
        X, y = make_blobs(d=9, seed=7)
        for mf in ("log2", "all", None, 3, 0.5):
            tree = DecisionTreeClassifier(max_features=mf, seed=0).fit(X, y)
            assert tree.node_count >= 1

    def test_bad_max_features(self):
        X, y = make_blobs(seed=8)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_features=2.0, seed=0).fit(X, y)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_features="cube", seed=0).fit(X, y)


class TestValidation:
    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            DecisionTreeClassifier().predict(np.zeros((1, 2)))

    def test_wrong_feature_count_raises(self):
        X, y = make_blobs(seed=9)
        tree = DecisionTreeClassifier(seed=0).fit(X, y)
        with pytest.raises(ValueError):
            tree.predict(np.zeros((2, 99)))

    def test_bad_shapes_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros(5), np.zeros(5))
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((5, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((0, 2)), np.zeros(0))

    def test_deterministic_with_seed(self):
        X, y = make_blobs(n_classes=4, spread=1.5, seed=10)
        a = DecisionTreeClassifier(max_features="sqrt", seed=3).fit(X, y)
        b = DecisionTreeClassifier(max_features="sqrt", seed=3).fit(X, y)
        np.testing.assert_array_equal(a.predict(X), b.predict(X))
