"""The v2 streaming archive, plus v1 compatibility and failure modes."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.io import (
    MANIFEST_NAME,
    ArchiveError,
    TraceArchiveReader,
    TraceArchiveWriter,
    is_archive_dir,
    load_traceset,
    open_archive,
    save_traceset,
)
from repro.core.traces import Trace, TraceSet

FIXTURE_V1 = Path(__file__).parent / "data" / "traceset_v1.npz"


def _make_trace(n=30, offset=0, domain="fpga", quantity="current",
                label=None):
    times = 1.0 + offset + np.arange(n) * 0.0352
    values = (700 + offset + np.arange(n) % 5).astype(np.int64)
    return Trace(times=times, values=values, domain=domain,
                 quantity=quantity, label=label)


class TestWriterReader:
    def test_round_trip(self, tmp_path):
        traces = [
            _make_trace(label="resnet-50"),
            _make_trace(offset=3, quantity="voltage"),
        ]
        with TraceArchiveWriter(
            tmp_path / "arch", meta={"experiment": "test"}
        ) as writer:
            for trace in traces:
                writer.append(trace)
        reader = TraceArchiveReader(tmp_path / "arch")
        assert reader.meta == {"experiment": "test"}
        assert reader.complete
        loaded = list(reader.load_traceset())
        assert len(loaded) == 2
        for original, restored in zip(traces, loaded):
            assert (restored.times == original.times).all()
            assert (restored.values == original.values).all()
            assert restored.values.dtype == original.values.dtype
            assert restored.label == original.label
            assert restored.quantity == original.quantity

    def test_multipart_reassembly(self, tmp_path):
        whole = _make_trace(n=90, label="long-capture")
        with TraceArchiveWriter(tmp_path / "arch") as writer:
            for part, start in enumerate(range(0, 90, 25)):
                chunk = Trace(
                    times=whole.times[start:start + 25],
                    values=whole.values[start:start + 25],
                    domain=whole.domain,
                    quantity=whole.quantity,
                    label=whole.label,
                )
                writer.append(chunk, trace_id="cap", part=part)
        loaded = list(TraceArchiveReader(tmp_path / "arch").load_traceset())
        assert len(loaded) == 1
        assert (loaded[0].times == whole.times).all()
        assert (loaded[0].values == whole.values).all()

    def test_iter_chunks_streams_in_order(self, tmp_path):
        with TraceArchiveWriter(tmp_path / "arch") as writer:
            for offset in range(4):
                writer.append(_make_trace(offset=offset))
        chunks = list(TraceArchiveReader(tmp_path / "arch").iter_chunks())
        assert [int(chunk.values[0]) for chunk in chunks] == [
            700, 701, 702, 703
        ]

    def test_load_datasets_keys_by_channel(self, tmp_path):
        with TraceArchiveWriter(tmp_path / "arch") as writer:
            writer.append(_make_trace(domain="fpga", quantity="current"))
            writer.append(_make_trace(domain="fpga", quantity="voltage"))
            writer.append(_make_trace(domain="ddr", quantity="current"))
        datasets = TraceArchiveReader(tmp_path / "arch").load_datasets()
        assert set(datasets) == {
            ("fpga", "current"), ("fpga", "voltage"), ("ddr", "current")
        }

    def test_update_meta_rides_the_footer(self, tmp_path):
        with TraceArchiveWriter(
            tmp_path / "arch", meta={"experiment": "covert"}
        ) as writer:
            writer.append(_make_trace())
            writer.update_meta(received=[1, 0, 1])
        meta = TraceArchiveReader(tmp_path / "arch").meta
        assert meta["experiment"] == "covert"
        assert meta["received"] == [1, 0, 1]

    def test_refuses_existing_manifest(self, tmp_path):
        with TraceArchiveWriter(tmp_path / "arch") as writer:
            writer.append(_make_trace())
        with pytest.raises(ArchiveError, match="already has a manifest"):
            TraceArchiveWriter(tmp_path / "arch")

    def test_append_after_close_fails(self, tmp_path):
        writer = TraceArchiveWriter(tmp_path / "arch")
        writer.close()
        with pytest.raises(ArchiveError, match="closed"):
            writer.append(_make_trace())

    def test_load_traceset_dispatches_to_v2(self, tmp_path):
        with TraceArchiveWriter(tmp_path / "arch") as writer:
            writer.append(_make_trace())
        assert is_archive_dir(tmp_path / "arch")
        assert len(load_traceset(tmp_path / "arch")) == 1


class TestTruncationAndCorruption:
    def test_unsealed_archive_is_truncated(self, tmp_path):
        writer = TraceArchiveWriter(tmp_path / "arch")
        writer.append(_make_trace())
        writer._manifest.close()  # crash: no footer ever written
        with pytest.raises(ArchiveError, match="truncated"):
            TraceArchiveReader(tmp_path / "arch")
        # Tailing a live capture is still possible.
        partial = open_archive(tmp_path / "arch", allow_partial=True)
        assert not partial.complete
        assert len(partial) == 1

    def test_exception_leaves_archive_unsealed(self, tmp_path):
        with pytest.raises(RuntimeError):
            with TraceArchiveWriter(tmp_path / "arch") as writer:
                writer.append(_make_trace())
                raise RuntimeError("capture died")
        with pytest.raises(ArchiveError, match="truncated"):
            TraceArchiveReader(tmp_path / "arch")

    def test_missing_chunk_file(self, tmp_path):
        with TraceArchiveWriter(tmp_path / "arch") as writer:
            writer.append(_make_trace())
        (tmp_path / "arch" / "chunk_000000.npz").unlink()
        reader = TraceArchiveReader(tmp_path / "arch")
        with pytest.raises(ArchiveError, match="missing"):
            reader.load_traceset()

    def test_corrupted_chunk_file(self, tmp_path):
        with TraceArchiveWriter(tmp_path / "arch") as writer:
            writer.append(_make_trace())
        (tmp_path / "arch" / "chunk_000000.npz").write_bytes(b"garbage")
        with pytest.raises(ArchiveError, match="corrupted chunk"):
            TraceArchiveReader(tmp_path / "arch").load_traceset()

    def test_corrupted_manifest_line(self, tmp_path):
        with TraceArchiveWriter(tmp_path / "arch") as writer:
            writer.append(_make_trace())
        manifest = tmp_path / "arch" / MANIFEST_NAME
        manifest.write_text(
            manifest.read_text().replace('"chunk": 0', '"chunk": ', 1)
        )
        with pytest.raises(ArchiveError, match="corrupted manifest"):
            TraceArchiveReader(tmp_path / "arch")

    def test_wrong_kind_rejected(self, tmp_path):
        (tmp_path / "arch").mkdir()
        (tmp_path / "arch" / MANIFEST_NAME).write_text(
            json.dumps({"kind": "something-else", "version": 2}) + "\n"
        )
        with pytest.raises(ArchiveError, match="not an AmpereBleed"):
            TraceArchiveReader(tmp_path / "arch")

    def test_footer_chunk_count_mismatch(self, tmp_path):
        with TraceArchiveWriter(tmp_path / "arch") as writer:
            writer.append(_make_trace())
            writer.append(_make_trace(offset=1))
        manifest = tmp_path / "arch" / MANIFEST_NAME
        lines = manifest.read_text().splitlines()
        del lines[2]  # drop a chunk record but keep the footer
        manifest.write_text("\n".join(lines) + "\n")
        with pytest.raises(ArchiveError, match="footer claims"):
            TraceArchiveReader(tmp_path / "arch")

    def test_errors_are_value_errors(self, tmp_path):
        # Callers catching ValueError keep working.
        assert issubclass(ArchiveError, ValueError)
        with pytest.raises(ValueError):
            TraceArchiveReader(tmp_path / "nonexistent")


class TestV1Compatibility:
    def _fixture_content(self):
        ts = TraceSet()
        for i, (domain, quantity, label) in enumerate([
            ("fpga", "current", "resnet-50"),
            ("fpga", "voltage", None),
            ("ddr", "current", "hw-448"),
        ]):
            n = 40 + 7 * i
            times = (
                1.0 + np.arange(n) * 0.0352
                + 1e-5 * np.sin(np.arange(n) + i)
            )
            values = (
                700 + 13 * i + np.round(5 * np.cos(0.3 * np.arange(n) + i))
            ).astype(np.int64)
            ts.add(Trace(times=times, values=values, domain=domain,
                         quantity=quantity, label=label))
        return ts

    def test_checked_in_v1_fixture_loads_bit_exactly(self):
        # The fixture was written by the v1 writer before the v2 format
        # existed; the current reader must reproduce it bit for bit.
        loaded = list(load_traceset(FIXTURE_V1))
        expected = list(self._fixture_content())
        assert len(loaded) == len(expected)
        for restored, original in zip(loaded, expected):
            assert (restored.times == original.times).all()
            assert (restored.values == original.values).all()
            assert restored.values.dtype == original.values.dtype
            assert restored.label == original.label
            assert restored.domain == original.domain
            assert restored.quantity == original.quantity

    def test_fresh_v1_round_trip_still_works(self, tmp_path):
        path = save_traceset(self._fixture_content(), tmp_path / "set.npz")
        loaded = list(load_traceset(path))
        assert len(loaded) == 3

    def test_truncated_v1_is_a_clear_error(self, tmp_path):
        path = save_traceset(self._fixture_content(), tmp_path / "set.npz")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(ArchiveError, match="corrupted trace archive"):
            load_traceset(path)

    def test_garbage_v1_is_a_clear_error(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"\x00\x01 not a zip")
        with pytest.raises(ArchiveError, match="corrupted trace archive"):
            load_traceset(path)
