"""The two-plane workflow: record to disk, analyze anywhere, replay.

The acceptance bar for the plane split: a recorded-then-replayed
evaluation must produce exactly the numbers the in-process run prints.
"""

import pytest

from repro.cli import main
from repro.core.fingerprint import (
    DnnFingerprinter,
    FingerprintAnalyzer,
    FingerprintConfig,
)
from repro.core.io import TraceArchiveReader, TraceArchiveWriter
from repro.core.rsa_attack import RsaHammingWeightAttack, sweep_from_traces

MODELS = ["resnet-50", "vgg-19", "squeezenet-1.1"]
CONFIG = FingerprintConfig(
    duration=2.0, traces_per_model=6, n_folds=3, forest_trees=8
)
CHANNELS = [("fpga", "current"), ("fpga", "voltage")]


class TestFingerprintRoundTrip:
    def test_archive_evaluation_is_bit_identical(self, tmp_path):
        # In-process: collect and evaluate in one object.
        live = DnnFingerprinter(config=CONFIG, seed=11)
        datasets = live.collect_datasets(models=MODELS, channels=CHANNELS)
        expected = {
            channel: live.evaluate_channel(dataset)
            for channel, dataset in datasets.items()
        }

        # Two-plane: a second identical session records to disk...
        recorder = DnnFingerprinter(config=CONFIG, seed=11)
        with TraceArchiveWriter(
            tmp_path / "arch", meta=recorder.archive_meta(MODELS, CHANNELS)
        ) as writer:
            recorder.collect_datasets(
                models=MODELS, channels=CHANNELS, sink=writer
            )

        # ...and the analysis plane evaluates with no SoC at all.
        analyzer, replayed = FingerprintAnalyzer.from_archive(
            tmp_path / "arch"
        )
        assert analyzer.seed == 11
        assert analyzer.config == CONFIG
        assert set(replayed) == set(expected)
        for channel, dataset in replayed.items():
            result = analyzer.evaluate_channel(dataset)
            assert result.top1 == expected[channel].top1
            assert result.top5 == expected[channel].top5
            assert (
                result.top1_per_fold == expected[channel].top1_per_fold
            ), f"fold accuracies drifted on {channel}"

    def test_sink_streams_while_collecting(self, tmp_path):
        recorder = DnnFingerprinter(config=CONFIG, seed=1)
        with TraceArchiveWriter(tmp_path / "arch") as writer:
            datasets = recorder.collect_datasets(
                models=MODELS[:2],
                channels=[("fpga", "current")],
                sink=writer,
            )
        reader = TraceArchiveReader(tmp_path / "arch")
        in_memory = datasets[("fpga", "current")]
        replayed = reader.load_datasets()[("fpga", "current")]
        for live, disk in zip(in_memory, replayed):
            assert (live.values == disk.values).all()
            assert (live.times == disk.times).all()
            assert live.label == disk.label

    def test_analyzer_override_for_reanalysis(self, tmp_path):
        recorder = DnnFingerprinter(config=CONFIG, seed=1)
        with TraceArchiveWriter(
            tmp_path / "arch",
            meta=recorder.archive_meta(MODELS[:2], [("fpga", "current")]),
        ) as writer:
            recorder.collect_datasets(
                models=MODELS[:2], channels=[("fpga", "current")],
                sink=writer,
            )
        # One dataset, many analysis settings: override the stored seed.
        analyzer, _ = FingerprintAnalyzer.from_archive(
            tmp_path / "arch", seed=99
        )
        assert analyzer.seed == 99


class TestRsaRoundTrip:
    def test_sweep_from_archive_matches_in_process(self, tmp_path):
        weights = [1, 224, 448]
        live = RsaHammingWeightAttack(seed=4)
        expected = live.sweep(weights=weights, n_samples=2000)

        recorder = RsaHammingWeightAttack(seed=4)
        with TraceArchiveWriter(
            tmp_path / "arch",
            meta=recorder.archive_meta(weights=weights, n_samples=2000),
        ) as writer:
            recorder.collect_sweep(
                weights=weights, n_samples=2000, sink=writer
            )
        replayed = sweep_from_traces(
            TraceArchiveReader(tmp_path / "arch").load_traceset()
        )
        assert (replayed.weights == expected.weights).all()
        assert (replayed.medians == expected.medians).all()
        assert (
            replayed.distinguishable_groups()
            == expected.distinguishable_groups()
        )

    def test_mixed_quantities_require_filter(self):
        attack = RsaHammingWeightAttack(seed=0)
        traces = attack.collect_sweep(weights=[1, 448], n_samples=500)
        power = attack.collect_sweep(
            weights=[1], quantity="power", n_samples=500
        )
        for trace in power:
            traces.add(trace)
        with pytest.raises(ValueError, match="mixed quantities"):
            sweep_from_traces(traces)
        assert sweep_from_traces(traces, quantity="current")


class TestCliWorkflow:
    def test_record_analyze_matches_fingerprint_cmd(self, tmp_path, capsys):
        args = [
            "--models", "resnet-50", "vgg-19",
            "--traces", "6", "--folds", "3", "--trees", "8",
            "--seed", "7", "--channels", "fpga/current",
        ]
        assert main(["fingerprint", *args]) == 0
        in_process = [
            line
            for line in capsys.readouterr().out.splitlines()
            if line.startswith("fpga/")
        ]
        assert main(
            ["record", "--experiment", "fingerprint",
             "--out", str(tmp_path / "arch"), *args]
        ) == 0
        capsys.readouterr()
        assert main(["analyze", "--archive", str(tmp_path / "arch")]) == 0
        analyzed = [
            line
            for line in capsys.readouterr().out.splitlines()
            if line.startswith("fpga/")
        ]
        assert analyzed == in_process

    def test_covert_record_replay_is_faithful(self, tmp_path, capsys):
        assert main(
            ["record", "--experiment", "covert",
             "--out", str(tmp_path / "cov"),
             "--bits", "24", "--seed", "3"]
        ) == 0
        capsys.readouterr()
        assert main(["replay", "--archive", str(tmp_path / "cov")]) == 0
        out = capsys.readouterr().out
        assert "matches the live receiver's decode: yes" in out

    def test_rsa_record_analyze(self, tmp_path, capsys):
        assert main(
            ["record", "--experiment", "rsa",
             "--out", str(tmp_path / "rsa"),
             "--samples", "1000", "--seed", "2"]
        ) == 0
        capsys.readouterr()
        assert main(["analyze", "--archive", str(tmp_path / "rsa")]) == 0
        out = capsys.readouterr().out
        assert "groups: current" in out

    def test_replay_runs_detector_on_generic_archives(
        self, tmp_path, capsys
    ):
        assert main(
            ["record", "--experiment", "rsa",
             "--out", str(tmp_path / "rsa"),
             "--samples", "1000", "--seed", "2"]
        ) == 0
        capsys.readouterr()
        assert main(["replay", "--archive", str(tmp_path / "rsa")]) == 0
        out = capsys.readouterr().out
        assert "onset at" in out

    def test_analyze_rejects_untagged_archive(self, tmp_path, capsys):
        with TraceArchiveWriter(tmp_path / "arch") as writer:
            pass
        assert main(["analyze", "--archive", str(tmp_path / "arch")]) == 1


class TestMemoryBoundedCapture:
    def test_streaming_capture_peak_is_chunk_sized(self, tmp_path):
        # A long capture streamed to an archive holds one chunk at a
        # time: peak resident samples == chunk size << session size.
        from repro.session import AttackSession

        session = AttackSession.create(seed=0)
        stream = session.sampler.stream(
            "fpga", "current", n_samples=20_000, chunk_samples=256
        )
        with TraceArchiveWriter(tmp_path / "arch") as writer:
            for part, chunk in enumerate(stream):
                writer.append(chunk, trace_id="capture", part=part)
        assert stream.max_resident_samples == 256
        assert stream.n_samples == 20_000
        restored = next(
            iter(TraceArchiveReader(tmp_path / "arch").load_traceset())
        )
        one_shot = session.sampler.collect(
            "fpga", "current", n_samples=20_000
        )
        assert (restored.values == one_shot.values).all()
        assert (restored.times == one_shot.times).all()
