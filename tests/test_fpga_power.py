"""Tests for the FPGA power model."""

import pytest

from repro.fpga.power import (
    DEFAULT_RESOURCE_PROFILES,
    FabricPowerModel,
    ResourcePowerProfile,
    dynamic_power,
    static_power,
)


class TestDynamicPower:
    def test_cmos_formula(self):
        # alpha * C * V^2 * f
        assert dynamic_power(0.5, 10e-15, 0.85, 300e6) == pytest.approx(
            0.5 * 10e-15 * 0.85**2 * 300e6
        )

    def test_zero_activity_is_zero(self):
        assert dynamic_power(0.0, 10e-15, 0.85, 300e6) == 0.0

    def test_scales_quadratically_with_voltage(self):
        low = dynamic_power(1.0, 1e-12, 0.5, 100e6)
        high = dynamic_power(1.0, 1e-12, 1.0, 100e6)
        assert high == pytest.approx(4 * low)

    def test_rejects_negative_alpha(self):
        with pytest.raises(ValueError):
            dynamic_power(-0.1, 1e-12, 0.85, 100e6)

    def test_rejects_zero_voltage(self):
        with pytest.raises(ValueError):
            dynamic_power(0.5, 1e-12, 0.0, 100e6)


class TestStaticPower:
    def test_formula(self):
        assert static_power(0.1, 0.85) == pytest.approx(0.085)

    def test_rejects_negative_leakage(self):
        with pytest.raises(ValueError):
            static_power(-0.1, 0.85)


class TestFabricPowerModel:
    @pytest.fixture
    def model(self):
        return FabricPowerModel(voltage=0.85, frequency_hz=300e6)

    def test_default_profiles_present(self, model):
        for resource in ("lut", "ff", "dsp", "bram", "clock"):
            assert resource in model.profiles

    def test_element_dynamic_power(self, model):
        profile = DEFAULT_RESOURCE_PROFILES["lut"]
        expected = 1.0 * profile.c_eff_farads * 0.85**2 * 300e6
        assert model.element_dynamic_power("lut", 1.0) == pytest.approx(expected)

    def test_circuit_dynamic_power_sums(self, model):
        power = model.circuit_dynamic_power(
            {"lut": 100, "ff": 100}, {"lut": 0.5, "ff": 0.5}
        )
        expected = 100 * model.element_dynamic_power("lut", 0.5) + (
            100 * model.element_dynamic_power("ff", 0.5)
        )
        assert power == pytest.approx(expected)

    def test_missing_activity_defaults_to_idle(self, model):
        assert model.circuit_dynamic_power({"lut": 1000}, {}) == 0.0

    def test_circuit_static_power(self, model):
        power = model.circuit_static_power({"lut": 10})
        assert power == pytest.approx(10 * model.element_static_power("lut"))

    def test_unknown_resource_raises(self, model):
        with pytest.raises(KeyError, match="available"):
            model.element_dynamic_power("gpu", 0.5)

    def test_negative_count_rejected(self, model):
        with pytest.raises(ValueError):
            model.circuit_dynamic_power({"lut": -1}, {"lut": 0.5})

    def test_custom_profiles(self):
        model = FabricPowerModel(
            profiles={"lut": ResourcePowerProfile(1e-15, 1e-6)}
        )
        assert "dsp" not in model.profiles

    def test_dsp_heavier_than_lut(self, model):
        assert model.element_dynamic_power("dsp", 1.0) > (
            model.element_dynamic_power("lut", 1.0)
        )

    def test_power_virus_scale_sanity(self, model):
        # A full-board Gnad-style virus (160 k LUT/FF toggle cells with
        # routing overhead folded into c_eff) must land in the amperes
        # range on a 0.85 V rail — the regime Fig 2 sweeps through.
        per_cell = model.element_dynamic_power("lut", 1.0) + (
            model.element_dynamic_power("ff", 1.0)
        )
        total = 160_000 * per_cell
        assert 0.1 < total < 10.0  # watts
