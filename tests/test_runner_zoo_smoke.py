"""Zoo-wide smoke tests: every model must run through the full stack."""

import numpy as np
import pytest

from repro.dpu.dpu import DpuCore
from repro.dpu.models import build_model, list_models
from repro.dpu.runner import DPU_RAILS, DpuRunner


@pytest.fixture(scope="module")
def runner():
    return DpuRunner()


@pytest.mark.parametrize("name", list_models())
def test_every_model_schedules_and_profiles(runner, name):
    model = build_model(name)
    core = DpuCore()

    # Scheduling covers every layer with positive durations.
    schedule = core.schedule(model)
    assert len(schedule) == len(model.layers)
    assert all(execution.duration > 0 for execution in schedule)

    # The serving profile is well-formed on every rail.
    profile = runner.cycle_profile(model)
    assert profile.period > 0
    for rail in DPU_RAILS:
        assert np.all(profile.powers[rail] >= 0)
        assert profile.mean_power(rail) > 0

    # Latency and fps land in a physically sane window for a B4096.
    fps = 1.0 / profile.period
    assert 1.0 < fps < 2000.0, f"{name}: {fps} fps"

    # A short jittered trace builds and evaluates.
    timelines = runner.trace_timelines(model, duration=0.2, seed=1)
    power = timelines["fpga"].power_at(np.array([0.1]))
    assert power[0] >= 0.0


def test_zoo_fps_span_is_wide(runner):
    # The zoo must span a wide throughput range — that diversity is
    # what the classifier keys on.
    rates = [
        1.0 / runner.cycle_period(build_model(name))
        for name in list_models()
    ]
    assert max(rates) / min(rates) > 10
