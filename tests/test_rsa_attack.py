"""Integration tests for the RSA Hamming-weight attack (reduced size)."""

import numpy as np
import pytest

from repro.analysis.stats import linear_fit
from repro.core.rsa_attack import RsaHammingWeightAttack
from repro.crypto.rsa_math import PAPER_HAMMING_WEIGHTS

WEIGHT_SUBSET = (1, 256, 512, 768, 1024)


@pytest.fixture(scope="module")
def attack():
    return RsaHammingWeightAttack(seed=0)


@pytest.fixture(scope="module")
def current_sweep(attack):
    return attack.sweep(weights=WEIGHT_SUBSET, n_samples=3000)


class TestProfiles:
    def test_profile_count(self, current_sweep):
        assert len(current_sweep.profiles) == len(WEIGHT_SUBSET)

    def test_weights_recorded(self, current_sweep):
        np.testing.assert_array_equal(current_sweep.weights, WEIGHT_SUBSET)

    def test_medians_increase_with_weight(self, current_sweep):
        medians = current_sweep.medians
        assert np.all(np.diff(medians) > 0)

    def test_current_separates_all_keys(self, current_sweep):
        assert current_sweep.distinguishable_groups() == len(WEIGHT_SUBSET)

    def test_calibration_is_linear(self, current_sweep):
        fit = current_sweep.calibration()
        assert fit.r > 0.999
        # ~7 mA per 64 Hamming-weight steps -> ~0.11 mA per unit weight.
        assert 0.05 < fit.slope < 0.2

    def test_profile_summary(self, current_sweep):
        summary = current_sweep.profiles[0].summary
        assert summary.n == 3000
        assert summary.q3 >= summary.q1


class TestPowerChannel:
    def test_power_collapses_groups(self, attack):
        power = attack.sweep(
            weights=PAPER_HAMMING_WEIGHTS, quantity="power", n_samples=1500
        )
        groups = power.distinguishable_groups()
        # Paper: "the power measurements could only categorize the 17
        # keys into 5 groups".
        assert 3 <= groups <= 7
        assert groups < 17


class TestInference:
    def test_infer_known_weight(self, attack, current_sweep):
        calibration = current_sweep.calibration()
        profile = attack.profile_key(
            attack.make_circuit(512), n_samples=3000
        )
        estimate = attack.infer_weight(profile.values, calibration)
        assert abs(estimate - 512) < 64  # within one weight step

    def test_end_to_end(self, attack, current_sweep):
        calibration = current_sweep.calibration()
        estimate = attack.end_to_end(768, calibration, n_samples=3000)
        assert abs(estimate - 768) < 64

    def test_infer_rejects_empty(self, attack, current_sweep):
        with pytest.raises(ValueError):
            attack.infer_weight(np.array([]), current_sweep.calibration())

    def test_infer_rejects_degenerate_calibration(self, attack):
        flat = linear_fit([0.0, 1.0], [5.0, 5.0])
        with pytest.raises(ValueError, match="zero slope"):
            attack.infer_weight(np.array([5.0]), flat)


class TestSetup:
    def test_circuit_uses_paper_clock(self, attack):
        circuit = attack.make_circuit(64)
        assert circuit.clock_hz == pytest.approx(100e6)
        assert circuit.hamming_weight == 64

    def test_sampling_default_1khz(self, attack):
        assert attack.sampling_hz == pytest.approx(1000.0)

    def test_oversampled_readings_repeat(self, attack):
        profile = attack.profile_key(attack.make_circuit(128), n_samples=500)
        # 500 polls at 1 kHz span 0.5 s = ~14 sensor updates.
        assert np.unique(profile.values).size < 30

    def test_rail_left_clean(self, attack):
        assert "rsa" not in attack.soc.rail("fpga").workload_names
