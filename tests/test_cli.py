"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_boards_parses(self):
        args = build_parser().parse_args(["boards"])
        assert args.command == "boards"

    def test_characterize_defaults(self):
        args = build_parser().parse_args(["characterize"])
        assert args.samples == 1000
        assert args.seed == 0

    def test_fingerprint_options(self):
        args = build_parser().parse_args(
            ["fingerprint", "--models", "resnet-50", "vgg-19",
             "--traces", "4", "--channels", "fpga/current", "ddr/current"]
        )
        assert args.models == ["resnet-50", "vgg-19"]
        assert args.traces == 4
        assert args.channels == ["fpga/current", "ddr/current"]

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["selfdestruct"])


class TestCommands:
    def test_boards_output(self, capsys):
        assert main(["boards"]) == 0
        out = capsys.readouterr().out
        assert "ZCU102" in out
        assert "VHK158" in out

    def test_characterize_small(self, capsys):
        assert main(["characterize", "--samples", "30", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "variation ratio" in out
        assert "current" in out

    def test_rsa_small(self, capsys):
        assert main(["rsa", "--samples", "1500"]) == 0
        out = capsys.readouterr().out
        assert "groups" in out

    def test_covert_small(self, capsys):
        assert main(
            ["covert", "--bits", "16", "--bit-period", "0.2"]
        ) == 0
        out = capsys.readouterr().out
        assert "goodput" in out

    def test_fingerprint_small(self, capsys):
        assert main(
            [
                "fingerprint",
                "--models", "resnet-50", "vgg-19", "squeezenet-1.1",
                "--traces", "4", "--folds", "2", "--trees", "5",
                "--duration", "2.0",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "top-1" in out
