"""Tests for the PDN regulator and droop models."""

import numpy as np
import pytest

from repro.fpga.pdn import (
    VoltageRegulator,
    inductive_drop,
    resistive_drop,
    transient_vdrop,
    versal_regulator,
    zynq_us_plus_regulator,
)


class TestDroopEquations:
    def test_resistive(self):
        np.testing.assert_allclose(resistive_drop(np.array([2.0]), 0.01), [0.02])

    def test_inductive(self):
        np.testing.assert_allclose(
            inductive_drop(np.array([1e6]), 1e-9), [1e-3]
        )

    def test_equation_one(self):
        # V_drop = I*R + L*dI/dt (paper Eq. 1).
        drop = transient_vdrop(
            np.array([1.0]), np.array([1e6]), 0.01, 1e-9
        )
        np.testing.assert_allclose(drop, [0.01 + 1e-3])

    def test_negative_resistance_rejected(self):
        with pytest.raises(ValueError):
            resistive_drop(np.array([1.0]), -0.01)


class TestVoltageRegulator:
    def test_no_load_voltage_is_setpoint(self):
        regulator = VoltageRegulator()
        np.testing.assert_allclose(regulator.voltage(np.array([0.0])), 0.8505)

    def test_droop_is_monotonic(self):
        regulator = VoltageRegulator()
        currents = np.linspace(0, 8, 50)
        volts = regulator.voltage(currents)
        assert np.all(np.diff(volts) <= 0)

    def test_stays_in_band_under_extreme_load(self):
        regulator = VoltageRegulator()
        volts = regulator.voltage(np.array([1000.0]))
        low, high = regulator.band
        assert low <= volts[0] <= high

    def test_ripple_is_clamped_to_band(self):
        regulator = VoltageRegulator()
        volts = regulator.voltage(np.array([0.0]), ripple=np.array([1.0]))
        assert volts[0] == regulator.band[1]

    def test_droop_magnitude_matches_calibration(self):
        # ~3 mV over the Fig 2 sweep's ~6.4 A dynamic range: small
        # enough to stay deep inside the 51 mV stabilizer band, large
        # enough for the RO to see *something*.
        regulator = zynq_us_plus_regulator()
        droop = regulator.droop_at(7.6) - regulator.droop_at(1.2)
        assert 2e-3 < droop < 5e-3

    def test_quadratic_term_bends_the_load_line(self):
        regulator = VoltageRegulator(r_loadline=0.0, k_quadratic=1e-4)
        v1 = regulator.voltage(np.array([1.0]))[0]
        v2 = regulator.voltage(np.array([2.0]))[0]
        drop1 = regulator.v_set - v1
        drop2 = regulator.v_set - v2
        assert drop2 == pytest.approx(4 * drop1)

    def test_negative_current_rejected(self):
        with pytest.raises(ValueError):
            VoltageRegulator().voltage(np.array([-1.0]))

    def test_setpoint_outside_band_rejected(self):
        with pytest.raises(ValueError):
            VoltageRegulator(v_set=0.9, band=(0.825, 0.876))

    def test_invalid_band_rejected(self):
        with pytest.raises(ValueError):
            VoltageRegulator(v_set=0.85, band=(0.9, 0.8))

    def test_versal_band(self):
        regulator = versal_regulator()
        assert regulator.band == (0.775, 0.825)
        np.testing.assert_allclose(regulator.voltage(np.array([0.0])), 0.80)

    def test_factory_overrides(self):
        regulator = zynq_us_plus_regulator(r_loadline=1e-3)
        assert regulator.r_loadline == pytest.approx(1e-3)

    def test_droop_at_scalar(self):
        regulator = VoltageRegulator(r_loadline=1e-3, k_quadratic=0.0)
        assert regulator.droop_at(2.0) == pytest.approx(2e-3)
