"""Checkpoint/resume: interrupted recordings finish byte-identically.

The contract: every recording loop (fingerprint dataset collection,
the RSA sweep, the end-to-end campaign) checkpoints its progress into
the v2 archive manifest, and a run killed at any point — torn manifest
tail, orphaned chunk file, half-finished multi-chunk unit — resumes
from its last checkpoint and seals an archive *byte-identical* to an
uninterrupted run's.  Corruption that cannot be safely rolled back
(mid-manifest damage, a sealed archive) is refused with a clear
:class:`~repro.core.io.ArchiveError`, never silently patched.
"""

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.fingerprint import DnnFingerprinter, FingerprintConfig
from repro.core.io import (
    ArchiveError,
    TraceArchiveReader,
    TraceArchiveWriter,
)
from repro.core.rsa_attack import RsaHammingWeightAttack
from repro.session import AttackSession

pytestmark = pytest.mark.faults

MODELS = ["resnet-50", "vgg-16", "mobilenet-v2-1.0"]
CONFIG = dict(duration=1.0, traces_per_model=3, n_folds=2, forest_trees=5)
CHANNELS = [("fpga", "current"), ("ddr", "current")]


def tree_hash(root) -> str:
    """One digest over every file in an archive directory."""
    digest = hashlib.sha256()
    for path in sorted(Path(root).rglob("*")):
        if path.is_file():
            digest.update(path.name.encode())
            digest.update(path.read_bytes())
    return digest.hexdigest()


class Bomb(Exception):
    """The injected mid-recording crash."""


def _explode_after(writer, n_appends):
    """Make the writer's append crash after ``n_appends`` successes."""
    real_append = writer.append
    state = {"left": n_appends}

    def append(*args, **kwargs):
        if state["left"] == 0:
            raise Bomb()
        state["left"] -= 1
        return real_append(*args, **kwargs)

    writer.append = append


def _fingerprinter(sink_resume=False):
    session = AttackSession.create(seed=5)
    return DnnFingerprinter(
        session=session, config=FingerprintConfig(**CONFIG)
    )


class TestFingerprintResume:
    def _record_uninterrupted(self, out):
        fingerprinter = _fingerprinter()
        with TraceArchiveWriter(out, meta={"experiment": "test"}) as writer:
            datasets = fingerprinter.collect_datasets(
                models=MODELS, channels=CHANNELS, sink=writer
            )
        return datasets

    def test_killed_run_resumes_byte_identical(self, tmp_path):
        clean, broken = tmp_path / "clean", tmp_path / "broken"
        reference = self._record_uninterrupted(clean)

        writer = TraceArchiveWriter(broken, meta={"experiment": "test"})
        _explode_after(writer, n_appends=5)
        with pytest.raises(Bomb):
            with writer:
                _fingerprinter().collect_datasets(
                    models=MODELS, channels=CHANNELS, sink=writer
                )

        resumed_writer = TraceArchiveWriter(
            broken, meta={"experiment": "test"}, resume=True
        )
        with resumed_writer:
            resumed = _fingerprinter().collect_datasets(
                models=MODELS,
                channels=CHANNELS,
                sink=resumed_writer,
                resume=True,
            )

        assert tree_hash(clean) == tree_hash(broken)
        for channel in reference:
            for a, b in zip(reference[channel], resumed[channel]):
                np.testing.assert_array_equal(a.values, b.values)
                np.testing.assert_array_equal(a.times, b.times)

    def test_resumed_analysis_matches(self, tmp_path):
        clean, broken = tmp_path / "clean", tmp_path / "broken"
        reference = self._record_uninterrupted(clean)
        writer = TraceArchiveWriter(broken, meta={"experiment": "test"})
        _explode_after(writer, n_appends=3)
        with pytest.raises(Bomb):
            with writer:
                _fingerprinter().collect_datasets(
                    models=MODELS, channels=CHANNELS, sink=writer
                )
        resumed_writer = TraceArchiveWriter(
            broken, meta={"experiment": "test"}, resume=True
        )
        with resumed_writer:
            resumed = _fingerprinter().collect_datasets(
                models=MODELS,
                channels=CHANNELS,
                sink=resumed_writer,
                resume=True,
            )
        fingerprinter = _fingerprinter()
        a = fingerprinter.evaluate_channel(reference[("fpga", "current")])
        b = fingerprinter.evaluate_channel(resumed[("fpga", "current")])
        assert a.top1 == b.top1
        assert a.top5 == b.top5

    def test_resume_without_sink_rejected(self):
        with pytest.raises(ValueError, match="sink"):
            _fingerprinter().collect_datasets(
                models=MODELS, channels=CHANNELS, resume=True
            )


class TestRsaResume:
    WEIGHTS = (4, 8, 12)

    def _attack(self):
        return RsaHammingWeightAttack(
            session=AttackSession.create(seed=5)
        )

    def test_killed_sweep_resumes_byte_identical(self, tmp_path):
        clean, broken = tmp_path / "clean", tmp_path / "broken"
        attack = self._attack()
        with TraceArchiveWriter(
            clean, meta=attack.archive_meta(weights=self.WEIGHTS)
        ) as writer:
            reference = attack.collect_sweep(
                weights=self.WEIGHTS, n_samples=300, sink=writer
            )

        attack = self._attack()
        writer = TraceArchiveWriter(
            broken, meta=attack.archive_meta(weights=self.WEIGHTS)
        )
        _explode_after(writer, n_appends=1)
        with pytest.raises(Bomb):
            with writer:
                attack.collect_sweep(
                    weights=self.WEIGHTS, n_samples=300, sink=writer
                )

        attack = self._attack()
        writer = TraceArchiveWriter(
            broken,
            meta=attack.archive_meta(weights=self.WEIGHTS),
            resume=True,
        )
        with writer:
            resumed = attack.collect_sweep(
                weights=self.WEIGHTS,
                n_samples=300,
                sink=writer,
                resume=True,
            )
        assert tree_hash(clean) == tree_hash(broken)
        for a, b in zip(reference, resumed):
            assert a.label == b.label
            np.testing.assert_array_equal(a.values, b.values)

    def test_resume_requires_sink(self):
        with pytest.raises(ValueError, match="sink"):
            self._attack().collect_sweep(
                weights=self.WEIGHTS, n_samples=300, resume=True
            )


class TestCampaignResume:
    def _campaign(self):
        from repro.core.campaign import AttackCampaign
        from repro.soc.workload import PiecewiseActivity

        session = AttackSession.create(seed=5)
        session.soc.attach_workload(
            "fpga",
            "victim",
            PiecewiseActivity([0.0, 2.0, 1e9], [0.0, 3.0]),
        )
        return AttackCampaign(session=session)

    def test_killed_campaign_resumes_byte_identical(self, tmp_path):
        clean, broken = tmp_path / "clean", tmp_path / "broken"
        kwargs = dict(
            victim_start=2.0,
            trace_duration=3.0,
            timeout=20.0,
            chunk_duration=1.0,
        )
        reference = self._campaign().run_archived(clean, **kwargs)

        campaign = self._campaign()
        writer_cls = TraceArchiveWriter

        original_append = writer_cls.append
        counter = {"left": 1}

        def bombed_append(self, *args, **kw):
            if counter["left"] == 0:
                raise Bomb()
            counter["left"] -= 1
            return original_append(self, *args, **kw)

        try:
            writer_cls.append = bombed_append
            with pytest.raises(Bomb):
                campaign.run_archived(broken, **kwargs)
        finally:
            writer_cls.append = original_append

        resumed = self._campaign().run_archived(
            broken, resume=True, **kwargs
        )
        assert tree_hash(clean) == tree_hash(broken)
        np.testing.assert_array_equal(reference.values, resumed.values)
        np.testing.assert_array_equal(reference.times, resumed.times)


class TestArchiveRecovery:
    """What the writer accepts, repairs, or refuses on resume."""

    def _partial_archive(self, out, n_appends=2):
        attack = RsaHammingWeightAttack(session=AttackSession.create(seed=5))
        writer = TraceArchiveWriter(out, meta={"experiment": "test"})
        _explode_after(writer, n_appends=n_appends)
        with pytest.raises(Bomb):
            with writer:
                attack.collect_sweep(
                    weights=(4, 8, 12), n_samples=300, sink=writer
                )
        return out

    def test_torn_manifest_tail_is_truncated(self, tmp_path):
        out = self._partial_archive(tmp_path / "arch")
        manifest = out / "manifest.jsonl"
        intact = manifest.read_text()
        manifest.write_text(intact + '{"chunk": "torn-mid-wr')
        writer = TraceArchiveWriter(
            out, meta={"experiment": "test"}, resume=True
        )
        writer.abort()
        assert manifest.read_text() == intact

    def test_corrupt_trailing_chunk_is_dropped(self, tmp_path):
        out = self._partial_archive(tmp_path / "arch")
        chunks = sorted(out.glob("chunk_*.npz"))
        chunks[-1].write_bytes(b"not an npz at all")
        writer = TraceArchiveWriter(
            out, meta={"experiment": "test"}, resume=True
        )
        try:
            # The unreadable chunk's manifest entry is gone; recording
            # will overwrite the file at the same index.
            assert len(writer.entries) == len(chunks) - 1
            assert writer.n_chunks == len(chunks) - 1
        finally:
            writer.abort()

    def test_mid_manifest_corruption_is_refused(self, tmp_path):
        out = self._partial_archive(tmp_path / "arch")
        manifest = out / "manifest.jsonl"
        lines = manifest.read_text().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]
        manifest.write_text("\n".join(lines) + "\n")
        with pytest.raises(ArchiveError, match="not a torn tail"):
            TraceArchiveWriter(
                out, meta={"experiment": "test"}, resume=True
            )

    def test_sealed_archive_refuses_resume(self, tmp_path):
        out = tmp_path / "arch"
        attack = RsaHammingWeightAttack(session=AttackSession.create(seed=5))
        with TraceArchiveWriter(out, meta={"experiment": "test"}) as writer:
            attack.collect_sweep(weights=(4,), n_samples=300, sink=writer)
        with pytest.raises(ArchiveError, match="already sealed"):
            TraceArchiveWriter(
                out, meta={"experiment": "test"}, resume=True
            )

    def test_meta_mismatch_refuses_resume(self, tmp_path):
        out = self._partial_archive(tmp_path / "arch")
        with pytest.raises(ArchiveError, match="metadata mismatch"):
            TraceArchiveWriter(
                out, meta={"experiment": "different"}, resume=True
            )

    def test_existing_manifest_without_resume_refused(self, tmp_path):
        out = self._partial_archive(tmp_path / "arch")
        with pytest.raises(ArchiveError, match="pass resume=True"):
            TraceArchiveWriter(out, meta={"experiment": "test"})

    def test_checkpoint_state_survives_reload(self, tmp_path):
        out = self._partial_archive(tmp_path / "arch", n_appends=2)
        writer = TraceArchiveWriter(
            out, meta={"experiment": "test"}, resume=True
        )
        try:
            state = writer.checkpoint_state
            assert state is not None
            assert state["keys_done"] == 2
        finally:
            writer.abort()

    def test_drop_entries_after_checkpoint(self, tmp_path):
        out = tmp_path / "arch"
        writer = TraceArchiveWriter(out, meta={"experiment": "test"})
        attack = RsaHammingWeightAttack(session=AttackSession.create(seed=5))
        traces = list(
            attack.collect_sweep(weights=(4, 8), n_samples=300)
        )
        writer.append(traces[0])
        writer.checkpoint({"keys_done": 1})
        writer.append(traces[1])  # persisted after the last checkpoint
        writer.abort()
        resumed = TraceArchiveWriter(
            out, meta={"experiment": "test"}, resume=True
        )
        try:
            assert len(resumed.entries) == 2
            dropped = resumed.drop_entries_after_checkpoint()
            assert dropped == 1
            assert len(resumed.entries) == 1
        finally:
            resumed.abort()

    def test_reader_rejects_unsealed_archive(self, tmp_path):
        out = self._partial_archive(tmp_path / "arch")
        with pytest.raises(ArchiveError):
            TraceArchiveReader(out)


class TestFaultedArchiveRoundtrip:
    def test_quality_metadata_survives_the_archive(self, tmp_path):
        out = tmp_path / "arch"
        session = AttackSession.create(seed=5, faults=0.2)
        trace = session.sampler.collect(
            "fpga", "current", start=1.0, n_samples=300, label="faulted"
        )
        assert trace.quality is not None and trace.quality.retries > 0
        with TraceArchiveWriter(out, meta={"experiment": "test"}) as writer:
            writer.append(trace)
        loaded = TraceArchiveReader(out).load_traceset()
        assert len(loaded) == 1
        restored = next(iter(loaded))
        assert restored.quality == trace.quality
        np.testing.assert_array_equal(restored.values, trace.values)

    def test_faulted_resume_is_byte_identical(self, tmp_path):
        clean, broken = tmp_path / "clean", tmp_path / "broken"

        def attack():
            return RsaHammingWeightAttack(
                session=AttackSession.create(seed=5, faults=0.1)
            )

        weights = (4, 8, 12)
        with TraceArchiveWriter(clean, meta={"experiment": "test"}) as writer:
            attack().collect_sweep(
                weights=weights, n_samples=300, sink=writer
            )
        writer = TraceArchiveWriter(broken, meta={"experiment": "test"})
        _explode_after(writer, n_appends=1)
        with pytest.raises(Bomb):
            with writer:
                attack().collect_sweep(
                    weights=weights, n_samples=300, sink=writer
                )
        writer = TraceArchiveWriter(
            broken, meta={"experiment": "test"}, resume=True
        )
        with writer:
            attack().collect_sweep(
                weights=weights, n_samples=300, sink=writer, resume=True
            )
        assert tree_hash(clean) == tree_hash(broken)

    def test_checkpoints_invisible_to_reader_traces(self, tmp_path):
        out = tmp_path / "arch"
        attack = RsaHammingWeightAttack(session=AttackSession.create(seed=5))
        with TraceArchiveWriter(out, meta={"experiment": "test"}) as writer:
            attack.collect_sweep(
                weights=(4, 8), n_samples=300, sink=writer
            )
        reader = TraceArchiveReader(out)
        assert len(reader.entries) == 2
        assert reader.checkpoint is not None
        assert reader.checkpoint["keys_done"] == 2
        manifest_kinds = [
            "checkpoint" in json.loads(line)
            for line in (out / "manifest.jsonl").read_text().splitlines()
        ]
        assert any(manifest_kinds), "checkpoints must be in the manifest"
