"""Unit tests for the deterministic fault-injection plane.

The contract under test: a :class:`repro.faults.FaultPlan` is a pure
function of ``(plan seed, device name, poll time)``, so schedules are
bit-identical across runs and chunk boundaries, different devices fail
independently, and the no-op plan can never perturb anything.
"""

import numpy as np
import pytest

from repro.faults import (
    DEAD,
    FLAKY,
    HEALTHY,
    TORN_MAGNITUDE,
    FaultPlan,
    RetryPolicy,
    SensorHealth,
    resolve_fault_plan,
    worst_health,
)
from repro.perf.config import FAULT_RATE_ENV

pytestmark = pytest.mark.faults


def _times(n=512, start=1.0, hz=1000.0):
    return start + np.arange(n) / hz


class TestFaultPlanConstruction:
    def test_none_is_noop(self):
        assert FaultPlan.none().is_noop
        assert FaultPlan.none(seed=9).seed == 9

    def test_at_rate_zero_is_noop(self):
        assert FaultPlan.at_rate(0.0).is_noop

    def test_at_rate_scales_every_family(self):
        plan = FaultPlan.at_rate(0.4)
        assert plan.transient_rate == 0.4
        assert plan.torn_rate == pytest.approx(0.1)
        assert plan.stale_rate == pytest.approx(0.1)
        assert plan.hotplug_rate == pytest.approx(0.2)
        assert plan.interval_change_rate == pytest.approx(0.05)
        assert not plan.is_noop

    @pytest.mark.parametrize("rate", [-0.1, 1.5])
    def test_at_rate_rejects_out_of_range(self, rate):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            FaultPlan.at_rate(rate)

    def test_field_validation(self):
        with pytest.raises(ValueError, match="transient_rate"):
            FaultPlan(transient_rate=2.0)
        with pytest.raises(ValueError, match="stale_run_latches"):
            FaultPlan(stale_run_latches=0)
        with pytest.raises(ValueError, match="slot_s"):
            FaultPlan(slot_s=0.0)

    def test_with_seed_keeps_shape(self):
        plan = FaultPlan.at_rate(0.2, seed=1).with_seed(7)
        assert plan.seed == 7
        assert plan.transient_rate == 0.2

    def test_repr_forms(self):
        assert "none" in repr(FaultPlan.none())
        assert "transient" in repr(FaultPlan.at_rate(0.1))


class TestResolveFaultPlan:
    def test_none_without_env_resolves_to_nothing(self, monkeypatch):
        monkeypatch.delenv(FAULT_RATE_ENV, raising=False)
        assert resolve_fault_plan(None) is None

    def test_none_with_env_builds_rate_plan(self, monkeypatch):
        monkeypatch.setenv(FAULT_RATE_ENV, "0.25")
        plan = resolve_fault_plan(None, seed=4)
        assert plan is not None
        assert plan.transient_rate == 0.25
        assert plan.seed == 4

    def test_float_shorthand(self):
        plan = resolve_fault_plan(0.1, seed=2)
        assert plan.transient_rate == 0.1

    def test_plan_passthrough_and_noop_collapse(self):
        plan = FaultPlan.at_rate(0.3)
        assert resolve_fault_plan(plan) is plan
        assert resolve_fault_plan(FaultPlan.none()) is None
        assert resolve_fault_plan(0.0) is None

    def test_rejects_other_types(self):
        with pytest.raises(TypeError, match="faults must be"):
            resolve_fault_plan("0.5")
        with pytest.raises(TypeError, match="faults must be"):
            resolve_fault_plan(True)


class TestScheduleDeterminism:
    def test_masks_identical_across_calls(self):
        plan = FaultPlan.at_rate(0.3, seed=11)
        key = plan.device_key("ina226_u76")
        times = _times()
        for method in ("transient_mask", "torn_mask", "hotplug_mask"):
            first = getattr(plan, method)(key, times)
            second = getattr(plan, method)(key, times)
            np.testing.assert_array_equal(first, second)
        assert plan.transient_mask(key, times).any()
        assert plan.torn_mask(key, times).any()

    def test_masks_independent_of_chunking(self):
        plan = FaultPlan.at_rate(0.3, seed=11)
        key = plan.device_key("ina226_u76")
        times = _times(400)
        whole = plan.transient_mask(key, times)
        split = np.concatenate(
            [plan.transient_mask(key, times[:123]),
             plan.transient_mask(key, times[123:])]
        )
        np.testing.assert_array_equal(whole, split)

    def test_devices_fail_independently(self):
        plan = FaultPlan.at_rate(0.3, seed=11)
        times = _times()
        a = plan.transient_mask(plan.device_key("ina226_u76"), times)
        b = plan.transient_mask(plan.device_key("ina226_u77"), times)
        assert not np.array_equal(a, b)

    def test_seed_changes_schedule(self):
        times = _times()
        a = FaultPlan.at_rate(0.3, seed=1)
        b = FaultPlan.at_rate(0.3, seed=2)
        assert not np.array_equal(
            a.transient_mask(a.device_key("x"), times),
            b.transient_mask(b.device_key("x"), times),
        )

    def test_retry_time_draws_fresh_outcome(self):
        # A shifted poll is a different hash counter, so a retry can
        # recover — the schedule is per-instant, not per-sample-index.
        plan = FaultPlan.at_rate(0.5, seed=3)
        key = plan.device_key("dev")
        times = _times(200)
        base = plan.transient_mask(key, times)
        shifted = plan.transient_mask(key, times + 2e-3)
        assert base.any()
        assert not np.array_equal(base, shifted)


class TestValueShaping:
    def test_torn_values_break_plausibility(self):
        plan = FaultPlan(torn_rate=0.5, seed=5)
        key = plan.device_key("dev")
        times = _times(256)
        mask = plan.torn_mask(key, times)
        assert mask.any()
        values = np.full(times.shape, 1200, dtype=np.int64)
        corrupted = plan.torn_values(key, values, times, mask)
        assert (np.abs(corrupted[mask]) >= TORN_MAGNITUDE).all()
        np.testing.assert_array_equal(corrupted[~mask], values[~mask])
        # Input untouched (copy-on-corrupt).
        assert (values == 1200).all()

    def test_stale_runs_clamp_blocks(self):
        plan = FaultPlan(stale_rate=1.0, stale_run_latches=4, seed=0)
        latches = np.arange(32)
        shaped = plan.shape_latches(plan.device_key("d"), latches, _times(32))
        np.testing.assert_array_equal(shaped, (latches // 4) * 4)

    def test_interval_change_quantizes(self):
        plan = FaultPlan(
            interval_change_rate=1.0, interval_change_factor=8, seed=0
        )
        latches = np.arange(64)
        shaped = plan.shape_latches(plan.device_key("d"), latches, _times(64))
        np.testing.assert_array_equal(shaped, (latches // 8) * 8)

    def test_noop_plan_shapes_nothing(self):
        plan = FaultPlan.none()
        latches = np.arange(64)
        shaped = plan.shape_latches(plan.device_key("d"), latches, _times(64))
        np.testing.assert_array_equal(shaped, latches)
        key = plan.device_key("d")
        assert not plan.transient_mask(key, _times()).any()
        assert not plan.torn_mask(key, _times()).any()
        assert not plan.hotplug_mask(key, _times()).any()

    def test_hotplug_windows_respect_duration(self):
        plan = FaultPlan(
            hotplug_rate=1.0, hotplug_duration_s=0.05, slot_s=1.0
        )
        key = plan.device_key("d")
        times = np.arange(0.0, 3.0, 0.01)
        mask = plan.hotplug_mask(key, times)
        in_window = (times - np.floor(times)) < 0.05
        np.testing.assert_array_equal(mask, in_window)


class TestRetryPolicy:
    def test_backoff_is_geometric(self):
        policy = RetryPolicy(backoff_s=1e-3, backoff_multiplier=2.0)
        assert policy.backoff(0) == pytest.approx(1e-3)
        assert policy.backoff(1) == pytest.approx(2e-3)
        assert policy.backoff(2) == pytest.approx(4e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_s=0.0)


class TestSensorHealth:
    def test_progression_to_dead(self):
        health = SensorHealth(dead_after_outages=2)
        assert health.state == HEALTHY
        health.note_read(faults=3, gaps=0, total=100)
        assert health.state == FLAKY
        health.note_read(faults=100, gaps=100, total=100)
        assert health.state == FLAKY
        health.note_read(faults=100, gaps=100, total=100)
        assert health.state == DEAD
        assert health.is_dead

    def test_successful_read_breaks_outage_run(self):
        health = SensorHealth(dead_after_outages=2)
        health.note_read(faults=100, gaps=100, total=100)
        health.note_read(faults=0, gaps=0, total=100)
        health.note_read(faults=100, gaps=100, total=100)
        assert health.state == FLAKY

    def test_force_dead_and_reset(self):
        health = SensorHealth()
        health.force_dead()
        assert health.is_dead
        health.reset()
        assert health.state == HEALTHY

    def test_worst_health_ordering(self):
        assert worst_health(HEALTHY, FLAKY) == FLAKY
        assert worst_health(FLAKY, DEAD, HEALTHY) == DEAD
        assert worst_health(HEALTHY) == HEALTHY
