"""Property-based tests for RSA math and the ML stack."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.rsa_math import (
    exponent_bits_lsb_first,
    hamming_weight,
    make_exponent_with_weight,
    square_and_multiply,
)
from repro.ml.forest import RandomForestClassifier
from repro.ml.tree import DecisionTreeClassifier, gini_impurity


class TestRsaProperties:
    @given(
        st.integers(min_value=0, max_value=2**64),
        st.integers(min_value=1, max_value=2**32),
        st.integers(min_value=2, max_value=2**64),
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_builtin_pow(self, base, exponent, modulus):
        width = max(exponent.bit_length(), 1)
        assert square_and_multiply(base, exponent, modulus, width) == pow(
            base, exponent, modulus
        )

    @given(st.integers(min_value=0, max_value=2**128))
    @settings(max_examples=100, deadline=None)
    def test_bits_reconstruct_exponent(self, exponent):
        width = max(exponent.bit_length(), 1)
        bits = exponent_bits_lsb_first(exponent, width)
        rebuilt = sum(bit << i for i, bit in enumerate(bits))
        assert rebuilt == exponent

    @given(st.integers(min_value=0, max_value=2**128))
    @settings(max_examples=100, deadline=None)
    def test_hamming_weight_matches_bits(self, value):
        width = max(value.bit_length(), 1)
        assert hamming_weight(value) == sum(
            exponent_bits_lsb_first(value, width)
        )

    @given(
        st.integers(min_value=1, max_value=256),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=80, deadline=None)
    def test_constructed_weight_exact(self, weight, seed):
        exponent = make_exponent_with_weight(weight, width=256, seed=seed)
        assert hamming_weight(exponent) == weight
        assert exponent.bit_length() <= 256


class TestGiniProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e6),
                    min_size=1, max_size=16))
    @settings(max_examples=100, deadline=None)
    def test_gini_bounds(self, counts):
        value = gini_impurity(np.asarray(counts))
        assert -1e-9 <= value <= 1.0

    @given(st.floats(min_value=1.0, max_value=1e6),
           st.integers(min_value=1, max_value=16))
    @settings(max_examples=60, deadline=None)
    def test_uniform_gini_formula(self, count, k):
        counts = np.full(k, count)
        assert np.isclose(gini_impurity(counts), 1.0 - 1.0 / k)

    @given(st.floats(min_value=1.0, max_value=1e6),
           st.integers(min_value=1, max_value=16))
    @settings(max_examples=60, deadline=None)
    def test_pure_node_zero(self, count, k):
        counts = np.zeros(k)
        counts[0] = count
        assert gini_impurity(counts) == 0.0


@st.composite
def small_dataset(draw):
    n_classes = draw(st.integers(min_value=2, max_value=4))
    n_per_class = draw(st.integers(min_value=3, max_value=10))
    d = draw(st.integers(min_value=1, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=1000))
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(n_classes, d)) * 4
    X = np.vstack(
        [
            centers[c] + rng.normal(size=(n_per_class, d))
            for c in range(n_classes)
        ]
    )
    y = np.repeat(np.arange(n_classes), n_per_class)
    return X, y


class TestClassifierProperties:
    @given(small_dataset())
    @settings(max_examples=30, deadline=None)
    def test_tree_proba_is_distribution(self, data):
        X, y = data
        tree = DecisionTreeClassifier(seed=0).fit(X, y)
        proba = tree.predict_proba(X)
        assert np.all(proba >= 0)
        assert np.allclose(proba.sum(axis=1), 1.0)

    @given(small_dataset())
    @settings(max_examples=30, deadline=None)
    def test_tree_predictions_are_known_classes(self, data):
        X, y = data
        tree = DecisionTreeClassifier(seed=0).fit(X, y)
        assert set(tree.predict(X)) <= set(np.unique(y))

    @given(small_dataset(), st.integers(min_value=1, max_value=31))
    @settings(max_examples=20, deadline=None)
    def test_depth_always_respected(self, data, max_depth):
        X, y = data
        tree = DecisionTreeClassifier(max_depth=max_depth, seed=0).fit(X, y)
        assert tree.depth <= max_depth

    @given(small_dataset())
    @settings(max_examples=15, deadline=None)
    def test_forest_proba_is_distribution(self, data):
        X, y = data
        forest = RandomForestClassifier(n_estimators=5, seed=0).fit(X, y)
        proba = forest.predict_proba(X)
        assert np.all(proba >= 0)
        assert np.allclose(proba.sum(axis=1), 1.0)

    @given(small_dataset())
    @settings(max_examples=15, deadline=None)
    def test_forest_topk_rows_are_unique(self, data):
        X, y = data
        forest = RandomForestClassifier(n_estimators=5, seed=0).fit(X, y)
        k = forest.classes_.size
        topk = forest.predict_topk(X, k)
        for row in topk:
            assert len(set(row)) == k
