"""Whole-program flow analysis: call graph, taint, cache, SARIF.

Covers the ``repro.check.flow`` layer end to end: cross-module taint
(the rules the per-file checker cannot express), call-graph
resolution, incremental cache invalidation through the module graph,
SARIF rendering, baseline pruning and the ``--changed-only`` git mode.
Marked ``check`` alongside the tree meta-tests.
"""

from __future__ import annotations

import json
import subprocess
import textwrap
from pathlib import Path

import pytest

from repro.check import (
    Finding,
    load_baseline,
    prune_baseline,
    render_sarif,
    run_check,
    write_baseline,
    RULES,
)
from repro.check.flow import (
    CallGraph,
    FLOW_RULE_IDS,
    build_module_graph,
    extract_module_facts,
    module_name_for,
)
from repro.check.flow.modgraph import ModuleGraph
from repro.check.rules import Module

pytestmark = pytest.mark.check

FIXTURES = Path(__file__).parent / "data" / "check_fixtures"
FLOW_FIXTURES = FIXTURES / "flow"


def _facts(tmp_path, name: str, source: str):
    path = tmp_path / f"{name}.py"
    path.write_text(textwrap.dedent(source))
    module = Module.parse(path, f"{name}.py")
    return extract_module_facts(module)


def _check(paths, rules=None, **kwargs):
    kwargs.setdefault("baseline", "")
    kwargs.setdefault("root", FIXTURES)
    kwargs.setdefault("use_cache", False)
    return run_check(paths=paths, rules=rules, **kwargs)


# ------------------------------------------------------- cross-module taint


def test_cross_module_flow001():
    """The tainted generator is constructed in a different module."""
    result = _check(
        [FLOW_FIXTURES / "xmod_source.py",
         FLOW_FIXTURES / "xmod_sink_bad.py"],
        rules=["FLOW001"],
    )
    assert result.findings
    assert {f.path for f in result.findings} == {"flow/xmod_sink_bad.py"}
    assert all(f.rule == "FLOW001" for f in result.findings)


def test_cross_module_flow001_needs_both_files():
    """Scanning the sink alone cannot prove the taint — no finding."""
    result = _check(
        [FLOW_FIXTURES / "xmod_sink_bad.py"], rules=["FLOW001"]
    )
    assert not result.findings


def test_cross_module_flow004():
    """The unlocked-writing task is submitted from another module."""
    result = _check(
        [FLOW_FIXTURES / "xmod_task.py",
         FLOW_FIXTURES / "xmod_launch_bad.py"],
        rules=["FLOW004"],
    )
    assert result.findings
    assert {f.path for f in result.findings} == {"flow/xmod_task.py"}
    assert "xmod_launch_bad" in result.findings[0].message


def test_flow_rules_honor_inline_suppression(tmp_path):
    source = (FLOW_FIXTURES / "flow002_bad.py").read_text()
    source = source.replace(
        "return Trace(samples=noise, seed=0)",
        "return Trace(samples=noise, seed=0)  "
        "# repro: ignore[FLOW002]",
    )
    bad = tmp_path / "suppressed.py"
    bad.write_text(source)
    result = run_check(
        paths=[bad], rules=["FLOW002"], baseline="", root=tmp_path,
        use_cache=False,
    )
    assert result.ok
    assert result.suppressed == 1


def test_flow_findings_can_be_baselined(tmp_path):
    fresh = _check(
        [FLOW_FIXTURES / "flow004_bad.py"], rules=["FLOW004"]
    )
    assert fresh.findings
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, fresh.findings, existing=[])
    absorbed = _check(
        [FLOW_FIXTURES / "flow004_bad.py"],
        rules=["FLOW004"],
        baseline=baseline_path,
    )
    assert absorbed.ok
    assert len(absorbed.baselined) == len(fresh.findings)


# ------------------------------------------------------------- call graph


def test_callgraph_resolves_aliased_import(tmp_path):
    helper = _facts(
        tmp_path, "helper", """
        def make():
            return 1
        """,
    )
    caller = _facts(
        tmp_path, "caller", """
        from helper import make as build

        def run():
            return build()
        """,
    )
    graph = CallGraph({f.module: f for f in (helper, caller)})
    assert "helper:make" in graph.edges["caller:run"]


def test_callgraph_resolves_bound_method(tmp_path):
    facts = _facts(
        tmp_path, "bound", """
        class Writer:
            def append(self, item):
                return item

        def run():
            writer = Writer()
            return writer.append(1)
        """,
    )
    graph = CallGraph({facts.module: facts})
    assert "bound:Writer.append" in graph.edges["bound:run"]


def test_callgraph_resolves_self_method(tmp_path):
    facts = _facts(
        tmp_path, "selfm", """
        class Runner:
            def step(self):
                return 1

            def run(self):
                return self.step()
        """,
    )
    graph = CallGraph({facts.module: facts})
    assert "selfm:Runner.step" in graph.edges["selfm:Runner.run"]


def test_callgraph_constructor_edge(tmp_path):
    facts = _facts(
        tmp_path, "ctor", """
        class Thing:
            def __init__(self, x):
                self.x = x

        def build():
            return Thing(1)
        """,
    )
    graph = CallGraph({facts.module: facts})
    assert "ctor:Thing.__init__" in graph.edges["ctor:build"]


def test_callgraph_reachability(tmp_path):
    facts = _facts(
        tmp_path, "reach", """
        def leaf():
            return 1

        def mid():
            return leaf()

        def top():
            return mid()

        def island():
            return 0
        """,
    )
    graph = CallGraph({facts.module: facts})
    reachable = graph.reachable_from(["reach:top"])
    assert {"reach:top", "reach:mid", "reach:leaf"} <= reachable
    assert "reach:island" not in reachable


def test_module_graph_dependents_closure():
    graph = ModuleGraph(
        {
            "a": [],
            "b": ["a"],
            "c": ["b"],
            "d": [],
        }
    )
    assert graph.dependents_closure({"a"}) == {"a", "b", "c"}
    assert graph.dependents_closure({"d"}) == {"d"}


def test_module_name_for_paths():
    assert module_name_for("src/repro/perf/bench.py") == (
        "repro.perf.bench"
    )
    assert module_name_for("src/repro/check/__init__.py") == (
        "repro.check"
    )
    assert module_name_for("flow/flow001_bad.py") == "flow.flow001_bad"


# ------------------------------------------------------------------ cache


def _write_chain(root: Path) -> None:
    (root / "base.py").write_text(
        "def origin():\n    return 1\n"
    )
    (root / "mid.py").write_text(
        "from base import origin\n\n\n"
        "def relay():\n    return origin()\n"
    )
    (root / "top.py").write_text(
        "from mid import relay\n\n\n"
        "def consume():\n    return relay()\n"
    )
    (root / "island.py").write_text(
        "def alone():\n    return 0\n"
    )


def test_cache_warm_run_reanalyzes_nothing(tmp_path):
    _write_chain(tmp_path)
    cache_dir = tmp_path / "cache"
    cold = run_check(
        paths=[tmp_path], baseline="", root=tmp_path,
        cache_dir=cache_dir,
    )
    assert cold.modules_analyzed == 4
    assert cold.cache_hits == 0
    warm = run_check(
        paths=[tmp_path], baseline="", root=tmp_path,
        cache_dir=cache_dir,
    )
    assert warm.modules_analyzed == 0
    assert warm.cache_hits == 4
    assert warm.files_scanned == cold.files_scanned


def test_cache_invalidation_is_transitive(tmp_path):
    _write_chain(tmp_path)
    cache_dir = tmp_path / "cache"
    run_check(
        paths=[tmp_path], baseline="", root=tmp_path,
        cache_dir=cache_dir,
    )
    # editing base invalidates base + mid + top, but not island
    (tmp_path / "base.py").write_text(
        "def origin():\n    return 2\n"
    )
    result = run_check(
        paths=[tmp_path], baseline="", root=tmp_path,
        cache_dir=cache_dir,
    )
    assert result.modules_analyzed == 3
    assert result.cache_hits == 1


def test_cache_catches_new_cross_module_taint(tmp_path):
    """A dependency edit must re-derive its dependents' findings."""
    source = tmp_path / "origin.py"
    sink = tmp_path / "sink.py"
    source.write_text(
        "def make():\n    return 17\n"
    )
    sink.write_text(
        "from origin import make\n"
        "from repro import Trace\n\n\n"
        "def record():\n"
        "    return Trace(samples=make(), seed=0)\n"
    )
    cache_dir = tmp_path / "cache"
    clean = run_check(
        paths=[tmp_path], rules=["FLOW002"], baseline="",
        root=tmp_path, cache_dir=cache_dir,
    )
    assert clean.ok
    # the helper becomes an entropy source; the *sink* must now flag
    source.write_text(
        "import os\n\n\ndef make():\n    return os.urandom(8)\n"
    )
    dirty = run_check(
        paths=[tmp_path], rules=["FLOW002"], baseline="",
        root=tmp_path, cache_dir=cache_dir,
    )
    assert not dirty.ok
    assert {f.path for f in dirty.findings} == {"sink.py"}


def test_cache_entries_survive_rule_subsetting(tmp_path):
    """One cache entry serves any --rules selection."""
    bad = tmp_path / "bad.py"
    bad.write_text(
        "import numpy as np\n\nrng = np.random.default_rng()\n"
    )
    cache_dir = tmp_path / "cache"
    full = run_check(
        paths=[bad], baseline="", root=tmp_path, cache_dir=cache_dir
    )
    assert any(f.rule == "RNG001" for f in full.findings)
    subset = run_check(
        paths=[bad], rules=["API002"], baseline="", root=tmp_path,
        cache_dir=cache_dir,
    )
    assert subset.cache_hits == 1
    assert subset.ok  # RNG001 finding filtered out by selection


# ------------------------------------------------------------------ SARIF


def test_sarif_shape_on_bad_fixture():
    result = _check(
        [FLOW_FIXTURES / "flow001_bad.py"], rules=["FLOW001"]
    )
    document = json.loads(render_sarif(result, RULES))
    assert document["version"] == "2.1.0"
    assert document["$schema"].endswith("sarif-schema-2.1.0.json")
    run = document["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-check"
    assert [r["id"] for r in driver["rules"]] == ["FLOW001"]
    sarif_result = run["results"][0]
    assert sarif_result["ruleId"] == "FLOW001"
    assert sarif_result["level"] == "error"
    location = sarif_result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == (
        "flow/flow001_bad.py"
    )
    assert location["region"]["startLine"] >= 1
    assert "reproCheck/v1" in sarif_result["fingerprints"]
    assert run["invocations"][0]["executionSuccessful"] is False


def test_sarif_marks_baselined_findings(tmp_path):
    fresh = _check(
        [FLOW_FIXTURES / "flow001_bad.py"], rules=["FLOW001"]
    )
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, fresh.findings, existing=[])
    absorbed = _check(
        [FLOW_FIXTURES / "flow001_bad.py"],
        rules=["FLOW001"],
        baseline=baseline_path,
    )
    document = json.loads(render_sarif(absorbed, RULES))
    results = document["runs"][0]["results"]
    assert results
    assert all(r["baselineState"] == "unchanged" for r in results)
    assert all(r["level"] == "note" for r in results)


def test_sarif_reports_parse_errors(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n")
    result = run_check(
        paths=[broken], baseline="", root=tmp_path, use_cache=False
    )
    document = json.loads(render_sarif(result, RULES))
    invocation = document["runs"][0]["invocations"][0]
    assert invocation["executionSuccessful"] is False
    notes = invocation["toolExecutionNotifications"]
    assert notes and "syntax error" in notes[0]["message"]["text"]


# ------------------------------------------------------- baseline pruning


def test_prune_baseline_removes_only_stale(tmp_path):
    baseline_path = tmp_path / "baseline.json"
    live = Finding(
        path="flow/flow004_bad.py", line=9, col=4, rule="FLOW004",
        message="m", snippet="COUNTER += 1",
    )
    fresh = _check(
        [FLOW_FIXTURES / "flow004_bad.py"], rules=["FLOW004"]
    )
    write_baseline(baseline_path, fresh.findings, existing=[])
    ghost = Finding(
        path="gone.py", line=1, col=0, rule="FLOW004",
        message="m", snippet="GONE += 1",
    )
    entries = load_baseline(baseline_path)
    write_baseline(
        baseline_path, list(fresh.findings) + [ghost], existing=entries
    )
    result = _check(
        [FLOW_FIXTURES / "flow004_bad.py"],
        rules=["FLOW004"],
        baseline=baseline_path,
    )
    assert len(result.stale_baseline) == 1
    survivors = prune_baseline(
        baseline_path, load_baseline(baseline_path),
        result.stale_baseline,
    )
    assert all(e.path != "gone.py" for e in survivors)
    assert len(survivors) == len(fresh.findings)
    del live  # silence the linter: the fingerprint shape is documented


def test_prune_baseline_keeps_unexercised_rules(tmp_path):
    """Pruning after a --rules subset must not drop other entries."""
    baseline_path = tmp_path / "baseline.json"
    other = Finding(
        path="x.py", line=1, col=0, rule="API002",
        message="m", snippet="a == 0.5",
    )
    write_baseline(baseline_path, [other], existing=[])
    result = _check(
        [FLOW_FIXTURES / "flow004_ok.py"],
        rules=["FLOW004"],
        baseline=baseline_path,
    )
    assert not result.stale_baseline  # API002 did not run
    survivors = prune_baseline(
        baseline_path, load_baseline(baseline_path),
        result.stale_baseline,
    )
    assert len(survivors) == 1


# --------------------------------------------------------- changed-only


def _git(root: Path, *argv: str) -> None:
    subprocess.run(
        ["git", *argv], cwd=root, check=True, capture_output=True,
        env={
            "GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
            "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t",
            "PATH": "/usr/bin:/bin:/usr/local/bin",
            "HOME": str(root),
        },
    )


def test_changed_only_tracks_dependents(tmp_path):
    _write_chain(tmp_path)
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "add", "-A")
    _git(tmp_path, "commit", "-qm", "seed")
    # introduce a violation in an untouched file: must NOT be reported
    (tmp_path / "island.py").write_text(
        "import numpy as np\n\nrng = np.random.default_rng()\n"
    )
    _git(tmp_path, "add", "island.py")
    _git(tmp_path, "commit", "-qm", "island violation")
    # now change only base.py
    (tmp_path / "base.py").write_text(
        "def origin():\n    return 3\n"
    )
    result = run_check(
        paths=[tmp_path], baseline="", root=tmp_path,
        use_cache=False, changed_base="HEAD",
    )
    assert result.changed_files is not None
    assert set(result.changed_files) == {"base.py", "mid.py", "top.py"}
    assert not any(f.path == "island.py" for f in result.findings)


def test_changed_only_with_no_changes(tmp_path):
    _write_chain(tmp_path)
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "add", "-A")
    _git(tmp_path, "commit", "-qm", "seed")
    result = run_check(
        paths=[tmp_path], baseline="", root=tmp_path,
        use_cache=False, changed_base="HEAD",
    )
    assert result.changed_files == []
    assert result.ok


# -------------------------------------------------------- flow rule table


def test_every_flow_rule_is_registered():
    for rule_id in FLOW_RULE_IDS:
        assert rule_id in RULES
        assert RULES[rule_id].whole_program


def test_build_module_graph_reflects_imports(tmp_path):
    helper = _facts(
        tmp_path, "h", "def f():\n    return 1\n"
    )
    caller = _facts(
        tmp_path, "c", "import h\n\n\ndef g():\n    return h.f()\n"
    )
    graph = build_module_graph({f.module: f for f in (helper, caller)})
    assert "h" in graph.dependents_closure({"h"})
    assert "c" in graph.dependents_closure({"h"})
