"""Integration tests for the Fig 2 characterization sweep.

These run the real pipeline with reduced sample counts; the bench
(`benchmarks/test_fig2_characterization.py`) runs the paper-size sweep.
"""

import numpy as np
import pytest

from repro.core.characterize import CHANNEL_LSBS, characterize
from repro.fpga.power_virus import PowerVirusArray


@pytest.fixture(scope="module")
def result():
    return characterize(samples_per_level=200, seed=0)


class TestSweepShape:
    def test_161_levels(self, result):
        assert result.levels.size == 161
        assert result.current.means.size == 161

    def test_current_strongly_positive(self, result):
        assert result.current.pearson > 0.995

    def test_power_strongly_positive(self, result):
        assert result.power.pearson > 0.995

    def test_voltage_weaker_than_current(self, result):
        # Paper: |r| = 0.958 for voltage vs 0.999 for current.
        assert abs(result.voltage.pearson) < result.current.pearson
        assert 0.80 < abs(result.voltage.pearson) < 0.995

    def test_ro_strongly_negative(self, result):
        assert result.ro.pearson < -0.98

    def test_current_steps_about_40_lsb(self, result):
        # Paper: "current measurements ... vary approximately 40 LSBs
        # per setting".
        assert 30 < result.current.lsb_step < 50

    def test_power_steps_1_to_2_lsb(self, result):
        # Paper: "the difference between consecutive settings is
        # limited to 1-2 LSBs" for power.
        assert 0.8 < result.power.lsb_step < 2.5

    def test_voltage_subresolution(self, result):
        # Voltage moves well under one 1.25 mV LSB per setting.
        assert result.voltage.lsb_step < 0.1

    def test_variation_ratio_hundreds(self, result):
        # The headline: ~261x more variation than the RO baseline.
        assert 150 < result.current_vs_ro_variation < 400

    def test_current_floor_nonzero(self, result):
        # "current measurements do not start from 0 ... due to the
        # static workloads caused by inactivated ... instances".
        assert result.current.means[0] > 500  # mA

    def test_current_monotonic(self, result):
        diffs = np.diff(result.current.means)
        assert np.mean(diffs > 0) > 0.95

    def test_summary_keys(self, result):
        assert set(result.summary()) == {"current", "voltage", "power", "ro"}


class TestSweepOptions:
    def test_custom_levels(self):
        result = characterize(
            samples_per_level=50, levels=np.array([0, 80, 160]), seed=0
        )
        assert result.levels.size == 3
        assert result.current.means[2] > result.current.means[0]

    def test_seeded_reproducibility(self):
        a = characterize(samples_per_level=50,
                         levels=np.array([0, 160]), seed=3)
        b = characterize(samples_per_level=50,
                         levels=np.array([0, 160]), seed=3)
        np.testing.assert_allclose(a.current.means, b.current.means)

    def test_small_virus_array(self):
        virus = PowerVirusArray(n_groups=10, seed=0)
        result = characterize(virus=virus, samples_per_level=50, seed=0)
        assert result.levels.size == 11

    def test_invalid_samples_rejected(self):
        with pytest.raises(ValueError):
            characterize(samples_per_level=1)

    def test_channel_lsbs(self):
        assert CHANNEL_LSBS["current"] == 1.0
        assert CHANNEL_LSBS["power"] == 25_000.0
