"""Tests for the board catalog (Table I) and ZCU102 sensor map (Table II)."""

import pytest

from repro.boards import (
    BOARD_CATALOG,
    SENSITIVE_SENSOR_MAP,
    ZCU102_SENSORS,
    boards_by_family,
    get_board,
    get_sensor,
    list_boards,
    sensitive_sensors,
)

# Table I of the paper, column by column.
TABLE1 = {
    "ZCU102": ("Zynq UltraScale+", "Cortex-A53", 4, 18, 3234),
    "ZCU111": ("Zynq UltraScale+", "Cortex-A53", 4, 14, 14995),
    "ZCU216": ("Zynq UltraScale+", "Cortex-A53", 4, 14, 16995),
    "ZCU1285": ("Zynq UltraScale+", "Cortex-A53", 8, 21, 32394),
    "VEK280": ("Versal", "Cortex-A72", 12, 20, 6995),
    "VCK190": ("Versal", "Cortex-A72", 8, 17, 13195),
    "VHK158": ("Versal", "Cortex-A72", 32, 22, 14995),
    "VPK180": ("Versal", "Cortex-A72", 12, 19, 17995),
}


class TestCatalog:
    def test_eight_boards(self):
        assert len(list_boards()) == 8

    @pytest.mark.parametrize("name", sorted(TABLE1))
    def test_table1_row(self, name):
        family, cpu, dram_gib, ina_count, price = TABLE1[name]
        board = get_board(name)
        assert board.fpga_family == family
        assert board.cpu_model == cpu
        assert board.dram_gib == dram_gib
        assert board.ina226_count == ina_count
        assert board.price_usd == pytest.approx(price)

    def test_zynq_voltage_band(self):
        for board in boards_by_family("Zynq UltraScale+"):
            assert board.fpga_voltage_range == (0.825, 0.876)

    def test_versal_voltage_band(self):
        for board in boards_by_family("Versal"):
            assert board.fpga_voltage_range == (0.775, 0.825)

    def test_voltage_helpers(self):
        board = get_board("ZCU102")
        assert board.fpga_voltage_nominal == pytest.approx(0.8505)
        assert board.fpga_voltage_span == pytest.approx(0.051)

    def test_case_insensitive_lookup(self):
        assert get_board("zcu102").name == "ZCU102"

    def test_unknown_board_raises(self):
        with pytest.raises(KeyError, match="available"):
            get_board("ZCU999")

    def test_zcu102_fabric_resources(self):
        board = get_board("ZCU102")
        assert board.luts == 274_080
        assert board.flip_flops == 548_160
        assert board.dsp_blocks == 2_520
        assert board.cpu_frequency_hz == pytest.approx(1200e6)
        assert board.fabric_frequency_hz == pytest.approx(300e6)

    def test_families_partition_catalog(self):
        zynq = boards_by_family("Zynq UltraScale+")
        versal = boards_by_family("Versal")
        assert len(zynq) + len(versal) == len(BOARD_CATALOG)


class TestZcu102Sensors:
    def test_eighteen_sensors(self):
        # Table I: ZCU102 integrates 18 INA226 sensors.
        assert len(ZCU102_SENSORS) == 18

    def test_four_sensitive_sensors(self):
        assert len(sensitive_sensors()) == 4

    def test_table2_designators(self):
        designators = {sensor.designator for sensor in sensitive_sensors()}
        assert designators == {"u76", "u77", "u79", "u93"}

    def test_table2_domains(self):
        assert SENSITIVE_SENSOR_MAP == {
            "fpd": "u76",
            "lpd": "u77",
            "fpga": "u79",
            "ddr": "u93",
        }

    def test_fpga_sensor_rail(self):
        assert get_sensor("u79").rail == "VCCINT"

    def test_ddr_sensor_rail(self):
        assert get_sensor("u93").rail == "VCCPSDDR"

    def test_unique_designators(self):
        designators = [sensor.designator for sensor in ZCU102_SENSORS]
        assert len(designators) == len(set(designators))

    def test_unknown_sensor_raises(self):
        with pytest.raises(KeyError):
            get_sensor("u999")

    def test_shunts_positive(self):
        for sensor in ZCU102_SENSORS:
            assert sensor.shunt_ohms > 0
            assert sensor.max_current > 0
            assert sensor.nominal_voltage > 0

    def test_case_insensitive_designator(self):
        assert get_sensor("U79").designator == "u79"

    def test_idle_below_max(self):
        for sensor in ZCU102_SENSORS:
            assert 0 <= sensor.idle_current < sensor.max_current
