"""Tests for the unprivileged hwmon sampler."""

import numpy as np
import pytest

from repro.core.sampler import HwmonSampler
from repro.soc import ConstantActivity, Soc


@pytest.fixture
def soc():
    return Soc("ZCU102", seed=2)


@pytest.fixture
def sampler(soc):
    return HwmonSampler(soc, seed=2)


class TestPollTimes:
    def test_grid_without_jitter(self, soc):
        sampler = HwmonSampler(soc, poll_jitter=0.0)
        times = sampler.poll_times(1.0, 5, 100.0)
        np.testing.assert_allclose(times, 1.0 + np.arange(5) / 100.0)

    def test_jitter_keeps_monotonicity(self, sampler):
        times = sampler.poll_times(0.0, 10_000, 1000.0)
        assert np.all(np.diff(times) >= 0)

    def test_jitter_is_small(self, sampler):
        times = sampler.poll_times(0.0, 1000, 1000.0)
        grid = np.arange(1000) / 1000.0
        assert np.abs(times - grid).max() < 5e-3

    def test_deterministic_with_seed(self, soc):
        a = HwmonSampler(soc, seed=5).poll_times(0.0, 100, 1000.0)
        b = HwmonSampler(soc, seed=5).poll_times(0.0, 100, 1000.0)
        np.testing.assert_array_equal(a, b)

    def test_invalid_args(self, sampler):
        with pytest.raises(ValueError):
            sampler.poll_times(0.0, 0, 100.0)
        with pytest.raises(ValueError):
            sampler.poll_times(0.0, 10, 0.0)


class TestCollect:
    def test_collect_by_duration(self, sampler):
        trace = sampler.collect("fpga", "current", duration=1.0)
        # Default cadence = sensor update rate (~28.4 Hz).
        assert 25 <= trace.n_samples <= 31
        assert trace.domain == "fpga"
        assert trace.quantity == "current"

    def test_collect_by_samples(self, sampler):
        trace = sampler.collect("fpga", "current", n_samples=100,
                                poll_hz=1000.0)
        assert trace.n_samples == 100

    def test_oversampling_repeats_values(self, sampler):
        # Polling at 1 kHz against a 35 ms sensor: runs of ~35 repeats.
        trace = sampler.collect("fpga", "current", n_samples=500,
                                poll_hz=1000.0)
        assert np.unique(trace.values).size < 40

    def test_duration_xor_samples_enforced(self, sampler):
        with pytest.raises(ValueError, match="exactly one"):
            sampler.collect("fpga", "current")
        with pytest.raises(ValueError, match="exactly one"):
            sampler.collect("fpga", "current", duration=1.0, n_samples=10)

    def test_label_attached(self, sampler):
        trace = sampler.collect("fpga", "current", duration=0.5,
                                label="resnet-50")
        assert trace.label == "resnet-50"

    def test_workload_visible(self, soc, sampler):
        idle = sampler.collect("fpga", "current", duration=0.5).values.mean()
        soc.attach_workload("fpga", "load", ConstantActivity(2.0))
        loaded = sampler.collect(
            "fpga", "current", start=10.0, duration=0.5
        ).values.mean()
        assert loaded > idle + 2000

    def test_default_poll_hz(self, sampler):
        hz = sampler.default_poll_hz("fpga")
        assert hz == pytest.approx(1 / 0.0352, rel=0.01)

    def test_collect_concurrent(self, sampler):
        traces = sampler.collect_concurrent(
            [("fpga", "current"), ("ddr", "current"), ("fpga", "voltage")],
            start=1.0,
            duration=1.0,
            label="run",
        )
        assert set(traces) == {
            ("fpga", "current"), ("ddr", "current"), ("fpga", "voltage")
        }
        for trace in traces.values():
            assert trace.label == "run"
            assert trace.times[0] >= 0.99

    def test_collect_concurrent_empty_rejected(self, sampler):
        with pytest.raises(ValueError, match="at least one channel"):
            sampler.collect_concurrent([], duration=1.0)

    def test_rejects_non_soc(self):
        with pytest.raises(TypeError):
            HwmonSampler("not a soc")

    def test_repr(self, sampler):
        assert "HwmonSampler" in repr(sampler)
