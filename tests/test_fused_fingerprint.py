"""Tests for multi-channel fusion fingerprinting."""

import pytest

from repro.core.fingerprint import DnnFingerprinter, FingerprintConfig

MODELS = ["mobilenet-v1-1.0", "resnet-50", "vgg-19", "inception-v3",
          "squeezenet-1.1"]

CURRENT_CHANNELS = [
    ("fpga", "current"), ("ddr", "current"),
    ("fpd", "current"), ("lpd", "current"),
]


@pytest.fixture(scope="module")
def fingerprinter():
    config = FingerprintConfig(
        duration=3.0, traces_per_model=6, n_folds=3, forest_trees=12
    )
    return DnnFingerprinter(config=config, seed=3)


@pytest.fixture(scope="module")
def datasets(fingerprinter):
    return fingerprinter.collect_datasets(
        models=MODELS, channels=CURRENT_CHANNELS
    )


class TestFusion:
    def test_fused_beats_chance_strongly(self, fingerprinter, datasets):
        result = fingerprinter.evaluate_fused(datasets)
        assert result.top1 > 0.8

    def test_fused_competitive_with_best_single(self, fingerprinter,
                                                 datasets):
        fused = fingerprinter.evaluate_fused(datasets)
        best_single = max(
            fingerprinter.evaluate_channel(datasets[channel]).top1
            for channel in CURRENT_CHANNELS
        )
        assert fused.top1 >= best_single - 0.1

    def test_fused_with_duration_slice(self, fingerprinter, datasets):
        result = fingerprinter.evaluate_fused(datasets, duration=1.0)
        assert 0.0 <= result.top1 <= 1.0

    def test_explicit_channel_subset(self, fingerprinter, datasets):
        result = fingerprinter.evaluate_fused(
            datasets, channels=[("fpga", "current"), ("ddr", "current")]
        )
        assert result.top1 > 0.7

    def test_empty_channels_rejected(self, fingerprinter):
        with pytest.raises(ValueError, match="at least one channel"):
            fingerprinter.evaluate_fused({}, channels=[])

    def test_label_order_mismatch_rejected(self, fingerprinter, datasets):
        from repro.core.traces import TraceSet

        scrambled = dict(datasets)
        reordered = TraceSet(list(datasets[("ddr", "current")])[::-1])
        scrambled[("ddr", "current")] = reordered
        with pytest.raises(ValueError, match="differently-ordered"):
            fingerprinter.evaluate_fused(scrambled)
