"""Resilience layer: deadlines, breakers, backpressure, quarantine.

The chaos contract (PR 9) in unit-sized pieces: a hung or SIGSTOPped
worker is reaped within its task deadline and the task completes via
resubmission; an untimed ``PoolFuture.result()`` can never be stranded
by a dead collector; per-board circuit breakers walk the deterministic
closed→open→half-open machine and surface their transition log in the
fleet report; the admission high-water mark sheds load as explicit
``deferred`` outcomes; corrupt archives move to quarantine with a
machine-readable reason instead of killing the campaign.
"""

import json
import os
import signal
import threading
import time

import pytest

from repro.core.io import MANIFEST_NAME
from repro.faults.policy import RetryPolicy
from repro.fleet import (
    STATUS_DEFERRED,
    STATUS_DONE,
    STATUS_FAILED,
    FleetJob,
    FleetScheduler,
    run_job,
)
from repro.perf.config import (
    breaker_cooldown_from_env,
    breaker_threshold_from_env,
    chaos_scenarios_from_env,
    queue_hwm_from_env,
)
from repro.perf.pool import (
    PoolConfig,
    TaskDeadlineError,
    WorkerCrashError,
    WorkerPool,
    shutdown_pool,
)
from repro.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BoardOutageError,
    BreakerPolicy,
    CircuitBreaker,
    QuarantineRecord,
    list_quarantined,
    quarantine_archive,
)

SEED = 5

RSA_PARAMS = dict(weights=(1, 16), quantity="current", n_samples=400)


@pytest.fixture(autouse=True)
def _reset_shared_pool():
    yield
    shutdown_pool()


# ----------------------------------------------------------- task fns
# Module-level on purpose: pool tasks are pickled by reference.


def _square(x):
    return x * x


def _sleep_forever(_):
    time.sleep(3600)


def _stop_if_flag(flag):
    if os.path.exists(flag):
        os.unlink(flag)
        os.kill(os.getpid(), signal.SIGSTOP)
    return "survived"


class _Unpicklable(RuntimeError):
    """Round-trip bomb: pickles fine, explodes at load time."""

    def __init__(self, a, b):
        super().__init__(f"{a}/{b}")


def _raise_unpicklable(_):
    raise _Unpicklable("left", "right")


# ---------------------------------------------------------- PoolConfig


class TestPoolConfig:
    def test_rejects_nonpositive_budgets(self):
        with pytest.raises(ValueError, match="sweep_interval_s"):
            PoolConfig(sweep_interval_s=0.0)
        with pytest.raises(ValueError, match="reap_join_s"):
            PoolConfig(reap_join_s=-1.0)
        with pytest.raises(ValueError, match="default_deadline_s"):
            PoolConfig(default_deadline_s=0.0)

    def test_pool_routes_config(self):
        config = PoolConfig(sweep_interval_s=0.05, shutdown_join_s=1.0)
        pool = WorkerPool(workers=1, config=config)
        try:
            assert pool.config is config
            assert pool.map(_square, [1, 2, 3]) == [1, 4, 9]
        finally:
            pool.shutdown()

    def test_submit_rejects_nonpositive_deadline(self):
        pool = WorkerPool(workers=1)
        try:
            with pytest.raises(ValueError, match="deadline_s"):
                pool.submit(_square, 2, deadline_s=0.0)
        finally:
            pool.shutdown()


# ------------------------------------------------- deadlines & reaping


class TestDeadlines:
    def test_hung_task_fails_with_deadline_error(self):
        pool = WorkerPool(
            workers=1,
            retry_policy=RetryPolicy(max_retries=1),
            config=PoolConfig(sweep_interval_s=0.05),
        )
        try:
            future = pool.submit(_sleep_forever, None, deadline_s=0.3)
            with pytest.raises(TaskDeadlineError, match="deadline"):
                future.result()
            assert pool.respawns >= 1
        finally:
            pool.shutdown()

    def test_sigstopped_worker_is_reaped_and_task_completes(self, tmp_path):
        # The acceptance scenario: the worker wedges (SIGSTOP — alive,
        # so liveness scans never fire), the watchdog SIGKILLs it at
        # the deadline, and the resubmitted attempt succeeds.
        flag = tmp_path / "stop-once"
        flag.write_text("armed")
        pool = WorkerPool(
            workers=1, config=PoolConfig(sweep_interval_s=0.05)
        )
        try:
            future = pool.submit(
                _stop_if_flag, str(flag), deadline_s=1.0
            )
            assert future.result(timeout=30.0) == "survived"
            assert pool.respawns >= 1
            assert not flag.exists()
        finally:
            pool.shutdown()

    def test_untimed_result_survives_dead_collector(self):
        # satellite: a worker dying after dequeue must not strand an
        # untimed result() — the caller polls and runs the watch tick
        # itself, which flushes pending futures when the collector is
        # gone.
        pool = WorkerPool(
            workers=1, config=PoolConfig(sweep_interval_s=0.05)
        )
        try:
            future = pool.submit(_sleep_forever, None)
            stand_in = threading.Thread(target=lambda: None)
            stand_in.start()
            stand_in.join()
            pool._collector = stand_in  # simulate collector death
            with pytest.raises(WorkerCrashError, match="collector"):
                future.result()
        finally:
            pool.shutdown()

    def test_undecodable_result_fails_one_task_not_the_pool(self):
        # An exception that cannot survive the pickle round trip must
        # surface on its own future; the collector (and the pool)
        # stay serviceable.
        pool = WorkerPool(
            workers=1, config=PoolConfig(sweep_interval_s=0.05)
        )
        try:
            with pytest.raises(RuntimeError, match="undecodable"):
                pool.submit(_raise_unpicklable, None).result(timeout=30.0)
            assert pool.map(_square, [4]) == [16]
        finally:
            pool.shutdown()


# ------------------------------------------------------------ breakers


class TestCircuitBreaker:
    def test_policy_validation(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            BreakerPolicy(failure_threshold=0)
        with pytest.raises(ValueError, match="max_cooldown"):
            BreakerPolicy(cooldown=8.0, max_cooldown=4.0)
        with pytest.raises(ValueError, match="jitter"):
            BreakerPolicy(jitter=1.0)

    def test_state_machine_walks_closed_open_half_open(self):
        policy = BreakerPolicy(
            failure_threshold=2, cooldown=4.0, jitter=0.0
        )
        breaker = CircuitBreaker("ZCU102", policy=policy, seed=0)
        assert breaker.allow(1.0) and breaker.state == CLOSED
        breaker.record_failure(2.0)
        assert breaker.state == CLOSED
        breaker.record_failure(3.0)
        assert breaker.state == OPEN
        assert not breaker.allow(4.0)
        assert breaker.allow(7.0)  # cooldown elapsed -> probe admitted
        assert breaker.state == HALF_OPEN
        assert not breaker.allow(7.5)  # second probe queued out
        breaker.record_success(8.0)
        assert breaker.state == CLOSED
        states = [(t.from_state, t.to_state) for t in breaker.transitions]
        assert states == [
            (CLOSED, OPEN),
            (OPEN, HALF_OPEN),
            (HALF_OPEN, CLOSED),
        ]

    def test_failed_probe_reopens_with_longer_cooldown(self):
        policy = BreakerPolicy(
            failure_threshold=1,
            cooldown=2.0,
            backoff_multiplier=2.0,
            max_cooldown=64.0,
            jitter=0.0,
        )
        breaker = CircuitBreaker("ZCU104", policy=policy, seed=0)
        breaker.record_failure(1.0)  # trip 1: cooldown 2 ticks
        assert not breaker.allow(2.0)
        assert breaker.allow(3.0)
        breaker.record_failure(4.0)  # probe failed, trip 2: 4 ticks
        assert not breaker.allow(7.0)
        assert breaker.allow(8.0)

    def test_jitter_is_deterministic_per_seed_and_name(self):
        def windows(name, seed):
            breaker = CircuitBreaker(name, seed=seed)
            for tick in (1.0, 2.0, 3.0):
                breaker.record_failure(tick)
            return breaker._open_until

        assert windows("ZCU102", 0) == windows("ZCU102", 0)
        assert windows("ZCU102", 0) != windows("ZCU102", 1)
        assert windows("ZCU102", 0) != windows("ZCU111", 0)

    def test_from_env_overrides(self, monkeypatch):
        monkeypatch.setenv("AMPEREBLEED_BREAKER_THRESHOLD", "7")
        monkeypatch.setenv("AMPEREBLEED_BREAKER_COOLDOWN", "16")
        policy = BreakerPolicy.from_env()
        assert policy.failure_threshold == 7
        assert policy.cooldown == 16.0
        assert policy.max_cooldown >= 16.0 * 16.0


class TestEnvKnobs:
    def test_queue_hwm(self, monkeypatch):
        monkeypatch.delenv("AMPEREBLEED_QUEUE_HWM", raising=False)
        assert queue_hwm_from_env() is None
        monkeypatch.setenv("AMPEREBLEED_QUEUE_HWM", "0")
        assert queue_hwm_from_env() is None
        monkeypatch.setenv("AMPEREBLEED_QUEUE_HWM", "12")
        assert queue_hwm_from_env() == 12
        monkeypatch.setenv("AMPEREBLEED_QUEUE_HWM", "-3")
        with pytest.raises(ValueError):
            queue_hwm_from_env()

    def test_breaker_knobs(self, monkeypatch):
        monkeypatch.delenv("AMPEREBLEED_BREAKER_THRESHOLD", raising=False)
        monkeypatch.delenv("AMPEREBLEED_BREAKER_COOLDOWN", raising=False)
        assert breaker_threshold_from_env() is None
        assert breaker_cooldown_from_env() is None
        monkeypatch.setenv("AMPEREBLEED_BREAKER_THRESHOLD", "0")
        with pytest.raises(ValueError):
            breaker_threshold_from_env()
        monkeypatch.setenv("AMPEREBLEED_BREAKER_COOLDOWN", "-1")
        with pytest.raises(ValueError):
            breaker_cooldown_from_env()

    def test_chaos_scenarios(self, monkeypatch):
        monkeypatch.delenv("AMPEREBLEED_CHAOS", raising=False)
        assert chaos_scenarios_from_env() is None
        monkeypatch.setenv("AMPEREBLEED_CHAOS", "all")
        assert chaos_scenarios_from_env() is None
        monkeypatch.setenv(
            "AMPEREBLEED_CHAOS", "board-outage, archive-corrupt"
        )
        assert chaos_scenarios_from_env() == [
            "board-outage",
            "archive-corrupt",
        ]


# ---------------------------------------------------------- quarantine


class TestQuarantine:
    def test_move_record_and_list(self, tmp_path):
        archive = tmp_path / "rsa"
        archive.mkdir()
        (archive / MANIFEST_NAME).write_text("{garbled")
        dest = quarantine_archive(
            archive,
            reason="archive-corrupt",
            error="corrupted manifest line 1",
            job_id="rsa/ZCU102/5",
        )
        assert not archive.exists()
        assert dest.parent == tmp_path / "quarantine"
        assert dest.name == "rsa-000"
        record = QuarantineRecord.from_dict(
            json.loads((dest / "QUARANTINE.json").read_text())
        )
        assert record.reason == "archive-corrupt"
        assert record.job_id == "rsa/ZCU102/5"
        assert record.archive == str(archive)

        archive.mkdir()  # re-record at the original path, corrupt again
        (archive / MANIFEST_NAME).write_text("{garbled again")
        again = quarantine_archive(archive, reason="archive-corrupt")
        assert again.name == "rsa-001"
        listed = list_quarantined(tmp_path)
        assert [path.name for path, _ in listed] == ["rsa-000", "rsa-001"]

    def test_missing_archive_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            quarantine_archive(tmp_path / "ghost", reason="x")

    def test_run_job_quarantines_corrupt_archive_and_rerecords(
        self, tmp_path
    ):
        job = FleetJob.make(
            "rsa", "ZCU102", seed=SEED, out=tmp_path / "rsa", **RSA_PARAMS
        )
        first = run_job(job)
        assert not first.skipped and not first.quarantined

        manifest = tmp_path / "rsa" / MANIFEST_NAME
        lines = manifest.read_text().splitlines()
        lines[1] = '{"chunk": garbled'
        manifest.write_text("\n".join(lines) + "\n")

        again = run_job(job)
        assert again.quarantined
        assert not again.skipped  # re-recorded, not resumed
        quarantined = list_quarantined(tmp_path)
        assert len(quarantined) == 1
        _, record = quarantined[0]
        assert record.reason == "archive-corrupt"
        assert record.job_id == job.job_id
        # The re-recorded archive seals clean: a third run skips it.
        assert run_job(job).skipped


# ----------------------------------------------------------- scheduler


class _OutageWindow:
    """Chaos hook: the board is down for the first ``n`` dispatches."""

    def __init__(self, n):
        self.remaining = n

    def __call__(self, job):
        if self.remaining > 0:
            self.remaining -= 1
            raise BoardOutageError(f"{job.board} unreachable (injected)")


class TestSchedulerResilience:
    def test_backpressure_defers_lowest_priority(self, tmp_path):
        jobs = [
            FleetJob.make(
                "rsa",
                "ZCU102",
                seed=SEED + index,
                out=tmp_path / f"rsa{index}",
                priority=priority,
                **RSA_PARAMS,
            )
            for index, priority in enumerate((0, 5, 1))
        ]
        report = FleetScheduler(
            jobs, use_pool=False, queue_hwm=2
        ).run()
        statuses = [outcome.status for outcome in report.outcomes]
        assert statuses == [STATUS_DEFERRED, STATUS_DONE, STATUS_DONE]
        shed = report.outcomes[0]
        assert "high-water mark" in shed.error
        assert report.statuses == {STATUS_DEFERRED: 1, STATUS_DONE: 2}
        assert report.as_dict()["statuses"][STATUS_DEFERRED] == 1

    def test_retry_exhaustion_reports_reason_and_attempt_trace(
        self, tmp_path, monkeypatch
    ):
        job = FleetJob.make(
            "rsa", "ZCU102", seed=SEED, out=tmp_path / "rsa", **RSA_PARAMS
        )
        scheduler = FleetScheduler([job], use_pool=False, retries=2)

        def crash(_job):
            raise WorkerCrashError("worker died mid-shard (injected)")

        monkeypatch.setattr(scheduler, "_execute", crash)
        report = scheduler.run()
        outcome = report.outcomes[0]
        assert outcome.status == STATUS_FAILED
        assert outcome.attempts == 3  # 1 + retries
        assert len(outcome.attempt_errors) == 3
        assert all(
            "WorkerCrashError" in error
            for error in outcome.attempt_errors
        )
        payload = report.as_dict()
        assert payload["failures"] == [
            {"job_id": job.job_id, "error": outcome.error}
        ]
        traces = payload["attempt_traces"]
        assert traces == [
            {
                "job_id": job.job_id,
                "attempts": 3,
                "errors": list(outcome.attempt_errors),
            }
        ]

    def test_breaker_opens_and_recovers_with_transition_log(
        self, tmp_path
    ):
        # Acceptance: N consecutive injected outages open the board's
        # breaker; after the cooldown a half-open probe succeeds and
        # the job completes — the full transition log lands in the
        # report.
        policy = BreakerPolicy(
            failure_threshold=2, cooldown=3.0, jitter=0.0
        )
        job = FleetJob.make(
            "rsa", "ZCU102", seed=SEED, out=tmp_path / "rsa", **RSA_PARAMS
        )
        report = FleetScheduler(
            [job],
            use_pool=False,
            breaker_policy=policy,
            chaos=_OutageWindow(policy.failure_threshold),
        ).run()
        outcome = report.outcomes[0]
        assert outcome.status == STATUS_DONE
        assert len(outcome.attempt_errors) == policy.failure_threshold
        events = [
            (event["from"], event["to"])
            for event in report.breaker_events
            if event["board"] == "ZCU102"
        ]
        assert (CLOSED, OPEN) in events
        assert (OPEN, HALF_OPEN) in events
        assert (HALF_OPEN, CLOSED) in events
        assert report.as_dict()["breaker_events"] == list(
            report.breaker_events
        )

    def test_unrelenting_outage_ends_deferred_not_hung(self, tmp_path):
        policy = BreakerPolicy(
            failure_threshold=1, cooldown=2.0, jitter=0.0
        )
        job = FleetJob.make(
            "rsa", "ZCU102", seed=SEED, out=tmp_path / "rsa", **RSA_PARAMS
        )
        report = FleetScheduler(
            [job],
            use_pool=False,
            breaker_policy=policy,
            max_defers=6,
            chaos=_OutageWindow(10_000),
        ).run()
        outcome = report.outcomes[0]
        assert outcome.status in (STATUS_DEFERRED, STATUS_FAILED)
        assert outcome.error is not None
        assert outcome.attempt_errors  # the outage left its trace
