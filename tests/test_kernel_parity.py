"""Bit-parity pins for the vectorized batch kernels.

Every kernel the PR-6 rework touched — presorted CART, batched forest
prediction, grouped trace resampling, 2-D summary features, vectorized
stratified folds, memory-mapped archive loads — is pinned here against
its frozen legacy twin in :mod:`repro.perf.reference`, twice over:

* on the checked-in fixtures (``tests/data/collect_seed3_v1.npz``,
  ``tests/data/traceset_v1.npz``) so the comparison covers real
  recorded traces, not just synthetic noise;
* on randomized inputs across seeds, shapes, and hyperparameters.

"Parity" always means *bitwise*: exact array equality, never
``allclose``.  The legacy implementations define correctness; any
difference is a bug in the fast path.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.core.features import resample_batch, summary_features
from repro.core.io import (
    TraceArchiveReader,
    TraceArchiveWriter,
    load_traceset,
)
from repro.core.traces import Trace
from repro.ml.forest import RandomForestClassifier
from repro.ml.tree import DecisionTreeClassifier
from repro.ml.validation import stratified_kfold_indices
from repro.perf.reference import (
    LegacyDecisionTreeClassifier,
    legacy_forest_predict_proba,
    legacy_resample_loop,
    legacy_stratified_kfold_indices,
    legacy_summary_features_loop,
)
from repro.utils.rng import ensure_rng

DATA = Path(__file__).parent / "data"
COLLECT_FIXTURE = DATA / "collect_seed3_v1.npz"
TRACESET_FIXTURE = DATA / "traceset_v1.npz"


def _fixture_values():
    """All value series from both fixtures, as float64 arrays."""
    traces = list(load_traceset(COLLECT_FIXTURE)) + list(
        load_traceset(TRACESET_FIXTURE)
    )
    return [np.asarray(trace.values, dtype=np.float64) for trace in traces]


def _fixture_matrix(n_features=64):
    return resample_batch(_fixture_values(), n_features)


def _assert_bitwise(old, new, context):
    old = np.asarray(old)
    new = np.asarray(new)
    assert old.shape == new.shape, context
    assert np.array_equal(old, new), (
        f"{context}: max abs diff "
        f"{np.max(np.abs(old - new)) if old.size else 0.0}"
    )


# ------------------------------------------------------------ resample


class TestResampleParity:
    @pytest.mark.parametrize("n_features", [1, 2, 16, 64, 160, 333])
    def test_fixture_traces(self, n_features):
        values_list = _fixture_values()
        old = legacy_resample_loop(values_list, n_features)
        new = resample_batch(values_list, n_features)
        _assert_bitwise(old, new, f"resample fixtures @ {n_features}")

    def test_randomized(self):
        for seed in range(5):
            rng = ensure_rng(seed)
            lengths = rng.integers(1, 400, size=30)
            # Force repeated lengths so the grouped path actually
            # batches, plus the degenerate single-sample case.
            lengths[::3] = 37
            lengths[1] = 1
            values_list = [rng.normal(size=int(n)) for n in lengths]
            n_features = int(rng.integers(1, 200))
            old = legacy_resample_loop(values_list, n_features)
            new = resample_batch(values_list, n_features)
            _assert_bitwise(old, new, f"resample seed={seed}")

    def test_rejects_empty_trace(self):
        with pytest.raises(ValueError):
            resample_batch([np.array([])], 8)


# ------------------------------------------------------------- summary


class TestSummaryParity:
    def test_fixture_matrix(self):
        matrix = _fixture_matrix()
        old = legacy_summary_features_loop(matrix)
        new = summary_features(matrix)
        _assert_bitwise(old, new, "summary fixtures")

    def test_batch_rows_match_single_rows(self):
        matrix = _fixture_matrix()
        batch = summary_features(matrix)
        for i, row in enumerate(matrix):
            _assert_bitwise(summary_features(row), batch[i], f"row {i}")

    @pytest.mark.parametrize("n_columns", [1, 2, 7, 160])
    def test_randomized(self, n_columns):
        rng = ensure_rng(n_columns)
        matrix = rng.normal(size=(40, n_columns))
        old = legacy_summary_features_loop(matrix)
        new = summary_features(matrix)
        _assert_bitwise(old, new, f"summary {n_columns} columns")


# ---------------------------------------------------------------- tree


def _tree_pair(X, y, seed, **params):
    old = LegacyDecisionTreeClassifier(seed=seed, **params).fit(X, y)
    new = DecisionTreeClassifier(seed=seed, **params).fit(X, y)
    return old, new


def _assert_tree_parity(old, new, X_eval, context):
    assert old.node_count == new.node_count, context
    assert old.depth == new.depth, context
    _assert_bitwise(old.classes_, new.classes_, context)
    _assert_bitwise(
        old.feature_importances_, new.feature_importances_, context
    )
    _assert_bitwise(
        old.predict_proba(X_eval), new.predict_proba(X_eval), context
    )


def _fixture_problem(n_rows=36, seed=0):
    """A labeled dataset grown from the fixture traces.

    Each fixture trace contributes its resampled profile plus seeded
    jitter, so the matrix has the real traces' structure while giving
    the trees enough rows to grow several levels deep.
    """
    base = _fixture_matrix(n_features=24)
    rng = ensure_rng(seed)
    rows = []
    labels = []
    for i in range(n_rows):
        source = i % base.shape[0]
        rows.append(base[source] + rng.normal(scale=0.5, size=base.shape[1]))
        labels.append(f"trace-{source}")
    return np.asarray(rows), np.asarray(labels)


class TestTreeParity:
    def test_fixture_problem(self):
        X, y = _fixture_problem()
        old, new = _tree_pair(X, y, seed=3, max_features="sqrt")
        _assert_tree_parity(old, new, X, "tree on fixture problem")

    def test_randomized(self):
        for seed in range(8):
            rng = ensure_rng(100 + seed)
            n = int(rng.integers(4, 120))
            d = int(rng.integers(1, 40))
            k = int(rng.integers(2, 9))
            X = rng.normal(size=(n, d))
            # Duplicate some rows so ties and zero-gain splits occur.
            if n > 6:
                X[-3:] = X[:3]
            y = rng.integers(0, k, size=n)
            params = {
                "max_features": [None, "sqrt", 0.5][seed % 3],
                "min_samples_leaf": 1 + seed % 3,
                "max_depth": [32, 3][seed % 2],
            }
            old, new = _tree_pair(X, y, seed=seed, **params)
            X_eval = rng.normal(size=(25, d))
            _assert_tree_parity(old, new, X_eval, f"tree seed={seed}")

    def test_depth_matches_legacy_traversal(self):
        X, y = _fixture_problem(seed=7)
        old, new = _tree_pair(X, y, seed=11, max_features="sqrt")
        assert new.depth == old.depth
        assert new.depth >= 1


# -------------------------------------------------------------- forest


class TestForestParity:
    def test_forest_trees_match_legacy_grown_trees(self):
        X, y = _fixture_problem(n_rows=48, seed=1)
        forest = RandomForestClassifier(
            n_estimators=8, seed=5, n_jobs=1
        ).fit(X, y)
        # Regrow every tree with the legacy CART from the same seed
        # stream the forest used.
        forest_rng = ensure_rng(5)
        tree_seeds = forest_rng.integers(0, np.iinfo(np.int64).max, size=8)
        for tree, tree_seed in zip(forest.trees_, tree_seeds):
            rng = ensure_rng(int(tree_seed))
            sample = rng.integers(0, X.shape[0], size=X.shape[0])
            legacy = LegacyDecisionTreeClassifier(
                max_depth=forest.max_depth,
                max_features=forest.max_features,
                min_samples_leaf=forest.min_samples_leaf,
                seed=rng,
            ).fit(X[sample], y[sample])
            _assert_tree_parity(legacy, tree, X, f"tree seed={tree_seed}")

    def test_batched_predict_matches_legacy_reduction(self):
        X, y = _fixture_problem(n_rows=48, seed=2)
        forest = RandomForestClassifier(
            n_estimators=12, seed=9, n_jobs=1
        ).fit(X, y)
        rng = ensure_rng(42)
        X_eval = rng.normal(size=(30, X.shape[1]))
        _assert_bitwise(
            legacy_forest_predict_proba(forest, X_eval),
            forest.predict_proba(X_eval),
            "forest predict",
        )


# --------------------------------------------------------------- kfold


class TestKfoldParity:
    @pytest.mark.parametrize("seed", range(6))
    def test_randomized(self, seed):
        rng = ensure_rng(200 + seed)
        k = int(rng.integers(2, 9))
        # Unbalanced classes: fold sizes differ per class.
        y = np.concatenate(
            [
                np.full(int(rng.integers(n_folds, 20)), value)
                for value, n_folds in zip(range(k), [4] * k)
            ]
        )
        rng.shuffle(y)
        for n_folds in (2, 3, 4):
            old = legacy_stratified_kfold_indices(y, n_folds, seed=seed)
            new = stratified_kfold_indices(y, n_folds, seed=seed)
            assert len(old) == len(new)
            for fold, (old_fold, new_fold) in enumerate(zip(old, new)):
                _assert_bitwise(
                    old_fold, new_fold, f"fold {fold} seed={seed}"
                )

    def test_fixture_labels(self):
        _, y = _fixture_problem(n_rows=30)
        old = legacy_stratified_kfold_indices(y, 5, seed=0)
        new = stratified_kfold_indices(y, 5, seed=0)
        for old_fold, new_fold in zip(old, new):
            _assert_bitwise(old_fold, new_fold, "fixture folds")


# ------------------------------------------------------------- archive


def _write_archive(path, n_traces=6, n_samples=300):
    rng = ensure_rng(0)
    traces = []
    with TraceArchiveWriter(path, meta={"test": "mmap"}) as writer:
        for index in range(n_traces):
            trace = Trace(
                times=0.25 + np.arange(n_samples) * 2e-3,
                values=rng.integers(500, 1000, size=n_samples),
                domain="fpga",
                quantity="current",
                label=f"model-{index}",
            )
            writer.append(trace)
            traces.append(trace)
    return traces


class TestArchiveMmapParity:
    def test_mmap_load_is_bitwise_identical(self, tmp_path):
        archive = tmp_path / "arch"
        _write_archive(archive)
        plain = TraceArchiveReader(archive, mmap=False).load_traceset()
        mapped = TraceArchiveReader(archive, mmap=True).load_traceset()
        assert len(plain) == len(mapped)
        for old, new in zip(plain, mapped):
            _assert_bitwise(old.times, new.times, "times")
            _assert_bitwise(old.values, new.values, "values")
            assert old.times.dtype == new.times.dtype
            assert old.values.dtype == new.values.dtype
            assert (old.label, old.domain, old.quantity) == (
                new.label,
                new.domain,
                new.quantity,
            )

    def test_mmap_views_are_read_only(self, tmp_path):
        archive = tmp_path / "arch"
        _write_archive(archive, n_traces=1)
        mapped = TraceArchiveReader(archive, mmap=True).load_traceset()
        trace = next(iter(mapped))
        with pytest.raises((ValueError, RuntimeError)):
            trace.values[0] = -1

    def test_compressed_legacy_chunks_fall_back(self, tmp_path):
        """Old archives wrote compressed chunks; mmap must degrade."""
        archive = tmp_path / "arch"
        _write_archive(archive, n_traces=2)
        for chunk in sorted(archive.glob("chunk_*.npz")):
            with np.load(chunk, allow_pickle=False) as arrays:
                loaded = {name: arrays[name] for name in arrays.files}
            np.savez_compressed(chunk, **loaded)
        plain = TraceArchiveReader(archive, mmap=False).load_traceset()
        mapped = TraceArchiveReader(archive, mmap=True).load_traceset()
        for old, new in zip(plain, mapped):
            _assert_bitwise(old.times, new.times, "times")
            _assert_bitwise(old.values, new.values, "values")

    def test_fixture_v1_loads_unchanged(self):
        """The single-file v1 format stays on the regular path."""
        traces = load_traceset(TRACESET_FIXTURE)
        assert len(traces) == 3
