"""Tests for the DPU inference runner and its rail timelines."""

import numpy as np
import pytest

from repro.dpu.models import build_model
from repro.dpu.runner import DPU_RAILS, DpuRunner, RuntimeConfig
from repro.soc import Soc


@pytest.fixture(scope="module")
def runner():
    return DpuRunner()


@pytest.fixture(scope="module")
def resnet():
    return build_model("resnet-50")


class TestCycleProfile:
    def test_profile_rails(self, runner, resnet):
        profile = runner.cycle_profile(resnet)
        assert set(profile.powers) == set(DPU_RAILS)

    def test_segment_count(self, runner, resnet):
        profile = runner.cycle_profile(resnet)
        # pre + per-layer + post + gap.
        assert profile.durations.size == len(resnet.layers) + 3

    def test_period_exceeds_dpu_latency(self, runner, resnet):
        profile = runner.cycle_profile(resnet)
        assert profile.period > runner.dpu.inference_latency(resnet)

    def test_cpu_power_only_in_cpu_phases(self, runner, resnet):
        profile = runner.cycle_profile(resnet)
        fpd = profile.powers["fpd"]
        # Preprocess is the first segment; it draws full CPU power.
        assert fpd[0] == pytest.approx(runner.runtime.p_preprocess)
        # During DPU layers the runtime only polls.
        assert np.all(fpd[1:-2] == runner.runtime.p_runtime_poll)

    def test_larger_input_longer_preprocess(self, runner):
        small = runner.cycle_profile(build_model("mobilenet-v1-1.0"))
        large = runner.cycle_profile(build_model("inception-v3"))
        assert large.durations[0] > small.durations[0]

    def test_mean_power_positive_on_all_rails(self, runner, resnet):
        profile = runner.cycle_profile(resnet)
        for rail in DPU_RAILS:
            assert profile.mean_power(rail) > 0.0

    def test_distinct_models_distinct_profiles(self, runner):
        a = runner.cycle_profile(build_model("vgg-19"))
        b = runner.cycle_profile(build_model("squeezenet-1.1"))
        assert a.period != b.period
        assert a.mean_power("fpga") != b.mean_power("fpga")


class TestPeriodicTimelines:
    def test_all_rails_present(self, runner, resnet):
        timelines = runner.rail_timelines(resnet)
        assert set(timelines) == set(DPU_RAILS)

    def test_periodicity(self, runner, resnet):
        timelines = runner.rail_timelines(resnet)
        period = runner.cycle_period(resnet)
        t = np.linspace(0, period * 0.99, 50)
        np.testing.assert_allclose(
            timelines["fpga"].power_at(t),
            timelines["fpga"].power_at(t + period),
        )

    def test_mean_matches_profile(self, runner, resnet):
        timelines = runner.rail_timelines(resnet)
        profile = runner.cycle_profile(resnet)
        mean = timelines["ddr"].window_mean(
            np.array([0.0]), np.array([profile.period])
        )[0]
        assert mean == pytest.approx(profile.mean_power("ddr"))


class TestTraceTimelines:
    def test_covers_duration(self, runner, resnet):
        timelines = runner.trace_timelines(resnet, duration=1.0, seed=1)
        # Power is still active near the end of the requested window.
        power = timelines["fpga"].power_at(np.array([0.99]))
        assert power[0] >= 0.0

    def test_jitter_makes_traces_differ(self, runner, resnet):
        a = runner.trace_timelines(resnet, duration=0.5, seed=1)
        b = runner.trace_timelines(resnet, duration=0.5, seed=2)
        t = np.linspace(0.05, 0.45, 200)
        assert not np.allclose(
            a["fpga"].power_at(t), b["fpga"].power_at(t)
        )

    def test_same_seed_reproducible(self, runner, resnet):
        a = runner.trace_timelines(resnet, duration=0.5, seed=3)
        b = runner.trace_timelines(resnet, duration=0.5, seed=3)
        t = np.linspace(0.05, 0.45, 200)
        np.testing.assert_allclose(
            a["fpga"].power_at(t), b["fpga"].power_at(t)
        )

    def test_rails_share_time_base(self, runner, resnet):
        timelines = runner.trace_timelines(resnet, duration=0.5, seed=4)
        assert (
            timelines["fpga"].edges.shape == timelines["ddr"].edges.shape
        )
        np.testing.assert_allclose(
            timelines["fpga"].edges, timelines["lpd"].edges
        )

    def test_zero_jitter_matches_periodic_mean(self, resnet):
        quiet = DpuRunner(cycle_jitter=0.0, stall_probability=0.0)
        timelines = quiet.trace_timelines(resnet, duration=1.0, seed=1)
        profile = quiet.cycle_profile(resnet)
        mean = timelines["fpga"].window_mean(
            np.array([0.0]), np.array([10 * profile.period])
        )[0]
        assert mean == pytest.approx(profile.mean_power("fpga"), rel=1e-6)

    def test_invalid_duration_rejected(self, runner, resnet):
        with pytest.raises(ValueError):
            runner.trace_timelines(resnet, duration=0.0)

    def test_invalid_stall_probability(self):
        with pytest.raises(ValueError):
            DpuRunner(stall_probability=1.5)


class TestDeployment:
    def test_deploy_attaches_all_rails(self, runner, resnet):
        soc = Soc(seed=0)
        runner.deploy(soc, resnet, duration=1.0, seed=1)
        for rail in DPU_RAILS:
            assert "dpu" in soc.rail(rail).workload_names

    def test_deploy_visible_in_current(self, runner, resnet):
        soc = Soc(seed=0)
        idle = soc.sample("fpga", "current", np.array([0.5]))[0]
        runner.deploy(soc, resnet, duration=2.0, seed=1)
        loaded = soc.sample("fpga", "current", np.array([0.5]))[0]
        assert loaded > idle + 300  # DPU adds hundreds of mA

    def test_redeploy_replaces(self, runner, resnet):
        soc = Soc(seed=0)
        runner.deploy(soc, resnet, duration=1.0, seed=1)
        runner.deploy(soc, build_model("vgg-19"), duration=1.0, seed=1)
        for rail in DPU_RAILS:
            assert soc.rail(rail).workload_names.count("dpu") == 1

    def test_undeploy(self, runner, resnet):
        soc = Soc(seed=0)
        runner.deploy(soc, resnet, duration=1.0, seed=1)
        runner.undeploy(soc)
        for rail in DPU_RAILS:
            assert "dpu" not in soc.rail(rail).workload_names

    def test_undeploy_is_idempotent(self, runner):
        soc = Soc(seed=0)
        runner.undeploy(soc)  # nothing deployed: no error

    def test_periodic_deploy_without_duration(self, runner, resnet):
        soc = Soc(seed=0)
        runner.deploy(soc, resnet)
        assert "dpu" in soc.rail("fpga").workload_names


class TestRuntimeConfig:
    def test_preprocess_scales_with_pixels(self):
        runtime = RuntimeConfig()
        assert runtime.preprocess_seconds(299) > runtime.preprocess_seconds(224)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            RuntimeConfig(postprocess_seconds=-1.0)
