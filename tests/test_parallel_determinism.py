"""Determinism guarantees of the parallel & batched evaluation engine.

The engine's contract: parallelism and batching are pure execution
optimizations.  A forest fit at any worker count, a batched
multi-channel acquisition, and a parallel CV grid must produce
bit-identical outputs to their serial / per-channel counterparts.
"""

import threading

import numpy as np
import pytest

from repro.core.fingerprint import (
    TABLE3_CHANNELS,
    DnnFingerprinter,
    FingerprintConfig,
)
from repro.core.sampler import HwmonSampler
from repro.ml.forest import RandomForestClassifier
from repro.ml.validation import cross_validate
from repro.soc.soc import Soc


def _blobs(n_per_class=30, n_classes=4, d=10, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n_per_class * n_classes, d))
    y = np.repeat([f"c{i}" for i in range(n_classes)], n_per_class)
    for i in range(n_classes):
        X[y == f"c{i}", i % d] += 2.5
    return X, y


class TestForestDeterminism:
    @pytest.mark.parametrize("n_jobs", [2, 4])
    def test_parallel_fit_matches_serial(self, n_jobs):
        X, y = _blobs()
        serial = RandomForestClassifier(
            n_estimators=12, seed=7, n_jobs=1
        ).fit(X, y)
        parallel = RandomForestClassifier(
            n_estimators=12, seed=7, n_jobs=n_jobs
        ).fit(X, y)
        assert np.array_equal(
            serial.predict_proba(X), parallel.predict_proba(X)
        )
        assert np.array_equal(
            serial.feature_importances_, parallel.feature_importances_
        )
        for tree_a, tree_b in zip(serial.trees_, parallel.trees_):
            assert tree_a._split_feature == tree_b._split_feature
            assert np.array_equal(
                np.asarray(tree_a._split_threshold),
                np.asarray(tree_b._split_threshold),
                equal_nan=True,
            )

    def test_env_var_worker_count_is_identical(self, monkeypatch):
        X, y = _blobs(seed=1)
        serial = RandomForestClassifier(n_estimators=8, seed=3).fit(X, y)
        monkeypatch.setenv("AMPEREBLEED_WORKERS", "2")
        enveloped = RandomForestClassifier(n_estimators=8, seed=3).fit(X, y)
        assert np.array_equal(
            serial.predict_proba(X), enveloped.predict_proba(X)
        )

    def test_refit_draws_fresh_trees(self):
        X, y = _blobs(seed=2)
        forest = RandomForestClassifier(n_estimators=5, seed=0)
        first = forest.fit(X, y).predict_proba(X)
        second = forest.fit(X, y).predict_proba(X)
        # The forest RNG advances between fits (fresh bootstraps).
        assert not np.array_equal(first, second)


class TestCrossValidationDeterminism:
    def test_parallel_folds_match_serial(self):
        X, y = _blobs(n_per_class=20, n_classes=5, seed=3)

        def factory():
            return RandomForestClassifier(n_estimators=10, seed=11)

        serial = cross_validate(
            X, y, n_folds=4, classifier_factory=factory, seed=0, workers=1
        )
        parallel = cross_validate(
            X, y, n_folds=4, classifier_factory=factory, seed=0, workers=3
        )
        assert serial.top1_per_fold == parallel.top1_per_fold
        assert serial.top5_per_fold == parallel.top5_per_fold

    def test_default_factory_is_parallel_safe(self):
        X, y = _blobs(n_per_class=12, n_classes=3, seed=4)
        serial = cross_validate(X, y, n_folds=3, seed=5, workers=1)
        parallel = cross_validate(X, y, n_folds=3, seed=5, workers=2)
        assert serial.top1_per_fold == parallel.top1_per_fold
        assert serial.top5_per_fold == parallel.top5_per_fold


class TestBatchedAcquisition:
    def test_sample_many_matches_sample(self):
        soc = Soc("ZCU102", seed=0)
        times = np.linspace(1.0, 3.0, 57)
        batched = soc.sample_many(TABLE3_CHANNELS, times)
        for domain, quantity in TABLE3_CHANNELS:
            solo = soc.sample(domain, quantity, times)
            assert np.array_equal(batched[(domain, quantity)], solo)

    def test_sample_many_per_channel_times(self):
        soc = Soc("ZCU102", seed=1)
        times = {
            channel: np.linspace(0.5 + 0.01 * i, 2.0, 40 + i)
            for i, channel in enumerate(TABLE3_CHANNELS)
        }
        batched = soc.sample_many(TABLE3_CHANNELS, times)
        for channel in TABLE3_CHANNELS:
            solo = soc.sample(channel[0], channel[1], times[channel])
            assert np.array_equal(batched[channel], solo)

    def test_collect_many_matches_collect(self):
        sampler = HwmonSampler(Soc("ZCU102", seed=2), seed=2)
        batched = sampler.collect_many(
            TABLE3_CHANNELS, start=1.5, duration=1.0, label="victim"
        )
        for domain, quantity in TABLE3_CHANNELS:
            solo = sampler.collect(
                domain, quantity, start=1.5, duration=1.0, label="victim"
            )
            trace = batched[(domain, quantity)]
            assert np.array_equal(trace.times, solo.times)
            assert np.array_equal(trace.values, solo.values)
            assert trace.label == "victim"

    def test_sample_many_rejects_duplicates(self):
        soc = Soc("ZCU102", seed=0)
        with pytest.raises(ValueError):
            soc.sample_many(
                [("fpga", "current"), ("fpga", "current")], np.arange(3.0)
            )

    def test_sample_many_empty(self):
        assert Soc("ZCU102", seed=0).sample_many([], np.arange(3.0)) == {}


class TestPipelineDeterminism:
    @pytest.fixture(scope="class")
    def config(self):
        return FingerprintConfig(
            duration=2.0, traces_per_model=6, n_folds=3, forest_trees=8
        )

    def test_grid_parallel_matches_serial(self, config):
        models = ["resnet-50", "vgg-19", "inception-v1"]
        serial_fp = DnnFingerprinter(config=config, seed=0)
        parallel_fp = DnnFingerprinter(config=config, seed=0)
        channels = [("fpga", "current"), ("fpga", "power")]
        serial_sets = serial_fp.collect_datasets(
            models=models, channels=channels
        )
        parallel_sets = parallel_fp.collect_datasets(
            models=models, channels=channels
        )
        durations = (1.0, 2.0)
        serial = serial_fp.evaluate_table3(
            serial_sets, durations=durations, workers=1
        )
        parallel = parallel_fp.evaluate_table3(
            parallel_sets, durations=durations, workers=2
        )
        assert set(serial) == set(parallel)
        for cell in serial:
            assert serial[cell].top1_per_fold == parallel[cell].top1_per_fold
            assert serial[cell].top5_per_fold == parallel[cell].top5_per_fold

    def test_grid_matches_evaluate_channel(self, config):
        fp = DnnFingerprinter(config=config, seed=1)
        datasets = fp.collect_datasets(
            models=["resnet-50", "vgg-19", "squeezenet-1.0"],
            channels=[("fpga", "current")],
        )
        grid = fp.evaluate_table3(datasets, durations=(2.0,), workers=2)
        single = fp.evaluate_channel(
            datasets[("fpga", "current")], duration=2.0, workers=1
        )
        cell = grid[("fpga", "current", 2.0)]
        assert cell.top1_per_fold == single.top1_per_fold
        assert cell.top5_per_fold == single.top5_per_fold

    def test_train_all_matches_train(self, config):
        fp = DnnFingerprinter(config=config, seed=2)
        datasets = fp.collect_datasets(
            models=["resnet-50", "vgg-19"],
            channels=[("fpga", "current"), ("ddr", "current")],
        )
        fitted = fp.train_all(datasets, workers=2)
        for channel, dataset in datasets.items():
            X, _ = fp._features(dataset, None)
            solo = fp.train(dataset)
            assert np.array_equal(
                fitted[channel].predict_proba(X), solo.predict_proba(X)
            )


class TestWindowReservation:
    def test_concurrent_reservations_disjoint(self):
        config = FingerprintConfig(
            duration=1.0, traces_per_model=2, n_folds=2, forest_trees=2
        )
        fp = DnnFingerprinter(config=config, seed=0)
        starts = []
        lock = threading.Lock()

        def reserve():
            for _ in range(50):
                window = fp._next_window()
                with lock:
                    starts.append(window)

        threads = [threading.Thread(target=reserve) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        starts.sort()
        assert len(starts) == 200
        # Every reserved window is disjoint from every other.
        spacing = np.diff(np.asarray(starts))
        assert np.all(spacing >= config.duration)

    def test_feature_cache_hits(self):
        config = FingerprintConfig(
            duration=2.0, traces_per_model=4, n_folds=2, forest_trees=2
        )
        fp = DnnFingerprinter(config=config, seed=0)
        datasets = fp.collect_datasets(
            models=["resnet-50", "vgg-19"], channels=[("fpga", "current")]
        )
        dataset = datasets[("fpga", "current")]
        X1, y1 = fp._features(dataset, 1.0)
        X2, y2 = fp._features(dataset, 1.0)
        assert X1 is X2 and y1 is y2
        X3, _ = fp._features(dataset, 2.0)
        assert X3 is not X1
