"""Chunked acquisition: bit-identity with one-shot collects, bounded RAM."""

import numpy as np
import pytest

from repro.core.covert_channel import CovertChannel, decode_frame
from repro.core.detector import OnsetDetector
from repro.session import AttackSession
from repro.soc.workload import PiecewiseActivity


@pytest.fixture
def session():
    return AttackSession.create(seed=3)


class TestBitIdentity:
    def test_chunks_concatenate_to_collect(self, session):
        sampler = session.sampler
        one_shot = sampler.collect("fpga", "current", n_samples=500)
        stream = sampler.stream(
            "fpga", "current", n_samples=500, chunk_samples=37
        )
        chunks = list(stream)
        times = np.concatenate([chunk.times for chunk in chunks])
        values = np.concatenate([chunk.values for chunk in chunks])
        assert times.shape == one_shot.times.shape
        assert (times == one_shot.times).all()
        assert (values == one_shot.values).all()

    def test_duration_path_matches(self, session):
        sampler = session.sampler
        one_shot = sampler.collect(
            "fpga", "current", start=2.0, duration=6.0
        )
        stream = sampler.stream(
            "fpga", "current", start=2.0, duration=6.0, chunk_duration=1.5
        )
        values = np.concatenate([chunk.values for chunk in stream])
        assert (values == one_shot.values).all()

    def test_jitterless_sampler_matches(self):
        session = AttackSession.create(seed=3, poll_jitter=0.0)
        one_shot = session.sampler.collect("fpga", "power", n_samples=100)
        chunks = list(
            session.sampler.stream(
                "fpga", "power", n_samples=100, chunk_samples=9
            )
        )
        times = np.concatenate([chunk.times for chunk in chunks])
        assert (times == one_shot.times).all()

    def test_int_start_matches_collect(self, session):
        # The jitter stream is keyed by the caller's start repr; an
        # integer start must not silently reseed via float coercion.
        one_shot = session.sampler.collect(
            "fpga", "current", start=0, n_samples=64
        )
        values = np.concatenate(
            [
                chunk.values
                for chunk in session.sampler.stream(
                    "fpga", "current", start=0, n_samples=64,
                    chunk_samples=10,
                )
            ]
        )
        assert (values == one_shot.values).all()


class TestBoundedMemory:
    def test_peak_resident_bounded_by_chunk(self, session):
        stream = session.sampler.stream(
            "fpga", "current", n_samples=5_000, chunk_samples=128
        )
        for _ in stream:
            pass
        # The high-water mark is the chunk size, not the session size.
        assert stream.max_resident_samples == 128
        assert stream.max_resident_samples < stream.n_samples

    def test_tail_chunk_is_partial(self, session):
        stream = session.sampler.stream(
            "fpga", "current", n_samples=100, chunk_samples=30
        )
        sizes = [chunk.n_samples for chunk in stream]
        assert sizes == [30, 30, 30, 10]
        assert stream.samples_remaining == 0

    def test_validation(self, session):
        with pytest.raises(ValueError):
            session.sampler.stream("fpga", "current")  # no length
        with pytest.raises(ValueError):
            session.sampler.stream(
                "fpga", "current", n_samples=10, duration=1.0
            )
        with pytest.raises(ValueError):
            session.sampler.stream(
                "fpga", "current", n_samples=10,
                chunk_samples=4, chunk_duration=1.0,
            )


class TestStreamingConsumers:
    def test_detector_scan_matches_one_shot(self, session):
        # A victim that starts mid-stakeout is found at the same onset
        # whether the channel is scanned in chunks or as one trace.
        session.soc.replace_workload(
            "fpga",
            "victim",
            PiecewiseActivity([0.0, 6.0, 1e9], [0.0, 4.0]),
        )
        try:
            detector = OnsetDetector()
            one_shot = session.sampler.collect(
                "fpga", "current", start=0.0, duration=10.0
            )
            baseline = detector.estimate_baseline(
                np.asarray(one_shot.values, dtype=np.float64)
            )
            found_ref, onset_ref = detector.detect_onset(
                one_shot, baseline=baseline
            )
            stream = session.sampler.stream(
                "fpga", "current", start=0.0, duration=10.0,
                chunk_duration=2.0,
            )
            found, onset = detector.scan_for_onset(stream)
        finally:
            session.soc.detach_workload("fpga", "victim")
        assert found_ref and found
        assert onset == pytest.approx(onset_ref, abs=0.5)

    def test_campaign_stakeout_bounded(self):
        from repro.core.campaign import AttackCampaign

        session = AttackSession.create(seed=17)
        session.soc.replace_workload(
            "fpga",
            "victim",
            PiecewiseActivity([0.0, 5.0, 1e9], [0.0, 4.0]),
        )
        campaign = AttackCampaign(session=session)
        found, onset = campaign.wait_for_victim(timeout=12.0, chunk=2.0)
        assert found
        assert onset == pytest.approx(5.0, abs=2.5)

    def test_covert_decode_frame_matches_live(self):
        # The archived frame replays to exactly the live receiver bits.
        channel = CovertChannel(seed=5)
        rng = np.random.default_rng(5)
        bits = rng.integers(0, 2, size=24)
        recorded = []
        report = channel.transmit(
            bits, bit_period=0.08, sink=recorded.append
        )
        assert len(recorded) > 1  # chunked per bit window
        from repro.core.traces import Trace

        frame = Trace(
            times=np.concatenate([c.times for c in recorded]),
            values=np.concatenate([c.values for c in recorded]),
            domain="fpga",
            quantity="current",
        )
        assert decode_frame(frame, len(bits)) == list(report.received)
