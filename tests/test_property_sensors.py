"""Property-based tests for the INA226 model and hash randomness."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sensors.ina226 import (
    AVERAGING_COUNTS,
    CONVERSION_TIMES,
    Ina226,
    Ina226Config,
)
from repro.utils.hashrand import hashed_normal, hashed_uniform

currents = st.floats(min_value=0.0, max_value=20.0)
buses = st.floats(min_value=0.5, max_value=3.5)


def noiseless(shunt=2e-3):
    return Ina226(
        shunt_ohms=shunt, shunt_noise_volts=0.0, bus_noise_volts=0.0
    )


class TestQuantizationProperties:
    @given(currents, buses)
    @settings(max_examples=100, deadline=None)
    def test_current_error_bounded(self, current, bus):
        sensor = noiseless()
        reading = sensor.convert(np.array([current]), np.array([bus]))
        if current < sensor.max_current:
            # Quantization error stays within ~1 current LSB plus the
            # shunt-register rounding contribution.
            error = abs(reading.current_amps[0] - current)
            shunt_lsb_in_amps = 2.5e-6 / sensor.shunt_ohms
            assert error <= sensor.current_lsb + shunt_lsb_in_amps

    @given(currents, currents, buses)
    @settings(max_examples=100, deadline=None)
    def test_current_monotone(self, a, b, bus):
        sensor = noiseless()
        reading = sensor.convert(
            np.array([min(a, b), max(a, b)]), np.array([bus, bus])
        )
        assert reading.current_register[0] <= reading.current_register[1]

    @given(currents, buses)
    @settings(max_examples=100, deadline=None)
    def test_power_register_arithmetic(self, current, bus):
        sensor = noiseless()
        reading = sensor.convert(np.array([current]), np.array([bus]))
        expected = (
            reading.current_register[0] * reading.bus_register[0]
        ) // 20000
        assert reading.power_register[0] == expected

    @given(currents, buses)
    @settings(max_examples=100, deadline=None)
    def test_power_truncates_vs_true_product(self, current, bus):
        sensor = noiseless()
        reading = sensor.convert(np.array([current]), np.array([bus]))
        true_power = current * bus
        if current < sensor.max_current:
            # One power LSB (25 mW) plus propagated quantization: the
            # current register carries both its own LSB and the shunt
            # register's rounding (2.5 uV / R = 1.25 mA here), and the
            # bus register contributes current * 1.25 mV.
            current_error = (
                sensor.current_lsb + 2.5e-6 / sensor.shunt_ohms
            )
            bound = (
                sensor.power_lsb
                + bus * current_error
                + current * 1.25e-3
                + 0.002
            )
            assert abs(reading.power_watts[0] - true_power) <= bound

    @given(buses)
    @settings(max_examples=50, deadline=None)
    def test_bus_quantized_to_lsb_grid(self, bus):
        sensor = noiseless()
        reading = sensor.convert(np.array([0.0]), np.array([bus]))
        remainder = reading.bus_volts[0] / 1.25e-3
        assert np.isclose(remainder, round(remainder), atol=1e-6)


class TestConfigProperties:
    @given(
        st.sampled_from(CONVERSION_TIMES),
        st.sampled_from(CONVERSION_TIMES),
        st.sampled_from(AVERAGING_COUNTS),
    )
    @settings(max_examples=64, deadline=None)
    def test_update_period_formula(self, sct, bct, avg):
        config = Ina226Config(
            shunt_conversion_time=sct, bus_conversion_time=bct, averages=avg
        )
        assert config.update_period == (sct + bct) * avg

    @given(st.floats(min_value=1e-3, max_value=20.0))
    @settings(max_examples=60, deadline=None)
    def test_for_update_period_is_nearest(self, target):
        config = Ina226Config.for_update_period(target)
        # No other symmetric configuration is strictly closer.
        best_error = abs(config.update_period - target)
        for ct in CONVERSION_TIMES:
            for avg in AVERAGING_COUNTS:
                candidate = (2 * ct) * avg
                assert best_error <= abs(candidate - target) + 1e-12


class TestHashRandProperties:
    @given(st.integers(min_value=0, max_value=2**63 - 1),
           st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=100, deadline=None)
    def test_uniform_in_range(self, key, counter):
        value = hashed_uniform(key, np.array([counter], dtype=np.uint64))[0]
        assert 0.0 <= value < 1.0

    @given(st.integers(min_value=0, max_value=2**63 - 1),
           st.integers(min_value=0, max_value=2**31),
           st.integers(min_value=0, max_value=7))
    @settings(max_examples=100, deadline=None)
    def test_pure_function(self, key, counter, stream):
        c = np.array([counter], dtype=np.uint64)
        assert (
            hashed_normal(key, c, stream=stream)[0]
            == hashed_normal(key, c, stream=stream)[0]
        )

    @given(st.integers(min_value=0, max_value=2**63 - 1),
           st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=100, deadline=None)
    def test_normal_is_finite(self, key, counter):
        value = hashed_normal(key, np.array([counter], dtype=np.uint64))[0]
        assert np.isfinite(value)
