"""Property-based tests for activity timelines (hypothesis).

Invariants under test:
* energy is additive over adjacent windows;
* window means are bounded by the segment power range;
* periodic profiles accumulate exactly cycle_energy per period;
* composition and scaling are linear in energy.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.soc.workload import (
    CompositeActivity,
    ConstantActivity,
    PiecewiseActivity,
)

segments = st.lists(
    st.tuples(
        st.floats(min_value=1e-4, max_value=2.0),
        st.floats(min_value=0.0, max_value=10.0),
    ),
    min_size=1,
    max_size=12,
)

windows = st.tuples(
    st.floats(min_value=-5.0, max_value=5.0),
    st.floats(min_value=1e-3, max_value=5.0),
)


@st.composite
def piecewise(draw, periodic=False):
    segs = draw(segments)
    span = sum(d for d, _ in segs)
    period = None
    if periodic:
        period = span * draw(st.floats(min_value=1.0, max_value=1.5))
    return PiecewiseActivity.from_segments(segs, period=period)


class TestEnergyAdditivity:
    @given(piecewise(), windows, st.floats(min_value=1e-3, max_value=3.0))
    @settings(max_examples=60, deadline=None)
    def test_adjacent_windows_sum(self, timeline, window, extra):
        t0, width = window
        t1 = t0 + width
        t2 = t1 + extra
        left = timeline.energy_between(np.array([t0]), np.array([t1]))[0]
        right = timeline.energy_between(np.array([t1]), np.array([t2]))[0]
        total = timeline.energy_between(np.array([t0]), np.array([t2]))[0]
        assert np.isclose(left + right, total, rtol=1e-9, atol=1e-12)

    @given(piecewise(periodic=True), windows)
    @settings(max_examples=60, deadline=None)
    def test_periodic_additivity(self, timeline, window):
        t0, width = window
        t1 = t0 + width
        mid = (t0 + t1) / 2
        left = timeline.energy_between(np.array([t0]), np.array([mid]))[0]
        right = timeline.energy_between(np.array([mid]), np.array([t1]))[0]
        total = timeline.energy_between(np.array([t0]), np.array([t1]))[0]
        assert np.isclose(left + right, total, rtol=1e-9, atol=1e-12)


class TestWindowMeanBounds:
    @given(piecewise(), windows)
    @settings(max_examples=60, deadline=None)
    def test_mean_within_power_range(self, timeline, window):
        t0, width = window
        mean = timeline.window_mean(np.array([t0]), np.array([t0 + width]))[0]
        low = timeline.powers.min()
        high = timeline.powers.max()
        assert low - 1e-9 <= mean <= high + 1e-9

    @given(piecewise(periodic=True), windows)
    @settings(max_examples=60, deadline=None)
    def test_periodic_mean_bounds(self, timeline, window):
        t0, width = window
        mean = timeline.window_mean(np.array([t0]), np.array([t0 + width]))[0]
        # The idle gap (zero power) extends the lower bound to 0.
        assert -1e-9 <= mean <= timeline.powers.max() + 1e-9


class TestPeriodicity:
    @given(piecewise(periodic=True), st.integers(min_value=1, max_value=5))
    @settings(max_examples=60, deadline=None)
    def test_whole_periods_accumulate_cycle_energy(self, timeline, cycles):
        period = timeline.period
        energy = timeline.energy_between(
            np.array([0.0]), np.array([cycles * period])
        )[0]
        one = timeline.energy_between(np.array([0.0]), np.array([period]))[0]
        assert np.isclose(energy, cycles * one, rtol=1e-9, atol=1e-12)

    @given(piecewise(periodic=True), windows)
    @settings(max_examples=60, deadline=None)
    def test_energy_is_periodic(self, timeline, window):
        # Point samples sit exactly on segment edges for some folds, so
        # the robust statement of periodicity is over window energies.
        t0, width = window
        period = timeline.period
        a = timeline.energy_between(np.array([t0]), np.array([t0 + width]))[0]
        b = timeline.energy_between(
            np.array([t0 + 3 * period]), np.array([t0 + width + 3 * period])
        )[0]
        assert np.isclose(a, b, rtol=1e-6, atol=1e-9)


class TestLinearity:
    @given(piecewise(), windows, st.floats(min_value=0.0, max_value=5.0))
    @settings(max_examples=60, deadline=None)
    def test_scaling_scales_energy(self, timeline, window, factor):
        t0, width = window
        t1 = t0 + width
        base = timeline.energy_between(np.array([t0]), np.array([t1]))[0]
        scaled = timeline.scaled(factor).energy_between(
            np.array([t0]), np.array([t1])
        )[0]
        assert np.isclose(scaled, factor * base, rtol=1e-9, atol=1e-12)

    @given(piecewise(), piecewise(periodic=True), windows)
    @settings(max_examples=60, deadline=None)
    def test_composition_adds_energy(self, a, b, window):
        t0, width = window
        t1 = t0 + width
        combined = CompositeActivity([a, b])
        ea = a.energy_between(np.array([t0]), np.array([t1]))[0]
        eb = b.energy_between(np.array([t0]), np.array([t1]))[0]
        ec = combined.energy_between(np.array([t0]), np.array([t1]))[0]
        assert np.isclose(ec, ea + eb, rtol=1e-9, atol=1e-12)

    @given(st.floats(min_value=0.0, max_value=100.0), windows)
    @settings(max_examples=40, deadline=None)
    def test_constant_energy_exact(self, power, window):
        t0, width = window
        energy = ConstantActivity(power).energy_between(
            np.array([t0]), np.array([t0 + width])
        )[0]
        assert np.isclose(energy, power * width, rtol=1e-12, atol=1e-15)
