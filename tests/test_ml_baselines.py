"""Tests for the kNN and logistic-regression baselines."""

import numpy as np
import pytest

from repro.ml.linear import LogisticRegressionClassifier, softmax
from repro.ml.neighbors import KNeighborsClassifier


def make_blobs(n_per_class=30, n_classes=3, d=6, spread=0.5, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(n_classes, d)) * 4
    X = np.vstack(
        [
            centers[c] + spread * rng.normal(size=(n_per_class, d))
            for c in range(n_classes)
        ]
    )
    y = np.repeat(np.arange(n_classes), n_per_class)
    return X, y


class TestSoftmax:
    def test_rows_sum_to_one(self):
        logits = np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]])
        out = softmax(logits)
        np.testing.assert_allclose(out.sum(axis=1), 1.0)

    def test_large_logits_stable(self):
        out = softmax(np.array([[1000.0, 1001.0]]))
        assert np.isfinite(out).all()
        assert out[0, 1] > out[0, 0]

    def test_uniform_logits_uniform_proba(self):
        out = softmax(np.zeros((1, 4)))
        np.testing.assert_allclose(out, 0.25)


class TestKnn:
    def test_classifies_blobs(self):
        X, y = make_blobs()
        knn = KNeighborsClassifier(n_neighbors=3).fit(X, y)
        assert np.mean(knn.predict(X) == y) > 0.95

    def test_k1_memorizes(self):
        X, y = make_blobs(spread=2.0, seed=1)
        knn = KNeighborsClassifier(n_neighbors=1).fit(X, y)
        assert np.mean(knn.predict(X) == y) == 1.0

    def test_manhattan_metric(self):
        X, y = make_blobs(seed=2)
        knn = KNeighborsClassifier(n_neighbors=3, metric="manhattan").fit(X, y)
        assert np.mean(knn.predict(X) == y) > 0.9

    def test_proba_rows_sum_to_one(self):
        X, y = make_blobs(seed=3)
        knn = KNeighborsClassifier(n_neighbors=5).fit(X, y)
        np.testing.assert_allclose(knn.predict_proba(X).sum(axis=1), 1.0)

    def test_topk(self):
        X, y = make_blobs(seed=4)
        knn = KNeighborsClassifier(n_neighbors=5).fit(X, y)
        topk = knn.predict_topk(X, 2)
        assert topk.shape == (X.shape[0], 2)
        np.testing.assert_array_equal(topk[:, 0], knn.predict(X))

    def test_string_labels(self):
        X = np.array([[0.0], [0.1], [5.0], [5.1]])
        y = np.array(["a", "a", "b", "b"])
        knn = KNeighborsClassifier(n_neighbors=1).fit(X, y)
        assert list(knn.predict(np.array([[0.05], [5.05]]))) == ["a", "b"]

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            KNeighborsClassifier().predict_proba(np.zeros((1, 2)))

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(n_neighbors=10).fit(
                np.zeros((3, 2)), np.zeros(3)
            )

    def test_feature_mismatch_rejected(self):
        X, y = make_blobs(seed=5)
        knn = KNeighborsClassifier().fit(X, y)
        with pytest.raises(ValueError):
            knn.predict_proba(np.zeros((1, 99)))

    def test_invalid_metric(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(metric="cosine")


class TestLogistic:
    def test_classifies_blobs(self):
        X, y = make_blobs(seed=6)
        clf = LogisticRegressionClassifier(n_iterations=200).fit(X, y)
        assert np.mean(clf.predict(X) == y) > 0.95

    def test_proba_distribution(self):
        X, y = make_blobs(seed=7)
        clf = LogisticRegressionClassifier(n_iterations=100).fit(X, y)
        proba = clf.predict_proba(X)
        assert np.all(proba >= 0)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_standardization_handles_raw_scales(self):
        X, y = make_blobs(seed=8)
        X = X * 1000 + 5000  # hwmon-like magnitudes
        clf = LogisticRegressionClassifier(n_iterations=200).fit(X, y)
        assert np.mean(clf.predict(X) == y) > 0.9

    def test_topk(self):
        X, y = make_blobs(seed=9)
        clf = LogisticRegressionClassifier(n_iterations=100).fit(X, y)
        topk = clf.predict_topk(X, 3)
        assert topk.shape == (X.shape[0], 3)

    def test_binary_case(self):
        X, y = make_blobs(n_classes=2, seed=10)
        clf = LogisticRegressionClassifier(n_iterations=200).fit(X, y)
        assert np.mean(clf.predict(X) == y) > 0.95

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LogisticRegressionClassifier().predict(np.zeros((1, 2)))

    def test_feature_mismatch_rejected(self):
        X, y = make_blobs(seed=11)
        clf = LogisticRegressionClassifier(n_iterations=10).fit(X, y)
        with pytest.raises(ValueError):
            clf.predict(np.zeros((1, 99)))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LogisticRegressionClassifier(learning_rate=0.0)
        with pytest.raises(ValueError):
            LogisticRegressionClassifier(l2=-1.0)
