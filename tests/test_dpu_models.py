"""Tests for the 39-model zoo."""

import pytest

from repro.dpu.models import (
    FIG3_MODELS,
    MODEL_REGISTRY,
    build_model,
    list_families,
    list_models,
)


class TestZooShape:
    def test_exactly_39_models(self):
        # Paper §IV-B: "39 architectures over 7 diverse architecture
        # families".
        assert len(list_models()) == 39

    def test_exactly_7_families(self):
        assert len(list_families()) == 7

    def test_family_membership(self):
        families = {}
        for name in list_models():
            model = build_model(name)
            families.setdefault(model.family, []).append(name)
        assert set(families) == {
            "resnet", "vgg", "inception", "mobilenet", "efficientnet",
            "squeezenet", "densenet",
        }
        assert sum(len(v) for v in families.values()) == 39

    def test_fig3_models_exist(self):
        assert len(FIG3_MODELS) == 6
        for name in FIG3_MODELS:
            assert name in MODEL_REGISTRY

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError, match="available"):
            build_model("transformer-xl")

    def test_names_match_specs(self):
        for name in list_models():
            assert build_model(name).name == name

    def test_builders_are_pure(self):
        a = build_model("resnet-50")
        b = build_model("resnet-50")
        assert a.macs == b.macs
        assert len(a.layers) == len(b.layers)


class TestPublishedMacCounts:
    """Total MACs should land near the published numbers (int8 DPU
    compilation keeps the MAC count; tolerances absorb our grid/padding
    simplifications)."""

    @pytest.mark.parametrize(
        "name,gmacs,rtol",
        [
            ("resnet-18", 1.8, 0.15),
            ("resnet-50", 4.1, 0.15),
            ("resnet-152", 11.5, 0.15),
            ("vgg-16", 15.5, 0.10),
            ("vgg-19", 19.6, 0.10),
            ("mobilenet-v1-1.0", 0.57, 0.15),
            ("mobilenet-v2-1.0", 0.30, 0.20),
            ("squeezenet-1.1", 0.35, 0.25),
            ("efficientnet-lite0", 0.39, 0.25),
            ("inception-v1", 1.5, 0.25),
            ("densenet-121", 2.9, 0.15),
        ],
    )
    def test_macs(self, name, gmacs, rtol):
        assert build_model(name).macs / 1e9 == pytest.approx(gmacs, rel=rtol)

    def test_vgg19_heavier_than_vgg11(self):
        assert build_model("vgg-19").macs > build_model("vgg-11").macs

    def test_resnet_depth_ordering(self):
        macs = [
            build_model(f"resnet-{d}").macs for d in (18, 34, 50, 101, 152)
        ]
        assert macs == sorted(macs)

    def test_mobilenet_width_ordering(self):
        macs = [
            build_model(f"mobilenet-v1-{w}").macs
            for w in (0.25, 0.5, 0.75, 1.0)
        ]
        assert macs == sorted(macs)

    def test_efficientnet_lite_ordering(self):
        macs = [build_model(f"efficientnet-lite{v}").macs for v in range(5)]
        assert macs == sorted(macs)

    def test_densenet_ordering_by_depth_group(self):
        assert (
            build_model("densenet-264").macs > build_model("densenet-121").macs
        )


class TestModelStructure:
    def test_vgg19_has_16_convs_3_fcs(self):
        model = build_model("vgg-19")
        convs = [l for l in model.layers if l.kind == "conv"]
        fcs = [l for l in model.layers if l.kind == "fc"]
        assert len(convs) == 16
        assert len(fcs) == 3

    def test_mobilenet_v1_has_13_dwconvs(self):
        model = build_model("mobilenet-v1-1.0")
        assert sum(1 for l in model.layers if l.kind == "dwconv") == 13

    def test_resnet50_has_adds(self):
        model = build_model("resnet-50")
        assert sum(1 for l in model.layers if l.kind == "add") == 16

    def test_inception_has_concats(self):
        model = build_model("inception-v1")
        assert sum(1 for l in model.layers if l.kind == "concat") == 9

    def test_inception_v3_input_size(self):
        assert build_model("inception-v3").input_size == 299

    def test_efficientnet_lite_input_sizes_grow(self):
        sizes = [
            build_model(f"efficientnet-lite{v}").input_size for v in range(5)
        ]
        assert sizes == [224, 240, 260, 280, 300]

    def test_vgg_dominates_weight_size(self):
        # Fig 3 annotates model sizes; VGG-19 is by far the largest.
        vgg = build_model("vgg-19").weight_bytes
        for other in ("resnet-50", "mobilenet-v1-1.0", "squeezenet-1.1"):
            assert vgg > 4 * build_model(other).weight_bytes

    def test_squeezenet_tiny_weights(self):
        assert build_model("squeezenet-1.1").weight_bytes < 2e6

    def test_repr(self):
        assert "GMACs" in repr(build_model("resnet-18"))
