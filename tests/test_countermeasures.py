"""Tests for sensor-hardening countermeasures."""

import numpy as np
import pytest

from repro.core.countermeasures import (
    ROOT_ONLY,
    SensorHardening,
    coarsened,
    dithered,
    rate_limited,
)
from repro.sensors.hwmon import HwmonPermissionError
from repro.soc import ConstantActivity, Soc


class TestPolicyObjects:
    def test_root_only_denies_unprivileged(self):
        with pytest.raises(HwmonPermissionError):
            ROOT_ONLY.check_access(privileged=False)

    def test_root_only_allows_privileged(self):
        ROOT_ONLY.check_access(privileged=True)  # no raise

    def test_open_policy_allows_everyone(self):
        SensorHardening().check_access(privileged=False)

    def test_quantize_transform(self):
        policy = coarsened(32)
        values = policy.transform(
            np.array([1000.0, 1015.0, 1017.0]), np.zeros(3), "fpga-current"
        )
        assert np.all(values % 32 == 0)

    def test_dither_is_slot_consistent(self):
        policy = dithered(10.0, seed=1)
        times = np.array([0.0001, 0.0002, 0.0015])
        values = policy.transform(np.full(3, 1000.0), times, "c")
        # First two polls land in the same 1 ms slot: identical dither.
        assert values[0] == values[1]
        # A different slot gets fresh dither (overwhelmingly likely).
        assert values[2] != values[0]

    def test_dither_pure_across_calls(self):
        policy = dithered(5.0, seed=2)
        times = np.linspace(0, 1, 10)
        a = policy.transform(np.full(10, 500.0), times, "c")
        b = policy.transform(np.full(10, 500.0), times, "c")
        np.testing.assert_array_equal(a, b)

    def test_rate_limit_folds_times(self):
        policy = rate_limited(0.5)
        folded = policy.effective_times(np.array([0.1, 0.4, 0.6, 1.2]))
        np.testing.assert_allclose(folded, [0.0, 0.0, 0.5, 1.0])

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SensorHardening(quantize_lsb=0.0)
        with pytest.raises(ValueError):
            SensorHardening(noise_sigma=-1.0)
        with pytest.raises(ValueError):
            SensorHardening(min_interval=0.0)


class TestHardenedSoc:
    def test_root_only_blocks_attack_reads(self):
        soc = Soc("ZCU102", seed=0, hardening=ROOT_ONLY)
        with pytest.raises(HwmonPermissionError):
            soc.sample("fpga", "current", np.array([1.0]))

    def test_root_only_serves_admins(self):
        soc = Soc("ZCU102", seed=0, hardening=ROOT_ONLY)
        values = soc.sample(
            "fpga", "current", np.array([1.0]), privileged=True
        )
        assert values[0] > 0

    def test_coarsening_hides_small_victims(self):
        plain = Soc("ZCU102", seed=0)
        hard = Soc("ZCU102", seed=0, hardening=coarsened(256))
        for soc in (plain, hard):
            soc.attach_workload("fpga", "small", ConstantActivity(0.02))
        t = np.array([1.0])
        plain_delta = plain.sample("fpga", "current", t)[0]
        hard_value = hard.sample("fpga", "current", t)[0]
        # The hardened reading sits on a 256 mA grid: a 23 mA victim
        # usually vanishes into the same bucket as idle.
        assert hard_value % 256 == 0
        assert plain_delta % 256 != 0 or plain_delta != hard_value

    def test_rate_limited_repeats_readings(self):
        soc = Soc("ZCU102", seed=0, hardening=rate_limited(0.5))
        times = 1.0 + np.linspace(0, 0.4, 8)
        values = soc.sample("fpga", "current", times)
        assert np.unique(values).size == 1

    def test_unhardened_soc_unaffected(self):
        soc = Soc("ZCU102", seed=0)
        values = soc.sample("fpga", "current", np.array([1.0]))
        assert values[0] > 0

    def test_dither_alone_does_not_stop_the_attack(self):
        # Key defensive insight: per-reading dither is defeated by the
        # attacker's own averaging — with thousands of samples per key
        # the medians reconverge, so even 60 mA RMS of injected noise
        # (4x the per-key current step) leaves every key separable.
        # Only quantization or access control actually close the leak.
        from repro.core.rsa_attack import RsaHammingWeightAttack

        hardened_soc = Soc("ZCU102", seed=0, hardening=dithered(60.0, seed=9))
        noisy = RsaHammingWeightAttack(soc=hardened_soc, seed=0)
        weights = (1, 128, 256, 384, 512)
        sweep = noisy.sweep(weights=weights, n_samples=4000)
        assert np.all(np.diff(sweep.medians) > 0)
        assert sweep.distinguishable_groups(min_gap=5.0) == len(weights)

    def test_coarsening_does_stop_the_attack(self):
        # The contrast case: a 256 mA export grid swallows the ~15 mA
        # per-key steps entirely.
        from repro.core.rsa_attack import RsaHammingWeightAttack

        hardened_soc = Soc("ZCU102", seed=0, hardening=coarsened(256))
        attack = RsaHammingWeightAttack(soc=hardened_soc, seed=0)
        weights = (1, 128, 256, 384, 512)
        sweep = attack.sweep(weights=weights, n_samples=2000)
        assert sweep.distinguishable_groups(min_gap=1.0) < len(weights)
