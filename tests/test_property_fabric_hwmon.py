"""Property-based tests for fabric allocation and hwmon latch logic."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fpga.fabric import CircuitSpec, Fabric, PlacementError
from repro.sensors.hwmon import HwmonDevice
from repro.sensors.ina226 import Ina226
from repro.soc.rails import PowerRail

utilizations = st.fixed_dictionaries(
    {},
    optional={
        "lut": st.integers(min_value=1, max_value=5000),
        "ff": st.integers(min_value=1, max_value=5000),
        "dsp": st.integers(min_value=1, max_value=50),
        "bram": st.integers(min_value=1, max_value=20),
    },
)


class TestFabricProperties:
    @given(st.lists(utilizations, min_size=1, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_deploy_undeploy_roundtrip(self, utilization_list):
        fabric = Fabric("ZCU102")
        deployed = []
        for index, utilization in enumerate(utilization_list):
            if not utilization:
                continue
            try:
                fabric.deploy(CircuitSpec(f"c{index}", utilization))
                deployed.append(f"c{index}")
            except PlacementError:
                pass
        for name in deployed:
            fabric.undeploy(name)
        # Everything released: usage is exactly zero everywhere.
        assert all(
            count == 0 for count in fabric.total_used.values()
        )

    @given(utilizations)
    @settings(max_examples=40, deadline=None)
    def test_usage_equals_deployed_totals(self, utilization):
        if not utilization:
            return
        fabric = Fabric("ZCU102")
        try:
            fabric.deploy(CircuitSpec("c", utilization))
        except PlacementError:
            return
        for resource, count in utilization.items():
            assert fabric.total_used[resource] == count

    @given(utilizations)
    @settings(max_examples=40, deadline=None)
    def test_usage_never_exceeds_capacity(self, utilization):
        if not utilization:
            return
        fabric = Fabric("ZCU102")
        try:
            fabric.deploy(CircuitSpec("c", utilization))
        except PlacementError:
            return
        capacity = fabric.total_capacity
        for resource, used in fabric.total_used.items():
            assert used <= capacity.get(resource, 0)


def make_device(seed=0):
    rail = PowerRail("VCCINT", idle_power=1.0, noise_power_sigma=0.01)
    sensor = Ina226(shunt_ohms=2e-3)
    return HwmonDevice(0, "ina226_u79", sensor, rail, seed=seed)


class TestHwmonLatchProperties:
    @given(
        st.floats(min_value=0.0, max_value=1000.0),
        st.floats(min_value=0.0, max_value=1000.0),
        st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=50, deadline=None)
    def test_latch_monotone(self, t_a, t_b, seed):
        device = make_device(seed)
        low, high = sorted((t_a, t_b))
        latches = device.latch_index(np.array([low, high]))
        assert latches[0] <= latches[1]

    @given(
        st.floats(min_value=1.0, max_value=1000.0),
        st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=50, deadline=None)
    def test_same_latch_same_value(self, t, seed):
        device = make_device(seed)
        period = device.update_period
        # Two polls inside the same period after the latch boundary.
        base = device.phase + np.floor(
            (t - device.phase) / period
        ) * period
        t0 = base + 0.1 * period
        t1 = base + 0.9 * period
        values = device.read_series("curr1_input", np.array([t0, t1]))
        assert values[0] == values[1]

    @given(
        st.floats(min_value=1.0, max_value=1000.0),
        st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=50, deadline=None)
    def test_reads_are_idempotent(self, t, seed):
        device = make_device(seed)
        first = device.read_series("curr1_input", np.array([t]))[0]
        second = device.read_series("curr1_input", np.array([t]))[0]
        assert first == second

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_readings_physical(self, seed):
        device = make_device(seed)
        times = np.linspace(1.0, 5.0, 40)
        current = device.read_series("curr1_input", times)
        voltage = device.read_series("in1_input", times)
        assert np.all(current >= 0)
        assert np.all((voltage >= 825) & (voltage <= 876))
