"""Tests for repro.soc.workload activity timelines."""

import numpy as np
import pytest

from repro.soc.workload import (
    CompositeActivity,
    ConstantActivity,
    PiecewiseActivity,
)


class TestConstantActivity:
    def test_power_at(self):
        timeline = ConstantActivity(2.5)
        np.testing.assert_allclose(timeline.power_at([0.0, 1.0, 100.0]), 2.5)

    def test_energy(self):
        timeline = ConstantActivity(2.0)
        np.testing.assert_allclose(
            timeline.energy_between([0.0], [3.0]), [6.0]
        )

    def test_window_mean(self):
        timeline = ConstantActivity(1.5)
        np.testing.assert_allclose(
            timeline.window_mean([10.0], [11.0]), [1.5]
        )

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            ConstantActivity(-1.0)

    def test_zero_power_ok(self):
        assert ConstantActivity(0.0).power_at([1.0])[0] == 0.0


class TestPiecewiseFinite:
    @pytest.fixture
    def steps(self):
        # 1 W for 1 s, 3 W for 2 s, 2 W for 1 s.
        return PiecewiseActivity([0.0, 1.0, 3.0, 4.0], [1.0, 3.0, 2.0])

    def test_power_lookup(self, steps):
        np.testing.assert_allclose(
            steps.power_at([0.5, 1.5, 3.5]), [1.0, 3.0, 2.0]
        )

    def test_edge_belongs_to_right_segment(self, steps):
        np.testing.assert_allclose(steps.power_at([1.0]), [3.0])

    def test_holds_last_value_after_end(self, steps):
        np.testing.assert_allclose(steps.power_at([10.0]), [2.0])

    def test_holds_first_value_before_start(self, steps):
        np.testing.assert_allclose(steps.power_at([-5.0]), [1.0])

    def test_energy_within(self, steps):
        # 1*1 + 3*2 + 2*1 = 9 J over the whole span.
        np.testing.assert_allclose(steps.energy_between([0.0], [4.0]), [9.0])

    def test_energy_partial_segment(self, steps):
        np.testing.assert_allclose(steps.energy_between([0.5], [1.5]), [0.5 + 1.5])

    def test_energy_beyond_end_extrapolates(self, steps):
        np.testing.assert_allclose(steps.energy_between([0.0], [5.0]), [9.0 + 2.0])

    def test_energy_before_start_extrapolates(self, steps):
        np.testing.assert_allclose(steps.energy_between([-1.0], [0.0]), [1.0])

    def test_window_mean(self, steps):
        np.testing.assert_allclose(steps.window_mean([0.0], [4.0]), [2.25])

    def test_window_mean_rejects_empty_window(self, steps):
        with pytest.raises(ValueError):
            steps.window_mean([1.0], [1.0])

    def test_mean_power(self, steps):
        assert steps.mean_power == pytest.approx(9.0 / 4.0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            PiecewiseActivity([0.0, 1.0], [1.0, 2.0])

    def test_unsorted_edges_rejected(self):
        with pytest.raises(ValueError):
            PiecewiseActivity([0.0, 2.0, 1.0], [1.0, 2.0])

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            PiecewiseActivity([0.0, 1.0], [-1.0])

    def test_from_segments(self):
        timeline = PiecewiseActivity.from_segments([(1.0, 2.0), (2.0, 4.0)])
        np.testing.assert_allclose(timeline.power_at([0.5, 2.0]), [2.0, 4.0])
        np.testing.assert_allclose(timeline.energy_between([0.0], [3.0]), [10.0])

    def test_from_segments_rejects_zero_duration(self):
        with pytest.raises(ValueError):
            PiecewiseActivity.from_segments([(0.0, 1.0)])


class TestPiecewisePeriodic:
    @pytest.fixture
    def square_wave(self):
        # 2 W for 1 ms, 0 W for 1 ms, repeating.
        return PiecewiseActivity(
            [0.0, 1e-3, 2e-3], [2.0, 0.0], period=2e-3
        )

    def test_periodic_power(self, square_wave):
        np.testing.assert_allclose(
            square_wave.power_at([0.5e-3, 1.5e-3, 2.5e-3, 3.5e-3]),
            [2.0, 0.0, 2.0, 0.0],
        )

    def test_periodic_energy_whole_cycles(self, square_wave):
        # One cycle = 2 mJ.
        np.testing.assert_allclose(
            square_wave.energy_between([0.0], [10e-3]), [10e-3]
        )

    def test_periodic_energy_fraction(self, square_wave):
        np.testing.assert_allclose(
            square_wave.energy_between([0.0], [0.5e-3]), [1e-3]
        )

    def test_periodic_mean_power(self, square_wave):
        assert square_wave.mean_power == pytest.approx(1.0)

    def test_negative_time_energy(self, square_wave):
        # Periodicity extends to negative time as well.
        np.testing.assert_allclose(
            square_wave.energy_between([-2e-3], [0.0]), [2e-3]
        )

    def test_gap_is_zero_filled(self):
        # 1 W for 1 s, then a 1 s gap before the 3 s period repeats.
        timeline = PiecewiseActivity([0.0, 1.0], [1.0], period=3.0)
        np.testing.assert_allclose(timeline.power_at([2.0]), [0.0])
        np.testing.assert_allclose(timeline.energy_between([0.0], [3.0]), [1.0])

    def test_period_shorter_than_span_rejected(self):
        with pytest.raises(ValueError):
            PiecewiseActivity([0.0, 1.0, 2.0], [1.0, 2.0], period=1.0)

    def test_window_mean_spanning_many_cycles(self, square_wave):
        # Over many whole cycles the mean approaches 1 W exactly.
        np.testing.assert_allclose(
            square_wave.window_mean([0.0], [20e-3]), [1.0]
        )


class TestCompositeAndScaling:
    def test_addition(self):
        combined = ConstantActivity(1.0) + ConstantActivity(2.0)
        np.testing.assert_allclose(combined.power_at([0.0]), [3.0])

    def test_addition_flattens(self):
        a = ConstantActivity(1.0) + ConstantActivity(2.0)
        b = a + ConstantActivity(3.0)
        assert isinstance(b, CompositeActivity)
        assert len(b.components) == 3

    def test_composite_energy(self):
        combined = CompositeActivity(
            [ConstantActivity(1.0), ConstantActivity(0.5)]
        )
        np.testing.assert_allclose(combined.energy_between([0.0], [2.0]), [3.0])

    def test_empty_composite_rejected(self):
        with pytest.raises(ValueError):
            CompositeActivity([])

    def test_scaled(self):
        timeline = ConstantActivity(2.0).scaled(1.5)
        np.testing.assert_allclose(timeline.power_at([0.0]), [3.0])
        np.testing.assert_allclose(timeline.energy_between([0.0], [1.0]), [3.0])

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            ConstantActivity(1.0).scaled(-1.0)

    def test_mixed_composite_window_mean(self):
        wave = PiecewiseActivity([0.0, 1.0, 2.0], [2.0, 0.0], period=2.0)
        combined = wave + ConstantActivity(1.0)
        np.testing.assert_allclose(combined.window_mean([0.0], [2.0]), [2.0])
