"""Tests for the DPU core roofline model."""

import pytest

from repro.dpu.dpu import DpuConfig, DpuCore
from repro.dpu.layers import conv, dwconv, fc, pool
from repro.dpu.models import build_model


class TestConfig:
    def test_b4096_peak(self):
        config = DpuConfig()
        # 4096 ops/cycle at 300 MHz = 1.2288 TOPS = 614.4 GMAC/s.
        assert config.peak_macs_per_second == pytest.approx(614.4e9)

    def test_invalid_efficiency_rejected(self):
        with pytest.raises(ValueError):
            DpuConfig(efficiency={"conv": 1.5})

    def test_invalid_clock_rejected(self):
        with pytest.raises(ValueError):
            DpuConfig(clock_hz=0.0)


class TestLayerScheduling:
    @pytest.fixture
    def core(self):
        return DpuCore()

    def test_compute_bound_conv(self, core):
        layer, _ = conv("c", 56, 56, 256, 256, kernel=3)
        execution = core.schedule_layer(layer)
        expected = layer.macs / (614.4e9 * 0.65)
        assert execution.duration == pytest.approx(expected)
        assert execution.occupancy == pytest.approx(0.65)

    def test_memory_bound_fc(self, core):
        layer = fc("f", 25088, 4096)  # VGG fc6: ~100 MB of weights
        execution = core.schedule_layer(layer)
        memory_time = layer.memory_bytes / core.config.ddr_bandwidth
        assert execution.duration == pytest.approx(memory_time)
        assert execution.occupancy < 0.2

    def test_pool_is_memory_only(self, core):
        layer, _ = pool("p", 112, 112, 64, kernel=2)
        execution = core.schedule_layer(layer)
        assert execution.fpga_power == 0.0
        assert execution.ddr_power > 0.0

    def test_min_layer_time_floor(self, core):
        layer = fc("tiny", 16, 16)
        execution = core.schedule_layer(layer)
        assert execution.duration == core.config.min_layer_seconds

    def test_dwconv_less_efficient(self, core):
        dense, _ = conv("c", 56, 56, 128, 128, kernel=3)
        depthwise, _ = dwconv("d", 56, 56, 128, kernel=3)
        dense_rate = dense.macs / core.schedule_layer(dense).duration
        dw_rate = depthwise.macs / core.schedule_layer(depthwise).duration
        assert dw_rate < dense_rate

    def test_ddr_power_bounded_by_bandwidth(self, core):
        layer = fc("f", 25088, 4096)
        execution = core.schedule_layer(layer)
        max_power = (
            core.config.ddr_bandwidth * core.config.ddr_energy_per_byte
        )
        assert execution.ddr_power <= max_power * 1.0001


class TestModelScheduling:
    @pytest.fixture
    def core(self):
        return DpuCore()

    def test_schedule_covers_all_layers(self, core):
        model = build_model("resnet-18")
        schedule = core.schedule(model)
        assert len(schedule) == len(model.layers)

    def test_latency_orderings(self, core):
        # Heavier nets take longer end to end.
        mobilenet = core.inference_latency(build_model("mobilenet-v1-1.0"))
        resnet = core.inference_latency(build_model("resnet-50"))
        vgg = core.inference_latency(build_model("vgg-19"))
        assert mobilenet < resnet < vgg

    def test_latency_realistic_range(self, core):
        # ResNet-50 on a B4096 runs in the 10-30 ms bracket.
        latency = core.inference_latency(build_model("resnet-50"))
        assert 5e-3 < latency < 40e-3

    def test_mean_power_includes_idle_floor(self, core):
        mean = core.mean_fpga_power(build_model("mobilenet-v1-0.25"))
        assert mean > core.config.p_idle

    def test_mean_power_below_max(self, core):
        mean = core.mean_fpga_power(build_model("vgg-19"))
        assert mean < core.config.p_idle + core.config.p_compute_max

    def test_conv_heavy_models_draw_more_fpga_power(self, core):
        vgg = core.mean_fpga_power(build_model("vgg-19"))
        mobilenet = core.mean_fpga_power(build_model("mobilenet-v1-1.0"))
        assert vgg > mobilenet

    def test_repr(self, core):
        assert "B4096" in repr(core)
