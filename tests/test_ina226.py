"""Tests for the register-level INA226 model."""

import numpy as np
import pytest

from repro.sensors.ina226 import (
    AVERAGING_COUNTS,
    BUS_LSB_VOLTS,
    CONVERSION_TIMES,
    POWER_LSB_RATIO,
    Ina226,
    Ina226Config,
)


class TestConfig:
    def test_default_update_period_is_35ms(self):
        config = Ina226Config()
        assert config.update_period == pytest.approx(35.2e-3)

    def test_invalid_conversion_time_rejected(self):
        with pytest.raises(ValueError):
            Ina226Config(shunt_conversion_time=1e-3)

    def test_invalid_averages_rejected(self):
        with pytest.raises(ValueError):
            Ina226Config(averages=3)

    def test_for_update_period_hits_35ms(self):
        config = Ina226Config.for_update_period(35e-3)
        assert config.update_period == pytest.approx(35e-3, rel=0.05)

    def test_for_update_period_hits_2ms(self):
        config = Ina226Config.for_update_period(2e-3)
        assert config.update_period == pytest.approx(2e-3, rel=0.2)

    def test_for_update_period_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Ina226Config.for_update_period(0.0)

    def test_datasheet_tables(self):
        assert len(CONVERSION_TIMES) == 8
        assert len(AVERAGING_COUNTS) == 8
        assert 1.1e-3 in CONVERSION_TIMES
        assert 1024 in AVERAGING_COUNTS


class TestCalibration:
    def test_zcu102_fpga_sensor_calibration(self):
        # 2 mOhm shunt, 1 mA LSB: CAL = 0.00512 / (1e-3 * 2e-3) = 2560.
        sensor = Ina226(shunt_ohms=2e-3, current_lsb=1e-3)
        assert sensor.calibration == 2560

    def test_power_lsb_is_25x_current_lsb(self):
        sensor = Ina226(shunt_ohms=2e-3, current_lsb=1e-3)
        assert sensor.power_lsb == pytest.approx(POWER_LSB_RATIO * 1e-3)

    def test_calibration_overflow_rejected(self):
        with pytest.raises(ValueError, match="calibration"):
            Ina226(shunt_ohms=1e-6, current_lsb=1e-6)

    def test_max_current(self):
        sensor = Ina226(shunt_ohms=2e-3)
        # 81.92 mV full scale over 2 mOhm = ~41 A.
        assert sensor.max_current == pytest.approx(40.96, rel=0.01)


class TestConversion:
    @pytest.fixture
    def sensor(self):
        return Ina226(shunt_ohms=2e-3, current_lsb=1e-3)

    def test_noiseless_current_quantization(self):
        sensor = Ina226(shunt_ohms=2e-3, shunt_noise_volts=0.0, bus_noise_volts=0.0)
        reading = sensor.convert(np.array([1.2344]), np.array([0.85]))
        # 1.2344 A -> 617.2 LSB shunt -> rounds to 617 -> current register
        # (617 * 2560) // 2048 = 771... let's check via the public value:
        assert reading.current_amps[0] == pytest.approx(1.234, abs=2e-3)

    def test_current_register_step_is_1ma(self, sensor):
        reading = sensor.convert(
            np.array([1.000, 1.001]), np.array([0.85, 0.85]), rng=1
        )
        assert reading.current_amps.dtype == np.float64
        # Registers are integers; consecutive readings differ by whole LSBs.
        difference = reading.current_register[1] - reading.current_register[0]
        assert difference == int(difference)

    def test_bus_voltage_quantization(self):
        sensor = Ina226(shunt_ohms=2e-3, shunt_noise_volts=0.0, bus_noise_volts=0.0)
        reading = sensor.convert(np.array([0.0]), np.array([0.850]))
        assert reading.bus_volts[0] == pytest.approx(
            round(0.850 / BUS_LSB_VOLTS) * BUS_LSB_VOLTS
        )

    def test_power_is_register_product(self):
        sensor = Ina226(shunt_ohms=2e-3, shunt_noise_volts=0.0, bus_noise_volts=0.0)
        reading = sensor.convert(np.array([4.0]), np.array([0.85]))
        expected_register = (
            reading.current_register[0] * reading.bus_register[0]
        ) // 20000
        assert reading.power_register[0] == expected_register
        assert reading.power_watts[0] == pytest.approx(
            expected_register * sensor.power_lsb
        )

    def test_power_truncates_low_bits(self):
        # Two currents 8 mA apart at 0.85 V differ by ~7 mW < one 25 mW
        # power LSB — the power channel can collapse them (Fig 4).
        sensor = Ina226(shunt_ohms=2e-3, shunt_noise_volts=0.0, bus_noise_volts=0.0)
        reading = sensor.convert(
            np.array([1.000, 1.008]), np.array([0.85, 0.85])
        )
        # Shunt-register rounding can shave one LSB off the 8 mA step.
        assert reading.current_register[1] - reading.current_register[0] in (7, 8)
        assert abs(reading.power_register[1] - reading.power_register[0]) <= 1

    def test_shunt_register_clips(self, sensor):
        reading = sensor.convert(np.array([100.0]), np.array([0.85]), rng=1)
        assert reading.shunt_register[0] == 32767

    def test_noise_reduced_by_averaging(self):
        quiet = Ina226(
            shunt_ohms=2e-3,
            config=Ina226Config(averages=1024),
            shunt_noise_volts=25e-6,
        )
        loud = Ina226(
            shunt_ohms=2e-3,
            config=Ina226Config(averages=1),
            shunt_noise_volts=25e-6,
        )
        current = np.full(4000, 2.0)
        bus = np.full(4000, 0.85)
        quiet_std = quiet.convert(current, bus, rng=1).current_amps.std()
        loud_std = loud.convert(current, bus, rng=1).current_amps.std()
        assert quiet_std < loud_std / 4

    def test_injected_noise_is_pure(self, sensor):
        current = np.full(10, 2.0)
        bus = np.full(10, 0.85)
        noise = np.zeros(10)
        a = sensor.convert(current, bus, shunt_noise=noise, bus_noise=noise)
        b = sensor.convert(current, bus, shunt_noise=noise, bus_noise=noise)
        np.testing.assert_array_equal(a.current_register, b.current_register)

    def test_shape_mismatch_rejected(self, sensor):
        with pytest.raises(ValueError, match="equal shapes"):
            sensor.convert(np.zeros(3), np.zeros(4))

    def test_update_period_exposed(self, sensor):
        assert sensor.update_period == pytest.approx(35.2e-3)

    def test_repr(self, sensor):
        assert "mOhm" in repr(sensor)
