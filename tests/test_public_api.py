"""Public-API stability tests.

Downstream users import from the package roots; these tests pin the
documented entry points so a refactor cannot silently drop them.
"""

import importlib

import pytest

#: module -> names that must stay importable from it.
PUBLIC_API = {
    "repro": [
        "Soc", "HwmonSampler", "DnnFingerprinter", "FingerprintConfig",
        "RsaHammingWeightAttack", "characterize", "DpuRunner",
        "build_model", "list_models", "PowerVirusArray", "RsaCircuit",
        "RandomForestClassifier", "Trace", "TraceSet",
    ],
    "repro.boards": [
        "list_boards", "get_board", "sensitive_sensors", "sensor_map_for",
        "VCK190_SENSORS",
    ],
    "repro.fpga": [
        "Fabric", "CircuitSpec", "VoltageRegulator", "PowerVirusArray",
        "RingOscillator", "RoSensorBank", "TdcSensor", "RsaCircuit",
        "AesCircuit", "Bitstream", "FpgaConfigurator",
        "IsolatedTenantPdn", "generate_workload",
    ],
    "repro.sensors": [
        "Ina226", "Ina226Config", "HwmonTree", "HwmonDevice", "I2cBus",
        "Ina226RegisterFile",
    ],
    "repro.soc": [
        "Soc", "PowerRail", "ActivityTimeline", "ConstantActivity",
        "PiecewiseActivity", "ThermalModel", "OndemandGovernor",
        "BackgroundLoad",
    ],
    "repro.dpu": [
        "DpuCore", "DpuConfig", "DpuRunner", "DpuCompiler", "ModelSpec",
        "build_model", "list_models", "FIG3_MODELS",
    ],
    "repro.crypto": [
        "square_and_multiply", "hamming_weight", "paper_key_set",
        "PAPER_HAMMING_WEIGHTS",
    ],
    "repro.ml": [
        "RandomForestClassifier", "DecisionTreeClassifier",
        "KNeighborsClassifier", "LogisticRegressionClassifier",
        "cross_validate", "accuracy", "top_k_accuracy",
    ],
    "repro.core": [
        "HwmonSampler", "Trace", "TraceSet", "characterize",
        "DnnFingerprinter", "RsaHammingWeightAttack", "CovertChannel",
        "OnsetDetector", "AttackCampaign", "SensorHardening",
        "save_traceset", "load_traceset",
    ],
    "repro.analysis": [
        "pearson", "linear_fit", "relative_variation", "welch_t_test",
        "snr", "summarize", "count_groups", "estimate_serving_rate",
    ],
}


@pytest.mark.parametrize("module_name", sorted(PUBLIC_API))
def test_module_exports(module_name):
    module = importlib.import_module(module_name)
    for name in PUBLIC_API[module_name]:
        assert hasattr(module, name), f"{module_name} lost {name}"


@pytest.mark.parametrize("module_name", sorted(PUBLIC_API))
def test_all_lists_are_importable(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", [])
    for name in exported:
        assert hasattr(module, name), f"{module_name}.__all__ lists {name}"


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_cli_report_subcommand(capsys, tmp_path):
    from repro.cli import main

    code = main([
        "report",
        "--samples", "40",
        "--rsa-samples", "1200",
        "--output", str(tmp_path / "r.md"),
    ])
    assert code == 0
    text = (tmp_path / "r.md").read_text()
    assert "Fig 2" in text and "Fig 4" in text
