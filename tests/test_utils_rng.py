"""Unit tests for repro.utils.rng (seed discipline)."""

import numpy as np

from repro.utils import rng


class TestEnsureRng:
    def test_from_int_is_deterministic(self):
        a = rng.ensure_rng(42).random(8)
        b = rng.ensure_rng(42).random(8)
        np.testing.assert_array_equal(a, b)

    def test_from_none_returns_generator(self):
        assert isinstance(rng.ensure_rng(None), np.random.Generator)

    def test_from_none_is_deterministic(self):
        # None routes through normalize_seed (None -> 0): two fresh
        # calls must yield identical streams, not fresh OS entropy.
        a = rng.ensure_rng(None).random(16)
        b = rng.ensure_rng(None).random(16)
        np.testing.assert_array_equal(a, b)

    def test_none_equals_seed_zero(self):
        a = rng.ensure_rng(None).random(16)
        b = rng.ensure_rng(0).random(16)
        np.testing.assert_array_equal(a, b)

    def test_normalize_seed(self):
        assert rng.normalize_seed(None) == 0
        assert rng.normalize_seed(7) == 7
        assert rng.normalize_seed(np.int64(3)) == 3

    def test_normalize_seed_reexported_by_session(self):
        from repro.session import normalize_seed

        assert normalize_seed is rng.normalize_seed

    def test_passthrough_generator_identity(self):
        gen = np.random.default_rng(7)
        assert rng.ensure_rng(gen) is gen

    def test_different_seeds_differ(self):
        a = rng.ensure_rng(1).random(16)
        b = rng.ensure_rng(2).random(16)
        assert not np.array_equal(a, b)


class TestSpawn:
    def test_deterministic_for_int_seed(self):
        a = rng.spawn(123, "sensor-noise").random(8)
        b = rng.spawn(123, "sensor-noise").random(8)
        np.testing.assert_array_equal(a, b)

    def test_name_keyed_independence(self):
        a = rng.spawn(123, "sensor-noise").random(8)
        b = rng.spawn(123, "regulator-ripple").random(8)
        assert not np.array_equal(a, b)

    def test_seed_changes_stream(self):
        a = rng.spawn(1, "x").random(8)
        b = rng.spawn(2, "x").random(8)
        assert not np.array_equal(a, b)

    def test_spawn_from_generator(self):
        gen = np.random.default_rng(9)
        child = rng.spawn(gen, "anything")
        assert isinstance(child, np.random.Generator)
        assert child is not gen

    def test_spawn_from_none(self):
        child = rng.spawn(None, "x")
        assert isinstance(child, np.random.Generator)


class TestHashName:
    def test_stable_known_value(self):
        # FNV-1a is a pure function of the bytes; pin one value so any
        # accidental change to the hashing breaks loudly.
        assert rng.hash_name("fpga") == rng.hash_name("fpga")

    def test_distinct_names(self):
        assert rng.hash_name("fpga") != rng.hash_name("ddr")

    def test_empty_string_ok(self):
        assert isinstance(rng.hash_name(""), int)

    def test_range(self):
        value = rng.hash_name("a-long-stream-name")
        assert 0 <= value < (1 << 63)


class TestDeriveSeed:
    def test_deterministic(self):
        assert rng.derive_seed(5, "a") == rng.derive_seed(5, "a")

    def test_name_sensitivity(self):
        assert rng.derive_seed(5, "a") != rng.derive_seed(5, "b")

    def test_none_seed(self):
        assert rng.derive_seed(None, "a") == rng.derive_seed(0, "a")
