"""Tests for the ring-oscillator baseline sensor."""

import numpy as np
import pytest

from repro.fpga.ring_osc import RingOscillator, RoSensorBank


class TestRingOscillator:
    def test_frequency_at_reference(self):
        ro = RingOscillator(f_nominal=380e6, v_ref=0.85)
        np.testing.assert_allclose(ro.frequency(np.array([0.85])), 380e6)

    def test_frequency_rises_with_voltage(self):
        ro = RingOscillator()
        f_low = ro.frequency(np.array([0.83]))[0]
        f_high = ro.frequency(np.array([0.87]))[0]
        assert f_high > f_low

    def test_linear_sensitivity(self):
        ro = RingOscillator(f_nominal=100e6, v_ref=1.0, sensitivity=2.0)
        # +1% voltage -> +2% frequency.
        np.testing.assert_allclose(
            ro.frequency(np.array([1.01])), 102e6, rtol=1e-9
        )

    def test_even_stage_count_rejected(self):
        with pytest.raises(ValueError, match="odd"):
            RingOscillator(n_stages=4)

    def test_nonpositive_voltage_rejected(self):
        with pytest.raises(ValueError):
            RingOscillator().frequency(np.array([0.0]))

    def test_zero_sensitivity_flat(self):
        ro = RingOscillator(sensitivity=0.0)
        freqs = ro.frequency(np.array([0.80, 0.85, 0.90]))
        assert np.ptp(freqs) == 0.0


class TestRoSensorBank:
    def test_nominal_count(self):
        bank = RoSensorBank(
            RingOscillator(f_nominal=380e6), sample_window=0.5e-6
        )
        assert bank.nominal_count == pytest.approx(190.0)

    def test_counts_shape_matches_voltage(self):
        bank = RoSensorBank()
        counts = bank.counts(np.full(100, 0.85), rng=1)
        assert counts.shape == (100,)

    def test_counts_reflect_voltage(self):
        bank = RoSensorBank(jitter_counts=0.0)
        low = bank.counts(np.full(10, 0.84), rng=1).mean()
        high = bank.counts(np.full(10, 0.86), rng=1).mean()
        assert high > low

    def test_counts_are_deterministic_with_seed(self):
        bank = RoSensorBank()
        v = np.full(50, 0.85)
        np.testing.assert_array_equal(bank.counts(v, rng=9), bank.counts(v, rng=9))

    def test_counts_near_expected_value(self):
        bank = RoSensorBank()
        counts = bank.counts(np.full(2000, 0.8505), rng=3)
        assert counts.mean() == pytest.approx(bank.nominal_count, rel=0.02)

    def test_bank_average_has_sub_count_resolution(self):
        # A 32-RO bank reports count averages on a 1/32 grid.
        bank = RoSensorBank(n_instances=32)
        counts = bank.counts(np.full(10, 0.85), rng=5)
        fractional = counts % 1.0
        grid = np.round(fractional * 32) / 32
        np.testing.assert_allclose(fractional, grid, atol=1e-9)

    def test_relative_variation_is_small_on_stabilized_rail(self):
        # The core claim: over the full regulated-droop range the RO's
        # relative variation is below 1%, while the current's relative
        # variation over the same sweep is >100% (ratio ~261x).
        bank = RoSensorBank(jitter_counts=0.0)
        v_unloaded = 0.8505
        v_loaded = 0.8505 - 3.3e-3  # full-sweep droop
        c0 = bank.counts(np.full(1, v_unloaded), rng=1)[0]
        c1 = bank.counts(np.full(1, v_loaded), rng=1)[0]
        relative = abs(c0 - c1) / ((c0 + c1) / 2)
        # The true frequency shift is ~0.57%; integer counter
        # quantization can round it up by at most one count.
        assert relative < 0.015

    def test_circuit_spec(self):
        bank = RoSensorBank(n_instances=8)
        spec = bank.circuit_spec()
        assert spec.utilization["ff"] == 8 * 32
        assert spec.utilization["lut"] > 0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            RoSensorBank(n_instances=0)
        with pytest.raises(ValueError):
            RoSensorBank(sample_window=0.0)
        with pytest.raises(ValueError):
            RoSensorBank(jitter_counts=-1.0)
