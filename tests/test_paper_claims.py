"""The paper's headline claims, as a compact executable ledger.

One test per claim, in the order the paper makes them.  The benches
regenerate the full artifacts; this file is the fast, always-on record
of *what the paper says* mapped to *where the code shows it*.
"""

import numpy as np
import pytest

from repro.core.characterize import characterize
from repro.core.rsa_attack import RsaHammingWeightAttack
from repro.soc import ConstantActivity, Soc


@pytest.fixture(scope="module")
def small_sweep():
    return characterize(samples_per_level=120, seed=0)


class TestAbstractClaims:
    def test_261x_greater_variation_than_ro(self, small_sweep):
        """'AmpereBleed achieves 261x greater variations to victim
        activities compared to the popular ring oscillator circuit.'"""
        assert 180 < small_sweep.current_vs_ro_variation < 360

    def test_circuit_free(self):
        """'...without relying on either crafted circuits or a shared
        PDN' — the attack surface is hwmon reads alone."""
        soc = Soc("ZCU102", seed=0)
        # Nothing deployed on the fabric by the attacker:
        assert soc.fabric.deployed() == []
        # yet a victim is visible through sysfs:
        idle = soc.sample("fpga", "current", np.array([1.0]))[0]
        soc.attach_workload("fpga", "victim", ConstantActivity(2.0))
        busy = soc.sample("fpga", "current", np.array([1.0]))[0]
        assert busy > idle + 2000


class TestSection3Claims:
    def test_unprivileged_current_access(self):
        """'these measurements are accessible to an unprivileged
        process ... via the hwmon subsystem.'"""
        soc = Soc("ZCU102", seed=0)
        for domain, _ in soc.sensitive_channels():
            path = soc.sysfs_path(domain, "current")
            assert int(soc.hwmon.read(path, time=1.0)) >= 0

    def test_update_interval_needs_root(self):
        """'modifying it requires root privileges.'"""
        from repro.sensors.hwmon import HwmonPermissionError

        soc = Soc("ZCU102", seed=0)
        with pytest.raises(HwmonPermissionError):
            soc.hwmon.write(
                f"{soc.device('fpga').path}/update_interval", "2"
            )

    def test_resolution_1ma_and_interval_2_to_35ms(self):
        """'a resolution of +-1 mA and a configurable updating interval
        between 2 and 35 ms ... default ... 35 ms.'"""
        soc = Soc("ZCU102", seed=0)
        device = soc.device("fpga")
        assert device.sensor.current_lsb == pytest.approx(1e-3)
        assert device.update_period == pytest.approx(35.2e-3)
        device.write("update_interval", "2", privileged=True)
        assert device.update_period == pytest.approx(2e-3, rel=0.2)
        with pytest.raises(ValueError):
            device.write("update_interval", "36", privileged=True)

    def test_power_lsb_ratio_25(self):
        """'the power measurements are derived from current and
        voltage, with their resolution fixed at a ratio of 25 relative
        to the current resolution.'"""
        from repro.sensors.ina226 import Ina226

        assert Ina226(shunt_ohms=2e-3).power_lsb == pytest.approx(25e-3)

    def test_voltage_band_0825_to_0876(self):
        """'the FPGA supply voltage fluctuates within a limited range
        (e.g., 0.825 V to 0.876 V on the Zynq UltraScale+ series).'"""
        soc = Soc("ZCU102", seed=0)
        soc.attach_workload("fpga", "heavy", ConstantActivity(6.0))
        volts = soc.sample("fpga", "voltage", np.linspace(1, 5, 30))
        assert np.all((volts >= 825) & (volts <= 876))


class TestSection4Claims:
    def test_current_pearson_0999(self, small_sweep):
        """'FPGA current and power exhibit a strong linear relationship
        ... Pearson correlation coefficient of 0.999.'"""
        assert small_sweep.current.pearson > 0.995
        assert small_sweep.power.pearson > 0.995

    def test_voltage_pearson_0958(self, small_sweep):
        """'FPGA voltage achieves a Pearson correlation of 0.958'
        (sign convention: the rail droops, so ours is negative)."""
        assert 0.80 < abs(small_sweep.voltage.pearson) < 0.995

    def test_ro_pearson_minus_0996(self, small_sweep):
        """'RO achieves -0.996.'"""
        assert small_sweep.ro.pearson < -0.98

    def test_current_40_lsb_per_setting(self, small_sweep):
        """'current measurements ... vary approximately 40 LSBs per
        setting.'"""
        assert 30 < small_sweep.current.lsb_step < 50

    def test_current_floor_from_static_power(self, small_sweep):
        """'current measurements do not start from 0 ... due to the
        static workloads caused by inactivated but deployed power
        virus instances.'"""
        assert small_sweep.current.means[0] > 500

    def test_rsa_17_keys_current_5_groups_power(self):
        """'the attacker can use the FPGA current measurements to infer
        the Hamming weights' / 'power measurements could only
        categorize the 17 keys into 5 groups.'"""
        attack = RsaHammingWeightAttack(seed=0)
        current = attack.sweep(n_samples=4000)
        power = attack.sweep(quantity="power", n_samples=4000)
        assert current.distinguishable_groups() == 17
        assert 3 <= power.distinguishable_groups() <= 7

    def test_rsa_circuit_at_100mhz(self):
        """'we follow Zhao et al. to implement an RSA-1024 circuit ...
        and modify it to operate at 100 MHz.'"""
        attack = RsaHammingWeightAttack(seed=0)
        circuit = attack.make_circuit(64)
        assert circuit.clock_hz == pytest.approx(100e6)
        assert circuit.width == 1024

    def test_39_architectures_7_families(self):
        """'39 architectures over 7 diverse architecture families.'"""
        from repro.dpu.models import list_families, list_models

        assert len(list_models()) == 39
        assert len(list_families()) == 7

    def test_random_guess_baseline(self):
        """Table III: 'The baseline of random guess is 0.0256.'"""
        assert 1 / 39 == pytest.approx(0.0256, abs=1e-4)


class TestSection5Claims:
    def test_mitigation_restrict_to_privileged(self):
        """'restricting their access to privileged users can
        effectively mitigate the unprivileged attacks.'"""
        from repro.core.countermeasures import ROOT_ONLY
        from repro.sensors.hwmon import HwmonPermissionError

        soc = Soc("ZCU102", seed=0, hardening=ROOT_ONLY)
        with pytest.raises(HwmonPermissionError):
            soc.sample("fpga", "current", np.array([1.0]))
        # The stated cost: benign unprivileged monitoring breaks too.
        with pytest.raises(HwmonPermissionError):
            soc.sample("ddr", "power", np.array([1.0]))
