"""Tests for the isolated-tenant PDN topology."""

import numpy as np
import pytest

from repro.fpga.multi_tenant import IsolatedTenantPdn
from repro.soc import ConstantActivity, Soc


class TestTopology:
    def test_tenant_count(self):
        pdn = IsolatedTenantPdn(n_tenants=3)
        assert len(pdn.tenants) == 3
        assert pdn.tenant(2).name == "TENANT2"

    def test_tenant_index_bounds(self):
        pdn = IsolatedTenantPdn(n_tenants=2)
        with pytest.raises(IndexError):
            pdn.tenant(2)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            IsolatedTenantPdn(n_tenants=0)
        with pytest.raises(ValueError):
            IsolatedTenantPdn(efficiency=0.2)


class TestUpstreamAggregation:
    def test_idle_tenants_draw_idle_power(self):
        pdn = IsolatedTenantPdn(n_tenants=2, efficiency=1.0)
        demand = pdn.upstream_demand()
        power = demand.power_at(np.array([0.0]))[0]
        assert power == pytest.approx(2 * 0.05)

    def test_tenant_load_appears_upstream(self):
        pdn = IsolatedTenantPdn(n_tenants=2, efficiency=1.0)
        pdn.tenant(0).attach("load", ConstantActivity(2.0))
        power = pdn.upstream_demand().power_at(np.array([0.0]))[0]
        assert power == pytest.approx(2.0 + 0.1)

    def test_efficiency_inflates_upstream(self):
        lossless = IsolatedTenantPdn(n_tenants=1, efficiency=1.0)
        lossy = IsolatedTenantPdn(n_tenants=1, efficiency=0.9)
        for pdn in (lossless, lossy):
            pdn.tenant(0).attach("load", ConstantActivity(1.0))
        p_lossless = lossless.upstream_demand().power_at(np.array([0.0]))[0]
        p_lossy = lossy.upstream_demand().power_at(np.array([0.0]))[0]
        assert p_lossy == pytest.approx(p_lossless / 0.9)

    def test_aggregate_is_live(self):
        # Workloads attached after upstream_demand() still count.
        pdn = IsolatedTenantPdn(n_tenants=1, efficiency=1.0)
        demand = pdn.upstream_demand()
        before = demand.power_at(np.array([0.0]))[0]
        pdn.tenant(0).attach("late", ConstantActivity(1.0))
        after = demand.power_at(np.array([0.0]))[0]
        assert after == pytest.approx(before + 1.0)

    def test_energy_between(self):
        pdn = IsolatedTenantPdn(n_tenants=1, efficiency=1.0)
        pdn.tenant(0).attach("load", ConstantActivity(1.0))
        energy = pdn.upstream_demand().energy_between(
            np.array([0.0]), np.array([2.0])
        )[0]
        assert energy == pytest.approx(2 * 1.05)


class TestIsolation:
    def test_tenant_voltage_ignores_other_tenant(self):
        pdn = IsolatedTenantPdn(n_tenants=2)
        window = (np.array([0.0]), np.array([0.035]))
        quiet = pdn.tenant_voltage(1, *window)[0]
        pdn.tenant(0).attach("victim", ConstantActivity(5.0))
        still_quiet = pdn.tenant_voltage(1, *window)[0]
        assert still_quiet == pytest.approx(quiet, abs=1e-9)

    def test_tenant_voltage_tracks_own_load(self):
        pdn = IsolatedTenantPdn(n_tenants=2)
        window = (np.array([0.0]), np.array([0.035]))
        unloaded = pdn.tenant_voltage(0, *window)[0]
        pdn.tenant(0).attach("self", ConstantActivity(5.0))
        loaded = pdn.tenant_voltage(0, *window)[0]
        assert loaded < unloaded

    def test_install_routes_through_fpga_sensor(self):
        soc = Soc("ZCU102", seed=0)
        pdn = IsolatedTenantPdn(n_tenants=2)
        pdn.install(soc)
        idle = soc.sample("fpga", "current", np.array([1.0]))[0]
        pdn.tenant(0).attach("victim", ConstantActivity(3.0))
        loaded = soc.sample("fpga", "current", np.array([1.0]))[0]
        assert loaded > idle + 3000
        pdn.uninstall(soc)
        assert "tenant-pdn" not in soc.rail("fpga").workload_names
