"""Tests for DNN layer cost arithmetic."""

import pytest

from repro.dpu.layers import (
    add,
    concat,
    conv,
    dwconv,
    fc,
    global_pool,
    pool,
    total_macs,
    total_weight_bytes,
)


class TestConv:
    def test_macs_formula(self):
        spec, shape = conv("c", 56, 56, 64, 128, kernel=3, stride=1)
        assert spec.macs == 56 * 56 * 128 * 64 * 9
        assert shape == (56, 56, 128)

    def test_stride_halves_output(self):
        _, shape = conv("c", 56, 56, 64, 128, kernel=3, stride=2)
        assert shape == (28, 28, 128)

    def test_valid_padding(self):
        _, shape = conv("c", 224, 224, 3, 32, kernel=3, stride=2,
                        padding="valid")
        assert shape == (111, 111, 32)

    def test_grouped_conv_divides_macs(self):
        dense, _ = conv("c", 28, 28, 64, 64, kernel=3)
        grouped, _ = conv("c", 28, 28, 64, 64, kernel=3, groups=4)
        assert grouped.macs == dense.macs // 4

    def test_group_mismatch_rejected(self):
        with pytest.raises(ValueError):
            conv("c", 28, 28, 63, 64, kernel=3, groups=4)

    def test_weight_bytes(self):
        spec, _ = conv("c", 56, 56, 64, 128, kernel=3)
        assert spec.weight_bytes == 128 * 64 * 9

    def test_bad_padding(self):
        with pytest.raises(ValueError):
            conv("c", 8, 8, 4, 4, padding="reflect")


class TestDwConv:
    def test_macs_one_filter_per_channel(self):
        spec, shape = dwconv("d", 112, 112, 32, kernel=3, stride=1)
        assert spec.macs == 112 * 112 * 32 * 9
        assert shape == (112, 112, 32)

    def test_much_cheaper_than_conv(self):
        dense, _ = conv("c", 112, 112, 32, 32, kernel=3)
        depthwise, _ = dwconv("d", 112, 112, 32, kernel=3)
        assert depthwise.macs * 16 < dense.macs


class TestFcPoolAddConcat:
    def test_fc_macs(self):
        spec = fc("f", 2048, 1000)
        assert spec.macs == 2_048_000
        assert spec.weight_bytes == 2_048_000

    def test_pool_has_no_macs(self):
        spec, shape = pool("p", 56, 56, 64, kernel=2)
        assert spec.macs == 0
        assert shape == (28, 28, 64)

    def test_global_pool_collapses_spatial(self):
        spec, shape = global_pool("g", 7, 7, 2048)
        assert shape == (1, 1, 2048)
        assert spec.output_bytes == 2048

    def test_add_moves_three_tensors(self):
        spec = add("a", 56, 56, 64)
        tensor = 56 * 56 * 64
        assert spec.input_bytes == 2 * tensor
        assert spec.output_bytes == tensor

    def test_concat_sums_channels(self):
        spec, shape = concat("x", 28, 28, [64, 128, 32])
        assert shape == (28, 28, 224)
        assert spec.memory_bytes == 2 * 28 * 28 * 224

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            fc("f", -1, 10)


class TestTotals:
    def test_total_macs(self):
        a, _ = conv("a", 8, 8, 4, 4)
        b = fc("b", 16, 10)
        assert total_macs([a, b]) == a.macs + b.macs

    def test_total_weight_bytes(self):
        a, _ = conv("a", 8, 8, 4, 4)
        b = fc("b", 16, 10)
        assert total_weight_bytes([a, b]) == a.weight_bytes + b.weight_bytes

    def test_unknown_kind_rejected(self):
        from repro.dpu.layers import LayerSpec
        with pytest.raises(ValueError, match="unknown layer kind"):
            LayerSpec("x", "attention", 0, 0, 0, 0)
