"""Tests for the tiling-based DPU compiler."""

import pytest

from repro.dpu.compiler import ArrayGeometry, DpuCompiler
from repro.dpu.dpu import DEFAULT_EFFICIENCY, DpuConfig
from repro.dpu.layers import conv, dwconv, fc, pool
from repro.dpu.models import build_model


class TestGeometry:
    def test_b4096_macs_per_cycle(self):
        geometry = ArrayGeometry()
        assert geometry.macs_per_cycle == 8 * 16 * 16  # 2048 MACs

    def test_matches_default_config(self):
        config = DpuConfig()
        geometry = ArrayGeometry.for_config(config)
        assert geometry.macs_per_cycle * 2 == config.ops_per_cycle

    def test_scaled_config(self):
        config = DpuConfig(ops_per_cycle=1024)
        geometry = ArrayGeometry.for_config(config)
        assert geometry.macs_per_cycle * 2 == 1024

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            ArrayGeometry(pixel_parallel=0)


class TestLayerCompilation:
    @pytest.fixture
    def compiler(self):
        return DpuCompiler()

    def test_dense_conv_efficiency(self, compiler):
        layer, _ = conv("c", 56, 56, 64, 128, kernel=3)
        compiled = compiler.compile_layer(layer)
        # Channel-aligned dense conv keeps the array mostly busy.
        assert 0.4 < compiled.efficiency <= 0.85
        assert compiled.tiles > 0

    def test_dwconv_starves_input_lanes(self, compiler):
        dense, _ = conv("c", 56, 56, 128, 128, kernel=3)
        depthwise, _ = dwconv("d", 56, 56, 128, kernel=3)
        dense_eff = compiler.compile_layer(dense).efficiency
        dw_eff = compiler.compile_layer(depthwise).efficiency
        # One filter per channel fills 1 of 16 input lanes.
        assert dw_eff < dense_eff / 4
        assert dw_eff <= 1 / 16 + 0.01

    def test_fc_starves_pixel_lanes(self, compiler):
        layer = fc("f", 4096, 4096)
        compiled = compiler.compile_layer(layer)
        # A GEMV fills 1 of 8 pixel lanes.
        assert compiled.efficiency <= 1 / 8 + 0.01

    def test_memory_layers_skip_compute(self, compiler):
        layer, _ = pool("p", 56, 56, 64)
        compiled = compiler.compile_layer(layer)
        assert compiled.compute_cycles == 0
        assert compiled.efficiency == 0.0

    def test_misaligned_channels_waste_lanes(self, compiler):
        aligned, _ = conv("a", 28, 28, 64, 64, kernel=3)
        misaligned, _ = conv("m", 28, 28, 65, 65, kernel=3)
        assert compiler.compile_layer(misaligned).efficiency < (
            compiler.compile_layer(aligned).efficiency
        )

    def test_invalid_pipeline_efficiency(self):
        with pytest.raises(ValueError):
            DpuCompiler(pipeline_efficiency=0.0)


class TestModelCompilation:
    @pytest.fixture
    def compiler(self):
        return DpuCompiler()

    def test_compile_covers_layers(self, compiler):
        model = build_model("resnet-18")
        compiled = compiler.compile(model)
        assert len(compiled.layers) == len(model.layers)
        assert compiled.model == "resnet-18"

    def test_vgg_most_efficient(self, compiler):
        # Big aligned convs -> the best array utilization in the zoo.
        vgg = compiler.compile(build_model("vgg-19")).mean_efficiency
        mobilenet = compiler.compile(
            build_model("mobilenet-v1-1.0")
        ).mean_efficiency
        assert vgg > mobilenet

    def test_efficiency_by_kind_ordering(self, compiler):
        compiled = compiler.compile(build_model("mobilenet-v1-1.0"))
        by_kind = compiled.efficiency_by_kind()
        assert by_kind["conv"] > by_kind["dwconv"]

    def test_derived_efficiencies_usable_by_core(self, compiler):
        model = build_model("resnet-50")
        derived = compiler.derive_efficiencies(model)
        config = DpuConfig(efficiency=derived)
        # Valid (0, 1] values for every kind the core needs.
        for kind in ("conv", "pool", "add"):
            assert 0.0 < config.efficiency[kind] <= 1.0

    def test_derived_conv_near_fixed_constant(self, compiler):
        # The first-principles number should land in the same regime
        # as the fixed shortcut (0.65) for a conv-dominated model.
        derived = compiler.derive_efficiencies(build_model("vgg-19"))
        assert abs(derived["conv"] - DEFAULT_EFFICIENCY["conv"]) < 0.25

    def test_total_cycles_positive(self, compiler):
        compiled = compiler.compile(build_model("squeezenet-1.1"))
        assert compiled.total_cycles > 0
