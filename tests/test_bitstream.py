"""Tests for bitstreams, sealed secrets, and the configurator."""

import pytest

from repro.fpga.bitstream import (
    Bitstream,
    BitstreamError,
    FpgaConfigurator,
    SealedSecret,
)
from repro.fpga.fabric import CircuitSpec, Fabric


def small_circuit(name="engine", luts=100):
    return CircuitSpec(name, {"lut": luts, "ff": luts})


class TestSealedSecret:
    def test_digest_is_stable(self):
        a = SealedSecret("key", 0xDEADBEEF)
        b = SealedSecret("key", 0xDEADBEEF)
        assert a.digest == b.digest

    def test_digest_hides_value(self):
        secret = SealedSecret("key", 12345)
        assert "12345" not in secret.digest
        assert "12345" not in repr(secret)

    def test_distinct_values_distinct_digests(self):
        assert SealedSecret("key", 1).digest != SealedSecret("key", 2).digest

    def test_reveal_for_configuration(self):
        assert SealedSecret("key", 77).reveal_for_configuration() == 77


class TestBitstream:
    def test_build_and_manifest_plaintext(self):
        image = Bitstream("design").add_circuit(small_circuit())
        manifest = image.manifest()
        assert manifest["encrypted"] is False
        assert manifest["circuits"][0]["name"] == "engine"

    def test_seal_secret(self):
        image = Bitstream("design").add_circuit(small_circuit())
        image.seal_secret("rsa-exponent", 0b1011)
        assert "rsa-exponent" in image.secrets

    def test_duplicate_secret_rejected(self):
        image = Bitstream("design").seal_secret("k", 1)
        with pytest.raises(BitstreamError, match="already sealed"):
            image.seal_secret("k", 2)

    def test_encrypt_hides_contents(self):
        image = (
            Bitstream("dpu")
            .add_circuit(small_circuit())
            .seal_secret("key", 42)
            .encrypt()
        )
        manifest = image.manifest()
        assert manifest["encrypted"] is True
        assert "circuits" not in manifest
        assert manifest["standard"] == "IEEE-1735-2014-V2"
        assert set(manifest["secret_digests"]) == {"key"}

    def test_encrypted_rejects_modification(self):
        image = Bitstream("dpu").add_circuit(small_circuit()).encrypt()
        with pytest.raises(BitstreamError):
            image.add_circuit(small_circuit("b"))
        with pytest.raises(BitstreamError):
            image.seal_secret("late", 1)

    def test_double_encrypt_rejected(self):
        image = Bitstream("dpu").add_circuit(small_circuit()).encrypt()
        with pytest.raises(BitstreamError, match="already encrypted"):
            image.encrypt()

    def test_empty_encrypt_rejected(self):
        with pytest.raises(BitstreamError, match="empty"):
            Bitstream("empty").encrypt()

    def test_manifest_json_stable(self):
        image = Bitstream("x").add_circuit(small_circuit())
        assert image.manifest_json() == image.manifest_json()


class TestConfigurator:
    @pytest.fixture
    def fabric(self):
        return Fabric("ZCU102")

    def test_program_deploys_circuits(self, fabric):
        configurator = FpgaConfigurator(fabric)
        image = Bitstream("design").add_circuit(small_circuit())
        record = configurator.program(image)
        assert record.bitstream == "design"
        assert fabric.total_used["lut"] == 100

    def test_double_program_rejected(self, fabric):
        configurator = FpgaConfigurator(fabric)
        image = Bitstream("design").add_circuit(small_circuit())
        configurator.program(image)
        with pytest.raises(BitstreamError, match="already programmed"):
            configurator.program(image)

    def test_unprogram_frees_fabric(self, fabric):
        configurator = FpgaConfigurator(fabric)
        configurator.program(Bitstream("d").add_circuit(small_circuit()))
        configurator.unprogram("d")
        assert fabric.total_used["lut"] == 0

    def test_unprogram_unknown_rejected(self, fabric):
        with pytest.raises(BitstreamError, match="not programmed"):
            FpgaConfigurator(fabric).unprogram("ghost")

    def test_failed_program_rolls_back(self, fabric):
        configurator = FpgaConfigurator(fabric)
        image = (
            Bitstream("big")
            .add_circuit(small_circuit("a", luts=1000))
            .add_circuit(CircuitSpec("huge", {"lut": 10_000_000}))
        )
        with pytest.raises(Exception):
            configurator.program(image)
        assert fabric.total_used["lut"] == 0

    def test_readback_plaintext_allowed(self, fabric):
        configurator = FpgaConfigurator(fabric)
        configurator.program(Bitstream("d").add_circuit(small_circuit()))
        assert configurator.readback("d")["circuits"] == ["engine"]

    def test_readback_encrypted_blocked(self, fabric):
        configurator = FpgaConfigurator(fabric)
        image = (
            Bitstream("dpu")
            .add_circuit(small_circuit())
            .seal_secret("key", 99)
            .encrypt()
        )
        configurator.program(image)
        with pytest.raises(BitstreamError, match="IEEE-1735"):
            configurator.readback("dpu")

    def test_empty_bitstream_rejected(self, fabric):
        with pytest.raises(BitstreamError, match="no circuits"):
            FpgaConfigurator(fabric).program(Bitstream("none"))

    def test_non_fabric_rejected(self):
        with pytest.raises(TypeError):
            FpgaConfigurator("not a fabric")

    def test_rsa_deployment_flow(self, fabric):
        # The paper's victim flow: RSA engine + key sealed + encrypted.
        from repro.crypto import make_exponent_with_weight, random_modulus
        from repro.fpga.rsa import RsaCircuit

        exponent = make_exponent_with_weight(512, seed=1)
        circuit = RsaCircuit(exponent, random_modulus(seed=1))
        image = (
            Bitstream("rsa-1024")
            .add_circuit(circuit.circuit_spec())
            .seal_secret("exponent", exponent)
            .encrypt()
        )
        configurator = FpgaConfigurator(fabric)
        record = configurator.program(image)
        assert record.encrypted
        # Even the owner cannot read the key back out...
        with pytest.raises(BitstreamError):
            configurator.readback("rsa-1024")
        # ...but the power timeline still leaks its Hamming weight.
        assert circuit.hamming_weight == 512
