"""Streaming-vs-batch bit-parity for the analysis plane.

The refactor's contract: the incremental pipeline is a *re-chunking*
of the batch plane, not an approximation of it.  Features, episodes
and verdicts computed chunk-by-chunk must equal the batch results on
the assembled stream with ``max_abs_diff == 0.0`` — including on
degraded (fault-injected) captures — and the interrupted-and-resumed
monitor must reproduce the uninterrupted run bit for bit.
"""

import numpy as np
import pytest

from repro.core.detector import OnsetDetector
from repro.core.fingerprint import DnnFingerprinter, FingerprintConfig
from repro.core.io import TraceArchiveReader, TraceArchiveWriter
from repro.core.streaming import (
    IncrementalFeatureExtractor,
    Interruption,
    StreamingAnalyzer,
    WindowSpec,
    batch_window_features,
    monitor_chunks,
    window_feature_matrix,
)
from repro.core.traces import Trace
from repro.dpu.models import build_model, list_models
from repro.dpu.runner import DpuRunner
from repro.session import AttackSession

pytestmark = pytest.mark.stream

CHANNEL = ("fpga", "current")
N_MODELS = 3
TRAIN_CONFIG = FingerprintConfig(
    duration=1.0, traces_per_model=3, n_folds=2, forest_trees=10
)


@pytest.fixture(scope="module")
def forest():
    """A small pretrained fingerprint forest over N_MODELS classes."""
    models = list_models()[:N_MODELS]
    fingerprinter = DnnFingerprinter(config=TRAIN_CONFIG, seed=0)
    datasets = fingerprinter.collect_datasets(
        models=models, channels=(CHANNEL,)
    )
    return fingerprinter.analyzer, fingerprinter.train(datasets[CHANNEL])


def _victim_stream(
    seed, model, duration, chunk_samples, faults=None, poll_hz=None
):
    """A session streaming CHANNEL while one victim model serves."""
    session = AttackSession.create(seed=seed, faults=faults)
    DpuRunner().deploy(
        session.soc,
        build_model(model),
        duration=duration,
        seed=session.derive("victim"),
        name="victim",
    )
    if poll_hz is None:
        poll_hz = session.sampler.default_poll_hz(CHANNEL[0])
    stream = session.sampler.stream(
        CHANNEL[0],
        CHANNEL[1],
        duration=duration,
        poll_hz=poll_hz,
        chunk_samples=chunk_samples,
    )
    return session, stream


def _assemble(chunks, label=None):
    return Trace(
        times=np.concatenate([chunk.times for chunk in chunks]),
        values=np.concatenate([chunk.values for chunk in chunks]),
        domain=CHANNEL[0],
        quantity=CHANNEL[1],
        label=label,
    )


def test_classify_stream_matches_classify_topk(forest):
    """Full-trace window + smoothing=1.0 == the batch online phase."""
    analyzer, classifier = forest
    classes = list(classifier.classes_)
    n_features = analyzer.config.n_features
    for seed_offset, model in enumerate(classes):
        _, stream = _victim_stream(
            100 + seed_offset, model, duration=1.0, chunk_samples=128
        )
        chunks = list(stream)
        assembled = _assemble(chunks)
        verdicts = [
            verdict
            for update in analyzer.classify_stream(
                classifier,
                iter(chunks),
                window_samples=assembled.n_samples,
                top_k=len(classes),
            )
            for verdict in update.verdicts
        ]
        assert len(verdicts) == 1
        expected = analyzer.classify_topk(
            classifier, assembled, k=len(classes)
        )
        assert list(verdicts[0].labels) == expected
        # Confidences must equal the forest's batch probabilities on
        # the batch-windowed features, exactly.
        proba = classifier.predict_proba(
            window_feature_matrix([assembled.values], n_features)
        )[0]
        order = np.argsort(-proba, kind="stable")
        diff = np.abs(np.asarray(verdicts[0].confidences) - proba[order])
        assert float(np.max(diff)) == 0.0


def test_sliding_features_and_episodes_match_batch(forest):
    """Overlapping windows + onset episodes, streamed vs batch."""
    analyzer, classifier = forest
    n_features = analyzer.config.n_features
    session = AttackSession.create(seed=200)
    poll_hz = session.sampler.default_poll_hz(CHANNEL[0])
    # Victim active only mid-stream so the detector sees idle->active.
    DpuRunner().deploy(
        session.soc,
        build_model(classifier.classes_[0]),
        duration=0.5,
        seed=session.derive("victim"),
        start=0.4,
        name="victim",
    )
    chunks = list(
        session.sampler.stream(
            CHANNEL[0],
            CHANNEL[1],
            duration=1.4,
            poll_hz=poll_hz,
            chunk_samples=96,
        )
    )
    values = np.concatenate([chunk.values for chunk in chunks])
    idle = values[: int(0.3 * poll_hz)]
    baseline = (float(np.mean(idle)), float(np.std(idle)))
    detector = OnsetDetector()
    spec = WindowSpec(
        int(0.5 * poll_hz), int(0.1 * poll_hz)
    )
    streaming = StreamingAnalyzer(
        classifier,
        spec,
        n_features,
        detector=detector,
        baseline=baseline,
    )
    streamed_episodes = []
    for update in monitor_chunks(streaming, iter(chunks)):
        streamed_episodes.extend(
            event.episode for event in update.episodes
        )
    batch_episodes = detector.episodes(values, baseline=baseline)
    assert batch_episodes, "expected at least one victim episode"
    assert streamed_episodes == batch_episodes
    # Feature parity across the same overlapping windows.
    replay = IncrementalFeatureExtractor(spec, n_features)
    rows = [
        batch.features
        for batch in map(replay.push_chunk, chunks)
        if len(batch)
    ]
    diff = np.abs(
        np.vstack(rows) - batch_window_features(values, spec, n_features)
    )
    assert float(np.max(diff)) == 0.0


@pytest.mark.faults
def test_stream_parity_survives_fault_injection(forest):
    """Degraded captures stay bit-parity and flag their verdicts."""
    analyzer, classifier = forest
    n_features = analyzer.config.n_features
    _, stream = _victim_stream(
        300,
        str(classifier.classes_[1]),
        duration=10.0,
        chunk_samples=100,
        faults=0.05,
        poll_hz=100,
    )
    spec = WindowSpec(200, 200)
    streaming = StreamingAnalyzer(classifier, spec, n_features)
    chunks = []

    def recorded():
        for chunk in stream:
            chunks.append(chunk)
            yield chunk

    verdicts = []
    interrupted = False
    for update in monitor_chunks(streaming, recorded()):
        verdicts.extend(update.verdicts)
        interrupted = interrupted or any(
            isinstance(event, Interruption) for event in update.events
        )
    assert verdicts, "fault injection starved the monitor of verdicts"
    assert any(verdict.degraded for verdict in verdicts), (
        "fault injection must degrade at least one window"
    )
    # The chunks that actually arrived (resilient reads included) must
    # windows-and-features exactly like their batch assembly.
    values = np.concatenate([chunk.values for chunk in chunks])
    replay = IncrementalFeatureExtractor(spec, n_features)
    rows = [
        batch.features
        for batch in map(replay.push_chunk, chunks)
        if len(batch)
    ]
    diff = np.abs(
        np.vstack(rows) - batch_window_features(values, spec, n_features)
    )
    assert float(np.max(diff)) == 0.0
    assert replay.peak_resident_samples <= spec.window_samples + 100


def _run_monitor(forest_pair, archive_path, *, resume, stop_after=None):
    """One monitor session on a fixed seed; optionally cut short."""
    analyzer, classifier = forest_pair
    session = AttackSession.create(seed=400)
    DpuRunner().deploy(
        session.soc,
        build_model(classifier.classes_[0]),
        duration=2.0,
        seed=session.derive("victim"),
        name="victim",
    )
    sink = TraceArchiveWriter(
        archive_path, meta={"experiment": "monitor"}, resume=resume
    )
    updates = session.monitor(
        classifier,
        CHANNEL[0],
        CHANNEL[1],
        duration=2.0,
        window_samples=128,
        hop_samples=64,
        poll_hz=200,
        chunk_samples=50,
        n_features=analyzer.config.n_features,
        sink=sink,
        resume=resume,
    )
    verdicts, events = [], []
    for index, update in enumerate(updates):
        verdicts.extend(update.verdicts)
        events.extend(update.events)
        if stop_after is not None and index + 1 >= stop_after:
            sink.abort()  # process killed mid-session
            return verdicts, events
    sink.close()
    return verdicts, events


def test_monitor_resume_is_byte_identical(forest, tmp_path):
    """Kill a monitor mid-run, resume it, get the uninterrupted result."""
    full_verdicts, full_events = _run_monitor(
        forest, tmp_path / "full.d", resume=False
    )
    assert full_verdicts
    head_verdicts, head_events = _run_monitor(
        forest, tmp_path / "resumed.d", resume=False, stop_after=4
    )
    tail_verdicts, tail_events = _run_monitor(
        forest, tmp_path / "resumed.d", resume=True
    )
    assert head_verdicts + tail_verdicts == full_verdicts
    assert head_events + tail_events == full_events
    # The archives load back bit-identically, chunk boundaries and all.
    full = list(TraceArchiveReader(tmp_path / "full.d").load_traceset())
    resumed = list(
        TraceArchiveReader(tmp_path / "resumed.d").load_traceset()
    )
    assert len(full) == len(resumed) == 1
    assert np.array_equal(full[0].times, resumed[0].times)
    assert np.array_equal(full[0].values, resumed[0].values)
