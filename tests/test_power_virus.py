"""Tests for the power-virus array (Fig 2 victim workload)."""

import numpy as np
import pytest

from repro.fpga.power_virus import PowerVirusArray


class TestConstruction:
    def test_paper_defaults(self):
        array = PowerVirusArray(seed=1)
        assert array.n_groups == 160
        assert array.instances_per_group == 1000
        assert array.n_instances == 160_000

    def test_sweep_levels_has_161_entries(self):
        array = PowerVirusArray(seed=1)
        assert array.sweep_levels().size == 161

    def test_group_heterogeneity_is_seeded(self):
        a = PowerVirusArray(seed=7).group_dynamic_power
        b = PowerVirusArray(seed=7).group_dynamic_power
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = PowerVirusArray(seed=1).group_dynamic_power
        b = PowerVirusArray(seed=2).group_dynamic_power
        assert not np.array_equal(a, b)

    def test_group_powers_near_nominal(self):
        array = PowerVirusArray(seed=3)
        nominal = 1000 * 35e-6
        np.testing.assert_allclose(
            array.group_dynamic_power.mean(), nominal, rtol=0.02
        )

    def test_zero_spread_gives_identical_groups(self):
        array = PowerVirusArray(group_power_spread=0.0, seed=1)
        assert np.ptp(array.group_dynamic_power) == 0.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            PowerVirusArray(n_groups=0)
        with pytest.raises(ValueError):
            PowerVirusArray(dynamic_power_per_instance=0.0)
        with pytest.raises(ValueError):
            PowerVirusArray(static_power_per_instance=-1e-6)


class TestActivation:
    @pytest.fixture
    def array(self):
        return PowerVirusArray(seed=42)

    def test_initially_inactive(self, array):
        assert array.active_groups == 0
        assert array.active_instances == 0

    def test_set_active_groups(self, array):
        array.set_active_groups(10)
        assert array.active_groups == 10
        assert array.active_instances == 10_000

    def test_out_of_range_rejected(self, array):
        with pytest.raises(ValueError):
            array.set_active_groups(161)
        with pytest.raises(ValueError):
            array.set_active_groups(-1)

    def test_dynamic_power_monotonic_in_level(self, array):
        powers = [array.dynamic_power_at_level(k) for k in range(161)]
        assert all(b > a for a, b in zip(powers, powers[1:]))

    def test_dynamic_power_zero_at_level_zero(self, array):
        assert array.dynamic_power_at_level(0) == 0.0

    def test_full_activation_magnitude(self, array):
        # 160 k instances * ~35 uW ~= 5.6 W of dynamic power: the
        # amperes-scale swing Fig 2 shows on the 0.85 V rail.
        full = array.dynamic_power_at_level(160)
        assert 4.5 < full < 7.0

    def test_static_floor_nonzero(self, array):
        # Deployed-but-idle instances leak — Fig 2's non-zero start.
        assert array.static_power > 0.3

    def test_total_power_includes_static(self, array):
        assert array.total_power_at_level(0) == pytest.approx(array.static_power)

    def test_default_level_uses_current_activation(self, array):
        array.set_active_groups(5)
        assert array.dynamic_power_at_level() == pytest.approx(
            array.dynamic_power_at_level(5)
        )


class TestTimeline:
    def test_timeline_is_constant(self):
        array = PowerVirusArray(seed=1)
        array.set_active_groups(80)
        timeline = array.timeline()
        t = np.linspace(0, 1, 11)
        np.testing.assert_allclose(
            timeline.power_at(t), array.total_power_at_level(80)
        )

    def test_timeline_level_override(self):
        array = PowerVirusArray(seed=1)
        timeline = array.timeline(level=160)
        assert timeline.power_at(np.array([0.0]))[0] == pytest.approx(
            array.total_power_at_level(160)
        )

    def test_circuit_spec_resources(self):
        array = PowerVirusArray(seed=1)
        spec = array.circuit_spec()
        assert spec.utilization == {"lut": 160_000, "ff": 160_000}
        assert spec.activity["lut"] == 1.0
