"""Smoke tests: every example script must run end to end.

Examples are product surface — a broken example is a broken release.
Each runs in-process (same interpreter, no subprocess overhead) with
stdout captured; the slowest are the fingerprinting ones, which is why
this module stays at the fast end of the suite's runtime budget.
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

ALL_EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def run_example(name, capsys):
    runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamplesExist:
    def test_at_least_three_examples(self):
        assert len(ALL_EXAMPLES) >= 3

    def test_quickstart_present(self):
        assert "quickstart.py" in ALL_EXAMPLES


class TestExamplesRun:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "current" in out
        assert "permission denied" in out

    def test_rsa_hamming_weight(self, capsys):
        out = run_example("rsa_hamming_weight.py", capsys)
        assert "Distinguishable groups" in out
        assert "current: 17/17" in out

    def test_covert_channel(self, capsys):
        out = run_example("covert_channel.py", capsys)
        assert "'AMPERE'" in out

    def test_record_and_analyze(self, capsys):
        out = run_example("record_and_analyze.py", capsys)
        assert "archive sealed" in out
        assert "top-1" in out

    def test_multi_tenant_cloud(self, capsys):
        out = run_example("multi_tenant_cloud.py", capsys)
        assert "upstream INA226 current: r = +" in out

    def test_leakage_assessment(self, capsys):
        out = run_example("leakage_assessment.py", capsys)
        assert "LEAKS" in out
        assert "spectral estimate" in out

    @pytest.mark.slow
    def test_characterize_sensors(self, capsys):
        out = run_example("characterize_sensors.py", capsys)
        assert "variation" in out

    @pytest.mark.slow
    def test_dnn_fingerprinting(self, capsys):
        out = run_example("dnn_fingerprinting.py", capsys)
        assert "top-1" in out

    @pytest.mark.slow
    def test_attack_campaign(self, capsys):
        out = run_example("attack_campaign.py", capsys)
        assert "SUCCESS" in out
