"""Tests for per-board sensor-map synthesis."""

import pytest

from repro.boards import list_boards, sensor_map_for
from repro.soc import Soc


class TestSensorMapFor:
    def test_zcu102_exact(self):
        sensors = sensor_map_for(18)
        assert len(sensors) == 18
        assert sensors[0].designator == "u76"

    def test_truncation_keeps_sensitive_sensors(self):
        sensors = sensor_map_for(14)
        designators = {sensor.designator for sensor in sensors}
        assert {"u76", "u77", "u79", "u93"} <= designators

    def test_padding_adds_aux_rails(self):
        sensors = sensor_map_for(22)
        assert len(sensors) == 22
        padded = [s for s in sensors if s.designator.startswith("u10")]
        assert len(padded) == 4
        assert all(s.domain == "aux" for s in padded)

    def test_padded_designators_unique(self):
        sensors = sensor_map_for(22)
        designators = [sensor.designator for sensor in sensors]
        assert len(designators) == len(set(designators))

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            sensor_map_for(3)

    @pytest.mark.parametrize(
        "board", [b.name for b in list_boards()]
    )
    def test_every_board_builds_a_soc(self, board):
        soc = Soc(board, seed=0)
        from repro.boards import get_board

        assert len(soc.hwmon.devices()) == get_board(board).ina226_count
        # The four sensitive channels exist everywhere.
        assert len(soc.sensitive_channels()) == 4
