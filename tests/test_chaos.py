"""Chaos harness smoke: injected failure, invariant-checked recovery.

``repro.resilience.chaos`` is itself test infrastructure — these tests
assert the harness enforces its own contract: every scenario terminates
inside its no-hang bound, surviving shards stay byte-identical to a
fault-free serial run, and every job lands in a terminal state.  The
full five-scenario sweep (including the ~20 s SIGSTOP reap) runs under
``bench --chaos``; here the fast scenarios gate the suite and the slow
one rides the ``slow`` marker.
"""

import pytest

from repro.perf.pool import shutdown_pool
from repro.resilience.chaos import SCENARIOS, run_chaos_bench

pytestmark = pytest.mark.chaos

#: Scenarios cheap enough for the default test pass (the SIGSTOP reap
#: waits out a real deadline and lives behind the slow marker).
FAST_SCENARIOS = [
    "worker-sigkill",
    "board-outage",
    "archive-corrupt",
    "fault-storm",
]


@pytest.fixture(autouse=True)
def _reset_shared_pool():
    yield
    shutdown_pool()


def test_scenario_registry_is_complete():
    assert set(FAST_SCENARIOS) <= set(SCENARIOS)
    assert "worker-sigstop" in SCENARIOS


def test_unknown_scenario_is_rejected():
    with pytest.raises(ValueError, match="unknown chaos scenarios"):
        run_chaos_bench(scenarios=["worker-sigsegv"])


def test_fast_scenarios_hold_invariants(tmp_path):
    report = run_chaos_bench(
        scenarios=FAST_SCENARIOS, out_dir=tmp_path, seed=0
    )
    assert report["benchmark"] == "fleet-chaos"
    assert report["ok"], report
    names = [scenario["name"] for scenario in report["scenarios"]]
    assert names == FAST_SCENARIOS
    for scenario in report["scenarios"]:
        if "skipped" in scenario:
            continue
        assert scenario["ok"], scenario
        assert scenario["invariants"]["no_hang"]
        assert scenario["elapsed_s"] <= scenario["bound_s"]


@pytest.mark.slow
def test_sigstop_scenario_reaps_hung_worker(tmp_path):
    report = run_chaos_bench(
        scenarios=["worker-sigstop"], out_dir=tmp_path, seed=0
    )
    scenario = report["scenarios"][0]
    if "skipped" in scenario:
        pytest.skip(scenario["skipped"])
    assert scenario["ok"], scenario
    invariants = scenario["invariants"]
    assert invariants["worker_stopped"]
    assert invariants["hung_worker_reaped"]
    assert invariants["archive_parity"]
