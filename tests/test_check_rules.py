"""Per-rule behaviour of the ``repro.check`` static analyzer.

Every registered rule has a pair of fixture snippets under
``tests/data/check_fixtures/``: ``<rule>_bad.py`` that the rule must
flag and ``<rule>_ok.py`` that it must not (whole-program FLOW rules
live in the ``flow/`` subdirectory).  Fixtures are parsed, never
imported, so they may freely reference banned constructs.  PARSE000 is
the one exception: its "fixture" is a file with a syntax error, which
cannot be checked in without breaking linters, so the tests synthesize
it in a temporary directory.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.check import (
    RULES,
    BaselineError,
    Finding,
    UnknownRuleError,
    load_baseline,
    render_json,
    render_text,
    run_check,
    write_baseline,
)

FIXTURES = Path(__file__).parent / "data" / "check_fixtures"

RULE_IDS = sorted(RULES)

#: Rules whose bad fixture is a broken file, synthesized per-test.
SYNTHESIZED = {"PARSE000"}


def _fixture_rel(rule_id: str, kind: str) -> str:
    """Fixture path relative to FIXTURES (FLOW rules live in flow/)."""
    prefix = "flow/" if rule_id.startswith("FLOW") else ""
    return f"{prefix}{rule_id.lower()}_{kind}.py"


def _check_fixture(name: str, rule_id: str):
    """Run one rule over one fixture file, with no baseline."""
    return run_check(
        paths=[FIXTURES / name],
        rules=[rule_id],
        baseline="",
        root=FIXTURES,
        use_cache=False,
    )


# ------------------------------------------------------------------ fixtures


def test_every_rule_has_fixture_pair():
    for rule_id in RULE_IDS:
        if rule_id in SYNTHESIZED:
            continue
        assert (FIXTURES / _fixture_rel(rule_id, "bad")).exists(), rule_id
        assert (FIXTURES / _fixture_rel(rule_id, "ok")).exists(), rule_id


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_bad_fixture_triggers_rule(rule_id, tmp_path):
    if rule_id in SYNTHESIZED:
        broken = tmp_path / "parse000_bad.py"
        broken.write_text("def f(:\n")
        result = run_check(
            paths=[broken], rules=[rule_id], baseline="",
            root=tmp_path, use_cache=False,
        )
    else:
        result = _check_fixture(_fixture_rel(rule_id, "bad"), rule_id)
    assert result.findings, f"{rule_id} missed its bad fixture"
    assert all(f.rule == rule_id for f in result.findings)


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_ok_fixture_is_quiet(rule_id, tmp_path):
    if rule_id in SYNTHESIZED:
        fine = tmp_path / "parse000_ok.py"
        fine.write_text("VALUE = 1\n")
        result = run_check(
            paths=[fine], rules=[rule_id], baseline="",
            root=tmp_path, use_cache=False,
        )
    else:
        result = _check_fixture(_fixture_rel(rule_id, "ok"), rule_id)
    assert result.ok, [f.format() for f in result.findings]
    assert not result.findings


def test_bad_fixtures_report_locations():
    result = _check_fixture("rng001_bad.py", "RNG001")
    for finding in result.findings:
        assert finding.path == "rng001_bad.py"
        assert finding.line >= 1
        assert finding.snippet  # the stripped source line
        text = finding.format()
        assert text.startswith("rng001_bad.py:")
        assert "RNG001" in text


# --------------------------------------------------------------- selection


def test_unknown_rule_rejected():
    with pytest.raises(UnknownRuleError):
        run_check(
            paths=[FIXTURES],
            rules=["NOPE999"],
            baseline="",
            root=FIXTURES,
        )


def test_rule_selection_is_case_insensitive():
    result = _check_fixture("api003_bad.py", "api003")
    assert result.findings
    assert result.rules_run == ["API003"]


def test_missing_path_raises():
    with pytest.raises(FileNotFoundError):
        run_check(
            paths=[FIXTURES / "does_not_exist.py"],
            baseline="",
            root=FIXTURES,
        )


# ------------------------------------------------------------- suppression


def test_inline_suppression(tmp_path):
    bad = tmp_path / "supp.py"
    bad.write_text(
        "import numpy as np\n"
        "rng = np.random.default_rng()  # repro: ignore[RNG001]\n"
    )
    result = run_check(
        paths=[bad], rules=["RNG001"], baseline="", root=tmp_path
    )
    assert result.ok
    assert result.suppressed == 1


def test_suppression_only_covers_named_rules(tmp_path):
    bad = tmp_path / "supp.py"
    bad.write_text(
        "import numpy as np\n"
        "rng = np.random.default_rng()  # repro: ignore[API002]\n"
    )
    result = run_check(
        paths=[bad], rules=["RNG001"], baseline="", root=tmp_path
    )
    assert not result.ok
    assert result.suppressed == 0


def test_suppression_accepts_rule_lists(tmp_path):
    bad = tmp_path / "supp.py"
    bad.write_text(
        "import numpy as np\n"
        "x = np.random.default_rng()  # repro: ignore[API002, RNG001]\n"
    )
    result = run_check(
        paths=[bad], rules=["RNG001"], baseline="", root=tmp_path
    )
    assert result.ok
    assert result.suppressed == 1


# ---------------------------------------------------------------- baseline


def test_baseline_absorbs_known_findings(tmp_path):
    fixture = FIXTURES / "api002_bad.py"
    fresh = run_check(
        paths=[fixture], rules=["API002"], baseline="", root=FIXTURES
    )
    assert fresh.findings
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, fresh.findings, existing=[])
    absorbed = run_check(
        paths=[fixture],
        rules=["API002"],
        baseline=baseline_path,
        root=FIXTURES,
    )
    assert absorbed.ok
    assert len(absorbed.baselined) == len(fresh.findings)
    assert not absorbed.stale_baseline


def test_baseline_keeps_existing_justifications(tmp_path):
    baseline_path = tmp_path / "baseline.json"
    finding = Finding(
        path="x.py", line=1, col=0, rule="API002",
        message="m", snippet="a == 0.5",
    )
    first = write_baseline(baseline_path, [finding], existing=[])
    justified = [
        type(entry)(
            rule=entry.rule,
            path=entry.path,
            snippet=entry.snippet,
            justification="intentional sentinel",
        )
        for entry in first
    ]
    second = write_baseline(baseline_path, [finding], existing=justified)
    assert second[0].justification == "intentional sentinel"
    reloaded = load_baseline(baseline_path)
    assert reloaded[0].justification == "intentional sentinel"


def test_stale_baseline_entries_reported(tmp_path):
    baseline_path = tmp_path / "baseline.json"
    ghost = Finding(
        path="gone.py", line=9, col=0, rule="API002",
        message="m", snippet="y == 1.5",
    )
    write_baseline(baseline_path, [ghost], existing=[])
    result = run_check(
        paths=[FIXTURES / "api002_ok.py"],
        rules=["API002"],
        baseline=baseline_path,
        root=FIXTURES,
    )
    assert result.ok  # stale entries do not fail the run
    assert len(result.stale_baseline) == 1
    assert result.stale_baseline[0].rule == "API002"
    assert "STALE" in render_text(result)


def test_stale_filtering_respects_rule_subset(tmp_path):
    """Entries for rules that did not run are neither used nor stale."""
    baseline_path = tmp_path / "baseline.json"
    ghost = Finding(
        path="gone.py", line=9, col=0, rule="API002",
        message="m", snippet="y == 1.5",
    )
    write_baseline(baseline_path, [ghost], existing=[])
    result = run_check(
        paths=[FIXTURES / "rng001_ok.py"],
        rules=["RNG001"],
        baseline=baseline_path,
        root=FIXTURES,
    )
    assert not result.stale_baseline


def test_malformed_baseline_rejected(tmp_path):
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(json.dumps({"version": 99, "entries": []}))
    with pytest.raises(BaselineError):
        run_check(
            paths=[FIXTURES / "api002_ok.py"],
            baseline=baseline_path,
            root=FIXTURES,
        )


# --------------------------------------------------------------- rendering


def test_render_json_schema():
    result = _check_fixture("api003_bad.py", "API003")
    document = json.loads(render_json(result))
    assert document["version"] == 1
    assert document["ok"] is False
    assert document["summary"]["findings"] == len(result.findings)
    assert document["summary"]["rules_run"] == ["API003"]
    first = document["findings"][0]
    assert set(first) >= {"path", "line", "col", "rule", "message"}


def test_render_text_summary_line():
    result = _check_fixture("api003_ok.py", "API003")
    text = render_text(result)
    assert text.splitlines()[-1].startswith("0 findings")


def test_parse_error_fails_run(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n")
    result = run_check(paths=[broken], baseline="", root=tmp_path)
    assert not result.ok
    assert result.errors and "syntax error" in result.errors[0].message
    assert "PARSE" in render_text(result)
    # with the full rule set, the synthetic PARSE000 finding is there too
    assert any(f.rule == "PARSE000" for f in result.findings)


def test_broken_file_never_checks_green(tmp_path):
    """Even when PARSE000 is deselected, a broken file fails the run."""
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n")
    result = run_check(
        paths=[broken], rules=["RNG001"], baseline="",
        root=tmp_path, use_cache=False,
    )
    assert not result.ok
    assert result.errors
    assert not result.findings  # the synthetic finding needs selection
