"""Fixture: CONC002 must stay quiet when the lock is held (or absent)."""

import threading

_FIT_CONTEXT = None
_FIT_LOCK = threading.Lock()


def swap_context(context):
    global _FIT_CONTEXT
    with _FIT_LOCK:
        previous = _FIT_CONTEXT
        _FIT_CONTEXT = context
    return previous


class Scheduler:
    def __init__(self):
        self._clock = 0.0
        self._clock_lock = threading.Lock()

    def next_window(self, duration: float) -> float:
        with self._clock_lock:
            start = self._clock
            self._clock += duration
            return start


class LocklessTimeline:
    """A `_clock` with no `_clock_lock` in scope is not under contract."""

    def __init__(self):
        self._clock = 0.0

    def advance(self, duration: float) -> float:
        self._clock += duration
        return self._clock
