"""Fixture: RNG001 must flag unseeded Generator construction."""

import numpy as np
from numpy.random import default_rng


def fresh_entropy_generator():
    return np.random.default_rng()


def explicit_none_seed():
    return default_rng(None)


def unseeded_seed_sequence():
    return np.random.SeedSequence()
