"""Fixture: RNG003 must stay quiet when the helper is used."""

from repro.utils.rng import ensure_rng, spawn


def policy_construction(seed: int):
    return ensure_rng(seed), spawn(seed, "child-stream")
