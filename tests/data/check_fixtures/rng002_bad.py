"""Fixture: RNG002 must flag unseedable/global entropy sources."""

import os
import random
import secrets
import uuid
from random import shuffle

import numpy as np


def stdlib_random():
    return random.random()


def imported_shuffle(items):
    shuffle(items)
    return items


def os_entropy():
    return os.urandom(16)


def secrets_token():
    return secrets.token_bytes(8)


def random_uuid():
    return uuid.uuid4()


def legacy_numpy_global():
    np.random.seed(0)
    return np.random.rand(4)
