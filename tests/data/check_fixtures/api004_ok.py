"""Fixture: API004 must stay quiet on hoisted / batched sorts."""

import numpy as np


def presorted_columns(X):
    # One columnwise presort outside any loop: the sanctioned pattern.
    presorted = np.argsort(X, axis=0, kind="stable")
    totals = []
    for column in range(X.shape[1]):
        totals.append(X[presorted[:, column], column].sum())
    return totals


def batched_rank(matrix):
    return np.argsort(matrix, axis=1, kind="stable")


def sorted_iteration(values):
    # argsort in the loop header runs once, not per iteration.
    total = 0.0
    for index in np.argsort(values):
        total += values[index]
    return [values[i] for i in np.argsort(values)]


def suppressed_rescorer(blocks):
    ranks = []
    for block in blocks:
        ranks.append(np.argsort(block))  # repro: ignore[API004]
    return ranks
