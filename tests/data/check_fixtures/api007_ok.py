"""Fixture: API007 must stay quiet on bounded and non-blocking forms."""

import asyncio
import multiprocessing
import os
import queue
import threading


def drain_with_deadline(results: multiprocessing.Queue):
    try:
        return results.get(timeout=2.0)
    except queue.Empty:
        return None


def drain_positional_deadline(results: multiprocessing.Queue):
    return results.get(True, 5)


def drain_nonblocking(results: multiprocessing.Queue):
    return results.get(False)


def drain_keyword_nonblocking(results: multiprocessing.Queue):
    return results.get(block=False)


def await_signal_bounded(event: threading.Event):
    return event.wait(5)


def await_signal_keyword(event: threading.Event):
    return event.wait(timeout=0.5)


def reap_worker_bounded(process: multiprocessing.Process):
    process.join(2.0)
    return process.exitcode


def lookup_is_not_a_wait(config: dict):
    # dict.get carries a key, not a block flag.
    return config.get("workers", 1)


def join_is_not_always_a_wait(parts):
    # str.join / os.path.join take payload arguments.
    return os.path.join("/tmp", "-".join(parts))


async def event_loop_waits_are_fine(tasks: asyncio.Queue):
    # Awaited coroutine methods keep the loop responsive.
    return await tasks.get()
