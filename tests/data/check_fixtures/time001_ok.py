"""Fixture: TIME001 must stay quiet on simulated-clock arithmetic."""


def advance_clock(clock: float, duration: float, guard: float) -> float:
    # Simulated time is plain arithmetic on the experiment clock.
    return clock + duration + guard


def poll_grid(start: float, n_samples: int, poll_hz: float):
    return [start + index / poll_hz for index in range(n_samples)]
