"""Fixture: CONC003 must stay quiet on module-level task functions."""

from repro.perf.executor import parallel_map


def double(item):
    return item * 2


def run(items):
    return parallel_map(double, items, workers=2)
