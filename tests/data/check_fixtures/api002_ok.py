"""Fixture: API002 must stay quiet on safe comparison styles."""

import numpy as np


def integer_register_compare(reading):
    return reading.current_register == 1250


def tolerant_compare(result):
    return np.isclose(result.top1, 0.997)


def ordering_compare(values):
    return values.mean() > 0.5


def suppressed_sentinel(rate):
    # Exact-zero sentinel on a configured value, explicitly waived.
    return rate == 0.0  # repro: ignore[API002]
