"""Fixture: RNG002 must stay quiet on explicit Generator draws."""

from repro.utils.rng import ensure_rng


def explicit_generator_draws(seed: int):
    rng = ensure_rng(seed)
    values = rng.random(8)
    rng.shuffle(values)  # a Generator method, not np.random.shuffle
    return values, rng.integers(0, 10, size=4)
