"""Fixture: CONC003 must flag closures/lambdas handed to parallel_map."""

from repro.perf.executor import parallel_map


def run_with_lambda(items, scale):
    return parallel_map(lambda item: item * scale, items)


def run_with_closure(items):
    handle = open("/tmp/conc003-fixture.log", "w")

    def task(item):
        handle.write(str(item))
        return item

    try:
        return parallel_map(task, items)
    finally:
        handle.close()


def run_with_named_lambda(items):
    double = lambda item: item * 2  # noqa: E731
    return parallel_map(double, items)
