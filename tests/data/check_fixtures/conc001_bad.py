"""Fixture: CONC001 must flag worker tasks mutating module globals."""

from repro.perf.executor import parallel_map

_RESULTS = []
_CACHE = {}
_COUNTER = 0


def accumulate(item):
    # The append lands in the forked worker's copy and is lost.
    _RESULTS.append(item * 2)
    return item


def memoize(item):
    _CACHE[item] = item * 2
    return _CACHE[item]


def count(item):
    global _COUNTER
    _COUNTER += 1
    return item


def run(items):
    a = parallel_map(accumulate, items)
    b = parallel_map(memoize, items)
    c = parallel_map(count, items)
    return a, b, c
