"""Fixture: API001 must flag raw hwmon reads outside the boundary."""

import numpy as np


def naive_poll_loop(device, times):
    # Bypasses fault plans, hardening and health tracking.
    return device.read_series("curr1_input", times)


def naive_batched_poll(device, times):
    return device.read_series_batch([("curr1_input", times)])


def peek_registers(device):
    return device.readings_at(np.array([0.0]))
