"""Fixture: API005 must flag unbounded growth in push methods."""


class LeakyExtractor:
    def __init__(self):
        self._chunks = []
        self._history = []

    def push_chunk(self, chunk):
        # Every chunk of the stream is retained forever.
        self._chunks.append(chunk)
        return len(self._chunks)


class LeakyAccumulator:
    def __init__(self):
        self._rows = []

    def push(self, batch):
        # extend and += both grow without a bound.
        self._rows.extend(batch)
        self._rows += [sum(batch)]
        return self._rows
