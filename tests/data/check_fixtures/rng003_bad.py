"""Fixture: RNG003 must flag direct default_rng outside utils.rng."""

import numpy as np


def direct_construction(seed: int):
    # Seeded, so RNG001 passes — but the seed policy is bypassed.
    return np.random.default_rng(seed)
