"""Fixture: API007 must flag untimed blocking waits outside perf."""

import multiprocessing
import threading


def drain_results(queue: multiprocessing.Queue):
    # Blocks forever if the producer process was SIGKILLed.
    return queue.get()


def drain_results_explicitly_blocking(queue: multiprocessing.Queue):
    return queue.get(True)


def drain_results_keyword_blocking(queue: multiprocessing.Queue):
    return queue.get(block=True)


def await_signal(event: threading.Event):
    # No deadline: a dead setter strands this caller.
    event.wait()


def await_signal_none_timeout(event: threading.Event):
    event.wait(timeout=None)


def reap_worker(process: multiprocessing.Process):
    # An untimed join on a SIGSTOPped worker never returns.
    process.join()


def reap_worker_none_timeout(process: multiprocessing.Process):
    process.join(timeout=None)
