"""Fixture: CONC001 must stay quiet on pure worker tasks."""

from repro.perf.executor import parallel_map

_SCALE = 3  # read-only module state is fork-safe


def pure_task(item):
    local = [item]
    local.append(item * _SCALE)
    return sum(local)


def run(items):
    # State flows through arguments and return values only.
    return parallel_map(pure_task, items)
