"""Fixture: API003 must stay quiet on None-defaulted arguments."""


def collect_into(trace, bucket=None):
    if bucket is None:
        bucket = []
    bucket.append(trace)
    return bucket


def window(trace, bounds=(0.0, 1.0)):
    # Immutable defaults are fine.
    return trace, bounds
