"""Fixture: API002 must flag exact float comparisons on data."""


def accuracy_gate(result):
    return result.top1 == 0.997


def is_centered(values):
    return values.mean() != -0.5
