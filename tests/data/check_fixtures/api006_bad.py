"""Fixture: API006 must flag raw pools/segments outside repro/perf."""

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from multiprocessing.shared_memory import SharedMemory


def fan_out_with_raw_pool(items):
    # Bypasses parallel_map's ordering and crash-recovery contract.
    with multiprocessing.Pool(processes=4) as pool:
        return pool.map(str, items)


def fan_out_with_raw_executor(items):
    with ProcessPoolExecutor(max_workers=4) as executor:
        return list(executor.map(str, items))


def share_with_raw_segment(payload):
    # Bypasses the arena's alignment and lifetime bookkeeping.
    segment = SharedMemory(create=True, size=len(payload))
    segment.buf[: len(payload)] = payload
    return segment.name
