"""FLOW004 across modules: the unlocked-writing task is submitted here."""
from flow.xmod_task import accumulate

from repro.perf.executor import parallel_map


def launch(items):
    return parallel_map(accumulate, items)
