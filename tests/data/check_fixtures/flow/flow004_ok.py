"""FLOW004 ok: workers return state; parent-side writes hold a lock."""
import threading

from repro.perf.executor import parallel_map

_STATE_LOCK = threading.Lock()
_TOTALS = {}


def task(item):
    return item * 2


def record(key, value):
    with _STATE_LOCK:
        _TOTALS[key] = value


def launch(items):
    results = parallel_map(task, items)
    for index, value in enumerate(results):
        record(index, value)
    return results
