"""FLOW003: a helper's wall-clock return leaks into simulated time."""
import time


def read_clock():
    return time.time()


def schedule_tick(state):
    now = read_clock()
    state.advance(now)
    return now
