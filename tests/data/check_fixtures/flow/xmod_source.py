"""Cross-module taint source: an unseeded generator factory."""
import numpy as np


def make_generator():
    return np.random.default_rng()
