"""FLOW005 ok: every path acquires the locks in the same order."""
import threading

ALPHA_LOCK = threading.Lock()
BETA_LOCK = threading.Lock()


def forward():
    with ALPHA_LOCK:
        with BETA_LOCK:
            return 1


def also_forward():
    with ALPHA_LOCK, BETA_LOCK:
        return 2
