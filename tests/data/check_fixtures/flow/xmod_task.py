"""Cross-module worker task: writes module state without a lock."""
RESULTS = {}


def accumulate(item):
    RESULTS[item] = item * 2
    return item
