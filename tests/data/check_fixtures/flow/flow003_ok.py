"""FLOW003 ok: simulated time is derived from the experiment clock."""


def simulated_time(step, dt):
    return step * dt


def schedule_tick(state, step):
    now = simulated_time(step, 0.01)
    state.advance(now)
    return now
