"""FLOW004: a worker task writes module state without a lock."""
from repro.perf.executor import parallel_map

COUNTER = 0


def task(item):
    global COUNTER
    COUNTER += 1
    return item


def launch(items):
    return parallel_map(task, items)
