"""FLOW005: two locks acquired in opposite orders (ABBA deadlock)."""
import threading

ALPHA_LOCK = threading.Lock()
BETA_LOCK = threading.Lock()


def forward():
    with ALPHA_LOCK:
        with BETA_LOCK:
            return 1


def backward():
    with BETA_LOCK:
        with ALPHA_LOCK:
            return 2
