"""FLOW001: unseeded generator taint reaches a Trace sink via a helper."""
import numpy as np

from repro import Trace


def make_generator():
    return np.random.default_rng()


def record():
    gen = make_generator()
    samples = gen.normal(size=32)
    return Trace(samples=samples, seed=0)
