"""FLOW002: OS entropy (os.urandom) reaches a recording sink."""
import os

from repro import Trace


def record():
    noise = list(os.urandom(16))
    return Trace(samples=noise, seed=0)
