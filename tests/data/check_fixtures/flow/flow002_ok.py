"""FLOW002 ok: samples come from a seed-policy generator, not the OS."""
from repro import Trace
from repro.utils.rng import ensure_rng


def record(seed):
    rng = ensure_rng(seed)
    noise = rng.normal(size=16)
    return Trace(samples=noise, seed=seed)
