"""FLOW001 across modules: the tainted generator is made elsewhere."""
from flow.xmod_source import make_generator

from repro import Trace


def record():
    gen = make_generator()
    samples = gen.normal(size=32)
    return Trace(samples=samples, seed=0)
