"""FLOW001 ok: the generator is routed through the ensure_rng sanitizer."""
from repro import Trace
from repro.utils.rng import ensure_rng


def make_generator(seed):
    return ensure_rng(seed)


def record():
    gen = make_generator(0)
    samples = gen.normal(size=32)
    return Trace(samples=samples, seed=0)
