"""Fixture: API003 must flag mutable default arguments."""

import numpy as np


def collect_into(trace, bucket=[]):
    bucket.append(trace)
    return bucket


def tag_with(trace, labels={}):
    labels[trace] = True
    return labels


def pad_trace(values, padding=np.zeros(4)):
    return list(values) + list(padding)


def dedupe(items, *, seen=set()):
    return [item for item in items if item not in seen]
