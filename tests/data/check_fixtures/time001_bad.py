"""Fixture: TIME001 must flag wall-clock reads in simulated-time code."""

import time
from datetime import datetime
from time import monotonic


def stamp_trace(trace):
    trace.recorded_at = time.time()
    return trace


def label_run():
    return datetime.now().isoformat()


def elapsed_guess(start):
    return monotonic() - start
