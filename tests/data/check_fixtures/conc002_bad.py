"""Fixture: CONC002 must flag guarded fields touched without the lock."""

import threading

_FIT_CONTEXT = None
_FIT_LOCK = threading.Lock()


def read_context_unlocked():
    X, y = _FIT_CONTEXT
    return X, y


class Scheduler:
    def __init__(self):
        self._clock = 0.0  # __init__ is exempt: nothing is shared yet
        self._clock_lock = threading.Lock()

    def next_window_unlocked(self, duration: float) -> float:
        start = self._clock
        self._clock += duration
        return start
