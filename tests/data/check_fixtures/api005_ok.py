"""Fixture: API005 must stay quiet on bounded streaming state."""


class SlidingExtractor:
    def __init__(self, window):
        self.window = window
        self._buffer = []

    def push_chunk(self, chunk):
        self._buffer.extend(chunk)
        # Slice rebind keeps the buffer O(window): the repo idiom.
        self._buffer = self._buffer[-self.window:]
        return list(self._buffer)


class PoppingQueue:
    def __init__(self, depth):
        self.depth = depth
        self._pending = []

    def push(self, item):
        self._pending.append(item)
        while len(self._pending) > self.depth:
            self._pending.pop(0)
        return len(self._pending)


class BatchTrainer:
    def __init__(self):
        self._scores = []

    def record(self, score):
        # Growth outside push* methods is not streaming state.
        self._scores.append(score)


class AuditedRecorder:
    def __init__(self):
        self._log = []

    def push(self, entry):
        # A deliberate full-stream log, waived explicitly.
        self._log.append(entry)  # repro: ignore[API005]
        return entry
