"""Fixture: API006 must stay quiet on the sanctioned perf wrappers."""

from repro.perf import parallel_map, publish_arrays
from repro.perf.pool import get_pool


def task(item):
    return item * 2


def fan_out(items):
    return parallel_map(task, items, workers=2)


def fan_out_pooled(items):
    return get_pool(2).map(task, items)


def share(arrays):
    with publish_arrays(arrays) as refs:
        return parallel_map(task, list(refs), workers=2)
