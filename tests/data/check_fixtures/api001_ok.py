"""Fixture: API001 must stay quiet on the sanctioned sampling facade."""


def sanctioned_poll(soc, times):
    return soc.sample("fpga", "current", times)


def sanctioned_faulted_poll(soc, times):
    return soc.sample_faulted("fpga", "current", times)


def sanctioned_trace(sampler):
    return sampler.collect("fpga", "current", duration=1.0)
