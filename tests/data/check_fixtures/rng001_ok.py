"""Fixture: RNG001 must stay quiet on seeded/helper construction."""

import numpy as np

from repro.utils.rng import ensure_rng, spawn


def seeded_generator(seed: int):
    return np.random.default_rng(seed)


def policy_generator(seed):
    return ensure_rng(seed)


def named_stream(seed):
    return spawn(seed, "sensor-noise")


def seeded_sequence(seed: int):
    return np.random.SeedSequence(seed)
