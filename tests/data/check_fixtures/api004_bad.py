"""Fixture: API004 must flag per-iteration argsort patterns."""

import numpy as np


def per_node_split_search(X, nodes):
    orders = []
    for indices in nodes:
        # One sort per node: the quadratic pre-vectorization CART.
        orders.append(np.argsort(X[indices], kind="stable"))
    return orders


def per_row_rank(matrix):
    return [np.argsort(row) for row in matrix]


def method_call_counts_too(columns):
    ranks = []
    while columns:
        column = columns.pop()
        ranks.append(column.argsort())
    return ranks
