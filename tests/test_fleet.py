"""Fleet scheduler: sharded campaigns, worker death, byte-exact resume.

The fleet's contract mirrors the checkpoint/resume one, lifted a level:
a batch of recording jobs sharded over the persistent worker pool must
seal exactly the archives a one-at-a-time inline run seals — including
when a pool worker is SIGKILLed mid-shard and the job finishes on the
respawned worker through the resume path.
"""

import os
import signal

import pytest

from test_checkpoint_resume import CHANNELS, CONFIG, MODELS, tree_hash

from repro.core.io import TraceArchiveWriter
from repro.fleet import (
    JOB_KINDS,
    FleetJob,
    FleetScheduler,
    build_fleet_jobs,
    run_job,
)
from repro.perf.pool import shutdown_pool

pytestmark = pytest.mark.fleet

SEED = 5

RSA_PARAMS = dict(weights=(1, 16), quantity="current", n_samples=1500)
CAMPAIGN_PARAMS = dict(
    victim_start=2.0, trace_duration=3.0, timeout=20.0, chunk_duration=1.0
)
FINGERPRINT_PARAMS = dict(
    models=tuple(MODELS),
    channels=tuple(tuple(channel) for channel in CHANNELS),
    **CONFIG,
)


@pytest.fixture(autouse=True)
def _reset_shared_pool():
    yield
    shutdown_pool()


def _batch(root):
    """One job of every kind, matching the checkpoint-test scales."""
    return [
        FleetJob.make(
            "fingerprint",
            "ZCU102",
            seed=SEED,
            out=root / "fingerprint",
            **FINGERPRINT_PARAMS,
        ),
        FleetJob.make(
            "rsa", "ZCU102", seed=SEED, out=root / "rsa", **RSA_PARAMS
        ),
        FleetJob.make(
            "campaign",
            "ZCU102",
            seed=SEED,
            out=root / "campaign",
            **CAMPAIGN_PARAMS,
        ),
    ]


class TestFleetJobs:
    def test_make_validates_kind_and_board(self, tmp_path):
        with pytest.raises(ValueError, match="unknown job kind"):
            FleetJob.make("espionage", "ZCU102", seed=0, out=tmp_path)
        with pytest.raises(KeyError):
            FleetJob.make("rsa", "not-a-board", seed=0, out=tmp_path)

    def test_default_job_id_and_params_round_trip(self, tmp_path):
        job = FleetJob.make(
            "rsa", "ZCU102", seed=3, out=tmp_path, weights=(1, 2)
        )
        assert job.job_id == "rsa/ZCU102/3"
        assert job.param_dict() == {"weights": (1, 2)}

    def test_run_job_rejects_unknown_kind(self, tmp_path):
        bogus = FleetJob(
            job_id="x", kind="espionage", board="ZCU102", seed=0,
            out=str(tmp_path / "x"),
        )
        with pytest.raises(ValueError, match="unknown job kind"):
            run_job(bogus)

    def test_build_fleet_jobs_covers_kinds_and_boards(self, tmp_path):
        jobs = build_fleet_jobs(
            tmp_path, boards=["ZCU102", "ZCU111"], seed=0
        )
        assert len(jobs) == 2 * len(JOB_KINDS)
        assert {job.board for job in jobs} == {"ZCU102", "ZCU111"}
        assert len({job.out for job in jobs}) == len(jobs)


class TestScheduler:
    def test_duplicate_ids_and_archives_rejected(self, tmp_path):
        job = FleetJob.make("rsa", "ZCU102", seed=0, out=tmp_path / "a")
        with pytest.raises(ValueError, match="duplicate job id"):
            FleetScheduler([job, job])
        clone = FleetJob.make(
            "rsa", "ZCU102", seed=1, out=tmp_path / "a", job_id="other"
        )
        with pytest.raises(ValueError, match="share the archive"):
            FleetScheduler([job, clone])

    def test_outcomes_keep_submission_order(self, tmp_path):
        jobs = _batch(tmp_path)
        report = FleetScheduler(
            jobs, max_concurrent=2, use_pool=False
        ).run()
        assert report.ok
        assert [o.job.job_id for o in report.outcomes] == [
            j.job_id for j in jobs
        ]
        assert report.traces > 0 and report.samples > 0
        assert (
            report.latency_percentile(50)
            <= report.latency_percentile(95)
            <= report.latency_percentile(100)
        )

    def test_sealed_jobs_are_skipped_on_rerun(self, tmp_path):
        jobs = [
            FleetJob.make(
                "rsa", "ZCU102", seed=SEED, out=tmp_path / "rsa",
                **RSA_PARAMS,
            )
        ]
        first = FleetScheduler(jobs, use_pool=False).run()
        again = FleetScheduler(jobs, use_pool=False).run()
        assert first.ok and again.ok
        assert not first.outcomes[0].result.skipped
        assert again.outcomes[0].result.skipped
        assert again.traces == first.traces

    def test_deterministic_failure_is_reported_not_retried(self, tmp_path):
        bad = FleetJob.make(
            "campaign",
            "ZCU102",
            seed=SEED,
            out=tmp_path / "bad",
            timeout=-1.0,
        )
        report = FleetScheduler([bad], use_pool=False, retries=3).run()
        assert not report.ok
        outcome = report.outcomes[0]
        assert outcome.attempts == 1
        assert "timeout" in outcome.error
        assert report.as_dict()["failures"] == [
            {"job_id": bad.job_id, "error": outcome.error}
        ]


class TestFleetKillAndResume:
    def test_sigkilled_worker_mid_shard_seals_byte_identical(
        self, tmp_path, monkeypatch
    ):
        serial_jobs = _batch(tmp_path / "serial")
        reference = FleetScheduler(
            serial_jobs, max_concurrent=1, use_pool=False
        ).run()
        assert reference.ok

        # Arm a kill-once bomb: the 6th archive append performed while
        # the flag file exists SIGKILLs its own (worker) process —
        # mid-shard, after real chunks and checkpoints hit the disk.
        flag = tmp_path / "kill-flag"
        flag.touch()
        real_append = TraceArchiveWriter.append
        state = {"left": 5}

        def kill_once_append(self, *args, **kwargs):
            if flag.exists():
                if state["left"] == 0:
                    flag.unlink()
                    os.kill(os.getpid(), signal.SIGKILL)
                state["left"] -= 1
            return real_append(self, *args, **kwargs)

        monkeypatch.setattr(TraceArchiveWriter, "append", kill_once_append)
        # Fork the pool *after* arming so workers inherit the bomb.
        shutdown_pool()

        fleet_jobs = _batch(tmp_path / "fleet")
        report = FleetScheduler(
            fleet_jobs, max_concurrent=2, use_pool=True, workers=1
        ).run()

        assert report.ok
        assert report.respawns >= 1
        assert not flag.exists()
        resumed = [
            o.result.resumed for o in report.outcomes if o.result
        ]
        assert any(resumed)
        for serial_job, fleet_job in zip(serial_jobs, fleet_jobs):
            assert tree_hash(serial_job.out) == tree_hash(fleet_job.out), (
                f"{fleet_job.job_id} drifted after kill/resume"
            )
        assert report.traces == reference.traces
        assert report.samples == reference.samples
