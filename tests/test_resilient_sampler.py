"""The resilient acquisition path: retries, health, degraded mode.

Covers the sampler-facing half of the fault plane:

* the determinism guard — ``FaultPlan.none()`` must leave every trace
  bit-identical to the unarmed fast path, pinned against a checked-in
  fixture recorded before the fault plane existed;
* the retry/backoff loop (deterministic recovery, gap interpolation,
  plausibility gating of torn reads);
* the per-sensor health machine and degraded-mode fallbacks
  (``collect_many(on_dead="drop")``, fused evaluation with dead
  channels, mid-stream partial flush).
"""

from pathlib import Path

import numpy as np
import pytest

from repro.core import (
    ChannelDeadError,
    ChannelOutageError,
    StreamInterrupted,
    TraceQuality,
)
from repro.core.io import load_traceset
from repro.faults import DEAD, FLAKY, HEALTHY, FaultPlan, RetryPolicy
from repro.session import AttackSession

pytestmark = pytest.mark.faults

FIXTURE = Path(__file__).parent / "data" / "collect_seed3_v1.npz"

#: The recipe the fixture was recorded with (pre-fault-plane code).
FIXTURE_RECIPE = (
    ("fpga", "current", 1.0, 160, "pin-fpga-current"),
    ("ddr", "power", 1.0, 120, "pin-ddr-power"),
    ("fpd", "voltage", 2.5, 96, "pin-fpd-voltage"),
)


def _collect_fixture_traces(session):
    return [
        session.sampler.collect(
            domain, quantity, start=start, n_samples=n, label=label
        )
        for domain, quantity, start, n, label in FIXTURE_RECIPE
    ]


class TestNoopDeterminismGuard:
    """FaultPlan.none() must be invisible, bit for bit."""

    @pytest.mark.parametrize("faults", [None, "noop-plan"])
    def test_matches_checked_in_fixture(self, faults):
        if faults == "noop-plan":
            faults = FaultPlan.none()
        session = AttackSession.create(seed=3, faults=faults)
        traces = _collect_fixture_traces(session)
        pinned = load_traceset(FIXTURE)
        assert len(pinned) == len(traces)
        for fresh, expected in zip(traces, pinned):
            assert fresh.label == expected.label
            np.testing.assert_array_equal(fresh.times, expected.times)
            np.testing.assert_array_equal(fresh.values, expected.values)

    def test_noop_plan_keeps_fast_path(self):
        session = AttackSession.create(seed=3, faults=FaultPlan.none())
        assert not session.sampler._faults_active("fpga")
        trace = session.sampler.collect(
            "fpga", "current", start=1.0, n_samples=64
        )
        assert trace.quality is None

    def test_zero_rate_resolves_to_unarmed(self):
        session = AttackSession.create(seed=3, faults=0.0)
        assert session.soc.fault_plan is None


class TestResilientCollect:
    def _session(self, rate=0.2, seed=3, retry_policy=None):
        return AttackSession.create(
            seed=seed, faults=rate, retry_policy=retry_policy
        )

    def test_faulted_collect_is_deterministic(self):
        kwargs = dict(start=1.0, n_samples=400)
        a = self._session().sampler.collect("fpga", "current", **kwargs)
        b = self._session().sampler.collect("fpga", "current", **kwargs)
        np.testing.assert_array_equal(a.values, b.values)
        assert a.quality == b.quality

    def test_quality_metadata_records_recovery(self):
        trace = self._session().sampler.collect(
            "fpga", "current", start=1.0, n_samples=400
        )
        quality = trace.quality
        assert isinstance(quality, TraceQuality)
        assert quality.retries > 0
        assert quality.health in (HEALTHY, FLAKY)
        assert quality.interpolated <= quality.gaps

    def test_recovered_values_pass_plausibility(self):
        policy = RetryPolicy()
        session = self._session(rate=0.5)
        trace = session.sampler.collect(
            "fpga", "current", start=1.0, n_samples=600
        )
        assert int(np.abs(trace.values).max()) <= policy.plausible_limit

    def test_sample_and_hold_fallback(self):
        policy = RetryPolicy(max_retries=0, interpolate_gaps=False)
        session = self._session(rate=0.4, retry_policy=policy)
        trace = session.sampler.collect(
            "fpga", "current", start=1.0, n_samples=400
        )
        assert trace.quality.gaps > 0
        assert trace.quality.interpolated == 0
        assert int(np.abs(trace.values).max()) <= policy.plausible_limit

    def test_seed_changes_fault_outcome(self):
        kwargs = dict(start=1.0, n_samples=400)
        a = self._session(seed=3).sampler.collect("fpga", "current", **kwargs)
        b = self._session(seed=4).sampler.collect("fpga", "current", **kwargs)
        assert a.quality != b.quality or not np.array_equal(
            a.values, b.values
        )


class TestHealthMachine:
    def test_dead_channel_raises_immediately(self):
        session = AttackSession.create(seed=3, faults=0.2)
        session.sampler.force_dead("fpga")
        assert session.sampler.channel_health("fpga") == DEAD
        with pytest.raises(ChannelDeadError, match="pinned dead"):
            session.sampler.collect("fpga", "current", start=1.0, n_samples=50)

    def test_reset_health_revives(self):
        session = AttackSession.create(seed=3, faults=0.2)
        session.sampler.force_dead("fpga")
        session.sampler.reset_health()
        trace = session.sampler.collect(
            "fpga", "current", start=1.0, n_samples=50
        )
        assert trace.values.size == 50

    def test_faults_mark_channel_flaky(self):
        session = AttackSession.create(seed=3, faults=0.5)
        session.sampler.collect("fpga", "current", start=1.0, n_samples=400)
        assert session.sampler.channel_health("fpga") == FLAKY


class TestDegradedMode:
    CHANNELS = [("fpga", "current"), ("ddr", "current"), ("fpd", "current")]

    def test_collect_many_drops_dead_channel(self):
        session = AttackSession.create(seed=3, faults=0.1)
        session.sampler.force_dead("ddr")
        traces = session.sampler.collect_many(
            self.CHANNELS, start=1.0, n_samples=80, on_dead="drop"
        )
        assert ("ddr", "current") not in traces
        assert set(traces) == {("fpga", "current"), ("fpd", "current")}

    def test_collect_many_raise_propagates(self):
        session = AttackSession.create(seed=3, faults=0.1)
        session.sampler.force_dead("ddr")
        with pytest.raises(ChannelDeadError):
            session.sampler.collect_many(
                self.CHANNELS, start=1.0, n_samples=80, on_dead="raise"
            )

    def test_all_channels_dead_is_an_outage(self):
        session = AttackSession.create(seed=3, faults=0.1)
        for domain, _ in self.CHANNELS:
            session.sampler.force_dead(domain)
        with pytest.raises(ChannelOutageError, match="every requested"):
            session.sampler.collect_many(
                self.CHANNELS, start=1.0, n_samples=80, on_dead="drop"
            )

    def test_on_dead_validated(self):
        session = AttackSession.create(seed=3, faults=0.1)
        with pytest.raises(ValueError, match="on_dead"):
            session.sampler.collect_many(
                self.CHANNELS, start=1.0, n_samples=80, on_dead="ignore"
            )

    def test_fused_degraded_reports_dropped_channels(self):
        from repro.core.fingerprint import DnnFingerprinter, FingerprintConfig

        session = AttackSession.create(seed=3, faults=0.05)
        session.sampler.force_dead("ddr")
        config = FingerprintConfig(
            duration=1.0, traces_per_model=4, n_folds=2, forest_trees=5
        )
        fingerprinter = DnnFingerprinter(session=session, config=config)
        channels = self.CHANNELS
        datasets = fingerprinter.collect_datasets(
            models=["resnet-50", "vgg-16"],
            channels=channels,
            on_dead="drop",
        )
        report = fingerprinter.evaluate_fused_degraded(
            datasets, channels=channels
        )
        assert ("ddr", "current") in report["dropped_channels"]
        assert set(report["used_channels"]) == {
            ("fpga", "current"), ("fpd", "current"),
        }
        assert 0.0 <= report["result"].top1 <= 1.0


class TestStreamResilience:
    def test_midstream_unbind_flushes_partial_chunk(self):
        session = AttackSession.create(seed=3, faults=0.05)
        device = session.soc.device("fpga")
        # The driver unbinds for good partway through the second chunk.
        device.inject_failure("unbind", at_time=1.15)
        stream = session.sampler.stream(
            "fpga", "current", start=1.0, duration=0.4, chunk_duration=0.1
        )
        chunks = []
        with pytest.raises(StreamInterrupted) as info:
            for chunk in stream:
                chunks.append(chunk)
        assert chunks, "the chunks before the unbind must flush"
        emitted = sum(chunk.values.size for chunk in chunks)
        assert info.value.emitted == emitted
        assert 0 < emitted < stream.n_samples
        # The chunk straddling the unbind interpolates its lost tail
        # (the sampler cannot know the outage is permanent); the first
        # fully-dead chunk terminates the stream with a typed error.
        straddling = chunks[-1].quality
        assert straddling is not None
        assert straddling.gaps > 0
        assert straddling.interpolated == straddling.gaps

    def test_stream_recovers_through_transient_faults(self):
        session = AttackSession.create(seed=3, faults=0.2)
        stream = session.sampler.stream(
            "fpga", "current", start=1.0, duration=0.4, chunk_duration=0.1
        )
        chunks = list(stream)
        assert sum(c.values.size for c in chunks) == stream.n_samples
        assert any(
            c.quality is not None and c.quality.retries > 0 for c in chunks
        )


class TestTraceQualityType:
    def test_validation(self):
        with pytest.raises(ValueError):
            TraceQuality(retries=-1)
        with pytest.raises(ValueError):
            TraceQuality(gaps=1, interpolated=2)
        with pytest.raises(ValueError):
            TraceQuality(health="zombie")

    def test_merge_and_roundtrip(self):
        a = TraceQuality(retries=2, gaps=1, interpolated=1, health=HEALTHY)
        b = TraceQuality(retries=3, gaps=2, interpolated=0, health=FLAKY)
        merged = a.merged(b)
        assert merged.retries == 5
        assert merged.gaps == 3
        assert merged.health == FLAKY
        assert TraceQuality.from_dict(merged.to_dict()) == merged
        assert TraceQuality().clean
        assert not merged.clean
