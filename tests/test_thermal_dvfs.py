"""Tests for the thermal model and the DVFS governor."""

import numpy as np
import pytest

from repro.soc.dvfs import (
    ZYNQMP_A53_OPPS,
    CpuClusterModel,
    OndemandGovernor,
    )
from repro.soc.thermal import ThermalModel
from repro.soc.workload import ConstantActivity, PiecewiseActivity


class TestThermalModel:
    def test_steady_state(self):
        model = ThermalModel(ambient=45.0, r_thermal=2.0)
        assert model.steady_state_temperature(5.0) == pytest.approx(55.0)

    def test_step_response_converges(self):
        model = ThermalModel(ambient=45.0, r_thermal=2.0, tau=30.0)
        late = model.step_response(np.array([300.0]), power=5.0)[0]
        assert late == pytest.approx(55.0, abs=0.01)

    def test_step_response_time_constant(self):
        model = ThermalModel(ambient=40.0, r_thermal=1.0, tau=10.0)
        at_tau = model.step_response(np.array([10.0]), power=10.0)[0]
        # One tau reaches ~63% of the rise.
        assert at_tau == pytest.approx(40.0 + 10.0 * 0.632, abs=0.05)

    def test_before_step_is_ambient(self):
        model = ThermalModel(ambient=45.0)
        early = model.step_response(np.array([-1.0]), power=5.0, t_start=0.0)
        assert early[0] == pytest.approx(45.0)

    def test_timeline_constant_matches_step(self):
        model = ThermalModel(ambient=45.0, r_thermal=2.0, tau=20.0)
        times = np.linspace(0.0, 100.0, 21)
        via_timeline = model.temperature_for_timeline(
            ConstantActivity(3.0), times, warmup=0.0
        )
        via_step = model.step_response(times, power=3.0)
        np.testing.assert_allclose(via_timeline, via_step, atol=0.2)

    def test_timeline_square_wave_oscillates(self):
        model = ThermalModel(ambient=45.0, r_thermal=2.0, tau=5.0)
        wave = PiecewiseActivity([0.0, 30.0, 60.0], [4.0, 0.0], period=60.0)
        times = np.array([29.0, 59.0, 89.0, 119.0])
        temps = model.temperature_for_timeline(wave, times)
        # Hot at the end of the on phase, cooler after the off phase.
        assert temps[0] > temps[1]
        assert temps[2] > temps[3]

    def test_leakage_multiplier(self):
        model = ThermalModel(ambient=45.0, leakage_tc=0.012)
        np.testing.assert_allclose(
            model.leakage_multiplier(np.array([45.0, 55.0])), [1.0, 1.12]
        )

    def test_unsorted_times_rejected(self):
        model = ThermalModel()
        with pytest.raises(ValueError):
            model.temperature_for_timeline(
                ConstantActivity(1.0), np.array([1.0, 0.5])
            )

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ThermalModel(tau=0.0)
        with pytest.raises(ValueError):
            ThermalModel(r_thermal=-1.0)


class TestGovernor:
    def test_boots_at_lowest_opp(self):
        governor = OndemandGovernor()
        assert governor.current.frequency_hz == pytest.approx(300e6)

    def test_high_load_jumps_to_max(self):
        governor = OndemandGovernor()
        opp = governor.step(0.95)
        assert opp.frequency_hz == pytest.approx(1200e6)

    def test_low_load_steps_down_gradually(self):
        governor = OndemandGovernor()
        governor.step(1.0)  # -> 1200 MHz
        first = governor.step(0.05)
        second = governor.step(0.05)
        assert first.frequency_hz == pytest.approx(600e6)
        assert second.frequency_hz == pytest.approx(300e6)

    def test_mid_load_holds(self):
        governor = OndemandGovernor()
        governor.step(1.0)
        held = governor.step(0.5)  # between thresholds
        assert held.frequency_hz == pytest.approx(1200e6)

    def test_reset(self):
        governor = OndemandGovernor()
        governor.step(1.0)
        governor.reset()
        assert governor.current.frequency_hz == pytest.approx(300e6)

    def test_trace(self):
        governor = OndemandGovernor()
        opps = governor.trace([0.9, 0.5, 0.1, 0.1])
        freqs = [opp.frequency_hz for opp in opps]
        assert freqs == [1200e6, 1200e6, 600e6, 300e6]

    def test_load_out_of_range(self):
        with pytest.raises(ValueError):
            OndemandGovernor().step(1.5)

    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            OndemandGovernor(up_threshold=0.2, down_threshold=0.5)

    def test_empty_opps_rejected(self):
        with pytest.raises(ValueError):
            OndemandGovernor(opps=[])


class TestCpuClusterModel:
    def test_idle_power_floor(self):
        cluster = CpuClusterModel()
        opp = ZYNQMP_A53_OPPS[0]
        assert cluster.power_at(0.0, opp) == pytest.approx(cluster.p_idle)

    def test_full_load_at_max_opp_near_1w(self):
        cluster = CpuClusterModel()
        opp = ZYNQMP_A53_OPPS[-1]
        power = cluster.power_at(1.0, opp)
        assert 0.9 < power < 1.5

    def test_power_scales_with_frequency(self):
        cluster = CpuClusterModel()
        slow = cluster.power_at(1.0, ZYNQMP_A53_OPPS[0])
        fast = cluster.power_at(1.0, ZYNQMP_A53_OPPS[-1])
        assert fast > 2 * slow

    def test_render_timeline(self):
        cluster = CpuClusterModel()
        timeline = cluster.render([0.0, 1.0, 1.0, 0.0], period=0.01)
        t = np.array([0.005, 0.015, 0.035])
        powers = timeline.power_at(t)
        assert powers[1] > powers[0]  # busy period draws more
        assert powers[2] < powers[1]  # idle again (but governor lags)

    def test_render_respects_governor_lag(self):
        cluster = CpuClusterModel()
        timeline = cluster.render([1.0, 0.2, 0.2, 0.2], period=0.01)
        # Right after the burst the governor is still at a high OPP,
        # so the 0.2-load periods step down in power over time.
        p1 = timeline.power_at(np.array([0.015]))[0]
        p3 = timeline.power_at(np.array([0.035]))[0]
        assert p3 <= p1

    def test_render_empty_rejected(self):
        with pytest.raises(ValueError):
            CpuClusterModel().render([])

    def test_attachable_to_soc_rail(self):
        from repro.soc import Soc

        soc = Soc("ZCU102", seed=0)
        cluster = CpuClusterModel()
        rng = np.random.default_rng(0)
        loads = np.clip(rng.random(200), 0, 1)
        soc.attach_workload(
            "fpd", "cpu-load", cluster.render(loads, period=0.01, start=1.0)
        )
        busy = soc.sample("fpd", "current", np.array([2.0]))[0]
        idle = soc.sample("fpd", "current", np.array([0.5]))[0]
        assert busy > idle
