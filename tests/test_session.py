"""The acquisition-session layer: one construction path, one seed policy."""

import pytest

from repro.core.sampler import HwmonSampler
from repro.session import (
    DEFAULT_BOARD,
    AttackSession,
    normalize_seed,
    resolve_session,
)
from repro.soc.soc import QUANTITY_ATTRS, Soc


class TestSeedPolicy:
    def test_none_normalizes_to_zero(self):
        assert normalize_seed(None) == 0

    def test_integers_pass_through(self):
        assert normalize_seed(7) == 7
        assert normalize_seed(0) == 0

    def test_session_applies_policy(self):
        assert AttackSession.create(seed=None).seed == 0
        assert AttackSession.create(seed=11).seed == 11

    def test_unseeded_sessions_are_identical(self):
        # None and 0 used to diverge between pipelines; now every
        # construction path records the same session.
        a = AttackSession.create(seed=None)
        b = AttackSession.create(seed=0)
        ta = a.sampler.collect("fpga", "current", n_samples=50)
        tb = b.sampler.collect("fpga", "current", n_samples=50)
        assert (ta.values == tb.values).all()
        assert (ta.times == tb.times).all()


class TestConstruction:
    def test_default_board(self):
        session = AttackSession.create()
        assert session.board.name == DEFAULT_BOARD

    def test_other_boards(self):
        session = AttackSession.create(board="ZCU111", seed=3)
        assert session.board.name == "ZCU111"
        assert session.sampler.soc is session.soc

    def test_rejects_non_soc(self):
        with pytest.raises(TypeError):
            AttackSession("ZCU102")

    def test_derive_is_stable(self):
        session = AttackSession.create(seed=5)
        assert session.derive("cv") == session.derive("cv")
        assert session.derive("cv") != session.derive("forest")


class TestChannelRegistry:
    def test_domains_match_sensitive_channels(self):
        session = AttackSession.create()
        assert session.domains() == [
            domain for domain, _ in session.soc.sensitive_channels()
        ]

    def test_channels_cross_product(self):
        session = AttackSession.create()
        channels = session.channels()
        assert len(channels) == len(session.domains()) * len(QUANTITY_ATTRS)
        assert ("fpga", "current") in channels

    def test_channels_filtered(self):
        session = AttackSession.create()
        only_current = session.channels(("current",))
        assert {quantity for _, quantity in only_current} == {"current"}

    def test_channels_rejects_unknown_quantity(self):
        with pytest.raises(ValueError, match="unknown quantity"):
            AttackSession.create().channels(("amperes",))


class TestResolveSession:
    def test_session_wins(self):
        session = AttackSession.create(seed=2)
        assert resolve_session(session) is session

    def test_session_conflicts_rejected(self):
        session = AttackSession.create(seed=2)
        other = Soc("ZCU102", seed=3)
        with pytest.raises(ValueError, match="session or soc"):
            resolve_session(session, soc=other)
        with pytest.raises(ValueError, match="session or sampler"):
            resolve_session(session, sampler=HwmonSampler(other, seed=3))

    def test_wraps_legacy_soc(self):
        soc = Soc("ZCU102", seed=4)
        session = resolve_session(None, soc=soc, seed=4)
        assert session.soc is soc
        assert session.seed == 4

    def test_wraps_legacy_sampler(self):
        soc = Soc("ZCU102", seed=4)
        sampler = HwmonSampler(soc, seed=4)
        session = resolve_session(None, sampler=sampler, seed=4)
        assert session.sampler is sampler
        assert session.soc is soc

    def test_board_shortcut(self):
        session = resolve_session(None, board="VCK190", seed=1)
        assert session.board.name == "VCK190"

    def test_default_fallback(self):
        session = resolve_session(None, seed=None)
        assert session.board.name == DEFAULT_BOARD
        assert session.seed == 0


class TestSharedSession:
    def test_pipelines_share_one_foothold(self):
        from repro.core.campaign import AttackCampaign
        from repro.core.fingerprint import DnnFingerprinter
        from repro.core.rsa_attack import RsaHammingWeightAttack

        session = AttackSession.create(seed=9)
        fingerprinter = DnnFingerprinter(session=session)
        attack = RsaHammingWeightAttack(session=session)
        campaign = AttackCampaign(session=session)
        assert fingerprinter.soc is session.soc
        assert attack.sampler is session.sampler
        assert campaign.soc is session.soc
        assert fingerprinter.seed == attack.seed == 9
