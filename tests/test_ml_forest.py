"""Tests for the random forest and metrics/validation helpers."""

import numpy as np
import pytest

from repro.ml import (
    RandomForestClassifier,
    accuracy,
    confusion_matrix,
    cross_validate,
    stratified_kfold_indices,
    top_k_accuracy,
)


def make_blobs(n_per_class=40, n_classes=4, d=8, spread=0.8, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(n_classes, d)) * 3
    X = np.vstack(
        [
            centers[c] + spread * rng.normal(size=(n_per_class, d))
            for c in range(n_classes)
        ]
    )
    y = np.repeat(np.arange(n_classes), n_per_class)
    return X, y


class TestForest:
    def test_fits_and_predicts(self):
        X, y = make_blobs()
        forest = RandomForestClassifier(n_estimators=20, seed=0).fit(X, y)
        assert np.mean(forest.predict(X) == y) > 0.95

    def test_generalizes(self):
        X, y = make_blobs(n_per_class=80, seed=1)
        train = np.arange(X.shape[0]) % 2 == 0
        forest = RandomForestClassifier(n_estimators=30, seed=0).fit(
            X[train], y[train]
        )
        assert np.mean(forest.predict(X[~train]) == y[~train]) > 0.9

    def test_proba_shape_and_sum(self):
        X, y = make_blobs()
        forest = RandomForestClassifier(n_estimators=10, seed=0).fit(X, y)
        proba = forest.predict_proba(X)
        assert proba.shape == (X.shape[0], 4)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_topk_contains_top1(self):
        X, y = make_blobs()
        forest = RandomForestClassifier(n_estimators=10, seed=0).fit(X, y)
        top1 = forest.predict(X)
        top3 = forest.predict_topk(X, 3)
        np.testing.assert_array_equal(top3[:, 0], top1)

    def test_topk_bounds(self):
        X, y = make_blobs()
        forest = RandomForestClassifier(n_estimators=5, seed=0).fit(X, y)
        with pytest.raises(ValueError):
            forest.predict_topk(X, 99)

    def test_seeded_determinism(self):
        X, y = make_blobs(spread=2.0, seed=3)
        a = RandomForestClassifier(n_estimators=15, seed=7).fit(X, y)
        b = RandomForestClassifier(n_estimators=15, seed=7).fit(X, y)
        np.testing.assert_array_equal(
            a.predict_proba(X), b.predict_proba(X)
        )

    def test_bootstrap_off_uses_full_data(self):
        X, y = make_blobs(seed=4)
        forest = RandomForestClassifier(
            n_estimators=3, bootstrap=False, max_features="all", seed=0
        ).fit(X, y)
        # Without bootstrap or feature subsampling all trees are
        # identical, so the forest equals a single tree.
        p = forest.predict_proba(X)
        q = forest.trees_[0].predict_proba(X)
        np.testing.assert_allclose(p, q)

    def test_forest_beats_single_tree_on_noisy_data(self):
        X, y = make_blobs(n_per_class=120, spread=2.5, seed=5)
        train = np.arange(X.shape[0]) % 2 == 0
        from repro.ml import DecisionTreeClassifier

        tree_score = np.mean(
            DecisionTreeClassifier(max_features="sqrt", seed=0)
            .fit(X[train], y[train])
            .predict(X[~train])
            == y[~train]
        )
        forest_score = np.mean(
            RandomForestClassifier(n_estimators=40, seed=0)
            .fit(X[train], y[train])
            .predict(X[~train])
            == y[~train]
        )
        assert forest_score >= tree_score

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestClassifier().predict(np.zeros((1, 3)))

    def test_feature_importances_sum_to_one(self):
        X, y = make_blobs(seed=7)
        forest = RandomForestClassifier(n_estimators=10, seed=0).fit(X, y)
        assert forest.feature_importances_.sum() == pytest.approx(1.0)

    def test_repr(self):
        assert "n_estimators=100" in repr(RandomForestClassifier())


class TestMetrics:
    def test_accuracy(self):
        assert accuracy(np.array([1, 2, 3]), np.array([1, 2, 0])) == (
            pytest.approx(2 / 3)
        )

    def test_accuracy_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))

    def test_accuracy_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.array([1]), np.array([1, 2]))

    def test_top_k_accuracy(self):
        y = np.array([0, 1, 2])
        topk = np.array([[0, 1], [2, 0], [1, 2]])
        assert top_k_accuracy(y, topk) == pytest.approx(2 / 3)
        assert top_k_accuracy(y, topk, k=1) == pytest.approx(1 / 3)

    def test_top_k_bad_k(self):
        with pytest.raises(ValueError):
            top_k_accuracy(np.array([0]), np.array([[0, 1]]), k=5)

    def test_confusion_matrix(self):
        matrix = confusion_matrix(
            np.array([0, 0, 1, 1]), np.array([0, 1, 1, 1])
        )
        np.testing.assert_array_equal(matrix, [[1, 1], [0, 2]])

    def test_confusion_matrix_with_labels(self):
        matrix = confusion_matrix(
            np.array(["a"]), np.array(["b"]), labels=np.array(["a", "b", "c"])
        )
        assert matrix.shape == (3, 3)
        assert matrix[0, 1] == 1


class TestCrossValidation:
    def test_stratified_folds_cover_everything(self):
        y = np.repeat(np.arange(5), 10)
        folds = stratified_kfold_indices(y, 10, seed=0)
        assert len(folds) == 10
        combined = np.sort(np.concatenate(folds))
        np.testing.assert_array_equal(combined, np.arange(50))

    def test_each_fold_stratified(self):
        y = np.repeat(np.arange(4), 20)
        folds = stratified_kfold_indices(y, 10, seed=0)
        for fold in folds:
            # 2 samples per class per fold.
            values, counts = np.unique(y[fold], return_counts=True)
            assert values.size == 4
            assert np.all(counts == 2)

    def test_cross_validate_scores(self):
        X, y = make_blobs(n_per_class=30, n_classes=6, spread=0.8, seed=8)
        result = cross_validate(
            X,
            y,
            n_folds=5,
            classifier_factory=lambda: RandomForestClassifier(
                n_estimators=15, seed=1
            ),
            seed=0,
        )
        assert result.top1 > 0.9
        assert result.top5 >= result.top1
        assert len(result.top1_per_fold) == 5

    def test_default_factory_is_paper_config(self):
        X, y = make_blobs(n_per_class=6, n_classes=3, spread=0.2, seed=9)
        result = cross_validate(X, y, n_folds=3, seed=0)
        assert 0.0 <= result.top1 <= 1.0

    def test_too_many_folds_rejected(self):
        y = np.arange(4)
        with pytest.raises(ValueError):
            stratified_kfold_indices(y, 10, seed=0)
