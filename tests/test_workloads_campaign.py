"""Tests for the workload library and the attack campaign."""

import numpy as np
import pytest

from repro.core.campaign import AttackCampaign
from repro.fpga.workloads import (
    WORKLOAD_CLASSES,
    generate_dataset,
    generate_workload,
)
from repro.soc import PiecewiseActivity, Soc


class TestWorkloadLibrary:
    def test_four_classes(self):
        assert set(WORKLOAD_CLASSES) == {
            "burst", "stream", "memory", "crypto"
        }

    @pytest.mark.parametrize("kind", WORKLOAD_CLASSES)
    def test_generate_each_class(self, kind):
        victim = generate_workload(kind, seed=1)
        assert victim.kind == kind
        t = np.linspace(0, 2, 50)
        assert np.all(victim.fpga.power_at(t) >= 0)
        assert np.all(victim.ddr.power_at(t) >= 0)

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError, match="unknown workload class"):
            generate_workload("quantum")

    def test_seeded_determinism(self):
        a = generate_workload("burst", seed=7)
        b = generate_workload("burst", seed=7)
        t = np.linspace(0, 1, 20)
        np.testing.assert_allclose(a.fpga.power_at(t), b.fpga.power_at(t))

    def test_memory_class_is_ddr_heavy(self):
        victim = generate_workload("memory", seed=3)
        window = (np.array([0.0]), np.array([2.0]))
        assert victim.ddr.window_mean(*window)[0] > (
            victim.fpga.window_mean(*window)[0]
        )

    def test_burst_class_is_fpga_heavy(self):
        victim = generate_workload("burst", seed=3)
        window = (np.array([0.0]), np.array([2.0]))
        assert victim.fpga.window_mean(*window)[0] > (
            victim.ddr.window_mean(*window)[0]
        )

    def test_dataset_balanced(self):
        victims = generate_dataset(instances_per_class=5, seed=2)
        assert len(victims) == 20
        kinds = [victim.kind for victim in victims]
        for kind in WORKLOAD_CLASSES:
            assert kinds.count(kind) == 5

    def test_dataset_instances_differ(self):
        victims = generate_dataset(instances_per_class=3, seed=2)
        bursts = [v for v in victims if v.kind == "burst"]
        t = np.linspace(0, 1, 30)
        assert not np.allclose(
            bursts[0].fpga.power_at(t), bursts[1].fpga.power_at(t)
        )

    def test_dataset_validation(self):
        with pytest.raises(ValueError):
            generate_dataset(0)

    def test_attach_detach(self):
        soc = Soc("ZCU102", seed=0)
        victim = generate_workload("stream", seed=1)
        victim.attach(soc)
        assert "victim" in soc.rail("fpga").workload_names
        assert "victim" in soc.rail("ddr").workload_names
        victim.detach(soc)
        assert "victim" not in soc.rail("fpga").workload_names


class TestCampaign:
    @pytest.fixture
    def soc(self):
        return Soc("ZCU102", seed=5)

    def test_recon_finds_all_sensitive_sensors(self, soc):
        campaign = AttackCampaign(soc, seed=5)
        report = campaign.recon()
        assert len(report.devices) == 18
        assert set(report.sensitive_paths) == {"fpga", "fpd", "lpd", "ddr"}
        assert report.found_fpga_sensor
        assert report.sensitive_paths["fpga"].endswith("curr1_input")

    def test_recon_paths_are_pollable(self, soc):
        campaign = AttackCampaign(soc, seed=5)
        report = campaign.recon()
        value = soc.hwmon.read(report.sensitive_paths["fpga"], time=1.0)
        assert int(value) > 0

    def test_stakeout_detects_late_victim(self, soc):
        campaign = AttackCampaign(soc, seed=5)
        onset_time = 6.0
        soc.attach_workload(
            "fpga",
            "victim",
            PiecewiseActivity([0.0, onset_time, 1e9], [0.0, 3.0]),
        )
        found, onset = campaign.wait_for_victim(timeout=20.0)
        assert found
        assert abs(onset - onset_time) < 2.5

    def test_stakeout_times_out_on_idle_board(self, soc):
        campaign = AttackCampaign(soc, seed=5)
        found, onset = campaign.wait_for_victim(timeout=6.0)
        assert not found
        assert np.isnan(onset)

    def test_full_chain(self, soc):
        campaign = AttackCampaign(soc, seed=5)
        soc.attach_workload(
            "fpga",
            "victim",
            PiecewiseActivity([0.0, 4.0, 1e9], [0.0, 2.5]),
        )
        trace = campaign.run(victim_start=4.0, trace_duration=3.0,
                             timeout=20.0)
        assert trace is not None
        assert trace.values.mean() > 2500  # the 2.5 W victim is in view

    def test_full_chain_fails_without_victim(self, soc):
        campaign = AttackCampaign(soc, seed=5)
        trace = campaign.run(victim_start=0.0, timeout=4.0)
        assert trace is None

    def test_record_victim_labels(self, soc):
        campaign = AttackCampaign(soc, seed=5)
        trace = campaign.record_victim(duration=1.0, label="suspect")
        assert trace.label == "suspect"

    def test_invalid_timeout(self, soc):
        campaign = AttackCampaign(soc, seed=5)
        with pytest.raises(ValueError):
            campaign.wait_for_victim(timeout=0.0)
