"""Tests for victim-activity onset detection."""

import numpy as np
import pytest

from repro.core.detector import Episode, OnsetDetector
from repro.core.sampler import HwmonSampler
from repro.core.traces import Trace
from repro.soc import PiecewiseActivity, Soc


def step_trace(idle=550, active=2500, n_idle=40, n_active=40, noise=2.0,
               seed=0):
    rng = np.random.default_rng(seed)
    values = np.concatenate(
        [
            idle + noise * rng.standard_normal(n_idle),
            active + noise * rng.standard_normal(n_active),
        ]
    )
    times = np.arange(values.size) * 0.0352
    return Trace(times=times, values=np.rint(values), domain="fpga",
                 quantity="current")


class TestScores:
    def test_idle_scores_small(self):
        detector = OnsetDetector(baseline_window=16)
        trace = step_trace()
        scores = detector.scores(np.asarray(trace.values))
        assert np.abs(scores[:16]).max() < 4.0

    def test_active_scores_large(self):
        detector = OnsetDetector(baseline_window=16)
        trace = step_trace()
        scores = detector.scores(np.asarray(trace.values))
        assert np.abs(scores[45:]).min() > 10.0

    def test_too_short_rejected(self):
        detector = OnsetDetector(baseline_window=16)
        with pytest.raises(ValueError):
            detector.scores(np.zeros(10))

    def test_zero_variance_baseline_uses_floor(self):
        detector = OnsetDetector(baseline_window=8, min_sigma=1.0)
        values = np.concatenate([np.full(8, 100.0), np.full(8, 200.0)])
        scores = detector.scores(values)
        assert np.isfinite(scores).all()
        assert scores[-1] == pytest.approx(100.0)


class TestEpisodes:
    def test_single_step_detected(self):
        detector = OnsetDetector(baseline_window=16)
        trace = step_trace()
        episodes = detector.episodes(np.asarray(trace.values))
        assert len(episodes) == 1
        assert 38 <= episodes[0].start <= 42
        assert episodes[0].end == 80

    def test_no_activity_no_episodes(self):
        detector = OnsetDetector(baseline_window=16)
        rng = np.random.default_rng(1)
        values = 550 + 2.0 * rng.standard_normal(80)
        assert detector.episodes(values) == []

    def test_short_gap_bridged(self):
        detector = OnsetDetector(baseline_window=8, min_gap=3)
        values = np.concatenate(
            [np.full(8, 100.0), np.full(10, 500.0), np.full(2, 100.0),
             np.full(10, 500.0)]
        )
        episodes = detector.episodes(values)
        assert len(episodes) == 1

    def test_long_gap_splits(self):
        detector = OnsetDetector(baseline_window=8, min_gap=2)
        values = np.concatenate(
            [np.full(8, 100.0), np.full(10, 500.0), np.full(8, 100.0),
             np.full(10, 500.0)]
        )
        episodes = detector.episodes(values)
        assert len(episodes) == 2

    def test_episode_length(self):
        assert Episode(5, 12).length == 7


class TestTraceApi:
    def test_detect_onset_time(self):
        detector = OnsetDetector(baseline_window=16)
        trace = step_trace()
        found, onset = detector.detect_onset(trace)
        assert found
        assert onset == pytest.approx(40 * 0.0352, abs=3 * 0.0352)

    def test_detect_onset_absent(self):
        detector = OnsetDetector(baseline_window=16)
        rng = np.random.default_rng(2)
        values = np.rint(550 + 2.0 * rng.standard_normal(60))
        trace = Trace(times=np.arange(60) * 0.0352, values=values,
                      domain="fpga", quantity="current")
        found, onset = detector.detect_onset(trace)
        assert not found
        assert np.isnan(onset)

    def test_trim_to_activity(self):
        detector = OnsetDetector(baseline_window=16)
        trace = step_trace()
        trimmed = detector.trim_to_activity(trace)
        assert trimmed.n_samples < trace.n_samples
        assert trimmed.values.mean() > 2000

    def test_trim_without_activity_raises(self):
        detector = OnsetDetector(baseline_window=16)
        rng = np.random.default_rng(3)
        values = np.rint(550 + 2.0 * rng.standard_normal(60))
        trace = Trace(times=np.arange(60) * 0.0352, values=values,
                      domain="fpga", quantity="current")
        with pytest.raises(ValueError, match="no victim activity"):
            detector.trim_to_activity(trace)

    def test_end_to_end_on_simulated_soc(self):
        soc = Soc("ZCU102", seed=4)
        sampler = HwmonSampler(soc, seed=4)
        onset_time = 2.0
        soc.attach_workload(
            "fpga",
            "victim",
            PiecewiseActivity([0.0, onset_time, 1e9], [0.0, 3.0]),
        )
        trace = sampler.collect("fpga", "current", start=0.05, duration=4.0)
        detector = OnsetDetector(baseline_window=16)
        found, detected = detector.detect_onset(trace)
        assert found
        assert abs(detected - onset_time) < 0.15
