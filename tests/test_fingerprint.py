"""Integration tests for DNN fingerprinting (reduced-size pipeline)."""

import numpy as np
import pytest

from repro.core.fingerprint import (
    TABLE3_CHANNELS,
    TABLE3_DURATIONS,
    DnnFingerprinter,
    FingerprintConfig,
)
from repro.dpu.models import build_model

SMALL_MODELS = ["mobilenet-v1-1.0", "resnet-50", "vgg-19", "squeezenet-1.1"]


@pytest.fixture(scope="module")
def fingerprinter():
    config = FingerprintConfig(
        duration=3.0, traces_per_model=6, n_folds=3, forest_trees=12
    )
    return DnnFingerprinter(config=config, seed=0)


@pytest.fixture(scope="module")
def datasets(fingerprinter):
    return fingerprinter.collect_datasets(
        models=SMALL_MODELS,
        channels=[("fpga", "current"), ("fpga", "voltage")],
    )


class TestCollection:
    def test_dataset_sizes(self, datasets):
        for dataset in datasets.values():
            assert len(dataset) == len(SMALL_MODELS) * 6

    def test_traces_labeled(self, datasets):
        labels = set(datasets[("fpga", "current")].labels)
        assert labels == set(SMALL_MODELS)

    def test_trace_durations(self, datasets):
        for trace in datasets[("fpga", "current")]:
            assert 2.5 <= trace.duration <= 3.1

    def test_same_model_traces_differ(self, datasets):
        current = datasets[("fpga", "current")]
        group = [t for t in current if t.label == "resnet-50"]
        assert not np.array_equal(group[0].values, group[1].values)

    def test_record_run_returns_all_channels(self, fingerprinter):
        run = fingerprinter.record_run(build_model("resnet-18"))
        assert set(run) == set(TABLE3_CHANNELS)

    def test_windows_do_not_overlap(self, fingerprinter):
        a = fingerprinter._next_window()
        b = fingerprinter._next_window()
        assert b > a + fingerprinter.config.duration


class TestEvaluation:
    def test_current_beats_voltage(self, fingerprinter, datasets):
        current = fingerprinter.evaluate_channel(
            datasets[("fpga", "current")]
        )
        voltage = fingerprinter.evaluate_channel(
            datasets[("fpga", "voltage")]
        )
        assert current.top1 > voltage.top1
        assert current.top1 > 0.8

    def test_longer_duration_not_worse(self, fingerprinter, datasets):
        dataset = datasets[("fpga", "current")]
        short = fingerprinter.evaluate_channel(dataset, duration=1.0)
        full = fingerprinter.evaluate_channel(dataset)
        assert full.top1 >= short.top1 - 0.15

    def test_top5_at_least_top1(self, fingerprinter, datasets):
        result = fingerprinter.evaluate_channel(
            datasets[("fpga", "current")]
        )
        assert result.top5 >= result.top1

    def test_evaluate_table3_grid(self, fingerprinter, datasets):
        results = fingerprinter.evaluate_table3(
            datasets, durations=(1.0, 3.0)
        )
        assert len(results) == len(datasets) * 2
        assert ("fpga", "current", 3.0) in results


class TestOnlinePhase:
    def test_train_and_classify(self, fingerprinter, datasets):
        classifier = fingerprinter.train(datasets[("fpga", "current")])
        victim = build_model("vgg-19")
        run = fingerprinter.record_run(
            victim, channels=[("fpga", "current")], run_index=99
        )
        predicted = fingerprinter.classify(
            classifier, run[("fpga", "current")]
        )
        assert predicted == "vgg-19"

    def test_classify_topk(self, fingerprinter, datasets):
        classifier = fingerprinter.train(datasets[("fpga", "current")])
        run = fingerprinter.record_run(
            build_model("resnet-50"), channels=[("fpga", "current")],
            run_index=98,
        )
        top2 = fingerprinter.classify_topk(
            classifier, run[("fpga", "current")], k=2
        )
        assert len(top2) == 2
        assert "resnet-50" in top2


class TestConfig:
    def test_paper_defaults(self):
        config = FingerprintConfig()
        assert config.duration == 5.0
        assert config.n_folds == 10
        assert config.forest_trees == 100
        assert config.forest_depth == 32

    def test_table3_constants(self):
        assert len(TABLE3_CHANNELS) == 6
        assert TABLE3_DURATIONS == (1.0, 2.0, 3.0, 4.0, 5.0)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            FingerprintConfig(duration=0.0)
        with pytest.raises(ValueError):
            FingerprintConfig(traces_per_model=1)
