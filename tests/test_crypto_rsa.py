"""Tests for RSA reference math and key construction."""

import pytest

from repro.crypto import (
    PAPER_HAMMING_WEIGHTS,
    exponent_bits_lsb_first,
    hamming_weight,
    make_exponent_with_weight,
    paper_key_set,
    random_modulus,
    square_and_multiply,
    square_and_multiply_trace,
)


class TestHammingWeight:
    def test_zero(self):
        assert hamming_weight(0) == 0

    def test_small_values(self):
        assert hamming_weight(0b1011) == 3

    def test_all_ones(self):
        assert hamming_weight((1 << 1024) - 1) == 1024

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            hamming_weight(-1)


class TestExponentBits:
    def test_lsb_first_order(self):
        assert exponent_bits_lsb_first(0b1101, width=4) == [1, 0, 1, 1]

    def test_padding_to_width(self):
        bits = exponent_bits_lsb_first(1, width=8)
        assert bits == [1, 0, 0, 0, 0, 0, 0, 0]

    def test_width_overflow_rejected(self):
        with pytest.raises(ValueError):
            exponent_bits_lsb_first(256, width=8)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            exponent_bits_lsb_first(-1, width=8)


class TestSquareAndMultiply:
    @pytest.mark.parametrize(
        "base,exp,mod",
        [
            (2, 10, 1000),
            (7, 1, 13),
            (5, 117, 391),
            (123456789, 65537, 999999937),
            (0, 5, 97),
        ],
    )
    def test_matches_pow(self, base, exp, mod):
        width = max(exp.bit_length(), 1)
        assert square_and_multiply(base, exp, mod, width) == pow(base, exp, mod)

    def test_1024_bit_operands(self):
        modulus = random_modulus(seed=5)
        exponent = make_exponent_with_weight(512, seed=5)
        base = 0xDEADBEEF
        assert square_and_multiply(base, exponent, modulus) == pow(
            base, exponent, modulus
        )

    def test_trace_schedule_is_exponent_bits(self):
        result, schedule = square_and_multiply_trace(3, 0b101, 1000, width=3)
        assert schedule == [1, 0, 1]
        assert result == pow(3, 5, 1000)

    def test_schedule_length_is_width_not_bitlength(self):
        _, schedule = square_and_multiply_trace(3, 1, 1000, width=16)
        assert len(schedule) == 16
        assert sum(schedule) == 1

    def test_invalid_modulus(self):
        with pytest.raises(ValueError):
            square_and_multiply(2, 3, 0)


class TestKeyConstruction:
    def test_paper_weights(self):
        assert PAPER_HAMMING_WEIGHTS[0] == 1
        assert PAPER_HAMMING_WEIGHTS[-1] == 1024
        assert len(PAPER_HAMMING_WEIGHTS) == 17
        diffs = [
            b - a
            for a, b in zip(PAPER_HAMMING_WEIGHTS[1:], PAPER_HAMMING_WEIGHTS[2:])
        ]
        assert all(d == 64 for d in diffs)

    @pytest.mark.parametrize("weight", [1, 64, 512, 1024])
    def test_exact_weight(self, weight):
        exponent = make_exponent_with_weight(weight, seed=1)
        assert hamming_weight(exponent) == weight

    def test_full_weight_is_all_ones(self):
        exponent = make_exponent_with_weight(1024, seed=1)
        assert exponent == (1 << 1024) - 1

    def test_seeded_determinism(self):
        a = make_exponent_with_weight(128, seed=4)
        b = make_exponent_with_weight(128, seed=4)
        assert a == b

    def test_weight_zero_rejected(self):
        with pytest.raises(ValueError):
            make_exponent_with_weight(0)

    def test_weight_above_width_rejected(self):
        with pytest.raises(ValueError):
            make_exponent_with_weight(1025)

    def test_paper_key_set(self):
        keys = paper_key_set(seed=2)
        assert [w for w, _ in keys] == list(PAPER_HAMMING_WEIGHTS)
        for weight, exponent in keys:
            assert hamming_weight(exponent) == weight

    def test_random_modulus_properties(self):
        modulus = random_modulus(seed=3)
        assert modulus % 2 == 1
        assert modulus.bit_length() == 1024

    def test_random_modulus_seeded(self):
        assert random_modulus(seed=9) == random_modulus(seed=9)
