"""Meta-tests: the shipped tree passes its own static checker.

These run the real ``python -m repro check`` entry point (and the
library API) against ``src/`` with the checked-in baseline, so any new
contract violation fails CI here first.  Marked ``check`` so the gate
can be run in isolation: ``pytest -m check``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.check import run_check

REPO = Path(__file__).resolve().parents[1]

pytestmark = pytest.mark.check


def _run_cli(*argv: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", "check", *argv],
        cwd=REPO,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


def test_shipped_tree_is_clean_via_api():
    result = run_check(root=REPO)
    assert result.ok, "\n".join(f.format() for f in result.findings)
    assert not result.stale_baseline, [
        entry.fingerprint for entry in result.stale_baseline
    ]
    assert result.files_scanned > 50


def test_shipped_tree_is_clean_via_cli():
    proc = _run_cli("--fail-on-findings")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert proc.stdout.strip().endswith("files")


def test_cli_json_report_on_shipped_tree():
    proc = _run_cli("--format", "json")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    document = json.loads(proc.stdout)
    assert document["ok"] is True
    assert document["summary"]["findings"] == 0
    assert document["summary"]["stale_baseline"] == 0


def test_cli_fails_on_bad_fixture():
    fixture = "tests/data/check_fixtures/rng002_bad.py"
    proc = _run_cli(fixture, "--no-baseline", "--fail-on-findings")
    assert proc.returncode == 1, proc.stdout + proc.stderr
    assert "RNG002" in proc.stdout


@pytest.mark.parametrize(
    "rule_id",
    [
        "RNG001", "RNG002", "RNG003", "TIME001", "CONC001",
        "CONC002", "CONC003", "API001", "API002", "API003",
        "FLOW001", "FLOW002", "FLOW003", "FLOW004", "FLOW005",
    ],
)
def test_cli_fails_on_every_bad_fixture(rule_id):
    subdir = "flow/" if rule_id.startswith("FLOW") else ""
    fixture = (
        f"tests/data/check_fixtures/{subdir}{rule_id.lower()}_bad.py"
    )
    proc = _run_cli(
        fixture, "--rules", rule_id, "--no-baseline", "--fail-on-findings"
    )
    assert proc.returncode == 1, proc.stdout + proc.stderr
    assert rule_id in proc.stdout


def test_shipped_tree_is_flow_clean():
    """The whole-program rules alone pass on the shipped tree."""
    result = run_check(
        root=REPO,
        rules=["FLOW001", "FLOW002", "FLOW003", "FLOW004", "FLOW005"],
    )
    assert result.ok, "\n".join(f.format() for f in result.findings)


def test_cli_sarif_report_on_shipped_tree():
    proc = _run_cli("--format", "sarif")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    document = json.loads(proc.stdout)
    assert document["version"] == "2.1.0"
    run = document["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-check"
    assert run["invocations"][0]["executionSuccessful"] is True


def test_cli_unknown_rule_is_usage_error():
    proc = _run_cli("--rules", "BOGUS123")
    assert proc.returncode == 2
    assert "unknown rule" in proc.stderr


def test_cli_list_rules():
    proc = _run_cli("--list-rules")
    assert proc.returncode == 0
    for rule_id in ("RNG001", "CONC002", "API003"):
        assert rule_id in proc.stdout
