"""Integration scenarios: several attacks sharing one platform.

These tests run multiple experiments back-to-back on a single SoC
instance, the way a long-lived attacker process would — verifying that
experiments clean up after themselves, that time windows stay
disjoint, and that one attack's victims never bleed into another's
measurements.
"""

import numpy as np

from repro.core.fingerprint import DnnFingerprinter, FingerprintConfig
from repro.core.rsa_attack import RsaHammingWeightAttack
from repro.core.covert_channel import CovertChannel
from repro.core.sampler import HwmonSampler
from repro.soc import Soc


class TestSequentialAttacks:
    def test_fingerprint_then_rsa_on_one_soc(self):
        soc = Soc("ZCU102", seed=7)
        config = FingerprintConfig(
            duration=2.0, traces_per_model=4, n_folds=2, forest_trees=8
        )
        fingerprinter = DnnFingerprinter(soc=soc, config=config, seed=7)
        datasets = fingerprinter.collect_datasets(
            models=["resnet-50", "vgg-19", "squeezenet-1.1"],
            channels=[("fpga", "current")],
        )
        fp_result = fingerprinter.evaluate_channel(
            datasets[("fpga", "current")]
        )
        assert fp_result.top1 > 0.5

        # The fingerprinting phase must leave the rails clean...
        assert soc.rail("fpga").workload_names == ()

        # ...so the RSA phase starts from a quiet platform.  Its clock
        # must not collide with the fingerprinting windows.
        attack = RsaHammingWeightAttack(soc=soc, seed=7)
        attack._clock = fingerprinter._clock + 1.0
        sweep = attack.sweep(weights=(1, 512, 1024), n_samples=1200)
        assert sweep.distinguishable_groups() == 3
        assert soc.rail("fpga").workload_names == ()

    def test_covert_channel_after_attacks(self):
        soc = Soc("ZCU102", seed=9)
        attack = RsaHammingWeightAttack(soc=soc, seed=9)
        attack.sweep(weights=(1, 1024), n_samples=800)

        channel = CovertChannel(soc=soc, seed=9)
        channel._clock = attack._clock + 1.0
        rng = np.random.default_rng(0)
        report = channel.transmit(
            rng.integers(0, 2, size=24), bit_period=0.2
        )
        assert report.bit_errors == 0

    def test_idle_readings_unchanged_after_campaign(self):
        soc = Soc("ZCU102", seed=11)
        sampler = HwmonSampler(soc, seed=11)
        before = sampler.collect(
            "fpga", "current", start=0.5, duration=1.0
        ).values.mean()

        attack = RsaHammingWeightAttack(soc=soc, seed=11)
        attack._clock = 10.0
        attack.sweep(weights=(1, 1024), n_samples=600)

        # Sampling the same pre-campaign window reproduces the same
        # readings (pure-function noise), and a fresh idle window after
        # the campaign returns to the same level.
        replay = sampler.collect(
            "fpga", "current", start=0.5, duration=1.0
        ).values.mean()
        assert replay == before
        after = sampler.collect(
            "fpga", "current", start=attack._clock + 5.0, duration=1.0
        ).values.mean()
        assert abs(after - before) < 20  # mA

    def test_two_socs_do_not_interfere(self):
        a = Soc("ZCU102", seed=1)
        b = Soc("ZCU102", seed=1)
        from repro.soc import ConstantActivity

        a.attach_workload("fpga", "x", ConstantActivity(3.0))
        t = np.array([1.0])
        assert a.sample("fpga", "current", t)[0] > (
            b.sample("fpga", "current", t)[0] + 3000
        )


class TestClockHygiene:
    def test_fingerprinter_windows_monotone(self):
        fingerprinter = DnnFingerprinter(
            config=FingerprintConfig(
                duration=1.0, traces_per_model=2, n_folds=2, forest_trees=4
            ),
            seed=2,
        )
        starts = [fingerprinter._next_window() for _ in range(10)]
        assert all(b > a for a, b in zip(starts, starts[1:]))
        gaps = np.diff(starts)
        assert np.all(gaps >= 1.0)  # at least the trace duration apart

    def test_rsa_clock_advances_past_each_session(self):
        attack = RsaHammingWeightAttack(seed=3)
        clock_before = attack._clock
        attack.profile_key(attack.make_circuit(64), n_samples=500)
        expected = 500 / attack.sampling_hz
        assert attack._clock >= clock_before + expected
