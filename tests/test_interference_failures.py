"""Tests for background interference and sensor failure injection."""

import numpy as np
import pytest

from repro.sensors.hwmon import HwmonLookupError
from repro.soc import Soc
from repro.soc.interference import (
    HEAVY_BACKGROUND,
    LIGHT_BACKGROUND,
    BackgroundLoad,
    BurstProfile,
    burst_timeline,
)


class TestBurstTimeline:
    def test_covers_duration(self):
        profile = BurstProfile(rate_hz=5.0, mean_duration=0.02,
                               mean_power=0.5)
        timeline = burst_timeline(profile, duration=2.0, seed=1)
        # Power defined and non-negative through the window.
        t = np.linspace(0, 2, 100)
        assert np.all(timeline.power_at(t) >= 0)

    def test_zero_rate_is_silent(self):
        profile = BurstProfile(rate_hz=0.0, mean_duration=0.02,
                               mean_power=0.5)
        timeline = burst_timeline(profile, duration=1.0, seed=1)
        np.testing.assert_allclose(
            timeline.power_at(np.linspace(0, 1, 20)), 0.0
        )

    def test_seeded_determinism(self):
        profile = LIGHT_BACKGROUND["fpd"]
        a = burst_timeline(profile, 2.0, seed=3)
        b = burst_timeline(profile, 2.0, seed=3)
        t = np.linspace(0, 2, 50)
        np.testing.assert_allclose(a.power_at(t), b.power_at(t))

    def test_heavier_profile_more_energy(self):
        window = (np.array([0.0]), np.array([10.0]))
        light = burst_timeline(
            LIGHT_BACKGROUND["ddr"], 10.0, seed=4
        ).energy_between(*window)[0]
        heavy = burst_timeline(
            HEAVY_BACKGROUND["ddr"], 10.0, seed=4
        ).energy_between(*window)[0]
        assert heavy > light

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            burst_timeline(LIGHT_BACKGROUND["fpd"], 0.0)


class TestBackgroundLoad:
    def test_attach_covers_rails(self):
        soc = Soc("ZCU102", seed=0)
        load = BackgroundLoad(seed=1)
        load.attach(soc, duration=5.0)
        for domain in ("fpd", "lpd", "ddr", "fpga"):
            assert "background" in soc.rail(domain).workload_names
        load.detach(soc)
        for domain in ("fpd", "lpd", "ddr", "fpga"):
            assert "background" not in soc.rail(domain).workload_names

    def test_background_raises_observed_variance(self):
        quiet = Soc("ZCU102", seed=2)
        busy = Soc("ZCU102", seed=2)
        BackgroundLoad(HEAVY_BACKGROUND, seed=1).attach(
            busy, duration=20.0
        )
        times = 0.5 + np.arange(400) * 0.0352
        quiet_std = quiet.sample("fpd", "current", times).std()
        busy_std = busy.sample("fpd", "current", times).std()
        assert busy_std > 2 * quiet_std


class TestFailureInjection:
    def test_stale_sensor_freezes_readings(self):
        soc = Soc("ZCU102", seed=3)
        device = soc.device("fpga")
        device.inject_failure("stale", at_time=5.0)
        times = 5.1 + np.arange(50) * 0.0352
        values = device.read_series("curr1_input", times)
        assert np.unique(values).size == 1

    def test_stale_sensor_normal_before_hang(self):
        soc = Soc("ZCU102", seed=3)
        device = soc.device("fpga")
        device.inject_failure("stale", at_time=50.0)
        times = 1.0 + np.arange(100) * 0.0352
        values = device.read_series("curr1_input", times)
        assert np.unique(values).size > 5

    def test_unbind_raises(self):
        soc = Soc("ZCU102", seed=3)
        device = soc.device("fpga")
        device.inject_failure("unbind", at_time=2.0)
        with pytest.raises(HwmonLookupError, match="unbound"):
            device.read_series("curr1_input", np.array([3.0]))

    def test_unbind_ok_before_removal(self):
        soc = Soc("ZCU102", seed=3)
        device = soc.device("fpga")
        device.inject_failure("unbind", at_time=10.0)
        values = device.read_series("curr1_input", np.array([1.0]))
        assert values[0] > 0

    def test_clear_failure(self):
        soc = Soc("ZCU102", seed=3)
        device = soc.device("fpga")
        device.inject_failure("unbind", at_time=0.0)
        device.clear_failure()
        assert device.read_series("curr1_input", np.array([1.0]))[0] > 0

    def test_unknown_mode_rejected(self):
        soc = Soc("ZCU102", seed=3)
        with pytest.raises(ValueError):
            soc.device("fpga").inject_failure("explode", at_time=0.0)

    def test_stale_sensor_hides_late_victim(self):
        # Failure downstream: a victim that deploys after the sensor
        # hangs never appears in the readings — the stakeout loop
        # watches a frozen idle conversion forever.
        from repro.core.detector import OnsetDetector
        from repro.core.sampler import HwmonSampler
        from repro.soc import PiecewiseActivity

        soc = Soc("ZCU102", seed=3)
        soc.device("fpga").inject_failure("stale", at_time=1.0)
        soc.attach_workload(
            "fpga", "victim",
            PiecewiseActivity([0.0, 5.0, 1e9], [0.0, 3.0]),
        )
        sampler = HwmonSampler(soc, seed=3)
        trace = sampler.collect("fpga", "current", start=0.05,
                                duration=10.0)
        found, _ = OnsetDetector(baseline_window=16).detect_onset(trace)
        assert not found


class TestCrossAttributeConsistency:
    def test_attributes_from_same_latch_are_coherent(self):
        # current (mA), voltage (mV) and power (uW) polled at the same
        # instant come from the same conversion: P ~= I*V within the
        # power register's 25 mW truncation.
        from repro.soc import ConstantActivity

        soc = Soc("ZCU102", seed=4)
        soc.attach_workload("fpga", "load", ConstantActivity(2.5))
        times = 1.0 + np.arange(100) * 0.0352
        current = soc.sample("fpga", "current", times).astype(float)
        voltage = soc.sample("fpga", "voltage", times).astype(float)
        power = soc.sample("fpga", "power", times).astype(float)
        predicted = current * voltage  # mA * mV = uW
        # Within one power LSB (25 mW = 25000 uW) plus rounding slack.
        assert np.all(np.abs(power - predicted) < 26_000)
