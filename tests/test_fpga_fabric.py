"""Tests for fabric placement and deployment."""

import pytest

from repro.fpga.fabric import CircuitSpec, Fabric, PlacementError


class TestCircuitSpec:
    def test_valid_spec(self):
        spec = CircuitSpec("x", {"lut": 10, "ff": 10}, {"lut": 0.5})
        assert spec.utilization["lut"] == 10

    def test_unknown_resource_rejected(self):
        with pytest.raises(ValueError, match="unknown resource"):
            CircuitSpec("x", {"gpu": 1})

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            CircuitSpec("x", {"lut": -1})

    def test_activity_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            CircuitSpec("x", {"lut": 1}, {"lut": 1.5})


class TestFabric:
    @pytest.fixture
    def fabric(self):
        return Fabric("ZCU102", rows=2, cols=2)

    def test_default_board(self):
        assert Fabric().board.name == "ZCU102"

    def test_capacity_close_to_device_totals(self, fabric):
        capacity = fabric.total_capacity
        assert capacity["lut"] == 4 * (274_080 // 4)
        assert capacity["dsp"] == 2_520

    def test_single_region_deploy(self, fabric):
        placement = fabric.deploy(
            CircuitSpec("a", {"lut": 100}), region=(0, 1)
        )
        assert placement.regions == ((0, 1),)
        assert fabric.total_used["lut"] == 100

    def test_distributed_deploy_spreads_evenly(self, fabric):
        placement = fabric.deploy(CircuitSpec("a", {"lut": 100}))
        assert len(placement.shards) == 4
        counts = [shard.utilization_dict()["lut"] for shard in placement.shards]
        assert sum(counts) == 100
        assert max(counts) - min(counts) <= 1

    def test_distributed_deploy_with_remainder(self, fabric):
        placement = fabric.deploy(CircuitSpec("a", {"lut": 7}))
        counts = [shard.utilization_dict()["lut"] for shard in placement.shards]
        assert sorted(counts) == [1, 2, 2, 2]

    def test_duplicate_name_rejected(self, fabric):
        fabric.deploy(CircuitSpec("a", {"lut": 1}))
        with pytest.raises(PlacementError, match="already deployed"):
            fabric.deploy(CircuitSpec("a", {"lut": 1}))

    def test_over_capacity_rejected(self, fabric):
        with pytest.raises(PlacementError, match="out of"):
            fabric.deploy(CircuitSpec("big", {"lut": 10_000_000}))

    def test_failed_deploy_rolls_back(self, fabric):
        fabric.deploy(CircuitSpec("a", {"dsp": 2_400}))
        with pytest.raises(PlacementError):
            fabric.deploy(CircuitSpec("b", {"dsp": 500}))
        # The failed deploy must not leave partial allocations behind.
        assert fabric.total_used["dsp"] == 2_400

    def test_undeploy_frees_resources(self, fabric):
        fabric.deploy(CircuitSpec("a", {"lut": 100, "ff": 50}))
        fabric.undeploy("a")
        assert fabric.total_used["lut"] == 0
        assert fabric.total_used["ff"] == 0

    def test_undeploy_single_region(self, fabric):
        fabric.deploy(CircuitSpec("a", {"lut": 100}), region=(1, 1))
        fabric.undeploy("a")
        assert fabric.total_used["lut"] == 0

    def test_undeploy_unknown_raises(self, fabric):
        with pytest.raises(PlacementError, match="not deployed"):
            fabric.undeploy("ghost")

    def test_utilization_fraction(self, fabric):
        capacity = fabric.total_capacity["lut"]
        fabric.deploy(CircuitSpec("a", {"lut": capacity // 2}))
        assert fabric.utilization_fraction("lut") == pytest.approx(0.5, abs=0.01)

    def test_region_out_of_grid_rejected(self, fabric):
        with pytest.raises(PlacementError, match="outside"):
            fabric.deploy(CircuitSpec("a", {"lut": 1}), region=(5, 5))

    def test_placement_lookup(self, fabric):
        fabric.deploy(CircuitSpec("a", {"lut": 1}))
        assert fabric.placement_of("a").circuit.name == "a"
        with pytest.raises(PlacementError):
            fabric.placement_of("b")

    def test_deployed_order(self, fabric):
        fabric.deploy(CircuitSpec("a", {"lut": 1}))
        fabric.deploy(CircuitSpec("b", {"lut": 1}))
        assert [p.circuit.name for p in fabric.deployed()] == ["a", "b"]

    def test_empty_circuit_rejected_distributed(self, fabric):
        with pytest.raises(PlacementError, match="no resources"):
            fabric.deploy(CircuitSpec("empty", {}))

    def test_bad_board_type(self):
        with pytest.raises(TypeError):
            Fabric(board=123)

    def test_bad_grid(self):
        with pytest.raises(ValueError):
            Fabric(rows=0, cols=3)

    def test_paper_workloads_fit_together(self):
        # The Fig 2 setup: 160 k virus cells + a distributed RO bank
        # must co-reside on the ZCU102 fabric.
        from repro.fpga.power_virus import PowerVirusArray
        from repro.fpga.ring_osc import RoSensorBank

        fabric = Fabric("ZCU102")
        fabric.deploy(PowerVirusArray().circuit_spec())
        fabric.deploy(RoSensorBank().circuit_spec())
        assert fabric.utilization_fraction("lut") < 1.0
