"""Unit tests for repro.utils.units."""

import math

import pytest

from repro.utils import units


class TestPrefixHelpers:
    def test_milli(self):
        assert units.milli(1250) == pytest.approx(1.25)

    def test_micro(self):
        assert units.micro(2.5) == pytest.approx(2.5e-6)

    def test_nano(self):
        assert units.nano(3) == pytest.approx(3e-9)

    def test_pico(self):
        assert units.pico(4) == pytest.approx(4e-12)

    def test_kilo(self):
        assert units.kilo(1.2) == pytest.approx(1200.0)

    def test_mega(self):
        assert units.mega(100) == pytest.approx(100e6)

    def test_giga(self):
        assert units.giga(1.2) == pytest.approx(1.2e9)

    def test_round_trip_milli(self):
        assert units.to_milli(units.milli(37.0)) == pytest.approx(37.0)

    def test_round_trip_micro(self):
        assert units.to_micro(units.micro(11.0)) == pytest.approx(11.0)


class TestHwmonQuantization:
    def test_amps_to_hwmon_rounds_to_nearest_ma(self):
        assert units.amps_to_hwmon(1.2344) == 1234
        assert units.amps_to_hwmon(1.2346) == 1235

    def test_amps_to_hwmon_returns_int(self):
        assert isinstance(units.amps_to_hwmon(0.5), int)

    def test_volts_to_hwmon(self):
        assert units.volts_to_hwmon(0.8505) in (850, 851)

    def test_watts_to_hwmon_microwatts(self):
        assert units.watts_to_hwmon(1.5) == 1_500_000

    def test_zero_values(self):
        assert units.amps_to_hwmon(0.0) == 0
        assert units.watts_to_hwmon(0.0) == 0


class TestClamp:
    def test_inside_range(self):
        assert units.clamp(0.85, 0.825, 0.876) == 0.85

    def test_below_range(self):
        assert units.clamp(0.8, 0.825, 0.876) == 0.825

    def test_above_range(self):
        assert units.clamp(0.9, 0.825, 0.876) == 0.876

    def test_empty_interval_raises(self):
        with pytest.raises(ValueError):
            units.clamp(1.0, 2.0, 1.0)


class TestDb:
    def test_known_value(self):
        assert units.db(100.0) == pytest.approx(20.0)

    def test_unity(self):
        assert units.db(1.0) == pytest.approx(0.0)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            units.db(-1.0)

    def test_zero_raises(self):
        with pytest.raises(ValueError):
            units.db(0.0)

    def test_fractional_ratio(self):
        assert units.db(0.1) == pytest.approx(-10.0)

    def test_matches_log10(self):
        assert units.db(261.0) == pytest.approx(10 * math.log10(261.0))
