"""Tests for the AES-128 victim circuit."""

import numpy as np
import pytest

from repro.fpga.aes import AesCircuit, aes128_encrypt_block, expand_key

FIPS_KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
FIPS_PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")
FIPS_CIPHERTEXT = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")


class TestAesCore:
    def test_fips197_appendix_c1(self):
        ciphertext, _ = aes128_encrypt_block(FIPS_PLAINTEXT, FIPS_KEY)
        assert ciphertext == FIPS_CIPHERTEXT

    def test_fips197_key_expansion_first_round(self):
        round_keys = expand_key(FIPS_KEY)
        assert len(round_keys) == 11
        assert bytes(round_keys[0]) == FIPS_KEY
        # FIPS-197 A.1 first expanded word for this key pattern.
        assert round_keys[1][:4] == [0xD6, 0xAA, 0x74, 0xFD]

    def test_all_zero_key_vector(self):
        # NIST known-answer: AES-128(0^128, 0^128).
        ciphertext, _ = aes128_encrypt_block(bytes(16), bytes(16))
        assert ciphertext.hex() == "66e94bd4ef8a2c3b884cfa59ca342b2e"

    def test_round_distances_reported(self):
        _, distances = aes128_encrypt_block(FIPS_PLAINTEXT, FIPS_KEY)
        assert len(distances) == 10
        assert all(0 < d <= 128 for d in distances)

    def test_wrong_key_length_rejected(self):
        with pytest.raises(ValueError):
            expand_key(b"short")
        with pytest.raises(ValueError):
            aes128_encrypt_block(FIPS_PLAINTEXT, b"short")

    def test_wrong_block_length_rejected(self):
        with pytest.raises(ValueError):
            aes128_encrypt_block(b"short", FIPS_KEY)

    def test_deterministic(self):
        a, _ = aes128_encrypt_block(FIPS_PLAINTEXT, FIPS_KEY)
        b, _ = aes128_encrypt_block(FIPS_PLAINTEXT, FIPS_KEY)
        assert a == b

    def test_plaintext_sensitivity(self):
        flipped = bytes([FIPS_PLAINTEXT[0] ^ 1]) + FIPS_PLAINTEXT[1:]
        a, _ = aes128_encrypt_block(FIPS_PLAINTEXT, FIPS_KEY)
        b, _ = aes128_encrypt_block(flipped, FIPS_KEY)
        assert a != b


class TestAesCircuit:
    def test_encrypt_matches_core(self):
        circuit = AesCircuit(FIPS_KEY)
        assert circuit.encrypt(FIPS_PLAINTEXT) == FIPS_CIPHERTEXT

    def test_mean_switching_bits_plausible(self):
        circuit = AesCircuit(FIPS_KEY)
        bits = circuit.mean_switching_bits(n_blocks=64, seed=1)
        # 10 rounds x ~64 expected bit flips.
        assert 500 < bits < 800

    def test_mean_power_dominated_by_engine(self):
        circuit = AesCircuit(FIPS_KEY)
        power = circuit.mean_power(seed=1)
        key_term = power - circuit.p_idle - circuit.p_engine
        assert key_term < 0.01  # the key-dependent part is milliwatts

    def test_key_dependent_power_spread_is_tiny(self):
        # The negative-result premise: two keys' mean powers differ by
        # far less than one 1 mA current LSB (0.85 mW).
        a = AesCircuit(bytes(16)).mean_power(seed=1)
        b = AesCircuit(bytes([0xFF] * 16)).mean_power(seed=1)
        assert abs(a - b) < 0.85e-3

    def test_timeline_constant(self):
        circuit = AesCircuit(FIPS_KEY)
        timeline = circuit.timeline(seed=1)
        t = np.linspace(0, 1, 7)
        assert np.ptp(timeline.power_at(t)) == 0.0

    def test_circuit_spec(self):
        spec = AesCircuit(FIPS_KEY).circuit_spec()
        assert spec.utilization["lut"] > 1000

    def test_invalid_key(self):
        with pytest.raises(ValueError):
            AesCircuit(b"short")

    def test_repr(self):
        assert "MHz" in repr(AesCircuit(FIPS_KEY))
