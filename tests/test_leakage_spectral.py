"""Tests for leakage assessment (TVLA/SNR) and spectral analysis."""

import numpy as np
import pytest

from repro.analysis.leakage import (
    TVLA_THRESHOLD,
    pairwise_tvla,
    snr,
    welch_t_test,
)
from repro.analysis.spectral import (
    amplitude_spectrum,
    dominant_frequency,
    estimate_serving_rate,
)
from repro.core.traces import Trace


class TestWelchTTest:
    def test_identical_distributions_small_t(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=2000)
        b = rng.normal(size=2000)
        result = welch_t_test(a, b)
        assert abs(result.statistic) < TVLA_THRESHOLD
        assert not result.leaks

    def test_separated_means_leak(self):
        rng = np.random.default_rng(1)
        a = rng.normal(loc=0.0, size=500)
        b = rng.normal(loc=1.0, size=500)
        result = welch_t_test(a, b)
        assert result.leaks
        assert result.statistic < 0  # a.mean < b.mean

    def test_unequal_variances_handled(self):
        rng = np.random.default_rng(2)
        a = rng.normal(scale=0.1, size=100)
        b = rng.normal(scale=10.0, size=100)
        result = welch_t_test(a, b)
        assert np.isfinite(result.statistic)
        assert result.degrees_of_freedom < 198

    def test_identical_constants(self):
        result = welch_t_test(np.full(10, 5.0), np.full(10, 5.0))
        assert result.statistic == 0.0

    def test_distinct_constants_leak_totally(self):
        result = welch_t_test(np.full(10, 5.0), np.full(10, 6.0))
        assert result.statistic == np.inf

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            welch_t_test([1.0], [1.0, 2.0])


class TestSnr:
    def test_strong_signal(self):
        rng = np.random.default_rng(3)
        groups = [rng.normal(loc=mu, scale=0.1, size=200)
                  for mu in (0.0, 1.0, 2.0)]
        assert snr(groups) > 10

    def test_pure_noise(self):
        rng = np.random.default_rng(4)
        groups = [rng.normal(size=500) for _ in range(4)]
        assert snr(groups) < 0.1

    def test_constant_groups(self):
        assert snr([np.full(5, 1.0), np.full(5, 2.0)]) == np.inf

    def test_needs_two_classes(self):
        with pytest.raises(ValueError):
            snr([np.zeros(10)])


class TestPairwiseTvla:
    def test_shape(self):
        rng = np.random.default_rng(5)
        groups = [rng.normal(loc=mu, size=100) for mu in range(5)]
        statistics = pairwise_tvla(groups)
        assert statistics.shape == (4,)
        assert np.all(statistics > 0)

    def test_rsa_keys_leak_pairwise(self):
        # The Fig 4 experiment through the TVLA lens: every adjacent
        # key pair exceeds the 4.5 threshold on the current channel.
        from repro.core.rsa_attack import RsaHammingWeightAttack

        attack = RsaHammingWeightAttack(seed=0)
        sweep = attack.sweep(weights=(1, 128, 256, 384), n_samples=2500)
        groups = [profile.values for profile in sweep.profiles]
        statistics = pairwise_tvla(groups)
        assert np.all(statistics > TVLA_THRESHOLD)


class TestSpectral:
    def test_amplitude_spectrum_finds_sine(self):
        t = np.arange(1024) / 256.0  # 256 Hz sampling
        signal = 3.0 * np.sin(2 * np.pi * 10.0 * t) + 100.0
        frequencies, magnitudes = amplitude_spectrum(signal, 256.0)
        peak = frequencies[np.argmax(magnitudes)]
        assert peak == pytest.approx(10.0, abs=0.3)

    def test_dominant_frequency_prominence(self):
        t = np.arange(2048) / 256.0
        rng = np.random.default_rng(6)
        signal = np.sin(2 * np.pi * 5.0 * t) + 0.1 * rng.standard_normal(
            t.size
        )
        peak = dominant_frequency(signal, 256.0)
        assert peak.frequency_hz == pytest.approx(5.0, abs=0.2)
        assert peak.prominence > 10

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            amplitude_spectrum(np.array([1.0, 2.0]), 10.0)

    def test_estimate_serving_rate_on_synthetic_trace(self):
        # A 4 Hz serving loop sampled at the 28.4 Hz hwmon cadence.
        update = 0.0352
        times = np.arange(512) * update
        values = np.rint(
            1000 + 80 * (np.sin(2 * np.pi * 4.0 * times) > 0)
        )
        trace = Trace(times=times, values=values, domain="fpga",
                      quantity="current")
        peak = estimate_serving_rate(trace)
        assert peak.frequency_hz == pytest.approx(4.0, abs=0.3)

    def test_estimate_serving_rate_on_dpu_victim(self):
        # VGG-19 serves at ~13 fps — slow enough for the 35 ms sensor
        # to resolve its fundamental directly.
        from repro.core.sampler import HwmonSampler
        from repro.dpu.models import build_model
        from repro.dpu.runner import DpuRunner
        from repro.soc import Soc

        soc = Soc("ZCU102", seed=8)
        runner = DpuRunner(cycle_jitter=0.0, stall_probability=0.0)
        model = build_model("vgg-19")
        runner.deploy(soc, model, start=1.0)
        sampler = HwmonSampler(soc, poll_jitter=0.0, seed=8)
        trace = sampler.collect("fpga", "current", start=1.0, duration=20.0)
        peak = estimate_serving_rate(trace)
        expected = 1.0 / runner.cycle_period(model)
        assert peak.frequency_hz == pytest.approx(expected, rel=0.15)

    def test_rate_cap(self):
        t = np.arange(256) * 0.01
        values = np.sin(2 * np.pi * 30.0 * t) + np.sin(2 * np.pi * 3.0 * t)
        trace = Trace(times=t, values=values, domain="fpga",
                      quantity="current")
        peak = estimate_serving_rate(trace, max_rate_hz=10.0)
        assert peak.frequency_hz <= 10.0

    def test_min_samples(self):
        trace = Trace(times=np.arange(4) * 0.1, values=np.arange(4),
                      domain="fpga", quantity="current")
        with pytest.raises(ValueError):
            estimate_serving_rate(trace)
