"""Tests for the assembled SoC simulator."""

import numpy as np
import pytest

from repro.soc import ConstantActivity, Soc
from repro.soc.soc import RailNoiseProfile


@pytest.fixture
def soc():
    return Soc("ZCU102", seed=1)


class TestConstruction:
    def test_default_board(self, soc):
        assert soc.board.name == "ZCU102"

    def test_eighteen_hwmon_devices(self, soc):
        assert len(soc.hwmon.devices()) == 18

    def test_device_names_match_designators(self, soc):
        names = {device.name for device in soc.hwmon.devices()}
        assert "ina226_u79" in names
        assert "ina226_u76" in names

    def test_sensitive_channels(self, soc):
        channels = dict(soc.sensitive_channels())
        assert channels == {
            "fpd": "u76", "lpd": "u77", "fpga": "u79", "ddr": "u93"
        }

    def test_rail_lookup_by_domain_and_designator(self, soc):
        assert soc.rail("fpga") is soc.rail("u79")

    def test_unknown_rail_raises(self, soc):
        with pytest.raises(KeyError, match="available"):
            soc.rail("gpu")

    def test_unknown_device_raises(self, soc):
        with pytest.raises(KeyError):
            soc.device("u999")

    def test_fabric_matches_board(self, soc):
        assert soc.fabric.board.name == "ZCU102"

    def test_other_board(self):
        soc = Soc("VCK190", seed=0)
        assert len(soc.hwmon.devices()) == 17
        low, high = soc.rail("fpga").regulator.band
        assert (low, high) == (0.775, 0.825)

    def test_noise_profile_override(self):
        soc = Soc(
            "ZCU102",
            noise_profiles={
                "fpga": RailNoiseProfile(power_sigma=0.0, ripple_sigma=0.0)
            },
        )
        assert soc.rail("fpga").noise_power_sigma == 0.0

    def test_repr(self, soc):
        assert "ZCU102" in repr(soc)


class TestWorkloads:
    def test_attach_detach(self, soc):
        soc.attach_workload("fpga", "virus", ConstantActivity(1.0))
        assert "virus" in soc.rail("fpga").workload_names
        soc.detach_workload("fpga", "virus")
        assert "virus" not in soc.rail("fpga").workload_names

    def test_replace(self, soc):
        soc.attach_workload("fpga", "virus", ConstantActivity(1.0))
        soc.replace_workload("fpga", "virus", ConstantActivity(2.0))
        assert len(soc.rail("fpga").workload_names) == 1

    def test_clear_workloads(self, soc):
        soc.attach_workload("fpga", "a", ConstantActivity(1.0))
        soc.attach_workload("ddr", "b", ConstantActivity(1.0))
        soc.clear_workloads()
        assert soc.rail("fpga").workload_names == ()
        assert soc.rail("ddr").workload_names == ()


class TestSampling:
    def test_sample_current_units(self, soc):
        # Idle FPGA rail: ~0.55 A -> ~550 mA readings.
        values = soc.sample("fpga", "current", np.array([1.0]))
        assert 400 <= values[0] <= 700

    def test_sample_voltage_in_band(self, soc):
        values = soc.sample("fpga", "voltage", np.linspace(0, 1, 5))
        assert np.all(values >= 825)
        assert np.all(values <= 876)

    def test_sample_power_consistent_with_current(self, soc):
        t = np.array([2.0])
        current_ma = soc.sample("fpga", "current", t)[0]
        power_uw = soc.sample("fpga", "power", t)[0]
        # P ~= I * 0.85 V, within power-LSB truncation (25 mW).
        expected = current_ma * 0.85 * 1e3  # uW
        assert abs(power_uw - expected) < 30_000

    def test_workload_visible_in_current(self, soc):
        idle = soc.sample("fpga", "current", np.array([1.0]))[0]
        soc.attach_workload("fpga", "virus", ConstantActivity(3.0))
        loaded = soc.sample("fpga", "current", np.array([1.0]))[0]
        assert loaded > idle + 3000  # 3 W / 0.85 V ~= 3.5 A

    def test_workload_isolated_to_its_rail(self, soc):
        before = soc.sample("ddr", "current", np.array([1.0]))[0]
        soc.attach_workload("fpga", "virus", ConstantActivity(3.0))
        after = soc.sample("ddr", "current", np.array([1.0]))[0]
        assert before == after

    def test_invalid_quantity_rejected(self, soc):
        with pytest.raises(ValueError):
            soc.sample("fpga", "temperature", np.array([0.0]))

    def test_sysfs_path(self, soc):
        path = soc.sysfs_path("fpga", "current")
        assert path.startswith("/sys/class/hwmon/hwmon")
        assert path.endswith("/curr1_input")

    def test_sysfs_path_resolves_through_tree(self, soc):
        path = soc.sysfs_path("fpga", "current")
        value = soc.hwmon.read(path, time=1.0)
        assert int(value) > 0

    def test_seeded_reproducibility(self):
        a = Soc("ZCU102", seed=7)
        b = Soc("ZCU102", seed=7)
        t = np.linspace(0, 2, 50)
        np.testing.assert_array_equal(
            a.sample("fpga", "current", t), b.sample("fpga", "current", t)
        )

    def test_different_seeds_differ(self):
        a = Soc("ZCU102", seed=1)
        b = Soc("ZCU102", seed=2)
        t = np.linspace(0, 2, 50)
        assert not np.array_equal(
            a.sample("fpga", "current", t), b.sample("fpga", "current", t)
        )

    def test_ddr_rail_voltage_is_1v2(self, soc):
        values = soc.sample("ddr", "voltage", np.array([1.0]))
        assert 1140 <= values[0] <= 1260
