"""Tests for the current-based covert channel."""

import numpy as np
import pytest

from repro.core.covert_channel import (
    PREAMBLE,
    ChannelReport,
    CovertChannel,
    PowerCovertSender,
)


class TestSender:
    def test_modulate_produces_frame(self):
        sender = PowerCovertSender(p_high=1.0, p_low=0.0)
        timeline = sender.modulate([1, 0, 1], bit_period=0.1)
        # Preamble (8) + payload (3) segments.
        assert timeline.powers.size == len(PREAMBLE) + 3

    def test_bit_levels(self):
        sender = PowerCovertSender(p_high=2.0, p_low=0.5)
        timeline = sender.modulate([1, 0], bit_period=0.1, start=0.0)
        t_payload_one = (len(PREAMBLE) + 0.5) * 0.1
        t_payload_zero = (len(PREAMBLE) + 1.5) * 0.1
        assert timeline.power_at(np.array([t_payload_one]))[0] == 2.0
        assert timeline.power_at(np.array([t_payload_zero]))[0] == 0.5

    def test_invalid_levels(self):
        with pytest.raises(ValueError):
            PowerCovertSender(p_high=0.5, p_low=0.5)
        with pytest.raises(ValueError):
            PowerCovertSender(p_high=1.0, p_low=-0.1)

    def test_invalid_bit_period(self):
        with pytest.raises(ValueError):
            PowerCovertSender().modulate([1], bit_period=0.0)


class TestChannelReport:
    def test_error_accounting(self):
        report = ChannelReport(
            sent=(1, 0, 1, 1), received=(1, 1, 1, 0), bit_period=0.1
        )
        assert report.bit_errors == 2
        assert report.bit_error_rate == pytest.approx(0.5)
        assert report.raw_throughput_bps == pytest.approx(10.0)
        assert report.effective_throughput_bps == pytest.approx(5.0)

    def test_empty_payload(self):
        report = ChannelReport(sent=(), received=(), bit_period=0.1)
        assert report.bit_error_rate == 0.0


class TestEndToEnd:
    def test_slow_rate_is_error_free(self):
        channel = CovertChannel(seed=0)
        rng = np.random.default_rng(1)
        bits = rng.integers(0, 2, size=48)
        report = channel.transmit(bits, bit_period=0.2)
        assert report.bit_errors == 0
        np.testing.assert_array_equal(report.received, report.sent)

    def test_rate_near_update_interval_degrades(self):
        channel = CovertChannel(seed=0)
        rng = np.random.default_rng(2)
        bits = rng.integers(0, 2, size=48)
        fast = channel.transmit(bits, bit_period=0.04)
        slow = channel.transmit(bits, bit_period=0.2)
        assert fast.bit_error_rate >= slow.bit_error_rate

    def test_channel_cleans_up_rail(self):
        channel = CovertChannel(seed=0)
        channel.transmit([1, 0, 1], bit_period=0.1)
        assert "covert-sender" not in (
            channel.soc.rail("fpga").workload_names
        )

    def test_capacity_sweep_shapes(self):
        channel = CovertChannel(seed=0)
        reports = channel.capacity_sweep(
            bit_periods=[0.3, 0.1], n_bits=16, seed=3
        )
        assert len(reports) == 2
        assert reports[0].raw_throughput_bps < reports[1].raw_throughput_bps

    def test_deterministic_with_seed(self):
        a = CovertChannel(seed=5).transmit([1, 0, 1, 1], bit_period=0.15)
        b = CovertChannel(seed=5).transmit([1, 0, 1, 1], bit_period=0.15)
        assert a.received == b.received

    def test_weak_sender_fails(self):
        # A 15 mW load cannot clear the rail's ambient noise reliably
        # at high signaling rates — BER should be clearly nonzero.
        channel = CovertChannel(
            seed=0, sender=PowerCovertSender(p_high=0.015, p_low=0.0)
        )
        rng = np.random.default_rng(4)
        bits = rng.integers(0, 2, size=64)
        report = channel.transmit(bits, bit_period=0.05)
        assert report.bit_error_rate > 0.05
