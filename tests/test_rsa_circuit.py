"""Tests for the RSA-1024 victim circuit model."""

import numpy as np
import pytest

from repro.crypto import make_exponent_with_weight, random_modulus
from repro.fpga.rsa import RsaCircuit


@pytest.fixture(scope="module")
def modulus():
    return random_modulus(seed=11)


class TestDatapath:
    def test_encrypt_matches_pow(self, modulus):
        exponent = make_exponent_with_weight(192, seed=11)
        circuit = RsaCircuit(exponent, modulus)
        plaintext = 0x1234567890ABCDEF
        assert circuit.encrypt(plaintext) == pow(plaintext, exponent, modulus)

    def test_small_width_circuit(self):
        circuit = RsaCircuit(0b1011, 1000, width=8)
        assert circuit.encrypt(7) == pow(7, 11, 1000)

    def test_plaintext_range_enforced(self, modulus):
        circuit = RsaCircuit(3, modulus)
        with pytest.raises(ValueError):
            circuit.encrypt(modulus)

    def test_zero_exponent_rejected(self, modulus):
        with pytest.raises(ValueError, match="zero exponent"):
            RsaCircuit(0, modulus)

    def test_oversized_exponent_rejected(self):
        with pytest.raises(ValueError):
            RsaCircuit(1 << 16, 97, width=16)


class TestTiming:
    def test_iteration_time(self, modulus):
        circuit = RsaCircuit(3, modulus, clock_hz=100e6, cycles_per_iteration=1056)
        assert circuit.iteration_seconds == pytest.approx(1056 / 100e6)

    def test_exponentiation_time_data_independent(self, modulus):
        light = RsaCircuit(make_exponent_with_weight(1, seed=1), modulus)
        heavy = RsaCircuit(make_exponent_with_weight(1024, seed=1), modulus)
        # Constant-latency iterations: timing leaks nothing, only power.
        assert light.exponentiation_seconds == heavy.exponentiation_seconds

    def test_paper_clock(self, modulus):
        circuit = RsaCircuit(3, modulus)
        assert circuit.clock_hz == pytest.approx(100e6)


class TestPowerModel:
    def test_hamming_weight_property(self, modulus):
        exponent = make_exponent_with_weight(320, seed=2)
        assert RsaCircuit(exponent, modulus).hamming_weight == 320

    def test_mean_power_linear_in_weight(self, modulus):
        weights = [1, 256, 512, 1024]
        powers = [
            RsaCircuit(
                make_exponent_with_weight(w, seed=3), modulus
            ).mean_power
            for w in weights
        ]
        steps = np.diff(powers) / np.diff(weights)
        np.testing.assert_allclose(steps, steps[0], rtol=1e-9)

    def test_mean_power_magnitude(self, modulus):
        # HW=1024 key: idle + square + full multiply ~= 0.23 W.
        circuit = RsaCircuit(make_exponent_with_weight(1024, seed=1), modulus)
        assert circuit.mean_power == pytest.approx(0.020 + 0.110 + 0.100)

    def test_timeline_mean_matches_mean_power(self, modulus):
        circuit = RsaCircuit(make_exponent_with_weight(640, seed=5), modulus)
        timeline = circuit.timeline()
        # Average over exactly one period.
        period = circuit.exponentiation_seconds
        mean = timeline.window_mean(np.array([0.0]), np.array([period]))[0]
        assert mean == pytest.approx(circuit.mean_power, rel=1e-9)

    def test_timeline_levels_are_two_valued(self, modulus):
        circuit = RsaCircuit(make_exponent_with_weight(512, seed=6), modulus)
        t = (np.arange(1024) + 0.5) * circuit.iteration_seconds
        powers = np.unique(np.round(circuit.timeline().power_at(t), 9))
        assert powers.size == 2  # square-only vs square+multiply

    def test_timeline_periodicity(self, modulus):
        circuit = RsaCircuit(make_exponent_with_weight(100, seed=7), modulus)
        timeline = circuit.timeline()
        period = circuit.exponentiation_seconds
        t = np.linspace(0, period * 0.999, 64)
        np.testing.assert_allclose(
            timeline.power_at(t), timeline.power_at(t + 3 * period)
        )

    def test_multiply_schedule_matches_bits(self, modulus):
        circuit = RsaCircuit(0b1101, modulus, width=8)
        assert circuit.multiply_schedule() == (1, 0, 1, 1, 0, 0, 0, 0)

    def test_circuit_spec_has_two_multipliers(self, modulus):
        spec = RsaCircuit(3, modulus).circuit_spec()
        assert spec.utilization["dsp"] == 64
        assert spec.utilization["lut"] > 30_000

    def test_repr(self, modulus):
        circuit = RsaCircuit(make_exponent_with_weight(64, seed=1), modulus)
        assert "HW=64" in repr(circuit)
