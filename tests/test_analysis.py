"""Tests for analysis statistics and distribution helpers."""

import numpy as np
import pytest

from repro.analysis import (
    count_groups,
    linear_fit,
    lsb_per_step,
    overlap_fraction,
    pairwise_separable,
    pearson,
    relative_variation,
    summarize,
    variation_ratio,
)


class TestPearson:
    def test_perfect_positive(self):
        assert pearson([0, 1, 2, 3], [1, 3, 5, 7]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([0, 1, 2, 3], [7, 5, 3, 1]) == pytest.approx(-1.0)

    def test_constant_series_is_zero(self):
        assert pearson([0, 1, 2], [5, 5, 5]) == 0.0

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            pearson([1, 2], [1, 2, 3])

    def test_too_short(self):
        with pytest.raises(ValueError):
            pearson([1], [1])


class TestLinearFit:
    def test_exact_line(self):
        fit = linear_fit([0, 1, 2], [1.0, 3.0, 5.0])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r == pytest.approx(1.0)

    def test_predict(self):
        fit = linear_fit([0, 1], [0.0, 2.0])
        np.testing.assert_allclose(fit.predict([2.0]), [4.0])

    def test_noisy_r_below_one(self):
        rng = np.random.default_rng(0)
        x = np.arange(50.0)
        y = 2 * x + rng.normal(scale=5.0, size=50)
        fit = linear_fit(x, y)
        assert 0.9 < fit.r < 1.0


class TestLsbPerStep:
    def test_forty_lsb_per_step(self):
        means = 1000.0 + 40.0 * np.arange(161)
        assert lsb_per_step(means, 1.0) == pytest.approx(40.0)

    def test_power_lsb_scaling(self):
        means = 1e6 + 34_000.0 * np.arange(10)  # uW readings
        assert lsb_per_step(means, 25_000.0) == pytest.approx(1.36)

    def test_negative_slope_absolute(self):
        means = 100.0 - 2.0 * np.arange(10)
        assert lsb_per_step(means, 1.0) == pytest.approx(2.0)

    def test_invalid_lsb(self):
        with pytest.raises(ValueError):
            lsb_per_step([1.0, 2.0], 0.0)


class TestVariation:
    def test_relative_variation(self):
        assert relative_variation([1.0, 2.0, 3.0]) == pytest.approx(1.0)

    def test_ratio(self):
        current = [1000.0, 7400.0]  # big swing
        ro = [189.0, 190.0]  # tiny swing
        ratio = variation_ratio(current, ro)
        assert ratio == pytest.approx(
            relative_variation(current) / relative_variation(ro)
        )
        assert ratio > 100

    def test_zero_mean_rejected(self):
        with pytest.raises(ValueError):
            relative_variation([0.0, 0.0])


class TestDistributions:
    def test_summarize(self):
        summary = summarize(np.arange(101.0))
        assert summary.median == pytest.approx(50.0)
        assert summary.q1 == pytest.approx(25.0)
        assert summary.q3 == pytest.approx(75.0)
        assert summary.iqr == pytest.approx(50.0)
        assert summary.n == 101

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_count_groups_all_separate(self):
        centers = np.arange(17) * 8.0
        assert count_groups(centers, min_gap=1.0) == 17

    def test_count_groups_collapse(self):
        # 17 centers spaced 6 apart with a min gap of 25 -> ~4-5 groups.
        centers = np.arange(17) * 6.0
        assert count_groups(centers, min_gap=25.0) == 4

    def test_count_groups_zero_gap_counts_distinct(self):
        assert count_groups([1.0, 1.0, 2.0], min_gap=0.0) == 2

    def test_count_groups_invalid(self):
        with pytest.raises(ValueError):
            count_groups([], 1.0)
        with pytest.raises(ValueError):
            count_groups([1.0], -1.0)

    def test_pairwise_separable(self):
        separated = [summarize(np.full(5, v)) for v in (1.0, 5.0, 9.0)]
        assert pairwise_separable(separated, min_gap=1.0)
        merged = [summarize(np.full(5, v)) for v in (1.0, 1.0)]
        assert not pairwise_separable(merged)

    def test_overlap_fraction_disjoint(self):
        assert overlap_fraction([0.0, 1.0], [5.0, 6.0]) == 0.0

    def test_overlap_fraction_identical(self):
        assert overlap_fraction([0.0, 1.0], [0.0, 1.0]) == pytest.approx(1.0)

    def test_overlap_fraction_partial(self):
        value = overlap_fraction([0.0, 2.0], [1.0, 3.0])
        assert 0.0 < value < 1.0
