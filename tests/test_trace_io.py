"""Tests for trace persistence."""

import numpy as np
import pytest

from repro.core.io import (
    FORMAT_VERSION,
    V1_FORMAT_VERSION,
    load_traceset,
    save_traceset,
)
from repro.core.traces import Trace, TraceSet


def make_traceset(n_traces=3):
    traceset = TraceSet()
    for index in range(n_traces):
        times = index * 10.0 + np.arange(20) * 0.0352
        values = np.arange(20) + 100 * index
        traceset.add(
            Trace(times=times, values=values, domain="fpga",
                  quantity="current", label=f"model-{index}")
        )
    return traceset


class TestRoundTrip:
    def test_bit_exact(self, tmp_path):
        original = make_traceset()
        path = save_traceset(original, tmp_path / "traces.npz")
        loaded = load_traceset(path)
        assert len(loaded) == len(original)
        for a, b in zip(original, loaded):
            np.testing.assert_array_equal(a.times, b.times)
            np.testing.assert_array_equal(a.values, b.values)
            assert a.domain == b.domain
            assert a.quantity == b.quantity
            assert a.label == b.label

    def test_suffix_appended(self, tmp_path):
        path = save_traceset(make_traceset(1), tmp_path / "dataset")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_unlabeled_traces_survive(self, tmp_path):
        traceset = TraceSet()
        traceset.add(
            Trace(times=np.array([0.0]), values=np.array([5]),
                  domain="ddr", quantity="power", label=None)
        )
        loaded = load_traceset(save_traceset(traceset, tmp_path / "t"))
        assert loaded.traces[0].label is None

    def test_creates_parent_dirs(self, tmp_path):
        path = save_traceset(make_traceset(1), tmp_path / "a" / "b" / "t")
        assert path.exists()

    def test_loaded_matrix_matches(self, tmp_path):
        original = make_traceset()
        loaded = load_traceset(save_traceset(original, tmp_path / "t"))
        Xa, ya = original.to_matrix(16)
        Xb, yb = loaded.to_matrix(16)
        np.testing.assert_array_equal(Xa, Xb)
        np.testing.assert_array_equal(ya, yb)


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_traceset(tmp_path / "missing.npz")

    def test_not_an_archive(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez(path, data=np.zeros(3))
        with pytest.raises(ValueError, match="not a trace archive"):
            load_traceset(path)

    def test_format_version_pinned(self):
        # v1 single-file archives must stay loadable forever; v2 is the
        # streaming directory format.
        assert V1_FORMAT_VERSION == 1
        assert FORMAT_VERSION == 2
