"""Tests for attacker-side sensor-clock calibration."""

import numpy as np
import pytest

from repro.core.calibration import (
    SensorClockEstimate,
    calibrate_channel,
    estimate_sensor_clock,
)
from repro.core.sampler import HwmonSampler
from repro.soc import Soc


def synthetic_trace(interval=0.0352, phase=0.011, duration=3.0,
                    poll_hz=4000.0, seed=0):
    """An oversampled trace whose values change at a known grid."""
    rng = np.random.default_rng(seed)
    times = np.arange(int(duration * poll_hz)) / poll_hz
    latches = np.floor((times - phase) / interval).astype(int)
    # A distinct random value per latch (noisy channel: every
    # conversion differs).
    unique = np.unique(latches)
    mapping = {latch: rng.integers(500, 4000) for latch in unique}
    values = np.array([mapping[latch] for latch in latches])
    return times, values


class TestEstimator:
    def test_recovers_interval(self):
        times, values = synthetic_trace(interval=0.0352)
        estimate = estimate_sensor_clock(times, values)
        assert estimate.update_interval == pytest.approx(0.0352, rel=0.02)

    def test_recovers_2ms_interval(self):
        times, values = synthetic_trace(interval=0.002, duration=0.5)
        estimate = estimate_sensor_clock(times, values)
        assert estimate.update_interval == pytest.approx(0.002, rel=0.02)

    def test_recovers_phase(self):
        times, values = synthetic_trace(interval=0.0352, phase=0.011)
        estimate = estimate_sensor_clock(times, values)
        # Phase is defined modulo the interval.
        delta = (estimate.phase - 0.011) % estimate.update_interval
        delta = min(delta, estimate.update_interval - delta)
        assert delta < 0.002

    def test_tolerates_skipped_transitions(self):
        # Remove some transitions (identical consecutive conversions).
        times, values = synthetic_trace(seed=1)
        # Force every third latch's value to repeat the previous one.
        latches = np.floor((times - 0.011) / 0.0352).astype(int)
        values = values.copy()
        for latch in np.unique(latches)[::3]:
            mask = latches == latch
            previous = latches == (latch - 1)
            if previous.any():
                values[mask] = values[previous][0]
        estimate = estimate_sensor_clock(times, values)
        assert estimate.update_interval == pytest.approx(0.0352, rel=0.05)

    def test_jitter_reported_small(self):
        times, values = synthetic_trace()
        estimate = estimate_sensor_clock(times, values)
        assert estimate.jitter < 1.0 / 4000.0

    def test_ms_property(self):
        estimate = SensorClockEstimate(0.0352, 0.0, 10, 0.0)
        assert estimate.update_interval_ms == pytest.approx(35.2)

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            estimate_sensor_clock(np.arange(4.0), np.arange(4))

    def test_constant_values_rejected(self):
        times = np.arange(100) / 1000.0
        with pytest.raises(ValueError, match="transitions"):
            estimate_sensor_clock(times, np.full(100, 7))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            estimate_sensor_clock(np.arange(20.0), np.arange(19))


class TestLiveCalibration:
    def test_recovers_default_35ms(self):
        soc = Soc("ZCU102", seed=6)
        sampler = HwmonSampler(soc, seed=6)
        estimate = calibrate_channel(sampler, "fpga", start=1.0)
        assert estimate.update_interval == pytest.approx(0.0352, rel=0.03)
        assert estimate.n_transitions > 10

    def test_recovers_reconfigured_interval(self):
        soc = Soc("ZCU102", seed=6)
        soc.device("fpga").write("update_interval", "8", privileged=True)
        sampler = HwmonSampler(soc, seed=6)
        estimate = calibrate_channel(
            sampler, "fpga", start=1.0, n_samples=4000
        )
        true_period = soc.device("fpga").update_period
        assert estimate.update_interval == pytest.approx(
            true_period, rel=0.05
        )

    def test_estimate_matches_reported_interval(self):
        # The unprivileged estimate agrees with what the (readable)
        # update_interval file claims.
        soc = Soc("ZCU102", seed=8)
        sampler = HwmonSampler(soc, seed=8)
        estimate = calibrate_channel(sampler, "ddr", start=1.0)
        reported_ms = int(soc.device("ddr").read("update_interval"))
        assert estimate.update_interval_ms == pytest.approx(
            reported_ms, rel=0.05
        )

    def test_invalid_args(self):
        soc = Soc("ZCU102", seed=6)
        sampler = HwmonSampler(soc, seed=6)
        with pytest.raises(ValueError):
            calibrate_channel(sampler, n_samples=10)
