"""Tests for the report builder and the compact evaluation report."""

import pytest

from repro.core.reporting import ReportBuilder, generate_report


class TestReportBuilder:
    def test_title_and_sections(self):
        markdown = (
            ReportBuilder("My Report")
            .section("Results")
            .paragraph("All good.")
            .render()
        )
        assert markdown.startswith("# My Report")
        assert "## Results" in markdown
        assert "All good." in markdown

    def test_table_rendering(self):
        markdown = (
            ReportBuilder("T")
            .table(("a", "b"), [(1, 2), (3, 4)])
            .render()
        )
        assert "| a | b |" in markdown
        assert "| 1 | 2 |" in markdown
        assert "|---|---|" in markdown

    def test_table_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ReportBuilder("T").table(("a", "b"), [(1,)])

    def test_write(self, tmp_path):
        path = (
            ReportBuilder("T").paragraph("x").write(tmp_path / "r.md")
        )
        assert path.read_text().startswith("# T")

    def test_write_creates_dirs(self, tmp_path):
        path = ReportBuilder("T").write(tmp_path / "a" / "b" / "r.md")
        assert path.exists()


class TestGenerateReport:
    @pytest.fixture(scope="class")
    def markdown(self):
        # Minimal scale: fast enough for the unit suite.
        return generate_report(
            seed=0,
            samples_per_level=60,
            rsa_samples=1500,
            fingerprint_models=["resnet-50", "vgg-19", "squeezenet-1.1"],
        )

    def test_contains_all_sections(self, markdown):
        assert "Fig 2" in markdown
        assert "Table III" in markdown
        assert "Fig 4" in markdown

    def test_headline_numbers_present(self, markdown):
        assert "variation ratio" in markdown
        assert "(paper: 261x)" in markdown
        assert "| current | 17 | 17 |" in markdown

    def test_writes_file(self, tmp_path):
        generate_report(
            seed=0,
            samples_per_level=60,
            rsa_samples=1500,
            fingerprint_models=["resnet-50", "vgg-19"],
            path=tmp_path / "report.md",
        )
        text = (tmp_path / "report.md").read_text()
        assert text.startswith("# AmpereBleed reproduction")

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            generate_report(samples_per_level=1)
