"""Unit tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils import validation


class TestRequirePositive:
    def test_accepts_positive(self):
        assert validation.require_positive(0.5, "x") == 0.5

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x must be > 0"):
            validation.require_positive(0.0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            validation.require_positive(-1.0, "x")


class TestRequireNonNegative:
    def test_accepts_zero(self):
        assert validation.require_non_negative(0.0, "x") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="x must be >= 0"):
            validation.require_non_negative(-0.1, "x")


class TestRequireInRange:
    def test_accepts_bounds(self):
        assert validation.require_in_range(0.825, 0.825, 0.876, "v") == 0.825
        assert validation.require_in_range(0.876, 0.825, 0.876, "v") == 0.876

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            validation.require_in_range(0.9, 0.825, 0.876, "v")


class TestRequireIntInRange:
    def test_accepts_int(self):
        assert validation.require_int_in_range(3, 0, 10, "n") == 3

    def test_accepts_numpy_int(self):
        assert validation.require_int_in_range(np.int64(3), 0, 10, "n") == 3

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            validation.require_int_in_range(3.0, 0, 10, "n")

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            validation.require_int_in_range(11, 0, 10, "n")


class TestRequireOneOf:
    def test_accepts_member(self):
        assert validation.require_one_of("fpga", {"fpga", "ddr"}, "domain") == "fpga"

    def test_rejects_non_member(self):
        with pytest.raises(ValueError, match="domain"):
            validation.require_one_of("gpu", {"fpga", "ddr"}, "domain")


class TestAs1dFloatArray:
    def test_coerces_list(self):
        out = validation.as_1d_float_array([1, 2, 3], "x")
        assert out.dtype == np.float64
        np.testing.assert_array_equal(out, [1.0, 2.0, 3.0])

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            validation.as_1d_float_array([[1, 2], [3, 4]], "x")

    def test_empty_ok(self):
        assert validation.as_1d_float_array([], "x").size == 0


class TestRequireSorted:
    def test_accepts_sorted(self):
        arr = np.array([1.0, 1.0, 2.0])
        assert validation.require_sorted(arr, "t") is arr

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError, match="sorted"):
            validation.require_sorted(np.array([2.0, 1.0]), "t")

    def test_singleton_ok(self):
        arr = np.array([5.0])
        assert validation.require_sorted(arr, "t") is arr
