"""Tests for the TDC delay-line sensor baseline."""

import numpy as np
import pytest

from repro.fpga.tdc import TdcSensor


class TestExpectedTaps:
    def test_reference_point(self):
        sensor = TdcSensor(taps_nominal=32.0, v_ref=0.85)
        np.testing.assert_allclose(
            sensor.expected_taps(np.array([0.85])), 32.0
        )

    def test_taps_rise_with_voltage(self):
        sensor = TdcSensor()
        low = sensor.expected_taps(np.array([0.83]))[0]
        high = sensor.expected_taps(np.array([0.87]))[0]
        assert high > low

    def test_linear_gain(self):
        sensor = TdcSensor(taps_nominal=100.0, v_ref=1.0, sensitivity=2.0,
                           n_taps=256)
        np.testing.assert_allclose(
            sensor.expected_taps(np.array([1.01])), 102.0
        )

    def test_invalid_voltage(self):
        with pytest.raises(ValueError):
            TdcSensor().expected_taps(np.array([0.0]))


class TestCounts:
    def test_integer_grid(self):
        sensor = TdcSensor(jitter_taps=0.0)
        counts = sensor.counts(np.full(10, 0.85), rng=1)
        np.testing.assert_allclose(counts, np.floor(counts))

    def test_clipped_to_line(self):
        sensor = TdcSensor(n_taps=64, taps_nominal=60.0)
        counts = sensor.counts(np.full(10, 2.0), rng=1)  # absurd voltage
        assert np.all(counts <= 63)

    def test_deterministic_with_seed(self):
        sensor = TdcSensor()
        v = np.full(50, 0.85)
        np.testing.assert_array_equal(
            sensor.counts(v, rng=3), sensor.counts(v, rng=3)
        )

    def test_counts_track_voltage(self):
        sensor = TdcSensor(jitter_taps=0.0)
        low = sensor.counts(np.full(5, 0.84), rng=1).mean()
        high = sensor.counts(np.full(5, 0.86), rng=1).mean()
        assert high > low


class TestStabilizedBlindness:
    def test_relative_variation_tiny_over_droop(self):
        # The same millivolt droop that blinds the RO blinds the TDC.
        sensor = TdcSensor()
        variation = sensor.relative_variation(0.8505 - 3.3e-3, 0.8505)
        assert variation < 0.01

    def test_variation_grows_with_sensitivity(self):
        dull = TdcSensor(sensitivity=0.5)
        sharp = TdcSensor(sensitivity=2.0)
        droop = (0.8472, 0.8505)
        assert sharp.relative_variation(*droop) > (
            dull.relative_variation(*droop)
        )

    def test_sample_period_is_one_cycle(self):
        sensor = TdcSensor(clock_hz=300e6)
        assert sensor.sample_period == pytest.approx(1 / 300e6)


class TestValidation:
    def test_nominal_must_fit_line(self):
        with pytest.raises(ValueError, match="headroom"):
            TdcSensor(n_taps=32, taps_nominal=32.0)

    def test_circuit_spec(self):
        spec = TdcSensor(n_taps=64).circuit_spec()
        assert spec.utilization["lut"] == 64
        assert spec.utilization["ff"] == 96

    def test_repr(self):
        assert "taps" in repr(TdcSensor())
