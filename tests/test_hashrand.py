"""Tests for counter-based hash randomness."""

import numpy as np
import pytest

from repro.utils.hashrand import hashed_normal, hashed_uniform, splitmix64


class TestSplitmix:
    def test_deterministic(self):
        x = np.arange(10, dtype=np.uint64)
        np.testing.assert_array_equal(splitmix64(x), splitmix64(x))

    def test_distinct_inputs_distinct_outputs(self):
        x = np.arange(1000, dtype=np.uint64)
        assert np.unique(splitmix64(x)).size == 1000

    def test_avalanche(self):
        # Flipping one input bit should flip roughly half the output bits.
        a = splitmix64(np.array([0], dtype=np.uint64))[0]
        b = splitmix64(np.array([1], dtype=np.uint64))[0]
        flipped = bin(int(a) ^ int(b)).count("1")
        assert 16 <= flipped <= 48


class TestHashedUniform:
    def test_range(self):
        u = hashed_uniform(123, np.arange(10_000))
        assert np.all(u >= 0.0)
        assert np.all(u < 1.0)

    def test_pure_function(self):
        counters = np.arange(100)
        np.testing.assert_array_equal(
            hashed_uniform(5, counters, stream=2),
            hashed_uniform(5, counters, stream=2),
        )

    def test_key_sensitivity(self):
        counters = np.arange(100)
        a = hashed_uniform(1, counters)
        b = hashed_uniform(2, counters)
        assert not np.array_equal(a, b)

    def test_stream_sensitivity(self):
        counters = np.arange(100)
        a = hashed_uniform(1, counters, stream=0)
        b = hashed_uniform(1, counters, stream=1)
        assert not np.array_equal(a, b)

    def test_mean_and_variance(self):
        u = hashed_uniform(42, np.arange(200_000))
        assert u.mean() == pytest.approx(0.5, abs=0.01)
        assert u.var() == pytest.approx(1 / 12, rel=0.05)


class TestHashedNormal:
    def test_moments(self):
        z = hashed_normal(7, np.arange(200_000))
        assert z.mean() == pytest.approx(0.0, abs=0.02)
        assert z.std() == pytest.approx(1.0, rel=0.02)

    def test_pure_function(self):
        counters = np.arange(50)
        np.testing.assert_array_equal(
            hashed_normal(9, counters, stream=3),
            hashed_normal(9, counters, stream=3),
        )

    def test_streams_are_independent(self):
        counters = np.arange(100_000)
        a = hashed_normal(9, counters, stream=0)
        b = hashed_normal(9, counters, stream=1)
        correlation = np.corrcoef(a, b)[0, 1]
        assert abs(correlation) < 0.02

    def test_no_nan_or_inf(self):
        z = hashed_normal(0, np.arange(100_000))
        assert np.all(np.isfinite(z))

    def test_negative_counter_values_via_uint_cast(self):
        # Latch indices can be negative before a device's first full
        # period; the uint64 cast must still yield valid draws.
        counters = np.array([-3, -2, -1], dtype=np.int64).astype(np.uint64)
        z = hashed_normal(1, counters)
        assert np.all(np.isfinite(z))
