"""Tests for the VCK190 Versal sensor map."""

import numpy as np
import pytest

from repro.boards.versal import VCK190_SENSORS
from repro.soc import Soc


class TestVck190Map:
    def test_seventeen_sensors(self):
        # Table I: VCK190 integrates 17 INA226 sensors.
        assert len(VCK190_SENSORS) == 17

    def test_four_sensitive(self):
        sensitive = [s for s in VCK190_SENSORS if s.sensitive]
        assert len(sensitive) == 4
        assert {s.domain for s in sensitive} == {"fpd", "lpd", "fpga", "ddr"}

    def test_versal_rail_names(self):
        rails = {s.rail for s in VCK190_SENSORS}
        assert {"VCC_PSFP", "VCC_PSLP", "VCCINT", "VCC1V1_LP4"} <= rails

    def test_unique_designators(self):
        designators = [s.designator for s in VCK190_SENSORS]
        assert len(designators) == len(set(designators))


class TestVck190Soc:
    @pytest.fixture(scope="class")
    def soc(self):
        return Soc("VCK190", seed=0)

    def test_device_count_matches_table1(self, soc):
        assert len(soc.hwmon.devices()) == 17

    def test_core_rail_is_versal_band(self, soc):
        values = soc.sample("fpga", "voltage", np.array([1.0]))
        assert 775 <= values[0] <= 825

    def test_sensitive_domains_resolve(self, soc):
        for domain in ("fpga", "fpd", "lpd", "ddr"):
            assert soc.sample(domain, "current", np.array([1.0]))[0] >= 0

    def test_lpddr4_rail_voltage(self, soc):
        values = soc.sample("ddr", "voltage", np.array([1.0]))
        assert 1040 <= values[0] <= 1160  # 1.1 V +- 5%

    def test_rsa_attack_runs_on_versal(self, soc):
        from repro.core.rsa_attack import RsaHammingWeightAttack

        attack = RsaHammingWeightAttack(soc=soc, seed=0)
        sweep = attack.sweep(weights=(1, 512, 1024), n_samples=1500)
        assert sweep.distinguishable_groups() == 3

    def test_campaign_recon_finds_versal_sensors(self, soc):
        from repro.core.campaign import AttackCampaign

        report = AttackCampaign(soc, seed=0).recon()
        assert set(report.sensitive_paths) == {"fpga", "fpd", "lpd", "ddr"}
