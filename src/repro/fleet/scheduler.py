"""Async fleet scheduler: many boards, one queue, one worker pool.

:class:`FleetScheduler` multiplexes a batch of :class:`~repro.fleet.
jobs.FleetJob`\\ s with an :mod:`asyncio` queue: up to
``max_concurrent`` recording sessions are in flight at once, each
executed by :func:`~repro.fleet.jobs.run_job` on the persistent
:class:`~repro.perf.pool.WorkerPool` (or inline with
``use_pool=False`` — the serial baseline the bench compares against).

Fault story, layered bottom-up so each layer only sees what the one
below could not absorb:

* a **worker death** is first absorbed by the pool itself, which
  respawns the worker and resubmits the task (bounded by its
  :class:`~repro.faults.RetryPolicy`); a worker merely *hung* —
  SIGSTOPped, livelocked — is SIGKILLed by the pool's deadline
  watchdog when the job carries a ``timeout`` budget, then handled
  like any other death;
* if the pool gives up (:class:`~repro.perf.pool.WorkerCrashError`,
  including its deadline flavor :class:`~repro.perf.pool.
  TaskDeadlineError`), the scheduler retries the *job* up to
  ``retries`` times — and because jobs are resume-first, the retry
  continues the partial archive from its last checkpoint and seals it
  byte-identical to an uninterrupted run;
* a **board** that keeps failing trips its per-board
  :class:`~repro.resilience.CircuitBreaker`: dispatches to it are
  requeued (bounded) until the breaker half-opens and a probe
  succeeds, so one sick board sheds load instead of burning every
  job's retry budget — the full transition log lands in the report;
* a **corrupt archive** is quarantined by the job layer
  (``quarantined`` outcome), and more jobs than the admission
  high-water mark allows are shed up front as explicit ``deferred``
  outcomes (lowest priority first) rather than growing the queue
  without bound;
* any other exception is a deterministic job failure and is reported
  with its attempt trace, not retried (re-running it would fail
  identically) — and never raises out of the scheduler loop.

Every job therefore ends in exactly one terminal status:
``done``, ``skipped``, ``deferred``, ``quarantined``, or ``failed``
(with reason).  The breaker clock is the scheduler's own decision
tick, not wall time, so a replayed batch replays the same breaker
windows.

Per-job latency is wall-clock time from dispatch to result, measured
with :class:`~repro.perf.StageTimer` (one stage per job id); the
report folds those into the p50/p95 numbers ``BENCH_fleet.json``
publishes.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.fleet.jobs import FleetJob, JobResult, run_job
from repro.perf.config import (
    available_cpus,
    queue_hwm_from_env,
    resolve_workers,
)
from repro.perf.executor import _fork_context
from repro.perf.pool import WorkerCrashError, get_pool
from repro.perf.timer import StageTimer
from repro.resilience.breaker import (
    OPEN,
    BreakerPolicy,
    CircuitBreaker,
    TransientJobError,
)

__all__ = [
    "STATUS_DONE",
    "STATUS_SKIPPED",
    "STATUS_DEFERRED",
    "STATUS_QUARANTINED",
    "STATUS_FAILED",
    "TERMINAL_STATUSES",
    "FleetReport",
    "FleetScheduler",
    "JobOutcome",
]

#: The only states a job may end a fleet run in.
STATUS_DONE = "done"
STATUS_SKIPPED = "skipped"
STATUS_DEFERRED = "deferred"
STATUS_QUARANTINED = "quarantined"
STATUS_FAILED = "failed"
TERMINAL_STATUSES = (
    STATUS_DONE,
    STATUS_SKIPPED,
    STATUS_DEFERRED,
    STATUS_QUARANTINED,
    STATUS_FAILED,
)


@dataclass(frozen=True)
class JobOutcome:
    """One job's fate: result or error, plus latency and attempts.

    Attributes:
        status: terminal state, one of :data:`TERMINAL_STATUSES`.
        attempt_errors: every error observed on the way to the
            terminal state, in order — crash retries and transient
            board outages included, so a ``failed`` outcome carries
            its full attempt trace.
    """

    job: FleetJob
    result: Optional[JobResult]
    error: Optional[str]
    latency_s: float
    attempts: int
    status: str = STATUS_DONE
    attempt_errors: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return self.error is None and self.result is not None


@dataclass(frozen=True)
class FleetReport:
    """Aggregated outcome of one fleet run."""

    outcomes: Tuple[JobOutcome, ...]
    total_s: float
    respawns: int = 0
    breaker_events: Tuple[Dict, ...] = field(default_factory=tuple)

    @property
    def ok(self) -> bool:
        """Every job completed (possibly after resume-and-retry)."""
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def statuses(self) -> Dict[str, int]:
        """Terminal-state histogram (only states that occurred)."""
        counts: Dict[str, int] = {}
        for outcome in self.outcomes:
            counts[outcome.status] = counts.get(outcome.status, 0) + 1
        return counts

    @property
    def traces(self) -> int:
        return sum(
            outcome.result.traces for outcome in self.outcomes if outcome.ok
        )

    @property
    def samples(self) -> int:
        return sum(
            outcome.result.samples for outcome in self.outcomes if outcome.ok
        )

    @property
    def traces_per_sec(self) -> float:
        return self.traces / self.total_s if self.total_s > 0 else 0.0

    @property
    def samples_per_sec(self) -> float:
        return self.samples / self.total_s if self.total_s > 0 else 0.0

    def latency_percentile(self, q: float) -> float:
        """Wall-clock job latency at percentile ``q`` (0-100)."""
        latencies = [outcome.latency_s for outcome in self.outcomes]
        if not latencies:
            return 0.0
        return float(np.percentile(np.asarray(latencies), q))

    def as_dict(self) -> Dict:
        """The JSON shape ``BENCH_fleet.json`` embeds."""
        return {
            "jobs": len(self.outcomes),
            "ok": self.ok,
            "total_s": self.total_s,
            "traces": self.traces,
            "samples": self.samples,
            "traces_per_sec": self.traces_per_sec,
            "samples_per_sec": self.samples_per_sec,
            "p50_job_latency_s": self.latency_percentile(50),
            "p95_job_latency_s": self.latency_percentile(95),
            "max_job_latency_s": self.latency_percentile(100),
            "respawns": self.respawns,
            "statuses": self.statuses,
            "breaker_events": list(self.breaker_events),
            "attempt_traces": [
                {
                    "job_id": outcome.job.job_id,
                    "attempts": outcome.attempts,
                    "errors": list(outcome.attempt_errors),
                }
                for outcome in self.outcomes
                if outcome.attempt_errors
            ],
            "failures": [
                {"job_id": outcome.job.job_id, "error": outcome.error}
                for outcome in self.outcomes
                if not outcome.ok
            ],
        }


def _terminal_status(result: Optional[JobResult], error: Optional[str]) -> str:
    if error is not None:
        return STATUS_FAILED
    if result is not None and result.skipped:
        return STATUS_SKIPPED
    if result is not None and result.quarantined:
        return STATUS_QUARANTINED
    return STATUS_DONE


class FleetScheduler:
    """Shard a batch of fleet jobs across boards and pool workers.

    Args:
        jobs: the batch; job ids and archive directories must be
            unique (two jobs writing one archive would corrupt it).
        max_concurrent: recording sessions in flight at once.
        retries: job-level re-runs after the pool reports a worker
            crash it could not absorb; each retry resumes the job's
            partial archive.
        use_pool: execute jobs on the shared :class:`WorkerPool`
            (falls back to inline execution when ``fork`` is
            unavailable); ``False`` runs every job inline — the
            serial baseline.  A job's ``timeout`` deadline is only
            enforceable on the pool path (inline execution cannot be
            preempted).
        workers: pool width (``None`` honors ``AMPEREBLEED_WORKERS``,
            defaulting to all CPUs).
        queue_hwm: admission high-water mark — at most this many jobs
            enter the run queue; the overflow ends ``deferred``,
            lowest :attr:`FleetJob.priority` first.  ``None`` honors
            ``AMPEREBLEED_QUEUE_HWM`` (unset = unbounded).
        breaker_policy: per-board circuit-breaker parameters
            (``None`` = :meth:`BreakerPolicy.from_env`).
        breaker_seed: seed for the breakers' deterministic cooldown
            jitter.
        max_defers: times one job may be requeued — breaker-denied or
            transiently failed — before it is forced terminal
            (default scales with the batch size).
        chaos: optional dispatch hook ``chaos(job)`` called before
            each execution; raising :class:`TransientJobError` models
            a board outage window (the dispatch is counted as a board
            failure and the job requeued).  This is the chaos
            harness's injection point — leave ``None`` in production.
    """

    def __init__(
        self,
        jobs: Sequence[FleetJob],
        max_concurrent: int = 4,
        retries: int = 1,
        use_pool: bool = True,
        workers: Optional[int] = None,
        queue_hwm: Optional[int] = None,
        breaker_policy: Optional[BreakerPolicy] = None,
        breaker_seed: int = 0,
        max_defers: Optional[int] = None,
        chaos: Optional[Callable[[FleetJob], None]] = None,
    ):
        self.jobs = list(jobs)
        seen_ids = set()
        seen_outs = set()
        for job in self.jobs:
            if job.job_id in seen_ids:
                raise ValueError(f"duplicate job id {job.job_id!r}")
            if job.out in seen_outs:
                raise ValueError(
                    f"jobs share the archive directory {job.out!r}"
                )
            seen_ids.add(job.job_id)
            seen_outs.add(job.out)
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if queue_hwm is None:
            queue_hwm = queue_hwm_from_env()
        if queue_hwm is not None and queue_hwm < 1:
            raise ValueError("queue_hwm must be >= 1 or None")
        self.max_concurrent = int(max_concurrent)
        self.retries = int(retries)
        self.use_pool = bool(use_pool) and _fork_context() is not None
        self.workers = resolve_workers(workers, default=available_cpus())
        self.queue_hwm = queue_hwm
        self.max_defers = (
            int(max_defers)
            if max_defers is not None
            else max(32, 8 * len(self.jobs))
        )
        if self.max_defers < 1:
            raise ValueError("max_defers must be >= 1")
        self._chaos = chaos
        policy = breaker_policy or BreakerPolicy.from_env()
        self._breakers: Dict[str, CircuitBreaker] = {
            board: CircuitBreaker(board, policy=policy, seed=breaker_seed)
            for board in sorted({job.board for job in self.jobs})
        }
        self._tick = 0.0

    # -- clock --------------------------------------------------------

    def _next_tick(self) -> float:
        """Advance the breaker clock by one scheduling decision.

        Runs on the (single-threaded) event loop only, so a plain
        counter is race-free — and being event-driven rather than
        wall-clock keeps breaker windows replayable.
        """
        self._tick += 1.0
        return self._tick

    # -- execution ----------------------------------------------------

    def _execute(self, job: FleetJob) -> JobResult:
        """Run one job, blocking — called from executor threads."""
        if self.use_pool:
            return (
                get_pool(self.workers)
                .submit(run_job, job, deadline_s=job.timeout)
                .result()
            )
        return run_job(job)

    async def _drain(self, queue, outcomes, timer) -> None:
        loop = asyncio.get_running_loop()
        while True:
            try:
                index, job, defers, attempt_errors = queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            breaker = self._breakers[job.board]
            if not breaker.allow(self._next_tick()):
                # A deferral only counts against the budget while the
                # breaker is cooling down (open): its cooldown elapses
                # in these very denial ticks, so the count is bounded.
                # Queued behind an in-flight half-open probe, the job
                # just waits for the probe's verdict — wall-clock
                # visits there are unbounded by design and must not
                # burn the budget.
                counted = breaker.state == OPEN
                if counted and defers + 1 >= self.max_defers:
                    outcomes[index] = JobOutcome(
                        job=job,
                        result=None,
                        error=(
                            f"deferred: circuit breaker for board "
                            f"{job.board} still open after {defers + 1} "
                            f"deferrals"
                        ),
                        latency_s=0.0,
                        attempts=0,
                        status=STATUS_DEFERRED,
                        attempt_errors=tuple(attempt_errors),
                    )
                else:
                    queue.put_nowait(
                        (index, job, defers + counted, attempt_errors)
                    )
                    # Yield so a half-open probe elsewhere can run
                    # before this job spins on the same breaker again.
                    await asyncio.sleep(0)
                continue
            if self._chaos is not None:
                try:
                    self._chaos(job)
                except TransientJobError as outage:
                    breaker.record_failure(self._next_tick())
                    attempt_errors = attempt_errors + [
                        f"{type(outage).__name__}: {outage}"
                    ]
                    if defers + 1 >= self.max_defers:
                        outcomes[index] = JobOutcome(
                            job=job,
                            result=None,
                            error=(
                                f"transient failures exhausted "
                                f"{defers + 1} deferrals: "
                                f"{attempt_errors[-1]}"
                            ),
                            latency_s=0.0,
                            attempts=0,
                            status=STATUS_FAILED,
                            attempt_errors=tuple(attempt_errors),
                        )
                    else:
                        queue.put_nowait(
                            (index, job, defers + 1, attempt_errors)
                        )
                        await asyncio.sleep(0)
                    continue
            attempts = 0
            error: Optional[str] = None
            result: Optional[JobResult] = None
            with timer.stage(job.job_id):
                while True:
                    attempts += 1
                    try:
                        result = await loop.run_in_executor(
                            None, self._execute, job
                        )
                        error = None
                        break
                    except WorkerCrashError as crash:
                        # The pool already resubmitted up to its retry
                        # budget; one more job-level attempt resumes
                        # the partial archive from its checkpoint.
                        error = f"{type(crash).__name__}: {crash}"
                        attempt_errors = attempt_errors + [error]
                        if attempts > self.retries:
                            break
                    except Exception as exc:
                        error = f"{type(exc).__name__}: {exc}"
                        attempt_errors = attempt_errors + [error]
                        break
            if error is None:
                breaker.record_success(self._next_tick())
            else:
                breaker.record_failure(self._next_tick())
            outcomes[index] = JobOutcome(
                job=job,
                result=result,
                error=error,
                latency_s=timer.elapsed(job.job_id),
                attempts=attempts,
                status=_terminal_status(result, error),
                attempt_errors=tuple(attempt_errors),
            )

    def _admit(
        self, outcomes: List[Optional[JobOutcome]]
    ) -> List[Tuple[int, FleetJob]]:
        """Apply the queue high-water mark; defer the overflow.

        Keeps the ``queue_hwm`` highest-priority jobs (submission
        order breaks ties); every shed job gets an immediate terminal
        ``deferred`` outcome so callers see an explicit decision, not
        a silent drop.
        """
        indexed = list(enumerate(self.jobs))
        if self.queue_hwm is None or len(indexed) <= self.queue_hwm:
            return indexed
        ranked = sorted(
            indexed, key=lambda pair: (-pair[1].priority, pair[0])
        )
        admitted = ranked[: self.queue_hwm]
        for index, job in ranked[self.queue_hwm:]:
            outcomes[index] = JobOutcome(
                job=job,
                result=None,
                error=(
                    f"deferred: queue high-water mark "
                    f"{self.queue_hwm} exceeded"
                ),
                latency_s=0.0,
                attempts=0,
                status=STATUS_DEFERRED,
            )
        return sorted(admitted, key=lambda pair: pair[0])

    async def _run(self, timer: StageTimer) -> List[JobOutcome]:
        outcomes: List[Optional[JobOutcome]] = [None] * len(self.jobs)
        admitted = self._admit(outcomes)
        queue: asyncio.Queue = asyncio.Queue()
        for index, job in admitted:
            queue.put_nowait((index, job, 0, []))
        drains = min(self.max_concurrent, max(1, len(admitted)))
        await asyncio.gather(
            *(self._drain(queue, outcomes, timer) for _ in range(drains))
        )
        return outcomes

    def run(self) -> FleetReport:
        """Execute the batch; returns the aggregated report.

        Outcomes come back in job-submission order regardless of
        completion order, so fleet reports are stable run to run.
        """
        timer = StageTimer()
        respawns_before = 0
        if self.use_pool:
            respawns_before = get_pool(self.workers).respawns
        with timer.stage("fleet"):
            outcomes = asyncio.run(self._run(timer))
        respawns = 0
        if self.use_pool:
            respawns = get_pool(self.workers).respawns - respawns_before
        breaker_events = tuple(
            {"board": board, **transition.as_dict()}
            for board, breaker in sorted(self._breakers.items())
            for transition in breaker.transitions
        )
        return FleetReport(
            outcomes=tuple(outcomes),
            total_s=timer.elapsed("fleet"),
            respawns=respawns,
            breaker_events=breaker_events,
        )
