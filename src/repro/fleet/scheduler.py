"""Async fleet scheduler: many boards, one queue, one worker pool.

:class:`FleetScheduler` multiplexes a batch of :class:`~repro.fleet.
jobs.FleetJob`\\ s with an :mod:`asyncio` queue: up to
``max_concurrent`` recording sessions are in flight at once, each
executed by :func:`~repro.fleet.jobs.run_job` on the persistent
:class:`~repro.perf.pool.WorkerPool` (or inline with
``use_pool=False`` — the serial baseline the bench compares against).

Fault story, layered on the existing machinery rather than new code:

* a **worker death** is first absorbed by the pool itself, which
  respawns the worker and resubmits the task (bounded by its
  :class:`~repro.faults.RetryPolicy`);
* if the pool gives up (:class:`~repro.perf.pool.WorkerCrashError`),
  the scheduler retries the *job* up to ``retries`` times — and
  because jobs are resume-first, the retry continues the partial
  archive from its last checkpoint and seals it byte-identical to an
  uninterrupted run;
* any other exception is a deterministic job failure and is reported,
  not retried (re-running it would fail identically).

Per-job latency is wall-clock time from dispatch to result, measured
with :class:`~repro.perf.StageTimer` (one stage per job id); the
report folds those into the p50/p95 numbers ``BENCH_fleet.json``
publishes.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.fleet.jobs import FleetJob, JobResult, run_job
from repro.perf.config import available_cpus, resolve_workers
from repro.perf.executor import _fork_context
from repro.perf.pool import WorkerCrashError, get_pool
from repro.perf.timer import StageTimer

__all__ = ["FleetReport", "FleetScheduler", "JobOutcome"]


@dataclass(frozen=True)
class JobOutcome:
    """One job's fate: result or error, plus latency and attempts."""

    job: FleetJob
    result: Optional[JobResult]
    error: Optional[str]
    latency_s: float
    attempts: int

    @property
    def ok(self) -> bool:
        return self.error is None and self.result is not None


@dataclass(frozen=True)
class FleetReport:
    """Aggregated outcome of one fleet run."""

    outcomes: Tuple[JobOutcome, ...]
    total_s: float
    respawns: int = 0

    @property
    def ok(self) -> bool:
        """Every job completed (possibly after resume-and-retry)."""
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def traces(self) -> int:
        return sum(
            outcome.result.traces for outcome in self.outcomes if outcome.ok
        )

    @property
    def samples(self) -> int:
        return sum(
            outcome.result.samples for outcome in self.outcomes if outcome.ok
        )

    @property
    def traces_per_sec(self) -> float:
        return self.traces / self.total_s if self.total_s > 0 else 0.0

    @property
    def samples_per_sec(self) -> float:
        return self.samples / self.total_s if self.total_s > 0 else 0.0

    def latency_percentile(self, q: float) -> float:
        """Wall-clock job latency at percentile ``q`` (0-100)."""
        latencies = [outcome.latency_s for outcome in self.outcomes]
        if not latencies:
            return 0.0
        return float(np.percentile(np.asarray(latencies), q))

    def as_dict(self) -> Dict:
        """The JSON shape ``BENCH_fleet.json`` embeds."""
        return {
            "jobs": len(self.outcomes),
            "ok": self.ok,
            "total_s": self.total_s,
            "traces": self.traces,
            "samples": self.samples,
            "traces_per_sec": self.traces_per_sec,
            "samples_per_sec": self.samples_per_sec,
            "p50_job_latency_s": self.latency_percentile(50),
            "p95_job_latency_s": self.latency_percentile(95),
            "max_job_latency_s": self.latency_percentile(100),
            "respawns": self.respawns,
            "failures": [
                {"job_id": outcome.job.job_id, "error": outcome.error}
                for outcome in self.outcomes
                if not outcome.ok
            ],
        }


class FleetScheduler:
    """Shard a batch of fleet jobs across boards and pool workers.

    Args:
        jobs: the batch; job ids and archive directories must be
            unique (two jobs writing one archive would corrupt it).
        max_concurrent: recording sessions in flight at once.
        retries: job-level re-runs after the pool reports a worker
            crash it could not absorb; each retry resumes the job's
            partial archive.
        use_pool: execute jobs on the shared :class:`WorkerPool`
            (falls back to inline execution when ``fork`` is
            unavailable); ``False`` runs every job inline — the
            serial baseline.
        workers: pool width (``None`` honors ``AMPEREBLEED_WORKERS``,
            defaulting to all CPUs).
    """

    def __init__(
        self,
        jobs: Sequence[FleetJob],
        max_concurrent: int = 4,
        retries: int = 1,
        use_pool: bool = True,
        workers: Optional[int] = None,
    ):
        self.jobs = list(jobs)
        seen_ids = set()
        seen_outs = set()
        for job in self.jobs:
            if job.job_id in seen_ids:
                raise ValueError(f"duplicate job id {job.job_id!r}")
            if job.out in seen_outs:
                raise ValueError(
                    f"jobs share the archive directory {job.out!r}"
                )
            seen_ids.add(job.job_id)
            seen_outs.add(job.out)
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.max_concurrent = int(max_concurrent)
        self.retries = int(retries)
        self.use_pool = bool(use_pool) and _fork_context() is not None
        self.workers = resolve_workers(workers, default=available_cpus())

    def _execute(self, job: FleetJob) -> JobResult:
        """Run one job, blocking — called from executor threads."""
        if self.use_pool:
            return get_pool(self.workers).submit(run_job, job).result()
        return run_job(job)

    async def _drain(self, queue, outcomes, timer) -> None:
        loop = asyncio.get_running_loop()
        while True:
            try:
                index, job = queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            attempts = 0
            error: Optional[str] = None
            result: Optional[JobResult] = None
            with timer.stage(job.job_id):
                while True:
                    attempts += 1
                    try:
                        result = await loop.run_in_executor(
                            None, self._execute, job
                        )
                        error = None
                        break
                    except WorkerCrashError as crash:
                        # The pool already resubmitted up to its retry
                        # budget; one more job-level attempt resumes
                        # the partial archive from its checkpoint.
                        error = f"WorkerCrashError: {crash}"
                        if attempts > self.retries:
                            break
                    except Exception as exc:
                        error = f"{type(exc).__name__}: {exc}"
                        break
            outcomes[index] = JobOutcome(
                job=job,
                result=result,
                error=error,
                latency_s=timer.elapsed(job.job_id),
                attempts=attempts,
            )

    async def _run(self, timer: StageTimer) -> List[JobOutcome]:
        queue: asyncio.Queue = asyncio.Queue()
        for index, job in enumerate(self.jobs):
            queue.put_nowait((index, job))
        outcomes: List[Optional[JobOutcome]] = [None] * len(self.jobs)
        drains = min(self.max_concurrent, max(1, len(self.jobs)))
        await asyncio.gather(
            *(self._drain(queue, outcomes, timer) for _ in range(drains))
        )
        return outcomes

    def run(self) -> FleetReport:
        """Execute the batch; returns the aggregated report.

        Outcomes come back in job-submission order regardless of
        completion order, so fleet reports are stable run to run.
        """
        timer = StageTimer()
        respawns_before = 0
        if self.use_pool:
            respawns_before = get_pool(self.workers).respawns
        with timer.stage("fleet"):
            outcomes = asyncio.run(self._run(timer))
        respawns = 0
        if self.use_pool:
            respawns = get_pool(self.workers).respawns - respawns_before
        return FleetReport(
            outcomes=tuple(outcomes),
            total_s=timer.elapsed("fleet"),
            respawns=respawns,
        )
