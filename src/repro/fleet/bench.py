"""``bench --fleet``: throughput, latency, and parity for the fleet.

The fleet's promise is *throughput without drift*: sharding recording
campaigns across boards and pool workers must change wall-clock time
and nothing else.  This bench enforces that promise the same way the
pipeline bench does — run the identical batch twice, once serially
inline and once through the scheduler + pool, and require

* **archive parity**: every job pair's sealed archive directory hashes
  identical byte for byte (the PR 3 determinism contract, now at fleet
  scale);
* **accuracy parity**: a fingerprint archive from each side, evaluated
  through :meth:`FingerprintAnalyzer.from_archive`, produces exactly
  the same Table III accuracies;
* plus the headline numbers ``BENCH_fleet.json`` publishes:
  traces/sec, p50/p95 job latency, and the pool-reuse vs fork-per-call
  head-to-head from :func:`repro.perf.bench.run_pool_head_to_head`.
"""

from __future__ import annotations

import hashlib
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.boards.catalog import list_boards
from repro.crypto import PAPER_HAMMING_WEIGHTS
from repro.fleet.jobs import JOB_KINDS, FleetJob
from repro.fleet.scheduler import FleetScheduler
from repro.perf.bench import SCHEMA_VERSION, run_pool_head_to_head
from repro.perf.config import (
    available_cpus,
    fleet_boards_from_env,
    pool_enabled,
    resolve_workers,
)

__all__ = ["build_fleet_jobs", "run_fleet_bench"]

#: Boards the smoke batch targets (first N catalog boards).
_SMOKE_BOARDS = 2

#: Per-kind experiment parameters sized for a bench run, not a paper
#: run — small enough that serial + fleet passes finish in seconds,
#: large enough that every kind records real multi-chunk archives.
_FINGERPRINT_PARAMS = dict(
    models=("resnet-50", "vgg-16", "mobilenet-v2-1.0"),
    channels=(("fpga", "current"), ("ddr", "current")),
    duration=1.0,
    traces_per_model=2,
    n_folds=2,
    forest_trees=5,
)
_RSA_PARAMS = dict(
    weights=tuple(PAPER_HAMMING_WEIGHTS[:3]),
    quantity="current",
    n_samples=2000,
)
_CAMPAIGN_PARAMS = dict(
    victim_start=2.0,
    trace_duration=2.0,
    timeout=20.0,
    chunk_duration=1.0,
)

_KIND_PARAMS = {
    "fingerprint": _FINGERPRINT_PARAMS,
    "rsa": _RSA_PARAMS,
    "campaign": _CAMPAIGN_PARAMS,
}


def build_fleet_jobs(
    root,
    boards: Optional[Sequence[str]] = None,
    kinds: Optional[Sequence[str]] = None,
    seed: int = 0,
    smoke: bool = False,
    deadline: Optional[float] = None,
) -> List[FleetJob]:
    """The benchmark batch: every kind of campaign on every board.

    ``boards=None`` honors ``AMPEREBLEED_FLEET_BOARDS`` and falls back
    to the full Table I catalog; ``smoke=True`` trims that default to
    the first two catalog boards so a smoke pass stays quick (an
    explicit ``boards`` list is never trimmed).  Each job's archive
    lands under ``root`` in a directory named after the job, so one
    batch built against two different roots yields the job pairs the
    parity check compares.  ``deadline`` arms each job's wall-clock
    attempt budget (the chaos harness uses it to bound hung workers).
    """
    if boards is None:
        boards = fleet_boards_from_env()
    if boards is None:
        boards = [spec.name for spec in list_boards()]
        if smoke:
            boards = boards[:_SMOKE_BOARDS]
    if kinds is None:
        kinds = JOB_KINDS
    root = Path(root)
    jobs: List[FleetJob] = []
    for board in boards:
        for kind in kinds:
            params = _KIND_PARAMS[kind]
            jobs.append(
                FleetJob.make(
                    kind,
                    board,
                    seed=seed,
                    out=root / f"{kind}-{board}-{int(seed)}",
                    deadline=deadline,
                    **params,
                )
            )
    return jobs


def _tree_hash(root: Path) -> str:
    """One digest over an archive directory, independent of its name."""
    digest = hashlib.sha256()
    root = Path(root)
    for path in sorted(root.rglob("*")):
        if path.is_file():
            digest.update(path.relative_to(root).as_posix().encode())
            digest.update(path.read_bytes())
    return digest.hexdigest()


def _accuracy_cells(out) -> Dict[str, Dict[str, float]]:
    """Table III accuracies of one recorded fingerprint archive."""
    from repro.core.fingerprint import FingerprintAnalyzer

    analyzer, datasets = FingerprintAnalyzer.from_archive(out, workers=1)
    grid = analyzer.evaluate_table3(
        datasets, durations=(analyzer.config.duration,), workers=1
    )
    return {
        f"{domain}/{quantity}@{duration:g}s": {
            "top1": result.top1,
            "top5": result.top5,
        }
        for (domain, quantity, duration), result in grid.items()
    }


def _parity(
    serial_jobs: Sequence[FleetJob], fleet_jobs: Sequence[FleetJob]
) -> Dict:
    """Exact archive + accuracy parity between the two runs."""
    archives = []
    identical = True
    for serial_job, fleet_job in zip(serial_jobs, fleet_jobs):
        match = _tree_hash(serial_job.out) == _tree_hash(fleet_job.out)
        identical = identical and match
        archives.append(
            {"job_id": serial_job.job_id, "identical": match}
        )
    accuracy = None
    for serial_job, fleet_job in zip(serial_jobs, fleet_jobs):
        if serial_job.kind != "fingerprint":
            continue
        serial_cells = _accuracy_cells(serial_job.out)
        fleet_cells = _accuracy_cells(fleet_job.out)
        accuracy = {
            "job_id": serial_job.job_id,
            "cells": serial_cells,
            "identical": serial_cells == fleet_cells,
        }
        identical = identical and accuracy["identical"]
        break
    return {
        "identical": identical,
        "archives": archives,
        "accuracy": accuracy,
    }


def run_fleet_bench(
    boards: Optional[Sequence[str]] = None,
    smoke: bool = True,
    workers: Optional[int] = None,
    max_concurrent: int = 4,
    seed: int = 0,
    out_dir=None,
) -> Dict:
    """Serial-vs-fleet head-to-head over one campaign batch.

    Runs the same batch twice — inline one job at a time (the
    pre-fleet baseline) and through :class:`FleetScheduler` on the
    persistent pool — then checks the two archive trees for exact
    parity.  ``out_dir=None`` records into a temporary directory that
    is removed afterwards; pass a directory to keep the archives.
    """
    cleanup = None
    if out_dir is None:
        cleanup = tempfile.TemporaryDirectory(prefix="amperebleed-fleet-")
        out_dir = cleanup.name
    try:
        root = Path(out_dir)
        serial_jobs = build_fleet_jobs(
            root / "serial", boards=boards, seed=seed, smoke=smoke
        )
        fleet_jobs = build_fleet_jobs(
            root / "fleet", boards=boards, seed=seed, smoke=smoke
        )
        serial_report = FleetScheduler(
            serial_jobs, max_concurrent=1, use_pool=False
        ).run()
        fleet_report = FleetScheduler(
            fleet_jobs,
            max_concurrent=max_concurrent,
            use_pool=pool_enabled(),
            workers=workers,
        ).run()
        parity = _parity(serial_jobs, fleet_jobs)
        serial_s = serial_report.total_s
        fleet_s = fleet_report.total_s
        head = run_pool_head_to_head(  # repro: ignore[FLOW003] wall-time
            workers=resolve_workers(workers, default=available_cpus())
        )
        return {
            "benchmark": "fleet",
            "schema_version": SCHEMA_VERSION,
            "smoke": bool(smoke),
            "cpu_count": available_cpus(),
            "workers": resolve_workers(workers, default=available_cpus()),
            "max_concurrent": int(max_concurrent),
            "seed": int(seed),
            "boards": sorted({job.board for job in fleet_jobs}),
            "jobs": len(fleet_jobs),
            "serial": serial_report.as_dict(),
            "fleet": fleet_report.as_dict(),
            "speedup": serial_s / fleet_s if fleet_s > 0 else 0.0,
            "head_to_head": head,
            "parity": parity,
            "stage_seconds": {"serial": serial_s, "fleet": fleet_s},
        }
    finally:
        if cleanup is not None:
            cleanup.cleanup()
