"""Fleet jobs: one shardable unit of attack work per board.

A :class:`FleetJob` names everything needed to reproduce one recording
campaign — the attack kind, the catalog board, the seed, the archive
directory, and the experiment parameters — as a small frozen value
that pickles in bytes, so the scheduler can ship it to a pool worker,
lose that worker, and ship it again.

:func:`run_job` is deliberately **resume-first**: it always opens the
job's archive through the PR 3 checkpoint/resume path, so the three
possible starting states need no coordination from the scheduler:

* no archive yet → a fresh recording;
* a partial archive (the previous attempt's worker died mid-shard) →
  recording resumes at the last checkpoint and, because recording is
  deterministic, seals byte-identical to an uninterrupted run;
* a sealed archive (the worker died *after* finishing but before
  reporting) → the job is a no-op and reports ``skipped=True``;
* a **corrupt** archive (damage beyond a torn tail —
  :class:`~repro.core.io.ArchiveCorruptError`) → the directory is
  moved to the ``quarantine/`` sidecar with a reason record and the
  job re-records fresh, reporting ``quarantined=True`` instead of
  aborting the campaign.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.boards.catalog import get_board
from repro.core.io import (
    ArchiveCorruptError,
    TraceArchiveReader,
    TraceArchiveWriter,
    is_archive_dir,
)
from repro.resilience.quarantine import quarantine_archive

__all__ = ["JOB_KINDS", "FleetJob", "JobResult", "run_job"]

#: The attack campaigns the fleet knows how to shard.
JOB_KINDS = ("fingerprint", "rsa", "campaign")


@dataclass(frozen=True)
class FleetJob:
    """One board-bound unit of recording work.

    Attributes:
        job_id: unique name, used for latency stages and reporting.
        kind: one of :data:`JOB_KINDS`.
        board: catalog board name (validated by :meth:`make`).
        seed: session seed; with the board it determines every byte
            the job records.
        out: archive directory this job owns (no two jobs may share).
        params: experiment parameters as sorted ``(key, value)`` pairs
            — tuple-of-tuples so the job stays hashable and cheap to
            pickle; :meth:`param_dict` restores the dict view.
        timeout: wall-clock budget for one execution attempt, in
            seconds; the scheduler propagates it into the worker
            pool's deadline watchdog, which SIGKILLs and resubmits a
            worker holding the job past it.  Distinct from any
            simulated-time ``timeout`` *parameter* a kind may take
            (the campaign's detection window lives in ``params``);
            :meth:`make` spells it ``deadline`` for that reason.
            ``None`` means no budget.
        priority: admission priority under backpressure — when the
            scheduler's queue high-water mark would overflow, the
            *lowest*-priority jobs are deferred first (ties broken by
            submission order).
    """

    job_id: str
    kind: str
    board: str
    seed: int
    out: str
    params: Tuple[Tuple[str, object], ...] = ()
    timeout: Optional[float] = None
    priority: int = 0

    @classmethod
    def make(
        cls,
        kind: str,
        board: str,
        seed: int,
        out,
        job_id: Optional[str] = None,
        deadline: Optional[float] = None,
        priority: int = 0,
        **params,
    ) -> "FleetJob":
        """Build a validated job (board resolved against the catalog).

        ``deadline`` populates :attr:`timeout` (the wall-clock attempt
        budget); the name differs so experiment parameters that happen
        to be called ``timeout`` — the campaign's simulated detection
        window — still flow into ``params`` untouched.
        """
        if kind not in JOB_KINDS:
            raise ValueError(
                f"unknown job kind {kind!r}; expected one of {JOB_KINDS}"
            )
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be > 0 or None")
        spec = get_board(board)  # KeyError lists the catalog
        if job_id is None:
            job_id = f"{kind}/{spec.name}/{int(seed)}"
        return cls(
            job_id=job_id,
            kind=kind,
            board=spec.name,
            seed=int(seed),
            out=str(out),
            params=tuple(sorted(params.items())),
            timeout=deadline,
            priority=int(priority),
        )

    def param_dict(self) -> Dict[str, object]:
        return dict(self.params)


@dataclass(frozen=True)
class JobResult:
    """What one executed job reported back.

    Attributes:
        traces / samples: volume recorded (or found sealed on disk) —
            the numerator of the fleet's traces/sec.
        resumed: the job continued a partial archive from a previous
            attempt.
        skipped: the archive was already sealed; nothing ran.
        quarantined: a corrupt archive was moved to the quarantine
            sidecar and the job re-recorded fresh.
        detail: kind-specific extras (e.g. the campaign outcome).
    """

    job_id: str
    kind: str
    board: str
    traces: int = 0
    samples: int = 0
    resumed: bool = False
    skipped: bool = False
    quarantined: bool = False
    detail: Tuple[Tuple[str, object], ...] = field(default_factory=tuple)


def _archive_counts(out: Path) -> Tuple[int, int]:
    """(traces, samples) of an archive, without reading array data.

    Chunk shapes come from :meth:`TraceArchiveReader.chunk_descriptors`
    — the zip-member layout holds each array's shape, so counting a
    sealed archive touches headers only.  Legacy compressed chunks
    fall back to a full read.
    """
    reader = TraceArchiveReader(out, allow_partial=True, mmap=True)
    trace_ids = set()
    samples = 0
    for entry in reader.entries:
        trace_ids.add(entry["trace_id"])
        layout = reader.chunk_descriptors(entry)
        if layout is not None:
            samples += int(layout["values"].shape[0])
        else:  # pragma: no cover - legacy compressed chunk
            samples += int(reader._read_chunk(entry).values.size)
    return len(trace_ids), samples


def _traceset_counts(datasets) -> Tuple[int, int]:
    """(traces, samples) across one or many in-memory trace sets."""
    if hasattr(datasets, "values") and not hasattr(datasets, "traces"):
        sets = list(datasets.values())
    else:
        sets = [datasets]
    traces = samples = 0
    for dataset in sets:
        for trace in dataset:
            traces += 1
            samples += int(trace.values.size)
    return traces, samples


def _run_fingerprint(job: FleetJob, resume: bool) -> Tuple[int, int, Tuple]:
    from repro.core.fingerprint import DnnFingerprinter, FingerprintConfig
    from repro.session import AttackSession

    params = job.param_dict()
    models = list(params.get("models", ()))
    channels = tuple(
        tuple(channel) for channel in params.get("channels", ())
    )
    config = FingerprintConfig(
        duration=float(params.get("duration", 1.0)),
        traces_per_model=int(params.get("traces_per_model", 2)),
        n_folds=int(params.get("n_folds", 2)),
        forest_trees=int(params.get("forest_trees", 5)),
    )
    session = AttackSession.create(board=job.board, seed=job.seed)
    fingerprinter = DnnFingerprinter(session=session, config=config)
    with TraceArchiveWriter(
        job.out,
        meta=fingerprinter.archive_meta(models, channels),
        resume=resume,
    ) as writer:
        datasets = fingerprinter.collect_datasets(
            models=models, channels=channels, sink=writer, resume=resume
        )
    traces, samples = _traceset_counts(datasets)
    return traces, samples, (("channels", len(datasets)),)


def _run_rsa(job: FleetJob, resume: bool) -> Tuple[int, int, Tuple]:
    from repro.core.rsa_attack import RsaHammingWeightAttack
    from repro.session import AttackSession

    params = job.param_dict()
    weights = tuple(int(weight) for weight in params.get("weights", (16,)))
    quantity = str(params.get("quantity", "current"))
    n_samples = int(params.get("n_samples", 2000))
    session = AttackSession.create(board=job.board, seed=job.seed)
    attack = RsaHammingWeightAttack(session=session)
    with TraceArchiveWriter(
        job.out,
        meta=attack.archive_meta(
            weights=weights, quantity=quantity, n_samples=n_samples
        ),
        resume=resume,
    ) as writer:
        sweep = attack.collect_sweep(
            weights=weights,
            quantity=quantity,
            n_samples=n_samples,
            sink=writer,
            resume=resume,
        )
    traces, samples = _traceset_counts(sweep)
    return traces, samples, (("weights", len(weights)),)


def _run_campaign(job: FleetJob, resume: bool) -> Tuple[int, int, Tuple]:
    from repro.core.campaign import AttackCampaign, deploy_victim
    from repro.session import AttackSession

    params = job.param_dict()
    victim_start = float(params.get("victim_start", 2.0))
    session = AttackSession.create(board=job.board, seed=job.seed)
    deploy_victim(
        session,
        start=victim_start,
        amplitude=float(params.get("victim_amplitude", 3.0)),
        domain=str(params.get("victim_domain", "fpga")),
    )
    campaign = AttackCampaign(session=session)
    trace = campaign.run_archived(
        job.out,
        victim_start=victim_start,
        trace_duration=float(params.get("trace_duration", 2.0)),
        timeout=float(params.get("timeout", 20.0)),
        chunk_duration=float(params.get("chunk_duration", 1.0)),
        resume=resume,
    )
    if trace is None:
        return 0, 0, (("outcome", "missed"),)
    return 1, int(trace.values.size), (("outcome", "captured"),)


_RUNNERS = {
    "fingerprint": _run_fingerprint,
    "rsa": _run_rsa,
    "campaign": _run_campaign,
}


def run_job(job: FleetJob) -> JobResult:
    """Execute one fleet job; safe to re-run after any interruption.

    Module-level on purpose: this is the callable the scheduler
    submits to the worker pool, so it follows the fork-safe task
    contract (no closures, no global mutation).
    """
    out = Path(job.out)
    resume = False
    quarantined = False
    if is_archive_dir(out):
        try:
            probe = TraceArchiveReader(out, allow_partial=True)
        except ArchiveCorruptError as damage:
            quarantine_archive(
                out,
                reason="archive-corrupt",
                error=str(damage),
                job_id=job.job_id,
            )
            quarantined = True
        else:
            if probe.complete:
                traces, samples = _archive_counts(out)
                return JobResult(
                    job_id=job.job_id,
                    kind=job.kind,
                    board=job.board,
                    traces=traces,
                    samples=samples,
                    skipped=True,
                )
            resume = True
    try:
        runner = _RUNNERS[job.kind]
    except KeyError:
        raise ValueError(
            f"unknown job kind {job.kind!r}; expected one of {JOB_KINDS}"
        ) from None
    try:
        traces, samples, detail = runner(job, resume)
    except ArchiveCorruptError as damage:
        if not resume:
            raise
        # The probe accepted the archive but the resume recovery saw
        # damage a torn tail cannot explain: condemn it and re-record.
        quarantine_archive(
            out,
            reason="archive-corrupt",
            error=str(damage),
            job_id=job.job_id,
        )
        quarantined = True
        resume = False
        traces, samples, detail = runner(job, False)
    return JobResult(
        job_id=job.job_id,
        kind=job.kind,
        board=job.board,
        traces=traces,
        samples=samples,
        resumed=resume,
        quarantined=quarantined,
        detail=detail,
    )
