"""Fleet campaign scheduler: every board in the catalog, one queue.

AmpereBleed's attack loop (record → analyze → verdict) is the shape of
a multi-tenant cloud-FPGA monitoring service, and ROADMAP item 2 asks
for exactly that: an orchestrator that shards recording campaigns
across the whole Table I board catalog and is measured in traces/sec.
This package is that orchestrator, built on the PR 8 substrate:

* :mod:`repro.fleet.jobs` — :class:`FleetJob`, one shardable unit of
  attack work (a fingerprint dataset collection, an RSA Hamming-weight
  sweep, or an end-to-end :class:`~repro.core.campaign.AttackCampaign`)
  bound to one board, one seed, and one archive directory; and
  :func:`run_job`, the module-level task the worker pool executes.
  Jobs are resume-first: a retried job reopens its partial archive via
  the PR 3 checkpoint path and seals it byte-identical to an
  uninterrupted run.
* :mod:`repro.fleet.scheduler` — :class:`FleetScheduler`, an asyncio
  job queue multiplexing concurrent recording sessions onto the
  persistent :class:`repro.perf.pool.WorkerPool`; per-job wall-clock
  latency lands in a :class:`~repro.perf.StageTimer` and worker death
  surfaces as a bounded resume-and-retry, not a lost campaign.
* :mod:`repro.fleet.bench` — ``bench --fleet`` / ``BENCH_fleet.json``:
  traces/sec throughput, p50/p95 job latency, a pool-reuse vs
  fork-per-call head-to-head, and exact archive/accuracy parity
  against the serial path.

The failure-containment threading — per-board circuit breakers,
admission backpressure (``AMPEREBLEED_QUEUE_HWM``), job deadlines
riding the pool's watchdog, and archive quarantine — comes from
:mod:`repro.resilience`; every job ends in one of the scheduler's
:data:`~repro.fleet.scheduler.TERMINAL_STATUSES`.

``AMPEREBLEED_FLEET_BOARDS`` restricts which catalog boards the fleet
targets; the ``repro fleet`` CLI command drives the scheduler from the
command line.
"""

from repro.fleet.bench import build_fleet_jobs, run_fleet_bench
from repro.fleet.jobs import JOB_KINDS, FleetJob, JobResult, run_job
from repro.fleet.scheduler import (
    STATUS_DEFERRED,
    STATUS_DONE,
    STATUS_FAILED,
    STATUS_QUARANTINED,
    STATUS_SKIPPED,
    TERMINAL_STATUSES,
    FleetReport,
    FleetScheduler,
    JobOutcome,
)

__all__ = [
    "JOB_KINDS",
    "STATUS_DEFERRED",
    "STATUS_DONE",
    "STATUS_FAILED",
    "STATUS_QUARANTINED",
    "STATUS_SKIPPED",
    "TERMINAL_STATUSES",
    "FleetJob",
    "FleetReport",
    "FleetScheduler",
    "JobOutcome",
    "JobResult",
    "build_fleet_jobs",
    "run_fleet_bench",
    "run_job",
]
