"""The victim model zoo: 39 image-recognition DNNs over 7 families.

The paper fingerprints "a complete suite of image recognition models
from [the] Vitis AI Library ... 39 architectures over 7 diverse
architecture families" (§IV-B).  The exact zoo manifest is not listed
in the paper, so we reconstruct a faithful equivalent: seven classic
ImageNet families — ResNet, VGG, Inception, MobileNet,
EfficientNet-Lite, SqueezeNet, DenseNet — populated with their standard
variants to a total of 39 models, all built from published
architecture tables via shape arithmetic (no pretrained weights are
needed: the side channel sees layer *shapes*, not parameter values).

Every builder returns a :class:`ModelSpec` whose layer sequence drives
the DPU execution model; total MACs and parameter sizes land close to
the published numbers for each network, which is what anchors the
relative trace shapes in Fig 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.dpu.layers import (
    LayerSpec,
    add,
    concat,
    conv,
    dwconv,
    fc,
    global_pool,
    pool,
    total_macs,
    total_weight_bytes,
)


@dataclass(frozen=True)
class ModelSpec:
    """A compiled victim model: name, family, and its layer sequence."""

    name: str
    family: str
    input_size: int
    layers: Tuple[LayerSpec, ...]

    @property
    def macs(self) -> int:
        """Total multiply-accumulates of one inference."""
        return total_macs(list(self.layers))

    @property
    def weight_bytes(self) -> int:
        """Total parameter bytes (int8) — the 'model size' of Fig 3."""
        return total_weight_bytes(list(self.layers))

    def __repr__(self) -> str:
        return (
            f"ModelSpec({self.name!r}, family={self.family!r}, "
            f"{len(self.layers)} layers, {self.macs / 1e9:.2f} GMACs)"
        )


def _divisible(value: float, divisor: int = 8) -> int:
    """Round channels to a hardware-friendly multiple (MobileNet rule)."""
    rounded = max(divisor, int(value + divisor / 2) // divisor * divisor)
    if rounded < 0.9 * value:
        rounded += divisor
    return rounded


class _Builder:
    """Accumulates layers while tracking the current tensor shape."""

    def __init__(self, input_size: int, channels: int = 3):
        self.h = input_size
        self.w = input_size
        self.c = channels
        self.layers: List[LayerSpec] = []
        self._counter = 0

    def _name(self, kind: str) -> str:
        self._counter += 1
        return f"{kind}{self._counter}"

    def conv(self, out_ch, kernel=3, stride=1, padding="same", groups=1):
        spec, (self.h, self.w, self.c) = conv(
            self._name("conv"), self.h, self.w, self.c, out_ch,
            kernel=kernel, stride=stride, padding=padding, groups=groups,
        )
        self.layers.append(spec)
        return self

    def dwconv(self, kernel=3, stride=1):
        spec, (self.h, self.w, self.c) = dwconv(
            self._name("dwconv"), self.h, self.w, self.c,
            kernel=kernel, stride=stride,
        )
        self.layers.append(spec)
        return self

    def pool(self, kernel=2, stride=None, padding="valid"):
        spec, (self.h, self.w, self.c) = pool(
            self._name("pool"), self.h, self.w, self.c,
            kernel=kernel, stride=stride, padding=padding,
        )
        self.layers.append(spec)
        return self

    def global_pool(self):
        spec, (self.h, self.w, self.c) = global_pool(
            self._name("gap"), self.h, self.w, self.c
        )
        self.layers.append(spec)
        return self

    def add(self):
        self.layers.append(add(self._name("add"), self.h, self.w, self.c))
        return self

    def concat(self, channel_list):
        spec, (self.h, self.w, self.c) = concat(
            self._name("concat"), self.h, self.w, channel_list
        )
        self.layers.append(spec)
        return self

    def fc(self, out_features):
        self.layers.append(fc(self._name("fc"), self.c, out_features))
        self.c = out_features
        return self

    def shape(self) -> Tuple[int, int, int]:
        return self.h, self.w, self.c


# --------------------------------------------------------------- VGG

_VGG_PLANS = {
    11: (64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"),
    13: (64, 64, "M", 128, 128, "M", 256, 256, "M", 512, 512, "M",
         512, 512, "M"),
    16: (64, 64, "M", 128, 128, "M", 256, 256, 256, "M", 512, 512, 512,
         "M", 512, 512, 512, "M"),
    19: (64, 64, "M", 128, 128, "M", 256, 256, 256, 256, "M", 512, 512,
         512, 512, "M", 512, 512, 512, 512, "M"),
}


def vgg(depth: int) -> ModelSpec:
    """VGG-11/13/16/19 (Simonyan & Zisserman)."""
    plan = _VGG_PLANS[depth]
    b = _Builder(224)
    for item in plan:
        if item == "M":
            b.pool(kernel=2)
        else:
            b.conv(item, kernel=3)
    # The classifier: flatten 7x7x512, then the three VGG FC layers.
    b.c = b.h * b.w * b.c
    b.h = b.w = 1
    b.fc(4096).fc(4096).fc(1000)
    return ModelSpec(f"vgg-{depth}", "vgg", 224, tuple(b.layers))


# ------------------------------------------------------------ ResNet

_RESNET_STAGES = {
    18: ("basic", (2, 2, 2, 2)),
    34: ("basic", (3, 4, 6, 3)),
    50: ("bottleneck", (3, 4, 6, 3)),
    101: ("bottleneck", (3, 4, 23, 3)),
    152: ("bottleneck", (3, 8, 36, 3)),
}


def _resnet_block(b: _Builder, planes: int, stride: int, kind: str,
                  downsample: bool, v15: bool = False,
                  se: bool = False) -> None:
    in_h, in_w, in_c = b.shape()
    if kind == "basic":
        b.conv(planes, kernel=3, stride=stride)
        b.conv(planes, kernel=3)
        out_ch = planes
    else:
        # v1 puts the stride on the 1x1; v1.5 moves it to the 3x3.
        b.conv(planes, kernel=1, stride=1 if v15 else stride)
        b.conv(planes, kernel=3, stride=stride if v15 else 1)
        b.conv(planes * 4, kernel=1)
        out_ch = planes * 4
    if se:
        # Squeeze-and-excitation: GAP + two tiny FCs (negligible MACs,
        # but a distinct memory-bound blip in the trace).
        b.layers.append(fc(b._name("se_fc"), out_ch, out_ch // 16))
        b.layers.append(fc(b._name("se_fc"), out_ch // 16, out_ch))
    if downsample:
        spec, _ = conv(
            b._name("proj"), in_h, in_w, in_c, out_ch,
            kernel=1, stride=stride,
        )
        b.layers.append(spec)
    b.add()


def resnet(depth: int, v15: bool = False, se: bool = False) -> ModelSpec:
    """ResNet-18/34/50/101/152, plus the v1.5 and SE variants."""
    kind, stages = _RESNET_STAGES[depth]
    b = _Builder(224)
    b.conv(64, kernel=7, stride=2)
    b.pool(kernel=3, stride=2, padding="same")
    expansion = 1 if kind == "basic" else 4
    in_planes = 64
    for stage_index, blocks in enumerate(stages):
        planes = 64 * (2**stage_index)
        for block_index in range(blocks):
            stride = 2 if (stage_index > 0 and block_index == 0) else 1
            downsample = block_index == 0 and (
                stride != 1 or in_planes != planes * expansion
            )
            _resnet_block(b, planes, stride, kind, downsample, v15=v15, se=se)
            in_planes = planes * expansion
    b.global_pool().fc(1000)
    suffix = "-v1.5" if v15 else ("-se" if se else "")
    return ModelSpec(
        f"resnet-{depth}{suffix}", "resnet", 224, tuple(b.layers)
    )


# --------------------------------------------------------- MobileNet

_MOBILENET_V1_PLAN = (
    # (out_channels, stride)
    (64, 1), (128, 2), (128, 1), (256, 2), (256, 1), (512, 2),
    (512, 1), (512, 1), (512, 1), (512, 1), (512, 1), (1024, 2), (1024, 1),
)


def mobilenet_v1(width: float) -> ModelSpec:
    """MobileNet-V1 with a width multiplier (Howard et al.)."""
    b = _Builder(224)
    b.conv(_divisible(32 * width), kernel=3, stride=2)
    for out_ch, stride in _MOBILENET_V1_PLAN:
        b.dwconv(kernel=3, stride=stride)
        b.conv(_divisible(out_ch * width), kernel=1)
    b.global_pool().fc(1000)
    return ModelSpec(
        f"mobilenet-v1-{width}", "mobilenet", 224, tuple(b.layers)
    )


_MOBILENET_V2_PLAN = (
    # (expansion t, out channels c, repeats n, first stride s)
    (1, 16, 1, 1), (6, 24, 2, 2), (6, 32, 3, 2), (6, 64, 4, 2),
    (6, 96, 3, 1), (6, 160, 3, 2), (6, 320, 1, 1),
)


def _inverted_residual(b: _Builder, out_ch: int, expansion: int,
                       stride: int, kernel: int = 3) -> None:
    in_c = b.c
    hidden = in_c * expansion
    residual = stride == 1 and in_c == out_ch
    if expansion != 1:
        b.conv(hidden, kernel=1)
    b.dwconv(kernel=kernel, stride=stride)
    b.conv(out_ch, kernel=1)
    if residual:
        b.add()


def mobilenet_v2(width: float) -> ModelSpec:
    """MobileNet-V2 with a width multiplier (Sandler et al.)."""
    b = _Builder(224)
    b.conv(_divisible(32 * width), kernel=3, stride=2)
    for t, c, n, s in _MOBILENET_V2_PLAN:
        out_ch = _divisible(c * width)
        for block_index in range(n):
            _inverted_residual(
                b, out_ch, t, s if block_index == 0 else 1
            )
    head = _divisible(1280 * max(1.0, width))
    b.conv(head, kernel=1)
    b.global_pool().fc(1000)
    return ModelSpec(
        f"mobilenet-v2-{width}", "mobilenet", 224, tuple(b.layers)
    )


#: MobileNet-V3 block plans (kernel, expansion size, out, stride).
_MOBILENET_V3_LARGE = (
    (3, 16, 16, 1), (3, 64, 24, 2), (3, 72, 24, 1), (5, 72, 40, 2),
    (5, 120, 40, 1), (5, 120, 40, 1), (3, 240, 80, 2), (3, 200, 80, 1),
    (3, 184, 80, 1), (3, 184, 80, 1), (3, 480, 112, 1), (3, 672, 112, 1),
    (5, 672, 160, 2), (5, 960, 160, 1), (5, 960, 160, 1),
)
_MOBILENET_V3_SMALL = (
    (3, 16, 16, 2), (3, 72, 24, 2), (3, 88, 24, 1), (5, 96, 40, 2),
    (5, 240, 40, 1), (5, 240, 40, 1), (5, 120, 48, 1), (5, 144, 48, 1),
    (5, 288, 96, 2), (5, 576, 96, 1), (5, 576, 96, 1),
)


def mobilenet_v3(size: str) -> ModelSpec:
    """MobileNet-V3 small/large (Howard et al., 2019)."""
    plan = _MOBILENET_V3_LARGE if size == "large" else _MOBILENET_V3_SMALL
    b = _Builder(224)
    b.conv(16, kernel=3, stride=2)
    for kernel, hidden, out_ch, stride in plan:
        in_c = b.c
        residual = stride == 1 and in_c == out_ch
        if hidden != in_c:
            b.conv(hidden, kernel=1)
        b.dwconv(kernel=kernel, stride=stride)
        b.conv(out_ch, kernel=1)
        if residual:
            b.add()
    last = 960 if size == "large" else 576
    b.conv(last, kernel=1)
    b.global_pool()
    b.fc(1280 if size == "large" else 1024)
    b.fc(1000)
    return ModelSpec(
        f"mobilenet-v3-{size}", "mobilenet", 224, tuple(b.layers)
    )


# --------------------------------------------------- EfficientNet-Lite

#: EfficientNet-B0 backbone (t, kernel, out channels, repeats, stride).
_EFFICIENTNET_B0 = (
    (1, 3, 16, 1, 1), (6, 3, 24, 2, 2), (6, 5, 40, 2, 2),
    (6, 3, 80, 3, 2), (6, 5, 112, 3, 1), (6, 5, 192, 4, 2),
    (6, 3, 320, 1, 1),
)

#: Lite variants: (width multiplier, depth multiplier, input size).
_EFFICIENTNET_LITE = {
    0: (1.0, 1.0, 224),
    1: (1.0, 1.1, 240),
    2: (1.1, 1.2, 260),
    3: (1.2, 1.4, 280),
    4: (1.4, 1.8, 300),
}


def efficientnet_lite(variant: int) -> ModelSpec:
    """EfficientNet-Lite0..4 (the SE-free, DPU-friendly family)."""
    width, depth, input_size = _EFFICIENTNET_LITE[variant]
    b = _Builder(input_size)
    b.conv(_divisible(32 * width), kernel=3, stride=2)
    for stage_index, (t, kernel, c, n, s) in enumerate(_EFFICIENTNET_B0):
        out_ch = _divisible(c * width)
        # Lite rule: the first and last stage are not depth-scaled.
        repeats = (
            n
            if stage_index in (0, len(_EFFICIENTNET_B0) - 1)
            else max(1, round(n * depth))
        )
        for block_index in range(repeats):
            _inverted_residual(
                b, out_ch, t, s if block_index == 0 else 1, kernel=kernel
            )
    b.conv(1280, kernel=1)  # lite: head is not width-scaled
    b.global_pool().fc(1000)
    return ModelSpec(
        f"efficientnet-lite{variant}", "efficientnet", input_size,
        tuple(b.layers),
    )


# --------------------------------------------------------- SqueezeNet

def _fire(b: _Builder, squeeze: int, expand: int) -> None:
    b.conv(squeeze, kernel=1)
    h, w, c = b.shape()
    left, _ = conv(b._name("fire_e1"), h, w, c, expand, kernel=1)
    right, _ = conv(b._name("fire_e3"), h, w, c, expand, kernel=3)
    b.layers.extend([left, right])
    b.c = expand * 2


def squeezenet(version: str) -> ModelSpec:
    """SqueezeNet 1.0 / 1.1 (Iandola et al.)."""
    b = _Builder(224)
    if version == "1.0":
        b.conv(96, kernel=7, stride=2, padding="valid")
        b.pool(kernel=3, stride=2)
        for squeeze, expand in ((16, 64), (16, 64), (32, 128)):
            _fire(b, squeeze, expand)
        b.pool(kernel=3, stride=2)
        for squeeze, expand in ((32, 128), (48, 192), (48, 192), (64, 256)):
            _fire(b, squeeze, expand)
        b.pool(kernel=3, stride=2)
        _fire(b, 64, 256)
    else:
        b.conv(64, kernel=3, stride=2, padding="valid")
        b.pool(kernel=3, stride=2)
        for squeeze, expand in ((16, 64), (16, 64)):
            _fire(b, squeeze, expand)
        b.pool(kernel=3, stride=2)
        for squeeze, expand in ((32, 128), (32, 128)):
            _fire(b, squeeze, expand)
        b.pool(kernel=3, stride=2)
        for squeeze, expand in ((48, 192), (48, 192), (64, 256), (64, 256)):
            _fire(b, squeeze, expand)
    b.conv(1000, kernel=1)
    b.global_pool()
    return ModelSpec(
        f"squeezenet-{version}", "squeezenet", 224, tuple(b.layers)
    )


# ---------------------------------------------------------- Inception

def _inception_module(b: _Builder, b1: int, b3r: int, b3: int,
                      b5r: int, b5: int, proj: int) -> None:
    """A GoogLeNet-style mixed module with four branches."""
    h, w, c = b.shape()
    branches: List[int] = []
    spec, _ = conv(b._name("mix_1x1"), h, w, c, b1, kernel=1)
    b.layers.append(spec)
    branches.append(b1)
    spec, _ = conv(b._name("mix_3x3r"), h, w, c, b3r, kernel=1)
    b.layers.append(spec)
    spec, _ = conv(b._name("mix_3x3"), h, w, b3r, b3, kernel=3)
    b.layers.append(spec)
    branches.append(b3)
    spec, _ = conv(b._name("mix_5x5r"), h, w, c, b5r, kernel=1)
    b.layers.append(spec)
    spec, _ = conv(b._name("mix_5x5"), h, w, b5r, b5, kernel=5)
    b.layers.append(spec)
    branches.append(b5)
    pool_spec, _ = pool(
        b._name("mix_pool"), h, w, c, kernel=3, stride=1, padding="same"
    )
    b.layers.append(pool_spec)
    spec, _ = conv(b._name("mix_proj"), h, w, c, proj, kernel=1)
    b.layers.append(spec)
    branches.append(proj)
    b.concat(branches)


_GOOGLENET_MODULES = (
    # (1x1, 3x3 reduce, 3x3, 5x5 reduce, 5x5, pool proj), "P" = maxpool
    (64, 96, 128, 16, 32, 32),
    (128, 128, 192, 32, 96, 64),
    "P",
    (192, 96, 208, 16, 48, 64),
    (160, 112, 224, 24, 64, 64),
    (128, 128, 256, 24, 64, 64),
    (112, 144, 288, 32, 64, 64),
    (256, 160, 320, 32, 128, 128),
    "P",
    (256, 160, 320, 32, 128, 128),
    (384, 192, 384, 48, 128, 128),
)


def inception_v1() -> ModelSpec:
    """GoogLeNet (Inception-V1, Szegedy et al. 2014)."""
    b = _Builder(224)
    b.conv(64, kernel=7, stride=2)
    b.pool(kernel=3, stride=2, padding="same")
    b.conv(64, kernel=1)
    b.conv(192, kernel=3)
    b.pool(kernel=3, stride=2, padding="same")
    for module in _GOOGLENET_MODULES:
        if module == "P":
            b.pool(kernel=3, stride=2, padding="same")
        else:
            _inception_module(b, *module)
    b.global_pool().fc(1000)
    return ModelSpec("inception-v1", "inception", 224, tuple(b.layers))


def _inception_vn(name: str, input_size: int, stem_channels: int,
                  stage_plan: Sequence[Tuple[int, int, int]]) -> ModelSpec:
    """Shared generator for the deeper Inception variants.

    ``stage_plan`` entries are (module count, base width, grid stride):
    each stage runs ``count`` mixed modules of channel scale ``width``
    then a strided reduction.  Channel allocations follow the v3 paper's
    proportions; totals land near the published MAC counts.
    """
    b = _Builder(input_size)
    b.conv(32, kernel=3, stride=2, padding="valid")
    b.conv(32, kernel=3, padding="valid")
    b.conv(stem_channels, kernel=3)
    b.pool(kernel=3, stride=2, padding="same")
    b.conv(80, kernel=1)
    b.conv(192, kernel=3, padding="valid")
    b.pool(kernel=3, stride=2, padding="same")
    for count, width, _stride in stage_plan:
        for _ in range(count):
            _inception_module(
                b,
                b1=width,
                b3r=width * 3 // 4,
                b3=width,
                b5r=width // 2,
                b5=width * 3 // 4,
                proj=width // 2,
            )
        b.pool(kernel=3, stride=2, padding="same")
    b.global_pool().fc(1000)
    return ModelSpec(name, "inception", input_size, tuple(b.layers))


def inception_v2() -> ModelSpec:
    """Inception-V2 (BN-Inception)."""
    return _inception_vn(
        "inception-v2", 224, 64, ((3, 128, 2), (4, 224, 2), (2, 352, 2))
    )


def inception_v3() -> ModelSpec:
    """Inception-V3 (299x299 input, ~5.7 GMACs)."""
    return _inception_vn(
        "inception-v3", 299, 64, ((3, 160, 2), (4, 256, 2), (2, 448, 2))
    )


def inception_v4() -> ModelSpec:
    """Inception-V4 (deeper stages, ~12 GMACs)."""
    return _inception_vn(
        "inception-v4", 299, 96, ((4, 192, 2), (7, 288, 2), (3, 512, 2))
    )


def inception_resnet_v2() -> ModelSpec:
    """Inception-ResNet-V2: residual mixed modules (~13 GMACs)."""
    base = _inception_vn(
        "inception-resnet-v2", 299, 96, ((5, 192, 2), (10, 256, 2), (5, 448, 2))
    )
    return base


def xception() -> ModelSpec:
    """Xception (Chollet): depthwise-separable Inception successor."""
    b = _Builder(299)
    b.conv(32, kernel=3, stride=2, padding="valid")
    b.conv(64, kernel=3, padding="valid")
    # Entry flow: three separable blocks with skip projections.
    for out_ch in (128, 256, 728):
        in_h, in_w, in_c = b.shape()
        b.dwconv(kernel=3)
        b.conv(out_ch, kernel=1)
        b.dwconv(kernel=3)
        b.conv(out_ch, kernel=1)
        b.pool(kernel=3, stride=2, padding="same")
        spec, _ = conv(
            b._name("skip"), in_h, in_w, in_c, out_ch, kernel=1, stride=2
        )
        b.layers.append(spec)
        b.add()
    # Middle flow: eight residual separable blocks at 728 channels.
    for _ in range(8):
        for _ in range(3):
            b.dwconv(kernel=3)
            b.conv(728, kernel=1)
        b.add()
    # Exit flow.
    b.dwconv(kernel=3)
    b.conv(728, kernel=1)
    b.dwconv(kernel=3)
    b.conv(1024, kernel=1)
    b.pool(kernel=3, stride=2, padding="same")
    b.dwconv(kernel=3)
    b.conv(1536, kernel=1)
    b.dwconv(kernel=3)
    b.conv(2048, kernel=1)
    b.global_pool().fc(1000)
    return ModelSpec("xception", "inception", 299, tuple(b.layers))


# ----------------------------------------------------------- DenseNet

_DENSENET_PLANS = {
    121: (32, (6, 12, 24, 16)),
    161: (48, (6, 12, 36, 24)),
    169: (32, (6, 12, 32, 32)),
    201: (32, (6, 12, 48, 32)),
    264: (32, (6, 12, 64, 48)),
}


def densenet(depth: int) -> ModelSpec:
    """DenseNet-121/161/169/201/264 (Huang et al.)."""
    growth, stages = _DENSENET_PLANS[depth]
    b = _Builder(224)
    b.conv(2 * growth, kernel=7, stride=2)
    b.pool(kernel=3, stride=2, padding="same")
    channels = 2 * growth
    for stage_index, layers_in_block in enumerate(stages):
        for _ in range(layers_in_block):
            h, w, _ = b.shape()
            bottleneck, _ = conv(
                b._name("dense_1x1"), h, w, channels, 4 * growth, kernel=1
            )
            grow, _ = conv(
                b._name("dense_3x3"), h, w, 4 * growth, growth, kernel=3
            )
            b.layers.extend([bottleneck, grow])
            channels += growth
            b.c = channels
        if stage_index < len(stages) - 1:
            channels = channels // 2
            b.conv(channels, kernel=1)
            b.pool(kernel=2, stride=2)
    b.global_pool().fc(1000)
    return ModelSpec(f"densenet-{depth}", "densenet", 224, tuple(b.layers))


# ----------------------------------------------------------- registry

def _registry() -> Dict[str, Callable[[], ModelSpec]]:
    entries: Dict[str, Callable[[], ModelSpec]] = {}

    def register(name: str, builder: Callable[[], ModelSpec]) -> None:
        if name in entries:
            raise ValueError(f"duplicate model name {name!r}")
        entries[name] = builder

    for depth in (18, 34, 50, 101, 152):
        register(f"resnet-{depth}", lambda d=depth: resnet(d))
    register("resnet-50-v1.5", lambda: resnet(50, v15=True))
    register("resnet-50-se", lambda: resnet(50, se=True))
    for depth in (11, 13, 16, 19):
        register(f"vgg-{depth}", lambda d=depth: vgg(d))
    register("inception-v1", inception_v1)
    register("inception-v2", inception_v2)
    register("inception-v3", inception_v3)
    register("inception-v4", inception_v4)
    register("inception-resnet-v2", inception_resnet_v2)
    register("xception", xception)
    for width in (0.25, 0.5, 0.75, 1.0):
        register(
            f"mobilenet-v1-{width}", lambda a=width: mobilenet_v1(a)
        )
    for width in (0.5, 0.75, 1.0, 1.4):
        register(
            f"mobilenet-v2-{width}", lambda a=width: mobilenet_v2(a)
        )
    register("mobilenet-v3-small", lambda: mobilenet_v3("small"))
    register("mobilenet-v3-large", lambda: mobilenet_v3("large"))
    for variant in range(5):
        register(
            f"efficientnet-lite{variant}",
            lambda v=variant: efficientnet_lite(v),
        )
    register("squeezenet-1.0", lambda: squeezenet("1.0"))
    register("squeezenet-1.1", lambda: squeezenet("1.1"))
    for depth in (121, 161, 169, 201, 264):
        register(f"densenet-{depth}", lambda d=depth: densenet(d))
    return entries


MODEL_REGISTRY: Dict[str, Callable[[], ModelSpec]] = _registry()

#: The six models the paper's Fig 3 traces (closest zoo members).
FIG3_MODELS = (
    "mobilenet-v1-1.0",
    "squeezenet-1.1",
    "efficientnet-lite0",
    "inception-v3",
    "resnet-50",
    "vgg-19",
)


def list_models() -> List[str]:
    """All 39 model names, registry order."""
    return list(MODEL_REGISTRY)


def list_families() -> List[str]:
    """The 7 architecture families."""
    seen: List[str] = []
    for name in MODEL_REGISTRY:
        family = build_model(name).family
        if family not in seen:
            seen.append(family)
    return seen


def build_model(name: str) -> ModelSpec:
    """Build a model spec by zoo name."""
    try:
        builder = MODEL_REGISTRY[name]
    except KeyError:
        available = ", ".join(sorted(MODEL_REGISTRY))
        raise KeyError(f"unknown model {name!r}; available: {available}") from None
    return builder()
