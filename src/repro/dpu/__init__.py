"""DPU substrate: layer costs, model zoo, core model, inference runner."""

from repro.dpu.compiler import (
    ArrayGeometry,
    CompiledLayer,
    CompiledModel,
    DpuCompiler,
)
from repro.dpu.dpu import (
    DEFAULT_EFFICIENCY,
    DpuConfig,
    DpuCore,
    LayerExecution,
)
from repro.dpu.layers import (
    LAYER_KINDS,
    LayerSpec,
    add,
    concat,
    conv,
    dwconv,
    fc,
    global_pool,
    pool,
    total_macs,
    total_weight_bytes,
)
from repro.dpu.models import (
    FIG3_MODELS,
    MODEL_REGISTRY,
    ModelSpec,
    build_model,
    list_families,
    list_models,
)
from repro.dpu.runner import (
    DPU_RAILS,
    CycleProfile,
    DpuRunner,
    RuntimeConfig,
)

__all__ = [
    "ArrayGeometry",
    "CompiledLayer",
    "CompiledModel",
    "DpuCompiler",
    "DEFAULT_EFFICIENCY",
    "DpuConfig",
    "DpuCore",
    "LayerExecution",
    "LAYER_KINDS",
    "LayerSpec",
    "add",
    "concat",
    "conv",
    "dwconv",
    "fc",
    "global_pool",
    "pool",
    "total_macs",
    "total_weight_bytes",
    "FIG3_MODELS",
    "MODEL_REGISTRY",
    "ModelSpec",
    "build_model",
    "list_families",
    "list_models",
    "DPU_RAILS",
    "CycleProfile",
    "DpuRunner",
    "RuntimeConfig",
]
