"""DPU core model: roofline scheduling of compiled layers.

The Xilinx DPU (DPUCZDX8G on Zynq UltraScale+) is a systolic int8
engine; the B4096 configuration used on the ZCU102 peaks at 4096 ops
per cycle at the 300 MHz fabric clock.  Its encrypted HDL hides the
microarchitecture, but its externally observable behaviour — what the
side channel sees — is well modeled by a roofline: each layer runs for
``max(compute_time, memory_time)`` plus a fixed scheduling overhead,
drawing FPGA-rail power proportional to MAC-array occupancy and DDR
power proportional to achieved bandwidth.

Per-kind efficiency factors capture the well-known DPU behaviours:
dense convolutions keep the array busy; depthwise convolutions map
poorly (one filter per channel starves the array); fully-connected
layers are DDR-bound streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.dpu.layers import LayerSpec
from repro.dpu.models import ModelSpec
from repro.utils.validation import require_non_negative, require_positive

#: MAC-array utilization by layer kind (fraction of peak sustained).
DEFAULT_EFFICIENCY: Dict[str, float] = {
    "conv": 0.65,
    "dwconv": 0.22,
    "fc": 0.35,
    "pool": 1.0,
    "add": 1.0,
    "concat": 1.0,
    "global_pool": 1.0,
}


@dataclass(frozen=True)
class DpuConfig:
    """Static configuration of one DPU core instance.

    Attributes:
        name: product configuration string.
        ops_per_cycle: peak int8 ops per clock (B4096 = 4096; one MAC
            counts as two ops).
        clock_hz: DPU clock (the ZCU102 fabric runs it at 300 MHz).
        ddr_bandwidth: sustained AXI bandwidth to DDR in bytes/s.
        min_layer_seconds: per-layer scheduling/instruction overhead.
        p_idle: FPGA-rail power of the instantiated but idle DPU (clock
            tree + pipeline registers), in watts.
        p_compute_max: additional FPGA-rail power at 100% MAC-array
            occupancy, in watts.
        ddr_energy_per_byte: DDR-rail energy per byte moved, in joules.
        efficiency: per-layer-kind sustained fraction of peak.
    """

    name: str = "DPUCZDX8G-B4096"
    ops_per_cycle: int = 4096
    clock_hz: float = 300e6
    ddr_bandwidth: float = 6.4e9
    min_layer_seconds: float = 8e-6
    p_idle: float = 0.35
    p_compute_max: float = 2.4
    ddr_energy_per_byte: float = 260e-12
    efficiency: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_EFFICIENCY)
    )

    def __post_init__(self):
        require_positive(self.ops_per_cycle, "ops_per_cycle")
        require_positive(self.clock_hz, "clock_hz")
        require_positive(self.ddr_bandwidth, "ddr_bandwidth")
        require_non_negative(self.min_layer_seconds, "min_layer_seconds")
        require_non_negative(self.p_idle, "p_idle")
        require_non_negative(self.p_compute_max, "p_compute_max")
        require_non_negative(self.ddr_energy_per_byte, "ddr_energy_per_byte")
        for kind, value in self.efficiency.items():
            if not (0.0 < value <= 1.0):
                raise ValueError(
                    f"efficiency[{kind!r}] must be in (0, 1], got {value}"
                )

    @property
    def peak_macs_per_second(self) -> float:
        """Peak MAC throughput (ops are 2 per MAC)."""
        return self.ops_per_cycle / 2 * self.clock_hz


@dataclass(frozen=True)
class LayerExecution:
    """One scheduled layer: its duration and rail power draws."""

    layer: LayerSpec
    duration: float
    #: MAC-array occupancy in [0, 1] over the layer's duration.
    occupancy: float
    #: Power on the FPGA (VCCINT) rail, *excluding* the DPU idle floor.
    fpga_power: float
    #: Power on the DDR rail from this layer's memory traffic.
    ddr_power: float


class DpuCore:
    """Schedules compiled models onto one DPU configuration."""

    def __init__(self, config: DpuConfig = None):
        self.config = config if config is not None else DpuConfig()

    def schedule_layer(self, layer: LayerSpec) -> LayerExecution:
        """Roofline-schedule one layer."""
        config = self.config
        efficiency = config.efficiency.get(layer.kind, 1.0)
        compute_time = (
            layer.macs / (config.peak_macs_per_second * efficiency)
            if layer.macs
            else 0.0
        )
        memory_time = layer.memory_bytes / config.ddr_bandwidth
        duration = max(compute_time, memory_time, config.min_layer_seconds)
        occupancy = (
            (compute_time / duration) * efficiency if layer.macs else 0.0
        )
        fpga_power = config.p_compute_max * occupancy
        ddr_power = config.ddr_energy_per_byte * layer.memory_bytes / duration
        return LayerExecution(
            layer=layer,
            duration=duration,
            occupancy=occupancy,
            fpga_power=fpga_power,
            ddr_power=ddr_power,
        )

    def schedule(self, model: ModelSpec) -> List[LayerExecution]:
        """Schedule every layer of a model, in order."""
        return [self.schedule_layer(layer) for layer in model.layers]

    def inference_latency(self, model: ModelSpec) -> float:
        """DPU-side latency of one inference (excludes CPU phases)."""
        return sum(execution.duration for execution in self.schedule(model))

    def mean_fpga_power(self, model: ModelSpec) -> float:
        """Time-averaged FPGA-rail power during one inference,
        including the DPU idle floor."""
        executions = self.schedule(model)
        total_time = sum(execution.duration for execution in executions)
        energy = sum(
            execution.fpga_power * execution.duration
            for execution in executions
        )
        return self.config.p_idle + energy / total_time

    def __repr__(self) -> str:
        return f"DpuCore({self.config.name} @ {self.config.clock_hz/1e6:.0f} MHz)"
