"""DPU compiler: tiling-aware scheduling of layers onto the MAC array.

The Vitis-AI flow compiles each DNN into a DPU instruction stream; the
encrypted core then executes tiles of each layer on its systolic MAC
array.  :mod:`repro.dpu.dpu` approximates the result with fixed
per-kind efficiencies; this module derives those efficiencies from
first principles instead, by tiling every layer onto the array
geometry and counting wasted lanes:

* the B4096 array processes ``pixel_parallel x input_channel_parallel
  x output_channel_parallel`` MACs per cycle (8 x 16 x 16 for B4096);
* a layer whose channel counts do not fill the lanes wastes the
  remainder (the classic reason depthwise convolutions run at a small
  fraction of peak);
* each tile additionally pays a pipeline fill/drain overhead.

The compiler emits a :class:`CompiledModel` — per-layer tile counts,
cycle estimates and derived efficiency — and can configure a
:class:`~repro.dpu.dpu.DpuCore` with model-specific efficiencies, used
by the compiler-ablation tests to check the fixed-constant shortcut
against the first-principles model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.dpu.dpu import DpuConfig
from repro.dpu.layers import LayerSpec
from repro.dpu.models import ModelSpec
from repro.utils.validation import require_int_in_range


@dataclass(frozen=True)
class ArrayGeometry:
    """The MAC-array parallelism of one DPU configuration.

    B4096 = 8 pixels x 16 input channels x 16 output channels x 2 ops.
    """

    pixel_parallel: int = 8
    input_channel_parallel: int = 16
    output_channel_parallel: int = 16

    def __post_init__(self):
        for name in (
            "pixel_parallel",
            "input_channel_parallel",
            "output_channel_parallel",
        ):
            require_int_in_range(getattr(self, name), 1, 4096, name)

    @property
    def macs_per_cycle(self) -> int:
        """Peak MACs retired per cycle when every lane is busy."""
        return (
            self.pixel_parallel
            * self.input_channel_parallel
            * self.output_channel_parallel
        )

    @classmethod
    def for_config(cls, config: DpuConfig) -> "ArrayGeometry":
        """Geometry matching a core config's ops/cycle rating."""
        geometry = cls()
        if geometry.macs_per_cycle * 2 != config.ops_per_cycle:
            # Scale the pixel dimension to match non-B4096 ratings.
            pixels = max(
                1, config.ops_per_cycle // (2 * 16 * 16)
            )
            geometry = cls(pixel_parallel=pixels)
        return geometry


@dataclass(frozen=True)
class CompiledLayer:
    """One layer's tiling outcome."""

    layer: LayerSpec
    #: Number of array tiles the layer was cut into.
    tiles: int
    #: Cycles spent computing (including underfilled lanes).
    compute_cycles: int
    #: Fraction of array lanes doing useful work.
    efficiency: float


@dataclass(frozen=True)
class CompiledModel:
    """A model's full instruction-stream summary."""

    model: str
    layers: Tuple[CompiledLayer, ...]

    @property
    def total_cycles(self) -> int:
        """Total compute cycles across the stream."""
        return sum(layer.compute_cycles for layer in self.layers)

    @property
    def mean_efficiency(self) -> float:
        """MAC-weighted mean array efficiency."""
        total_macs = sum(c.layer.macs for c in self.layers)
        if total_macs == 0:
            return 0.0
        weighted = sum(
            c.efficiency * c.layer.macs for c in self.layers
        )
        return weighted / total_macs

    def efficiency_by_kind(self) -> Dict[str, float]:
        """MAC-weighted efficiency per layer kind (compute kinds only)."""
        macs: Dict[str, int] = {}
        weighted: Dict[str, float] = {}
        for compiled in self.layers:
            kind = compiled.layer.kind
            if compiled.layer.macs == 0:
                continue
            macs[kind] = macs.get(kind, 0) + compiled.layer.macs
            weighted[kind] = weighted.get(kind, 0.0) + (
                compiled.efficiency * compiled.layer.macs
            )
        return {kind: weighted[kind] / macs[kind] for kind in macs}


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


class DpuCompiler:
    """Tiles layers onto an array geometry and estimates cycles.

    Args:
        geometry: the MAC-array shape.
        tile_overhead_cycles: pipeline fill/drain cycles per tile.
        pipeline_efficiency: steady-state fraction of peak inside a
            full tile (control bubbles, bank conflicts).
    """

    def __init__(
        self,
        geometry: ArrayGeometry = None,
        tile_overhead_cycles: int = 24,
        pipeline_efficiency: float = 0.82,
    ):
        self.geometry = geometry if geometry is not None else ArrayGeometry()
        self.tile_overhead_cycles = require_int_in_range(
            tile_overhead_cycles, 0, 1_000_000, "tile_overhead_cycles"
        )
        if not (0.0 < pipeline_efficiency <= 1.0):
            raise ValueError("pipeline_efficiency must be in (0, 1]")
        self.pipeline_efficiency = pipeline_efficiency

    def _layer_shape(self, layer: LayerSpec) -> Tuple[int, int, int]:
        """(pixels, in_channels, out_channels) estimate from byte counts.

        Layer specs carry aggregate counts, not shapes, so the tiling
        reconstructs an effective shape: FC layers are 1-pixel GEMVs;
        depthwise layers have one input lane per output; dense convs
        infer channel counts from the weight/Mac ratios.
        """
        if layer.kind == "fc":
            return 1, layer.input_bytes, layer.output_bytes
        if layer.kind == "dwconv":
            channels = max(1, layer.weight_bytes // 9)
            pixels = max(1, layer.output_bytes // max(1, channels))
            return pixels, 1, channels
        # Dense conv: macs = pixels * out_ch * in_ch * k^2 and
        # weights = out_ch * in_ch * k^2  =>  pixels = macs / weights.
        weights = max(1, layer.weight_bytes)
        pixels = max(1, layer.macs // weights)
        out_channels = max(1, layer.output_bytes // pixels)
        in_group = max(1, weights // max(1, out_channels))  # in_ch * k^2
        return pixels, in_group, out_channels

    def compile_layer(self, layer: LayerSpec) -> CompiledLayer:
        """Tile one layer and estimate its compute cycles."""
        if layer.macs == 0:
            return CompiledLayer(
                layer=layer, tiles=0, compute_cycles=0, efficiency=0.0
            )
        geometry = self.geometry
        pixels, in_lanes, out_lanes = self._layer_shape(layer)
        # Fill/drain is paid per *output* tile; the input-channel loop
        # streams through the pipeline without re-filling it.
        tiles = (
            _ceil_div(pixels, geometry.pixel_parallel)
            * _ceil_div(out_lanes, geometry.output_channel_parallel)
        )
        # Cycles if every tile ran full: ideal = macs / macs_per_cycle;
        # underfill inflates it to tiles * cycles_per_tile.
        ideal_cycles = _ceil_div(layer.macs, geometry.macs_per_cycle)
        padded_macs = (
            _ceil_div(pixels, geometry.pixel_parallel)
            * geometry.pixel_parallel
            * _ceil_div(in_lanes, geometry.input_channel_parallel)
            * geometry.input_channel_parallel
            * _ceil_div(out_lanes, geometry.output_channel_parallel)
            * geometry.output_channel_parallel
        )
        padded_cycles = _ceil_div(padded_macs, geometry.macs_per_cycle)
        cycles = int(
            padded_cycles / self.pipeline_efficiency
            + tiles * self.tile_overhead_cycles
        )
        efficiency = min(1.0, ideal_cycles / max(1, cycles))
        return CompiledLayer(
            layer=layer,
            tiles=tiles,
            compute_cycles=cycles,
            efficiency=efficiency,
        )

    def compile(self, model: ModelSpec) -> CompiledModel:
        """Compile a whole model into its instruction-stream summary."""
        return CompiledModel(
            model=model.name,
            layers=tuple(
                self.compile_layer(layer) for layer in model.layers
            ),
        )

    def derive_efficiencies(self, model: ModelSpec) -> Dict[str, float]:
        """Model-specific per-kind efficiencies for a DpuConfig.

        Memory-only kinds keep efficiency 1.0 (they never bound on
        compute in the roofline).
        """
        derived = {
            "pool": 1.0,
            "add": 1.0,
            "concat": 1.0,
            "global_pool": 1.0,
        }
        derived.update(self.compile(model).efficiency_by_kind())
        return derived
