"""DNN layer descriptions and cost arithmetic for the DPU model.

The Xilinx DPU executes a compiled DNN as a sequence of layer
operations; each operation has a compute cost (multiply-accumulates)
and a memory cost (weights + activations moved over the AXI ports to
DDR).  Those two numbers, pushed through a roofline model of the DPU
core (:mod:`repro.dpu.dpu`), determine each layer's duration and its
power draw on the FPGA and DDR rails — the time-varying signature that
AmpereBleed's traces capture (paper Fig 3).

Layer constructors here compute MACs and byte counts from standard
shape arithmetic.  All tensors are NHWC, weights are int8 (the DPU is
an int8 engine), activations are int8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

#: Bytes per int8 element.
ELEMENT_BYTES = 1

LAYER_KINDS = (
    "conv",
    "dwconv",
    "fc",
    "pool",
    "add",
    "concat",
    "global_pool",
)


@dataclass(frozen=True)
class LayerSpec:
    """One compiled DPU operation.

    Attributes:
        name: human-readable layer name (e.g. ``"conv2_1"``).
        kind: one of :data:`LAYER_KINDS`; sets the DPU efficiency class.
        macs: multiply-accumulate count.
        weight_bytes: parameter bytes streamed from DDR.
        input_bytes: activation bytes read.
        output_bytes: activation bytes written.
    """

    name: str
    kind: str
    macs: int
    weight_bytes: int
    input_bytes: int
    output_bytes: int

    def __post_init__(self):
        if self.kind not in LAYER_KINDS:
            raise ValueError(
                f"unknown layer kind {self.kind!r}; expected {LAYER_KINDS}"
            )
        for field_name in ("macs", "weight_bytes", "input_bytes", "output_bytes"):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be >= 0")

    @property
    def memory_bytes(self) -> int:
        """Total DDR traffic of this layer."""
        return self.weight_bytes + self.input_bytes + self.output_bytes


def _out_dim(size: int, kernel: int, stride: int, padding: str) -> int:
    if padding == "same":
        return -(-size // stride)
    if padding == "valid":
        return (size - kernel) // stride + 1
    raise ValueError(f"padding must be 'same' or 'valid', got {padding!r}")


def conv(
    name: str,
    h: int,
    w: int,
    in_ch: int,
    out_ch: int,
    kernel: int = 3,
    stride: int = 1,
    padding: str = "same",
    groups: int = 1,
) -> Tuple[LayerSpec, Tuple[int, int, int]]:
    """A 2-D convolution; returns the layer and its output (h, w, c).

    ``groups`` splits channels (grouped convolution); depthwise conv
    has its own constructor since the DPU treats it differently.
    """
    if in_ch % groups or out_ch % groups:
        raise ValueError("channels must divide groups")
    out_h = _out_dim(h, kernel, stride, padding)
    out_w = _out_dim(w, kernel, stride, padding)
    macs = out_h * out_w * out_ch * (in_ch // groups) * kernel * kernel
    weights = out_ch * (in_ch // groups) * kernel * kernel * ELEMENT_BYTES
    spec = LayerSpec(
        name=name,
        kind="conv",
        macs=macs,
        weight_bytes=weights,
        input_bytes=h * w * in_ch * ELEMENT_BYTES,
        output_bytes=out_h * out_w * out_ch * ELEMENT_BYTES,
    )
    return spec, (out_h, out_w, out_ch)


def dwconv(
    name: str,
    h: int,
    w: int,
    channels: int,
    kernel: int = 3,
    stride: int = 1,
    padding: str = "same",
) -> Tuple[LayerSpec, Tuple[int, int, int]]:
    """A depthwise convolution (one filter per channel)."""
    out_h = _out_dim(h, kernel, stride, padding)
    out_w = _out_dim(w, kernel, stride, padding)
    macs = out_h * out_w * channels * kernel * kernel
    spec = LayerSpec(
        name=name,
        kind="dwconv",
        macs=macs,
        weight_bytes=channels * kernel * kernel * ELEMENT_BYTES,
        input_bytes=h * w * channels * ELEMENT_BYTES,
        output_bytes=out_h * out_w * channels * ELEMENT_BYTES,
    )
    return spec, (out_h, out_w, channels)


def fc(name: str, in_features: int, out_features: int) -> LayerSpec:
    """A fully-connected layer."""
    return LayerSpec(
        name=name,
        kind="fc",
        macs=in_features * out_features,
        weight_bytes=in_features * out_features * ELEMENT_BYTES,
        input_bytes=in_features * ELEMENT_BYTES,
        output_bytes=out_features * ELEMENT_BYTES,
    )


def pool(
    name: str,
    h: int,
    w: int,
    channels: int,
    kernel: int = 2,
    stride: int = None,
    padding: str = "valid",
) -> Tuple[LayerSpec, Tuple[int, int, int]]:
    """A max/avg pooling layer (compute-free, memory-only on the DPU)."""
    stride = kernel if stride is None else stride
    out_h = _out_dim(h, kernel, stride, padding)
    out_w = _out_dim(w, kernel, stride, padding)
    spec = LayerSpec(
        name=name,
        kind="pool",
        macs=0,
        weight_bytes=0,
        input_bytes=h * w * channels * ELEMENT_BYTES,
        output_bytes=out_h * out_w * channels * ELEMENT_BYTES,
    )
    return spec, (out_h, out_w, channels)


def global_pool(
    name: str, h: int, w: int, channels: int
) -> Tuple[LayerSpec, Tuple[int, int, int]]:
    """Global average pooling down to 1x1."""
    spec = LayerSpec(
        name=name,
        kind="global_pool",
        macs=0,
        weight_bytes=0,
        input_bytes=h * w * channels * ELEMENT_BYTES,
        output_bytes=channels * ELEMENT_BYTES,
    )
    return spec, (1, 1, channels)


def add(name: str, h: int, w: int, channels: int) -> LayerSpec:
    """An elementwise residual addition."""
    tensor = h * w * channels * ELEMENT_BYTES
    return LayerSpec(
        name=name,
        kind="add",
        macs=0,
        weight_bytes=0,
        input_bytes=2 * tensor,
        output_bytes=tensor,
    )


def concat(name: str, h: int, w: int, channel_list: List[int]) -> Tuple[
    LayerSpec, Tuple[int, int, int]
]:
    """A channel concatenation (Inception/DenseNet style)."""
    total = sum(channel_list)
    tensor_in = h * w * total * ELEMENT_BYTES
    spec = LayerSpec(
        name=name,
        kind="concat",
        macs=0,
        weight_bytes=0,
        input_bytes=tensor_in,
        output_bytes=tensor_in,
    )
    return spec, (h, w, total)


def total_macs(layers: List[LayerSpec]) -> int:
    """Summed MACs of a layer sequence."""
    return sum(layer.macs for layer in layers)


def total_weight_bytes(layers: List[LayerSpec]) -> int:
    """Summed parameter bytes (the 'model size' of paper Fig 3)."""
    return sum(layer.weight_bytes for layer in layers)
