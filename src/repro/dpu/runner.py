"""Inference runner: turns a model into per-rail activity timelines.

The Vitis-AI serving loop the paper attacks looks like::

    while True:
        image = preprocess(next_input())   # CPU (FPD rail), DDR traffic
        dpu.run(image)                     # FPGA + DDR rails
        scores = postprocess(output)       # CPU (FPD rail)

Each phase loads different rails, so the four Table II sensors see
four synchronized but differently-shaped traces (paper Fig 3).  The
runner builds those traces:

* :meth:`DpuRunner.cycle_profile` — one serving cycle as per-rail
  power segments;
* :meth:`DpuRunner.rail_timelines` — an idealized periodic timeline
  (deterministic, useful for demos and analytic checks);
* :meth:`DpuRunner.trace_timelines` — a finite jittered run: per-cycle
  duration jitter plus occasional OS preemption stalls, which is what
  the fingerprinting evaluation samples (same model, different trace
  every time);
* :meth:`DpuRunner.deploy` — attach a run to a :class:`repro.soc.Soc`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.dpu.dpu import DpuCore
from repro.dpu.models import ModelSpec
from repro.soc.workload import ActivityTimeline, PiecewiseActivity
from repro.utils.rng import RngLike, spawn
from repro.utils.validation import require_non_negative, require_positive

#: The rails a DPU serving loop loads (Table II domains).
DPU_RAILS = ("fpga", "ddr", "fpd", "lpd")


@dataclass(frozen=True)
class RuntimeConfig:
    """CPU-side (Vitis-AI runtime) cost model.

    Attributes:
        preprocess_seconds_per_pixel: image decode/resize time per
            input pixel on one Cortex-A53 (sets the FPD-phase length;
            bigger inputs -> longer CPU phases).
        p_preprocess: FPD-rail power while preprocessing, watts.
        postprocess_seconds: softmax/top-k time per inference.
        p_postprocess: FPD-rail power while postprocessing, watts.
        p_runtime_poll: FPD-rail power while the runtime busy-waits on
            the DPU.
        preprocess_ddr_power: DDR-rail power during image staging.
        p_lpd_pre: LPD-rail power during preprocessing (PMU and
            peripheral chatter while the CPU cluster is busy).
        p_lpd_run: LPD-rail power while the DPU runs (interrupt
            controller + driver activity).
        p_lpd_post: LPD-rail power during postprocessing.
        gap_seconds: idle gap between serving cycles.
    """

    preprocess_seconds_per_pixel: float = 6.0e-8
    p_preprocess: float = 1.1
    postprocess_seconds: float = 1.2e-3
    p_postprocess: float = 0.85
    p_runtime_poll: float = 0.18
    preprocess_ddr_power: float = 0.12
    p_lpd_pre: float = 0.065
    p_lpd_run: float = 0.020
    p_lpd_post: float = 0.050
    gap_seconds: float = 0.25e-3

    def __post_init__(self):
        require_non_negative(
            self.preprocess_seconds_per_pixel, "preprocess_seconds_per_pixel"
        )
        require_non_negative(self.postprocess_seconds, "postprocess_seconds")
        require_non_negative(self.gap_seconds, "gap_seconds")

    def preprocess_seconds(self, input_size: int) -> float:
        """CPU preprocessing time for a square input of this size."""
        return self.preprocess_seconds_per_pixel * input_size * input_size


@dataclass(frozen=True)
class CycleProfile:
    """One serving cycle as per-rail piecewise-constant segments.

    ``durations`` has one entry per segment; ``powers[rail]`` has the
    matching per-segment power draw for each of :data:`DPU_RAILS`.
    """

    model: str
    durations: np.ndarray
    powers: Dict[str, np.ndarray]

    @property
    def period(self) -> float:
        """Length of one serving cycle in seconds."""
        return float(self.durations.sum())

    def mean_power(self, rail: str) -> float:
        """Cycle-averaged power on one rail."""
        return float(
            np.dot(self.durations, self.powers[rail]) / self.period
        )


class DpuRunner:
    """Builds power timelines for DPU inference serving loops.

    Args:
        dpu: the DPU core model (default B4096 @ 300 MHz).
        runtime: the CPU-side runtime cost model.
        cycle_jitter: relative RMS jitter of each serving cycle's
            duration (scheduling noise).
        stall_probability: per-cycle probability of an OS preemption
            stall inserted after the cycle.
        stall_seconds: duration of one preemption stall.
    """

    def __init__(
        self,
        dpu: DpuCore = None,
        runtime: RuntimeConfig = None,
        cycle_jitter: float = 0.006,
        stall_probability: float = 0.015,
        stall_seconds: float = 2.0e-3,
    ):
        self.dpu = dpu if dpu is not None else DpuCore()
        self.runtime = runtime if runtime is not None else RuntimeConfig()
        self.cycle_jitter = require_non_negative(cycle_jitter, "cycle_jitter")
        if not (0.0 <= stall_probability < 1.0):
            raise ValueError("stall_probability must be in [0, 1)")
        self.stall_probability = stall_probability
        self.stall_seconds = require_non_negative(
            stall_seconds, "stall_seconds"
        )

    # ------------------------------------------------------- profiles

    def cycle_profile(self, model: ModelSpec) -> CycleProfile:
        """One serving cycle: preprocess, per-layer DPU run, postprocess,
        inter-cycle gap — with each segment's draw on all four rails."""
        runtime = self.runtime
        executions = self.dpu.schedule(model)
        pre_seconds = runtime.preprocess_seconds(model.input_size)

        durations: List[float] = [pre_seconds]
        fpga: List[float] = [0.0]
        ddr: List[float] = [runtime.preprocess_ddr_power]
        fpd: List[float] = [runtime.p_preprocess]
        lpd: List[float] = [runtime.p_lpd_pre]

        for execution in executions:
            durations.append(execution.duration)
            fpga.append(self.dpu.config.p_idle + execution.fpga_power)
            ddr.append(execution.ddr_power)
            fpd.append(runtime.p_runtime_poll)
            lpd.append(runtime.p_lpd_run)

        durations.append(runtime.postprocess_seconds)
        fpga.append(0.0)
        ddr.append(0.0)
        fpd.append(runtime.p_postprocess)
        lpd.append(runtime.p_lpd_post)

        durations.append(runtime.gap_seconds)
        fpga.append(0.0)
        ddr.append(0.0)
        fpd.append(0.0)
        lpd.append(0.0)

        return CycleProfile(
            model=model.name,
            durations=np.asarray(durations, dtype=np.float64),
            powers={
                "fpga": np.asarray(fpga, dtype=np.float64),
                "ddr": np.asarray(ddr, dtype=np.float64),
                "fpd": np.asarray(fpd, dtype=np.float64),
                "lpd": np.asarray(lpd, dtype=np.float64),
            },
        )

    def cycle_period(self, model: ModelSpec) -> float:
        """End-to-end serving period (CPU phases + DPU latency + gap)."""
        return self.cycle_profile(model).period

    def rail_timelines(
        self, model: ModelSpec, start: float = 0.0
    ) -> Dict[str, ActivityTimeline]:
        """Idealized periodic timelines (no jitter), one per rail."""
        profile = self.cycle_profile(model)
        edges = start + np.concatenate(
            ([0.0], np.cumsum(profile.durations))
        )
        return {
            rail: PiecewiseActivity(
                edges, profile.powers[rail], period=profile.period
            )
            for rail in DPU_RAILS
        }

    def trace_timelines(
        self,
        model: ModelSpec,
        duration: float,
        seed: RngLike = None,
        start: float = 0.0,
    ) -> Dict[str, ActivityTimeline]:
        """A finite, jittered serving run covering ``duration`` seconds.

        Every cycle's length is scaled by ``N(1, cycle_jitter)`` and a
        preemption stall is appended with ``stall_probability`` — so two
        runs of the same model give *different* traces, as on real
        hardware.  All four rails share the same jittered time base.
        """
        require_positive(duration, "duration")
        rng = spawn(seed, f"dpu-trace-{model.name}")
        profile = self.cycle_profile(model)
        n_cycles = int(np.ceil(duration / profile.period)) + 2

        scales = 1.0 + self.cycle_jitter * rng.standard_normal(n_cycles)
        scales = np.clip(scales, 0.5, 1.5)
        stalls = np.where(
            rng.random(n_cycles) < self.stall_probability,
            self.stall_seconds,
            0.0,
        )

        n_segments = profile.durations.size
        # (cycles, segments+1): jitter-scaled cycle segments + stall slot.
        durations = np.empty((n_cycles, n_segments + 1), dtype=np.float64)
        durations[:, :n_segments] = np.outer(scales, profile.durations)
        durations[:, n_segments] = stalls
        flat_durations = durations.reshape(-1)

        keep = flat_durations > 0.0
        flat_durations = flat_durations[keep]
        edges = start + np.concatenate(([0.0], np.cumsum(flat_durations)))

        timelines: Dict[str, ActivityTimeline] = {}
        for rail in DPU_RAILS:
            powers = np.empty((n_cycles, n_segments + 1), dtype=np.float64)
            powers[:, :n_segments] = profile.powers[rail][np.newaxis, :]
            powers[:, n_segments] = 0.0  # stalled: serving loop idle
            timelines[rail] = PiecewiseActivity(
                edges, powers.reshape(-1)[keep]
            )
        return timelines

    # ----------------------------------------------------- deployment

    def deploy(
        self,
        soc,
        model: ModelSpec,
        duration: float = None,
        seed: RngLike = None,
        start: float = 0.0,
        name: str = "dpu",
    ) -> None:
        """Attach a serving run to all four rails of a SoC.

        With ``duration`` the run is a finite jittered trace; without
        it the idealized periodic loop is attached.  Replaces any
        previous deployment of the same ``name``.
        """
        if duration is None:
            timelines = self.rail_timelines(model, start=start)
        else:
            timelines = self.trace_timelines(
                model, duration, seed=seed, start=start
            )
        for rail, timeline in timelines.items():
            soc.replace_workload(rail, name, timeline)

    def undeploy(self, soc, name: str = "dpu") -> None:
        """Detach a previous deployment from all four rails."""
        for rail in DPU_RAILS:
            try:
                soc.detach_workload(rail, name)
            except KeyError:
                pass

    def __repr__(self) -> str:
        return f"DpuRunner({self.dpu!r})"
