"""Counter-based (hash) random numbers for latch-consistent noise.

The hwmon layer must return the *identical* reading every time an
attacker polls within one sensor update period — including across
separate calls into the simulator.  Stateful generators cannot provide
that, so sensor noise is a pure function of ``(key, counter, stream)``
computed with a vectorized splitmix64 hash: same conversion, same
noise, forever.  This is the standard counter-based RNG construction
(Philox/Threefry family), implemented minimally in numpy.
"""

from __future__ import annotations

import numpy as np

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)


def splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer over uint64 values."""
    x = np.asarray(x, dtype=np.uint64)
    with np.errstate(over="ignore"):
        z = x + _GOLDEN
        z = (z ^ (z >> np.uint64(30))) * _MIX1
        z = (z ^ (z >> np.uint64(27))) * _MIX2
        z = z ^ (z >> np.uint64(31))
    return z


def _mix(key: int, counter: np.ndarray, stream: int) -> np.ndarray:
    counter = np.asarray(counter, dtype=np.uint64)
    with np.errstate(over="ignore"):
        seeded = splitmix64(
            np.uint64(key & 0xFFFFFFFFFFFFFFFF)
            + splitmix64(np.uint64(stream))
        )
        return splitmix64(counter ^ seeded)


def hashed_uniform(key: int, counter: np.ndarray, stream: int = 0) -> np.ndarray:
    """Uniform floats in [0, 1), a pure function of (key, counter, stream)."""
    bits = _mix(key, counter, stream)
    # Use the top 53 bits for a full-precision double in [0, 1).
    return (bits >> np.uint64(11)).astype(np.float64) * (2.0**-53)


def hashed_normal(key: int, counter: np.ndarray, stream: int = 0) -> np.ndarray:
    """Standard-normal draws, a pure function of (key, counter, stream).

    Box-Muller over two independent hashed uniforms; ``u1`` is nudged
    away from zero so the log never overflows.
    """
    u1 = hashed_uniform(key, counter, stream=2 * stream)
    u2 = hashed_uniform(key, counter, stream=2 * stream + 1)
    u1 = np.maximum(u1, 2.0**-53)
    return np.sqrt(-2.0 * np.log(u1)) * np.cos(2.0 * np.pi * u2)
