"""Seed discipline for the simulation substrate.

Every stochastic component in the simulator draws from an explicit
:class:`numpy.random.Generator`.  Experiments accept a single integer
seed and derive independent child streams for each noise source with
:func:`spawn`, so adding a new noise source never perturbs the draws of
existing ones (the streams are keyed by name, not by draw order).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]


def normalize_seed(seed: Optional[int]) -> int:
    """The library-wide seed policy: ``None`` means seed 0.

    Every component keys its noise streams off one integer seed.
    ``None`` used to mean "fresh entropy" in some constructors and 0 in
    others; a run that cannot be replayed is useless to the offline
    analysis plane, so the unseeded case pins to the default seed
    everywhere.  (Re-exported by :mod:`repro.session`, which applies
    the same policy at session construction.)
    """
    return 0 if seed is None else int(seed)


def ensure_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be ``None`` (normalized to the default seed 0 — never
    OS entropy, per :func:`normalize_seed`), an integer, or an existing
    generator (returned unchanged so callers can share a stream).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(normalize_seed(seed))


def spawn(seed: RngLike, name: str) -> np.random.Generator:
    """Derive an independent child generator keyed by ``name``.

    For integer seeds the child stream is a pure function of
    ``(seed, name)`` — stable across runs and insensitive to the order in
    which other components spawn their own streams.  For generator or
    ``None`` seeds a child is spawned from the parent's bit generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed.spawn(1)[0]
    entropy = [abs(hash_name(name))]
    if seed is not None:
        entropy.append(int(seed))
    return np.random.default_rng(np.random.SeedSequence(entropy))


def hash_name(name: str) -> int:
    """Deterministic (process-independent) 63-bit hash of a stream name.

    ``hash()`` is salted per process for strings, so we use an FNV-1a
    variant instead to keep child streams reproducible across runs.
    """
    value = 0xCBF29CE484222325
    for byte in name.encode("utf-8"):
        value ^= byte
        value = (value * 0x100000001B3) % (1 << 64)
    return value % (1 << 63)


def derive_seed(seed: Optional[int], name: str) -> int:
    """Derive a stable integer sub-seed from ``(seed, name)``.

    Useful when an API requires an integer seed rather than a generator.
    """
    base = 0 if seed is None else int(seed)
    return (base * 1000003 + hash_name(name)) % (1 << 63)
