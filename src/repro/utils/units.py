"""SI unit helpers used across the simulation substrate.

All internal quantities are stored in base SI units (amperes, volts,
watts, seconds, hertz, ohms).  These helpers exist so that call sites can
express datasheet-style constants (``milli(1.25)`` volts, ``micro(2.5)``
volts, ``mega(100)`` hertz) without sprinkling bare powers of ten through
the code, and so that sampled values can be converted back into the
integer milli-units that the Linux hwmon ABI reports.
"""

from __future__ import annotations

import math

#: Multiplicative SI prefixes (value of one prefixed unit in base units).
PICO = 1e-12
NANO = 1e-9
MICRO = 1e-6
MILLI = 1e-3
KILO = 1e3
MEGA = 1e6
GIGA = 1e9


def pico(value: float) -> float:
    """Convert a value expressed in pico-units to base units."""
    return value * PICO


def nano(value: float) -> float:
    """Convert a value expressed in nano-units to base units."""
    return value * NANO


def micro(value: float) -> float:
    """Convert a value expressed in micro-units to base units."""
    return value * MICRO


def milli(value: float) -> float:
    """Convert a value expressed in milli-units to base units."""
    return value * MILLI


def kilo(value: float) -> float:
    """Convert a value expressed in kilo-units to base units."""
    return value * KILO


def mega(value: float) -> float:
    """Convert a value expressed in mega-units to base units."""
    return value * MEGA


def giga(value: float) -> float:
    """Convert a value expressed in giga-units to base units."""
    return value * GIGA


def to_milli(value: float) -> float:
    """Convert a base-unit value to milli-units (e.g. A -> mA)."""
    return value / MILLI


def to_micro(value: float) -> float:
    """Convert a base-unit value to micro-units (e.g. V -> uV)."""
    return value / MICRO


def amps_to_hwmon(value: float) -> int:
    """Quantize a current in amperes to the integer milliamps hwmon reports.

    The hwmon ABI exposes ``currN_input`` in integer milliamps; the kernel
    rounds the register value to the nearest representable integer.
    """
    return int(round(value / MILLI))


def volts_to_hwmon(value: float) -> int:
    """Quantize a voltage in volts to the integer millivolts hwmon reports."""
    return int(round(value / MILLI))


def watts_to_hwmon(value: float) -> int:
    """Quantize a power in watts to the integer microwatts hwmon reports.

    ``powerN_input`` is reported in microwatts by the hwmon ABI.
    """
    return int(round(value / MICRO))


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into the closed interval [low, high].

    Raises :class:`ValueError` if the interval is empty (``low > high``).
    """
    if low > high:
        raise ValueError(f"empty clamp interval: [{low}, {high}]")
    return min(max(value, low), high)


def db(ratio: float) -> float:
    """Express a power ratio in decibels."""
    if ratio <= 0:
        raise ValueError("dB undefined for non-positive ratios")
    return 10.0 * math.log10(ratio)
