"""Small argument-validation helpers shared across the package."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


def require_positive(value: float, name: str) -> float:
    """Validate that ``value`` is strictly positive and return it."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return float(value)


def require_non_negative(value: float, name: str) -> float:
    """Validate that ``value`` is >= 0 and return it."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return float(value)


def require_in_range(value: float, low: float, high: float, name: str) -> float:
    """Validate that ``value`` lies in the closed interval [low, high]."""
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    return float(value)


def require_int_in_range(value: int, low: int, high: int, name: str) -> int:
    """Validate an integer argument against an inclusive range."""
    if not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    return int(value)


def require_one_of(value: str, options: Iterable[str], name: str) -> str:
    """Validate a string argument against an allowed set."""
    allowed = set(options)
    if value not in allowed:
        raise ValueError(f"{name} must be one of {sorted(allowed)}, got {value!r}")
    return value


def as_1d_float_array(values: Sequence[float], name: str) -> np.ndarray:
    """Coerce ``values`` to a 1-D float64 array, rejecting other shapes."""
    array = np.asarray(values, dtype=np.float64)
    if array.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {array.shape}")
    return array


def require_sorted(values: np.ndarray, name: str) -> np.ndarray:
    """Validate that a 1-D array is non-decreasing."""
    if values.size > 1 and np.any(np.diff(values) < 0):
        raise ValueError(f"{name} must be sorted in non-decreasing order")
    return values
