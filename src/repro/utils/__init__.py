"""Shared helpers: SI units, RNG seed discipline, argument validation."""

from repro.utils.rng import RngLike, derive_seed, ensure_rng, spawn
from repro.utils.units import (
    amps_to_hwmon,
    clamp,
    giga,
    kilo,
    mega,
    micro,
    milli,
    nano,
    to_micro,
    to_milli,
    volts_to_hwmon,
    watts_to_hwmon,
)
from repro.utils.validation import (
    as_1d_float_array,
    require_in_range,
    require_int_in_range,
    require_non_negative,
    require_one_of,
    require_positive,
    require_sorted,
)

__all__ = [
    "RngLike",
    "derive_seed",
    "ensure_rng",
    "spawn",
    "amps_to_hwmon",
    "clamp",
    "giga",
    "kilo",
    "mega",
    "micro",
    "milli",
    "nano",
    "to_micro",
    "to_milli",
    "volts_to_hwmon",
    "watts_to_hwmon",
    "as_1d_float_array",
    "require_in_range",
    "require_int_in_range",
    "require_non_negative",
    "require_one_of",
    "require_positive",
    "require_sorted",
]
