"""RSA reference math and the paper's Hamming-weight key construction."""

from repro.crypto.rsa_math import (
    PAPER_HAMMING_WEIGHTS,
    RSA_BITS,
    exponent_bits_lsb_first,
    hamming_weight,
    iter_weight_sweep,
    make_exponent_with_weight,
    paper_key_set,
    random_modulus,
    square_and_multiply,
    square_and_multiply_trace,
)

__all__ = [
    "PAPER_HAMMING_WEIGHTS",
    "RSA_BITS",
    "exponent_bits_lsb_first",
    "hamming_weight",
    "iter_weight_sweep",
    "make_exponent_with_weight",
    "paper_key_set",
    "random_modulus",
    "square_and_multiply",
    "square_and_multiply_trace",
]
