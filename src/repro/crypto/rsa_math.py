"""RSA reference arithmetic and the paper's 17-key construction.

The victim circuit (paper §IV-C, after Zhao & Suh) computes modular
exponentiation with the LSB-first square-and-multiply algorithm: the
state machine iterates over every bit of the 1024-bit exponent; each
iteration always squares, and *additionally* multiplies when the
current exponent bit is 1.  The number of multiply activations over a
full exponentiation therefore equals the exponent's Hamming weight —
the quantity AmpereBleed recovers from the current trace.

This module provides the bit-exact reference (validated against
Python's ``pow``), Hamming-weight utilities, and the construction of
the paper's 17 test keys with Hamming weights {1, 64, 128, ..., 1024}.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from repro.utils.rng import RngLike, spawn

#: The paper's modulus width.
RSA_BITS = 1024

#: Fig 4's Hamming-weight grid: 1, then multiples of 64 up to 1024.
PAPER_HAMMING_WEIGHTS: Tuple[int, ...] = (1,) + tuple(
    64 * k for k in range(1, 17)
)


def hamming_weight(value: int) -> int:
    """Number of set bits in a non-negative integer."""
    if value < 0:
        raise ValueError("hamming_weight is defined for non-negative integers")
    return bin(value).count("1")


def exponent_bits_lsb_first(exponent: int, width: int = RSA_BITS) -> List[int]:
    """The exponent's bits, least-significant first, padded to ``width``.

    The circuit's state machine walks exactly ``width`` iterations
    regardless of the key value (it shifts the full register), so the
    padding zeros matter: they are iterations with only the square
    module active.
    """
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    if exponent.bit_length() > width:
        raise ValueError(
            f"exponent needs {exponent.bit_length()} bits, width is {width}"
        )
    return [(exponent >> i) & 1 for i in range(width)]


def square_and_multiply(
    base: int, exponent: int, modulus: int, width: int = RSA_BITS
) -> int:
    """LSB-first square-and-multiply modular exponentiation.

    Matches the victim circuit's algorithm exactly (fixed ``width``
    iterations); equal to ``pow(base, exponent, modulus)``.
    """
    if modulus <= 0:
        raise ValueError("modulus must be positive")
    result = 1 % modulus
    square = base % modulus
    for bit in exponent_bits_lsb_first(exponent, width):
        if bit:
            result = (result * square) % modulus
        square = (square * square) % modulus
    return result


def square_and_multiply_trace(
    base: int, exponent: int, modulus: int, width: int = RSA_BITS
) -> Tuple[int, List[int]]:
    """Like :func:`square_and_multiply`, also returning the per-iteration
    multiply-activation schedule (1 = both modules active, 0 = square
    only) — the side-channel-relevant control flow."""
    schedule = exponent_bits_lsb_first(exponent, width)
    return square_and_multiply(base, exponent, modulus, width), schedule


def make_exponent_with_weight(
    weight: int, width: int = RSA_BITS, seed: RngLike = None
) -> int:
    """Construct a ``width``-bit exponent with exact Hamming weight.

    Bit positions are drawn uniformly without replacement, matching the
    paper's "17 distinct keys whose Hamming weights increase in
    intervals of 64" (the first key is 1 since the circuit does not
    support a zero exponent).
    """
    if not (1 <= weight <= width):
        raise ValueError(f"weight must be in [1, {width}], got {weight}")
    rng = spawn(seed, f"rsa-exponent-w{weight}")
    positions = rng.choice(width, size=weight, replace=False)
    exponent = 0
    for position in positions:
        exponent |= 1 << int(position)
    return exponent


def paper_key_set(
    width: int = RSA_BITS, seed: RngLike = None
) -> List[Tuple[int, int]]:
    """The paper's 17 (hamming_weight, exponent) pairs for Fig 4."""
    return [
        (weight, make_exponent_with_weight(weight, width, seed))
        for weight in PAPER_HAMMING_WEIGHTS
    ]


def random_modulus(width: int = RSA_BITS, seed: RngLike = None) -> int:
    """A ``width``-bit odd modulus for exercising the datapath.

    The side channel depends only on the exponent's bit pattern, not on
    the modulus being a proper RSA semiprime, so an odd random modulus
    with the top bit set is sufficient (and keeps construction fast —
    generating true 512-bit primes would add nothing to the model).
    """
    rng = spawn(seed, "rsa-modulus")
    limbs = rng.integers(0, 1 << 32, size=max(1, width // 32), dtype=np.uint64)
    value = 0
    for limb in limbs:
        value = (value << 32) | int(limb)
    value |= 1 << (width - 1)  # full width
    value |= 1  # odd
    return value


def iter_weight_sweep(
    weights: Tuple[int, ...] = PAPER_HAMMING_WEIGHTS,
    width: int = RSA_BITS,
    seed: RngLike = None,
) -> Iterator[Tuple[int, int]]:
    """Yield (weight, exponent) pairs over a Hamming-weight sweep."""
    for weight in weights:
        yield weight, make_exponent_with_weight(weight, width, seed)
