"""Retry/backoff policy and per-sensor health for resilient sampling.

The resilient acquisition plane pairs a :class:`~repro.faults.plan.
FaultPlan` (what goes wrong) with a :class:`RetryPolicy` (what the
attacker's poll loop does about it): bounded re-reads with
deterministic exponential backoff *in simulated time*, a plausibility
gate that catches torn values, and linear interpolation over the polls
that never recovered.  :class:`SensorHealth` is the per-channel state
machine — ``healthy`` → ``flaky`` on any observed fault, ``flaky`` →
``dead`` after enough consecutive total outages — that the degraded
fallback paths consult before dropping a channel.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Health states, in degradation order.
HEALTHY = "healthy"
FLAKY = "flaky"
DEAD = "dead"

_ORDER = {HEALTHY: 0, FLAKY: 1, DEAD: 2}


def worst_health(*states: str) -> str:
    """The most degraded of several health states."""
    if not states:
        return HEALTHY
    return max(states, key=lambda state: _ORDER.get(state, 0))


@dataclass(frozen=True)
class RetryPolicy:
    """How the resilient poll loop reacts to read failures.

    Attributes:
        max_retries: bounded re-read attempts per failed poll.
        backoff_s: first backoff delay (simulated seconds).
        backoff_multiplier: exponential backoff growth per attempt.
        plausible_limit: readings with ``|value|`` above this (hwmon
            integer units) are treated as torn and retried.
        interpolate_gaps: recover unrecovered polls by linear
            interpolation from the chunk's good samples (the
            alternative is to fail the whole read strictly).
        dead_after_outages: consecutive all-samples-lost reads before a
            channel's health pins to ``dead``.
    """

    max_retries: int = 3
    backoff_s: float = 2e-3
    backoff_multiplier: float = 2.0
    plausible_limit: int = 5_000_000
    interpolate_gaps: bool = True
    dead_after_outages: int = 2

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_s <= 0:
            raise ValueError("backoff_s must be > 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if self.plausible_limit <= 0:
            raise ValueError("plausible_limit must be > 0")
        if self.dead_after_outages < 1:
            raise ValueError("dead_after_outages must be >= 1")

    def backoff(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (0-based), in seconds."""
        return self.backoff_s * self.backoff_multiplier**attempt


class SensorHealth:
    """healthy → flaky → dead state machine for one polled channel.

    Any observed fault makes the channel ``flaky``; a clean read heals
    it back to ``healthy``.  A read where *every* sample was lost is an
    outage; ``dead_after_outages`` consecutive outages pin the channel
    to ``dead``, which is sticky until :meth:`reset`.
    """

    def __init__(self, dead_after_outages: int = 2):
        if dead_after_outages < 1:
            raise ValueError("dead_after_outages must be >= 1")
        self.dead_after_outages = dead_after_outages
        self._state = HEALTHY
        self._consecutive_outages = 0

    @property
    def state(self) -> str:
        """Current health state."""
        return self._state

    @property
    def is_dead(self) -> bool:
        return self._state == DEAD

    def note_read(self, faults: int, gaps: int, total: int) -> str:
        """Record one read's outcome; returns the new state.

        Args:
            faults: samples that hit any fault (recovered or not).
            gaps: samples that never recovered.
            total: samples requested.
        """
        if total <= 0:
            raise ValueError("total must be > 0")
        if self._state == DEAD:
            return self._state
        if gaps >= total:
            self._consecutive_outages += 1
            if self._consecutive_outages >= self.dead_after_outages:
                self._state = DEAD
            else:
                self._state = FLAKY
        else:
            self._consecutive_outages = 0
            self._state = FLAKY if (faults > 0 or gaps > 0) else HEALTHY
        return self._state

    def force_dead(self) -> None:
        """Pin the channel dead (a confirmed-unbound sensor)."""
        self._state = DEAD

    def reset(self) -> None:
        """Forget all history (a re-binding driver)."""
        self._state = HEALTHY
        self._consecutive_outages = 0

    def __repr__(self) -> str:
        return (
            f"SensorHealth({self._state}, "
            f"outages={self._consecutive_outages})"
        )
