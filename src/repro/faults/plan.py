"""Seed-deterministic fault schedules for the hwmon read boundary.

A real AmpereBleed attacker polls world-readable sysfs files for hours,
and real sysfs reads fail: transient ``EAGAIN``/``EIO``, sensors
vanishing on driver rebind (``ENOENT``), root flipping
``update_interval`` mid-run, I2C hangs that latch one stale conversion
for several periods, and torn reads that return garbage.  A
:class:`FaultPlan` schedules all of those as *pure functions* of
``(plan seed, device, poll time or latch index)`` using the same
counter-based hashing as :mod:`repro.utils.hashrand` — so the fault
schedule is bit-identical across runs, chunk sizes, and worker counts,
and a retried read at a shifted time draws a fresh, equally
deterministic outcome.

:meth:`FaultPlan.none` is the armed-but-disabled plan: every rate is
zero and the hwmon layer treats it as "no plan", so traces stay
bit-identical to an unarmed run.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro.perf.config import fault_rate_from_env
from repro.utils.hashrand import hashed_uniform
from repro.utils.rng import derive_seed

#: Noise stream tags for the fault schedule (disjoint from the hwmon
#: sensor streams, which use 0-4).
_STREAM_TRANSIENT = 16
_STREAM_TORN = 17
_STREAM_TORN_MAGNITUDE = 18
_STREAM_STALE = 19
_STREAM_HOTPLUG = 20
_STREAM_INTERVAL = 21

#: Torn reads land far outside any physical hwmon range (mA / mV / uW
#: magnitudes on these boards stay below a few million), so a
#: plausibility gate can spot them.
TORN_MAGNITUDE = 1 << 26


def _time_counters(times: np.ndarray) -> np.ndarray:
    """A uint64 hash counter per poll: the raw bits of the timestamp.

    Two polls at the same simulated instant draw the same fault — the
    kernel would serve them the same failure — while a retry shifted by
    any backoff draws an independent one.
    """
    return np.ascontiguousarray(
        np.atleast_1d(np.asarray(times, dtype=np.float64))
    ).view(np.uint64)


@dataclass(frozen=True)
class FaultPlan:
    """One deterministic fault schedule, shared by every armed device.

    Attributes:
        seed: keys the schedule; combined with each device's name so
            devices fail independently.
        transient_rate: per-poll probability of a transient read error
            (``EAGAIN``/``EIO``) — the read fails, an immediate retry
            may succeed.
        torn_rate: per-poll probability of a torn/out-of-range value —
            the read "succeeds" but returns garbage far outside the
            physical range.
        stale_rate: per-block probability that the sensor latches one
            conversion for a whole run of ``stale_run_latches`` update
            periods (an I2C hang that recovers).
        stale_run_latches: length of one stale run, in update periods.
        hotplug_rate: per-slot probability that the device disappears
            (driver rebind); reads inside the window raise ``ENOENT``.
        hotplug_duration_s: how long a hotplug window lasts.
        interval_change_rate: per-slot probability that root has
            changed ``update_interval`` for that slot; conversions
            refresh ``interval_change_factor`` times slower there.
        interval_change_factor: slow-down factor during an interval
            change window.
        slot_s: scheduling grid for hotplug/interval windows (seconds).
    """

    seed: int = 0
    transient_rate: float = 0.0
    torn_rate: float = 0.0
    stale_rate: float = 0.0
    stale_run_latches: int = 4
    hotplug_rate: float = 0.0
    hotplug_duration_s: float = 0.05
    interval_change_rate: float = 0.0
    interval_change_factor: int = 4
    slot_s: float = 1.0

    def __post_init__(self):
        for name in (
            "transient_rate",
            "torn_rate",
            "stale_rate",
            "hotplug_rate",
            "interval_change_rate",
        ):
            value = getattr(self, name)
            if not (0.0 <= value <= 1.0):
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.stale_run_latches < 1:
            raise ValueError("stale_run_latches must be >= 1")
        if self.interval_change_factor < 1:
            raise ValueError("interval_change_factor must be >= 1")
        if self.hotplug_duration_s <= 0:
            raise ValueError("hotplug_duration_s must be > 0")
        if self.slot_s <= 0:
            raise ValueError("slot_s must be > 0")

    # ------------------------------------------------------ constructors

    @classmethod
    def none(cls, seed: int = 0) -> "FaultPlan":
        """The no-op plan: armed everywhere, perturbs nothing."""
        return cls(seed=seed)

    @classmethod
    def at_rate(cls, rate: float, seed: int = 0) -> "FaultPlan":
        """One-knob plan: ``rate`` scales every fault family.

        Transient errors dominate (they do on real sysfs); torn reads,
        stale runs, hotplug windows and interval flips ride along at
        fractions of the knob.  ``rate=0`` is exactly :meth:`none`.
        """
        if not (0.0 <= rate <= 1.0):
            raise ValueError(f"fault rate must be in [0, 1], got {rate}")
        return cls(
            seed=seed,
            transient_rate=rate,
            torn_rate=rate / 4.0,
            stale_rate=rate / 4.0,
            hotplug_rate=min(1.0, rate / 2.0),
            interval_change_rate=rate / 8.0,
        )

    @classmethod
    def from_env(cls, seed: int = 0) -> "FaultPlan":
        """The plan ``AMPEREBLEED_FAULT_RATE`` requests (default none)."""
        return cls.at_rate(fault_rate_from_env(), seed=seed)

    def with_seed(self, seed: int) -> "FaultPlan":
        """The same schedule shape under a different seed."""
        return replace(self, seed=seed)

    # -------------------------------------------------------- evaluation

    @property
    def is_noop(self) -> bool:
        """True when no fault family can ever fire."""
        return (
            self.transient_rate == 0.0
            and self.torn_rate == 0.0
            and self.stale_rate == 0.0
            and self.hotplug_rate == 0.0
            and self.interval_change_rate == 0.0
        )

    def device_key(self, device_name: str) -> int:
        """The per-device hash key (devices fail independently)."""
        return derive_seed(self.seed, f"faultplan:{device_name}")

    def transient_mask(self, key: int, times: np.ndarray) -> np.ndarray:
        """Which polls fail with a transient error (EAGAIN/EIO)."""
        if self.transient_rate == 0.0:
            return np.zeros(np.shape(np.atleast_1d(times)), dtype=bool)
        draws = hashed_uniform(
            key, _time_counters(times), stream=_STREAM_TRANSIENT
        )
        return draws < self.transient_rate

    def torn_mask(self, key: int, times: np.ndarray) -> np.ndarray:
        """Which polls return a torn, out-of-range value."""
        if self.torn_rate == 0.0:
            return np.zeros(np.shape(np.atleast_1d(times)), dtype=bool)
        draws = hashed_uniform(key, _time_counters(times), stream=_STREAM_TORN)
        return draws < self.torn_rate

    def torn_values(
        self, key: int, values: np.ndarray, times: np.ndarray, mask: np.ndarray
    ) -> np.ndarray:
        """Corrupt the masked readings far outside the physical range."""
        if not mask.any():
            return values
        scale = 1 + (
            hashed_uniform(
                key,
                _time_counters(times)[mask],
                stream=_STREAM_TORN_MAGNITUDE,
            )
            * 7.0
        ).astype(np.int64)
        corrupted = values.copy()
        corrupted[mask] = corrupted[mask] + scale * TORN_MAGNITUDE
        return corrupted

    def hotplug_mask(self, key: int, times: np.ndarray) -> np.ndarray:
        """Which polls land inside a sensor-disappeared window (ENOENT)."""
        times = np.atleast_1d(np.asarray(times, dtype=np.float64))
        if self.hotplug_rate == 0.0:
            return np.zeros(times.shape, dtype=bool)
        slots = np.floor(times / self.slot_s)
        armed = (
            hashed_uniform(
                key, slots.astype(np.int64).astype(np.uint64),
                stream=_STREAM_HOTPLUG,
            )
            < self.hotplug_rate
        )
        in_window = (times - slots * self.slot_s) < self.hotplug_duration_s
        return armed & in_window

    def shape_latches(
        self, key: int, latches: np.ndarray, times: np.ndarray
    ) -> np.ndarray:
        """Apply the value-shaping faults to a latch-index array.

        Interval changes quantize the conversion grid (the sensor
        refreshes ``interval_change_factor`` times slower inside an
        armed slot); stale runs then clamp whole blocks of latches to
        the block's first conversion (an I2C hang serving one register
        for several periods).
        """
        latches = np.asarray(latches)
        if self.interval_change_rate > 0.0:
            times = np.atleast_1d(np.asarray(times, dtype=np.float64))
            slots = np.floor(times / self.slot_s)
            changed = (
                hashed_uniform(
                    key, slots.astype(np.int64).astype(np.uint64),
                    stream=_STREAM_INTERVAL,
                )
                < self.interval_change_rate
            )
            factor = np.int64(self.interval_change_factor)
            quantized = (
                np.floor_divide(latches, factor) * factor
            )
            latches = np.where(changed, quantized, latches)
        if self.stale_rate > 0.0:
            run = np.int64(self.stale_run_latches)
            blocks = np.floor_divide(latches, run)
            stale = (
                hashed_uniform(
                    key, blocks.astype(np.uint64), stream=_STREAM_STALE
                )
                < self.stale_rate
            )
            latches = np.where(stale, blocks * run, latches)
        return latches

    def __repr__(self) -> str:
        if self.is_noop:
            return f"FaultPlan.none(seed={self.seed})"
        return (
            f"FaultPlan(seed={self.seed}, "
            f"transient={self.transient_rate:g}, torn={self.torn_rate:g}, "
            f"stale={self.stale_rate:g}, hotplug={self.hotplug_rate:g}, "
            f"interval={self.interval_change_rate:g})"
        )


def resolve_fault_plan(
    faults, seed: int = 0
) -> Optional["FaultPlan"]:
    """The one spelling-resolution shim for ``faults=`` arguments.

    ``None`` consults ``AMPEREBLEED_FAULT_RATE`` (absent/zero means no
    plan); a float builds :meth:`FaultPlan.at_rate`; a plan passes
    through.  Returns ``None`` when the resolved plan is a no-op, so
    callers can arm nothing and keep the fast path.
    """
    if faults is None:
        plan = FaultPlan.from_env(seed=seed)
    elif isinstance(faults, FaultPlan):
        plan = faults
    elif isinstance(faults, (int, float)) and not isinstance(faults, bool):
        plan = FaultPlan.at_rate(float(faults), seed=seed)
    else:
        raise TypeError(
            f"faults must be a FaultPlan, a rate in [0, 1], or None; "
            f"got {faults!r}"
        )
    return None if plan.is_noop else plan
