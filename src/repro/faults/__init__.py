"""Deterministic fault injection for the acquisition plane.

* :class:`FaultPlan` — a seed-deterministic, counter-hashed schedule of
  hwmon read failures (transient errors, torn values, stale-latch
  runs, hotplug windows, ``update_interval`` flips), armed at the
  :class:`~repro.sensors.hwmon.HwmonDevice` read boundary.
* :class:`RetryPolicy` / :class:`SensorHealth` — what the resilient
  sampler does about the failures: bounded deterministic retries,
  gap interpolation, and the healthy → flaky → dead channel state the
  degraded-mode fallbacks consult.

``FaultPlan.none()`` is the contractually free path: arming it changes
no trace, archive, or accuracy bit.
"""

from repro.faults.plan import FaultPlan, TORN_MAGNITUDE, resolve_fault_plan
from repro.faults.policy import (
    DEAD,
    FLAKY,
    HEALTHY,
    RetryPolicy,
    SensorHealth,
    worst_health,
)

__all__ = [
    "FaultPlan",
    "TORN_MAGNITUDE",
    "resolve_fault_plan",
    "RetryPolicy",
    "SensorHealth",
    "HEALTHY",
    "FLAKY",
    "DEAD",
    "worst_health",
]
