"""Command-line interface for the AmpereBleed reproduction.

Usage::

    python -m repro.cli boards
    python -m repro.cli characterize --samples 1000 --seed 0
    python -m repro.cli fingerprint --models resnet-50 vgg-19 --traces 8
    python -m repro.cli bench --workers 4
    python -m repro.cli rsa --samples 8000
    python -m repro.cli covert --bit-period 0.08 --bits 64
    python -m repro.cli record --experiment fingerprint --out traces/
    python -m repro.cli analyze --archive traces/
    python -m repro.cli replay --archive traces/
    python -m repro check --fail-on-findings

Each subcommand mounts one of the paper's experiments at a
command-line-friendly scale and prints a compact report; the full
evaluation lives in ``benchmarks/``.

``check`` is the repo's own static-analysis gate: an AST pass over
``src/`` enforcing the determinism / concurrency / API-hygiene
contracts every reported number depends on (see ``repro.check``).

The ``record`` / ``analyze`` / ``replay`` trio is the paper's
two-machine workflow: ``record`` runs only the acquisition plane and
streams traces into a v2 archive, ``analyze`` runs the evaluation
purely from the archive (no SoC construction), and ``replay`` re-feeds
archived captures through the detector or covert demodulator.  With
the same seed, ``record`` then ``analyze`` prints exactly the numbers
the in-process subcommand prints.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.utils.rng import ensure_rng


def _cmd_boards(args: argparse.Namespace) -> int:
    from repro.boards import list_boards

    print(f"{'board':9s} {'family':18s} {'cpu':11s} {'ina226':>6s} "
          f"{'price':>8s}")
    for board in list_boards():
        print(
            f"{board.name:9s} {board.fpga_family:18s} "
            f"{board.cpu_model:11s} {board.ina226_count:6d} "
            f"{board.price_usd:8,.0f}"
        )
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    from repro.core.characterize import characterize

    result = characterize(samples_per_level=args.samples, seed=args.seed)
    print(f"{'channel':8s} {'pearson':>8s} {'LSB/step':>9s}")
    for sweep in (result.current, result.voltage, result.power, result.ro):
        print(f"{sweep.name:8s} {sweep.pearson:8.4f} {sweep.lsb_step:9.2f}")
    print(f"current-vs-RO variation ratio: "
          f"{result.current_vs_ro_variation:.1f}x (paper: 261x)")
    return 0


def _cmd_fingerprint(args: argparse.Namespace) -> int:
    from repro.core.fingerprint import DnnFingerprinter, FingerprintConfig
    from repro.dpu.models import list_models

    models = args.models if args.models else list_models()
    config = FingerprintConfig(
        duration=args.duration,
        traces_per_model=args.traces,
        n_folds=args.folds,
        forest_trees=args.trees,
    )
    fingerprinter = DnnFingerprinter(
        config=config, seed=args.seed, workers=args.workers
    )
    channels = [tuple(channel.split("/")) for channel in args.channels]
    print(f"collecting {len(models)} models x {args.traces} traces...")
    datasets = fingerprinter.collect_datasets(
        models=models, channels=channels
    )
    for channel, dataset in datasets.items():
        result = fingerprinter.evaluate_channel(dataset)
        print(f"{channel[0]}/{channel[1]}: top-1 {result.top1:.3f}  "
              f"top-5 {result.top5:.3f}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.perf.bench import (
        run_fingerprint_bench,
        run_repeated,
        write_bench_json,
    )

    if args.chaos:
        return _cmd_bench_chaos(args)
    if args.fleet:
        return _cmd_bench_fleet(args)
    if args.faults:
        return _cmd_bench_faults(args)
    if args.stream:
        return _cmd_bench_stream(args)
    if args.check:
        return _cmd_bench_check(args)
    report = run_repeated(
        lambda: run_fingerprint_bench(
            workers=args.workers,
            n_models=args.models,
            traces_per_model=args.traces,
            n_folds=args.folds,
            forest_trees=args.trees,
            seed=args.seed,
        ),
        repeat=args.repeat,
    )
    print(f"{'stage':10s} {'serial (s)':>11s} {'parallel (s)':>13s} "
          f"{'speedup':>8s}")
    for name, stage in report["stages"].items():
        print(f"{name:10s} {stage['serial']:11.2f} "
              f"{stage['parallel']:13.2f} {stage['speedup']:8.2f}")
    total = report["total"]
    print(f"{'total':10s} {total['serial']:11.2f} "
          f"{total['parallel']:13.2f} {total['speedup']:8.2f}")
    parity = report["parity"]
    print(f"workers: {report['workers']}  cpus: {report['cpu_count']}  "
          f"accuracy parity: {'exact' if parity['identical'] else 'DRIFT'} "
          f"(max |diff| {parity['max_abs_diff']:.2e})")
    overhead = report["faults_disabled_overhead"]
    print(f"faults-disabled overhead: "
          f"{overhead['overhead_fraction'] * 100:+.1f}% "
          f"(noop plan armed vs none)")
    path = write_bench_json(report, args.output)
    print(f"bench report written to {path}")
    return 0 if parity["identical"] else 1


def _cmd_bench_faults(args: argparse.Namespace) -> int:
    from repro.perf.bench import (
        run_fault_sweep,
        run_repeated,
        write_bench_json,
    )

    kwargs = {}
    if args.fault_rates:
        kwargs["rates"] = args.fault_rates
    report = run_repeated(
        lambda: run_fault_sweep(
            workers=args.workers, seed=args.seed, **kwargs
        ),
        repeat=args.repeat,
    )
    print(f"{'rate':>6s} {'top-1':>7s} {'top-5':>7s} {'retries':>8s} "
          f"{'gaps':>6s} {'dropped':>8s}")
    for point in report["rates"]:
        print(f"{point['rate']:6.2f} {point['top1']:7.3f} "
              f"{point['top5']:7.3f} {point['retries']:8d} "
              f"{point['gaps']:6d} {len(point['dropped_channels']):8d}")
    output = args.output
    if output == "BENCH_fingerprint.json":
        output = "BENCH_fingerprint_faults.json"
    path = write_bench_json(report, output)
    print(f"fault sweep written to {path}")
    return 0


def _cmd_bench_check(args: argparse.Namespace) -> int:
    """Fast path: time only the checker's cold/warm passes.

    Merges the ``check_flow`` block into an existing
    ``BENCH_fingerprint.json`` when one is there (the full pipeline
    bench takes minutes; the checker block takes seconds), else
    writes a minimal report holding just the block.
    """
    import json as _json
    from pathlib import Path

    from repro.perf.bench import (
        SCHEMA_VERSION,
        run_check_flow_bench,
        write_bench_json,
    )

    block = run_check_flow_bench()  # repro: ignore[FLOW003] wall-time bench
    print(f"check: cold {block['cold_seconds']:.2f} s  "
          f"warm {block['warm_seconds']:.2f} s  "
          f"speedup {block['speedup']:.1f}x  "
          f"({block['files_scanned']} files, warm re-analyzed "
          f"{block['modules_analyzed_warm']})")
    output = Path(args.output)
    if output.exists():
        report = _json.loads(output.read_text(encoding="utf-8"))
    else:
        report = {"benchmark": "fingerprint",
                  "schema_version": SCHEMA_VERSION}
    report["check_flow"] = block
    path = write_bench_json(report, str(output))
    print(f"check_flow block merged into {path}")
    return 0 if block["ok"] and block["speedup"] >= 3.0 else 1


def _cmd_bench_stream(args: argparse.Namespace) -> int:
    from repro.perf.bench import (
        run_repeated,
        run_stream_bench,
        write_bench_json,
    )

    report = run_repeated(
        lambda: run_stream_bench(seed=args.seed), repeat=args.repeat
    )
    latency = report["per_chunk_latency"]
    print(f"chunks: {report['counts']['chunks']}  "
          f"verdicts: {report['counts']['verdicts']}  "
          f"switches: {report['counts']['model_switches']}")
    print(f"per-chunk latency: p50 {latency['p50_ms']:.2f} ms  "
          f"p95 {latency['p95_ms']:.2f} ms  "
          f"({latency['p95_fraction_of_chunk'] * 100:.1f}% of the "
          f"chunk budget)")
    lag = report["verdict_lag"]
    print(f"verdict lag: mean {lag['mean_seconds']:.3f} s  "
          f"max {lag['max_seconds']:.3f} s")
    memory = report["memory"]
    print(f"peak resident samples: {memory['peak_resident_samples']} "
          f"(bound {memory['bound_samples']}, "
          f"{'bounded' if memory['bounded'] else 'UNBOUNDED'})")
    parity = report["parity"]
    print(f"stream/batch feature parity: "
          f"{'exact' if parity['identical'] else 'DRIFT'} "
          f"(max |diff| {parity['max_abs_diff']:.2e})")
    output = args.output
    if output == "BENCH_fingerprint.json":
        output = "BENCH_fingerprint_stream.json"
    path = write_bench_json(report, output)
    print(f"stream bench written to {path}")
    return 0 if parity["identical"] and memory["bounded"] else 1


def _cmd_bench_fleet(args: argparse.Namespace) -> int:
    from repro.fleet import run_fleet_bench
    from repro.perf.bench import run_repeated, write_bench_json

    report = run_repeated(
        lambda: run_fleet_bench(
            boards=args.boards or None,
            smoke=args.smoke,
            workers=args.workers,
            max_concurrent=args.max_concurrent,
            seed=args.seed,
        ),
        repeat=args.repeat,
    )
    for side in ("serial", "fleet"):
        stats = report[side]
        print(f"{side:6s} {stats['total_s']:8.2f} s  "
              f"{stats['traces_per_sec']:8.1f} traces/s  "
              f"p50 {stats['p50_job_latency_s'] * 1000:7.1f} ms  "
              f"p95 {stats['p95_job_latency_s'] * 1000:7.1f} ms")
    head = report["head_to_head"]
    if head.get("available"):
        print(f"pool reuse vs fork-per-call: "
              f"{head['speedup']:.1f}x over {head['calls']} calls")
    parity = report["parity"]
    print(f"boards: {', '.join(report['boards'])}  "
          f"jobs: {report['jobs']}  "
          f"archive/accuracy parity: "
          f"{'exact' if parity['identical'] else 'DRIFT'}")
    output = args.output
    if output == "BENCH_fingerprint.json":
        output = "BENCH_fleet.json"
    path = write_bench_json(report, output)
    print(f"fleet bench written to {path}")
    return 0 if parity["identical"] else 1


def _cmd_bench_chaos(args: argparse.Namespace) -> int:
    from repro.perf.bench import write_bench_json
    from repro.perf.config import chaos_scenarios_from_env
    from repro.resilience.chaos import run_chaos_bench

    scenarios = args.scenarios or chaos_scenarios_from_env()
    report = run_chaos_bench(
        smoke=True, seed=args.seed, scenarios=scenarios
    )
    print(f"{'scenario':18s} {'ok':>5s} {'elapsed (s)':>12s}")
    for scenario in report["scenarios"]:
        if "skipped" in scenario:
            print(f"{scenario['name']:18s} {'skip':>5s} "
                  f"{'-':>12s}  ({scenario['skipped']})")
            continue
        print(f"{scenario['name']:18s} "
              f"{'pass' if scenario['ok'] else 'FAIL':>5s} "
              f"{scenario['elapsed_s']:12.1f}")
        if not scenario["ok"]:
            for key, value in scenario["invariants"].items():
                if value is False:
                    print(f"    broken invariant: {key}")
    print(f"chaos sweep: {'ok' if report['ok'] else 'INVARIANT BROKEN'}")
    output = args.output
    if output == "BENCH_fingerprint.json":
        output = "BENCH_fleet_chaos.json"
    path = write_bench_json(report, output)
    print(f"chaos bench written to {path}")
    return 0 if report["ok"] else 1


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.fleet import FleetScheduler, build_fleet_jobs
    from repro.perf.config import pool_enabled

    jobs = build_fleet_jobs(
        args.out,
        boards=args.boards or None,
        kinds=args.kinds or None,
        seed=args.seed,
        smoke=args.smoke,
    )
    print(f"fleet: {len(jobs)} jobs -> {args.out}")
    report = FleetScheduler(
        jobs,
        max_concurrent=args.max_concurrent,
        retries=args.retries,
        use_pool=pool_enabled() and not args.no_pool,
        workers=args.workers,
    ).run()
    for outcome in report.outcomes:
        if outcome.ok:
            flags = ""
            if outcome.result.skipped:
                flags = "  [sealed, skipped]"
            elif outcome.result.resumed:
                flags = "  [resumed]"
            print(f"  {outcome.job.job_id:30s} "
                  f"{outcome.result.traces:5d} traces  "
                  f"{outcome.latency_s:7.2f} s{flags}")
        else:
            print(f"  {outcome.job.job_id:30s} FAILED: {outcome.error}")
    print(f"{report.traces} traces / {report.total_s:.2f} s = "
          f"{report.traces_per_sec:.1f} traces/s  "
          f"(p95 job latency {report.latency_percentile(95):.2f} s, "
          f"{report.respawns} worker respawns)")
    return 0 if report.ok else 1


def _cmd_check(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.check import (
        RULES,
        BaselineError,
        UnknownRuleError,
        load_baseline,
        render_json,
        render_sarif,
        render_text,
        run_check,
        write_baseline,
    )
    from repro.check.engine import GitDiffError, default_root

    if args.list_rules:
        width = max(len(rule.id) for rule in RULES.values())
        for rule in RULES.values():
            print(f"{rule.id:{width}s}  {rule.name}: {rule.rationale}")
        return 0
    root = default_root()
    baseline = args.baseline
    if args.no_baseline:
        baseline = ""
    try:
        result = run_check(
            paths=args.paths or None,
            rules=args.rules,
            baseline=baseline,
            root=root,
            use_cache=not args.no_cache,
            cache_dir=args.cache_dir,
            workers=args.workers,
            changed_base=args.changed_only,
        )
    except (
        UnknownRuleError, BaselineError, FileNotFoundError, GitDiffError
    ) as exc:
        print(f"repro check: {exc}", file=sys.stderr)
        return 2
    baseline_path = (
        Path(baseline)
        if baseline
        else root / "repro_check_baseline.json"
    )
    if args.write_baseline:
        entries = write_baseline(
            baseline_path,
            list(result.findings) + list(result.baselined),
            existing=(
                load_baseline(baseline_path)
                if baseline_path.exists()
                else []
            ),
        )
        print(
            f"baseline with {len(entries)} entries written to "
            f"{baseline_path}"
        )
        return 0
    if args.prune_baseline:
        from repro.check.baseline import prune_baseline

        existing = (
            load_baseline(baseline_path) if baseline_path.exists() else []
        )
        entries = prune_baseline(
            baseline_path, existing, result.stale_baseline
        )
        print(
            f"pruned {len(result.stale_baseline)} stale entries; "
            f"{len(entries)} remain in {baseline_path}"
        )
        return 0
    if args.format == "json":
        report = render_json(result)
    elif args.format == "sarif":
        report = render_sarif(result, RULES)
    else:
        report = render_text(result, verbose=args.verbose)
    if args.output:
        Path(args.output).write_text(report + "\n", encoding="utf-8")
        print(f"report written to {args.output}")
    else:
        print(report)
    if result.errors:
        return 2
    if args.fail_on_stale and result.stale_baseline:
        return 2
    if args.fail_on_findings and not result.ok:
        return 1
    return 0


def _cmd_rsa(args: argparse.Namespace) -> int:
    from repro.core.rsa_attack import RsaHammingWeightAttack

    attack = RsaHammingWeightAttack(seed=args.seed, board=args.board)
    current = attack.sweep(n_samples=args.samples)
    power = attack.sweep(quantity="power", n_samples=args.samples)
    print(f"{'HW':>5s} {'I median (mA)':>14s} {'P median (mW)':>14s}")
    for c, p in zip(current.profiles, power.profiles):
        print(f"{c.weight:5d} {c.summary.median:14.0f} "
              f"{p.summary.median / 1000:14.0f}")
    print(f"groups: current {current.distinguishable_groups()}/17, "
          f"power {power.distinguishable_groups()}/17 (paper: 17 / ~5)")
    return 0


def _cmd_covert(args: argparse.Namespace) -> int:
    from repro.core.covert_channel import CovertChannel

    channel = CovertChannel(seed=args.seed, board=args.board)
    rng = ensure_rng(args.seed)
    bits = rng.integers(0, 2, size=args.bits)
    report = channel.transmit(bits, bit_period=args.bit_period)
    print(f"sent {len(report.sent)} bits at "
          f"{report.raw_throughput_bps:.1f} bps")
    print(f"bit errors: {report.bit_errors} "
          f"(BER {report.bit_error_rate:.3f})")
    print(f"goodput: {report.effective_throughput_bps:.1f} bps")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.core.reporting import generate_report

    markdown = generate_report(
        seed=args.seed,
        samples_per_level=args.samples,
        rsa_samples=args.rsa_samples,
        path=args.output,
        board=args.board,
        workers=args.workers,
    )
    if args.output:
        print(f"report written to {args.output}")
    else:
        print(markdown)
    return 0


def _record_session(args: argparse.Namespace):
    """The acquisition session behind `record`, faults armed if asked."""
    from repro.session import DEFAULT_BOARD, AttackSession

    return AttackSession.create(
        board=args.board if args.board is not None else DEFAULT_BOARD,
        seed=args.seed,
        faults=args.faults,
    )


def _record_fingerprint(args: argparse.Namespace) -> None:
    from repro.core.fingerprint import DnnFingerprinter, FingerprintConfig
    from repro.core.io import TraceArchiveWriter
    from repro.dpu.models import list_models

    models = args.models if args.models else list_models()
    channels = [tuple(channel.split("/")) for channel in args.channels]
    config = FingerprintConfig(
        duration=args.duration,
        traces_per_model=args.traces,
        n_folds=args.folds,
        forest_trees=args.trees,
    )
    fingerprinter = DnnFingerprinter(
        session=_record_session(args), config=config
    )
    print(f"recording {len(models)} models x {args.traces} traces...")
    writer = TraceArchiveWriter(
        args.out,
        meta=fingerprinter.archive_meta(models, channels),
        resume=args.resume,
    )
    with writer:
        fingerprinter.collect_datasets(
            models=models,
            channels=channels,
            sink=writer,
            resume=args.resume,
            # Under injected faults a dead sensor should shrink the
            # recording, not kill it.
            on_dead="drop" if args.faults is not None else "raise",
        )


def _record_rsa(args: argparse.Namespace) -> None:
    from repro.core.io import TraceArchiveWriter
    from repro.core.rsa_attack import RsaHammingWeightAttack

    attack = RsaHammingWeightAttack(session=_record_session(args))
    print(f"recording the Hamming-weight sweep on {args.quantity}...")
    writer = TraceArchiveWriter(
        args.out,
        meta=attack.archive_meta(
            quantity=args.quantity, n_samples=args.samples
        ),
        resume=args.resume,
    )
    with writer:
        attack.collect_sweep(
            quantity=args.quantity,
            n_samples=args.samples,
            sink=writer,
            resume=args.resume,
        )


def _record_covert(args: argparse.Namespace) -> None:
    from repro.core.covert_channel import CovertChannel
    from repro.core.io import TraceArchiveWriter

    channel = CovertChannel(seed=args.seed, board=args.board)
    rng = ensure_rng(args.seed)
    bits = [int(bit) for bit in rng.integers(0, 2, size=args.bits)]
    meta = {
        "experiment": "covert",
        "board": channel.soc.board.name,
        "seed": args.seed,
        "bit_period": args.bit_period,
        "sent": bits,
    }
    print(f"recording a {args.bits}-bit covert frame...")
    with TraceArchiveWriter(args.out, meta=meta) as writer:
        part = 0

        def sink(chunk):
            nonlocal part
            writer.append(chunk, trace_id="frame", part=part)
            part += 1

        report = channel.transmit(
            bits, bit_period=args.bit_period, sink=sink
        )
        # The live decode rides along so a replay can verify it
        # reproduces the receiver's bits exactly.
        writer.update_meta(received=[int(bit) for bit in report.received])


def _cmd_record(args: argparse.Namespace) -> int:
    if args.experiment == "covert" and (
        args.resume or args.faults is not None
    ):
        print("--resume/--faults are not supported for the covert "
              "experiment")
        return 2
    recorders = {
        "fingerprint": _record_fingerprint,
        "rsa": _record_rsa,
        "covert": _record_covert,
    }
    recorders[args.experiment](args)
    print(f"archive written to {args.out}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.core.io import TraceArchiveReader

    archive = TraceArchiveReader(args.archive, mmap=True)
    experiment = archive.meta.get("experiment")
    if experiment == "fingerprint":
        from repro.core.fingerprint import FingerprintAnalyzer

        analyzer, datasets = FingerprintAnalyzer.from_archive(
            archive, workers=args.workers
        )
        for channel, dataset in datasets.items():
            result = analyzer.evaluate_channel(dataset)
            print(f"{channel[0]}/{channel[1]}: top-1 {result.top1:.3f}  "
                  f"top-5 {result.top5:.3f}")
        return 0
    if experiment == "rsa":
        from repro.core.rsa_attack import sweep_from_traces

        sweep = sweep_from_traces(
            archive.load_traceset(), quantity=archive.meta.get("quantity")
        )
        unit = "mA" if sweep.quantity == "current" else sweep.quantity
        print(f"{'HW':>5s} {'median (' + unit + ')':>16s}")
        for profile in sweep.profiles:
            print(f"{profile.weight:5d} {profile.summary.median:16.0f}")
        print(f"groups: {sweep.quantity} "
              f"{sweep.distinguishable_groups()}/{len(sweep.profiles)}")
        return 0
    print(f"archive at {args.archive} carries no analyzable experiment "
          f"tag (meta: {sorted(archive.meta)})", file=sys.stderr)
    return 1


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.core.detector import OnsetDetector
    from repro.core.io import TraceArchiveReader

    archive = TraceArchiveReader(args.archive, mmap=True)
    if archive.meta.get("experiment") == "covert":
        from repro.core.covert_channel import decode_frame

        sent = archive.meta.get("sent")
        frame = next(iter(archive.load_traceset()))
        decoded = decode_frame(frame, len(sent))
        errors = sum(a != b for a, b in zip(sent, decoded))
        print(f"replayed {len(decoded)}-bit covert frame from "
              f"{len(archive)} archived chunks")
        print(f"bit errors vs sent payload: {errors} "
              f"(BER {errors / len(decoded):.3f})")
        received = archive.meta.get("received")
        if received is not None:
            faithful = decoded == [int(bit) for bit in received]
            print(f"matches the live receiver's decode: "
                  f"{'yes' if faithful else 'NO'}")
            return 0 if faithful else 1
        return 0
    # Generic path: re-feed each capture's chunks through the onset
    # detector, exactly as a live stakeout stream would be consumed.
    detector = OnsetDetector()
    groups = {}
    for entry, chunk in zip(archive.entries, archive.iter_chunks()):
        groups.setdefault(entry["trace_id"], []).append(chunk)
    for trace_id, chunks in groups.items():
        found, onset = detector.scan_for_onset(iter(chunks))
        what = f"onset at t={onset:.3f}s" if found else "no activity"
        first = chunks[0]
        print(f"{trace_id} [{first.domain}/{first.quantity}"
              f"{' ' + first.label if first.label else ''}]: {what}")
    return 0


def _format_verdict(verdict) -> str:
    window = verdict.window
    line = (
        f"[{window.start_time:7.2f}s-{window.end_time:7.2f}s] "
        f"{verdict.label} p={verdict.confidence:.2f}"
    )
    if verdict.raw_label != verdict.label:
        line += f" (raw {verdict.raw_label})"
    if verdict.degraded:
        quality = window.quality
        line += (
            f" [degraded: retries={quality.retries} gaps={quality.gaps} "
            f"interp={quality.interpolated}]"
        )
    return line


def _format_event(event) -> Optional[str]:
    from repro.core.detector import OnsetEvent
    from repro.core.streaming import Interruption, ModelSwitch

    if isinstance(event, ModelSwitch):
        previous = event.previous if event.previous is not None else "(idle)"
        return (
            f"  >> model switch at t={event.time:.2f}s: "
            f"{previous} -> {event.label}"
        )
    if isinstance(event, Interruption):
        return (
            f"  !! stream interrupted after {event.samples_seen} samples: "
            f"{event.message}"
        )
    if isinstance(event, OnsetEvent):
        if event.kind == "onset":
            return f"  >> activity onset at t={event.time:.2f}s"
        if event.kind == "episode":
            episode = event.episode
            return (
                f"  >> episode closed: samples "
                f"[{episode.start}, {episode.end})"
            )
    return None


def _cmd_monitor(args: argparse.Namespace) -> int:
    from repro.core.detector import OnsetDetector
    from repro.core.fingerprint import FingerprintAnalyzer
    from repro.core.io import TraceArchiveReader, TraceArchiveWriter
    from repro.dpu.models import build_model
    from repro.dpu.runner import DpuRunner

    domain, _, quantity = args.channel.partition("/")
    if not quantity:
        print(f"--channel must be domain/quantity, got {args.channel!r}",
              file=sys.stderr)
        return 2
    if args.resume and args.out is None:
        print("--resume needs --out (the interrupted monitor archive)",
              file=sys.stderr)
        return 2
    archive = TraceArchiveReader(args.train_archive, mmap=True)
    analyzer, datasets = FingerprintAnalyzer.from_archive(archive)
    if (domain, quantity) not in datasets:
        known = ", ".join(
            f"{d}/{q}" for d, q in sorted(datasets)
        )
        print(f"channel {args.channel} not in the training archive "
              f"(has: {known})", file=sys.stderr)
        return 2
    dataset = datasets[(domain, quantity)]
    print(f"training forest on {len(dataset)} archived "
          f"{domain}/{quantity} traces...")
    forest = analyzer.train(dataset)

    session = _record_session(args)
    poll_hz = session.sampler.default_poll_hz(domain)
    window = max(1, int(round(args.window * poll_hz)))
    hop = (
        window
        if args.hop is None
        else max(1, int(round(args.hop * poll_hz)))
    )

    victims = args.victims if args.victims else [
        str(name) for name in forest.classes_
    ]
    runner = DpuRunner()
    slot = args.duration / len(victims)
    print("victim schedule:")
    for index, name in enumerate(victims):
        begin = index * slot
        runner.deploy(
            session.soc,
            build_model(name),
            duration=slot,
            seed=session.derive(f"victim-{index}"),
            start=begin,
            name=f"victim-{index}",
        )
        print(f"  {name}: t=[{begin:.2f}s, {begin + slot:.2f}s)")

    sink = None
    if args.out is not None:
        sink = TraceArchiveWriter(
            args.out,
            meta={
                "experiment": "monitor",
                "board": session.board.name,
                "seed": session.seed,
                "channel": [domain, quantity],
                "victims": victims,
                "train_archive": str(args.train_archive),
            },
            resume=args.resume,
        )
    verdicts = switches = episodes = 0
    interrupted = False
    try:
        updates = session.monitor(
            forest,
            domain,
            quantity,
            duration=args.duration,
            window_samples=window,
            hop_samples=hop,
            poll_hz=poll_hz,
            chunk_duration=args.chunk,
            n_features=analyzer.config.n_features,
            top_k=args.top_k,
            smoothing=args.smoothing,
            detector=OnsetDetector(),
            sink=sink,
            resume=args.resume,
        )
        from repro.core.streaming import Interruption, ModelSwitch

        for update in updates:
            for event in update.events:
                line = _format_event(event)
                if line is not None:
                    print(line)
                if isinstance(event, ModelSwitch):
                    switches += 1
                elif isinstance(event, Interruption):
                    interrupted = True
            episodes += len(update.episodes)
            for verdict in update.verdicts:
                print(_format_verdict(verdict))
                verdicts += 1
    finally:
        if sink is not None:
            sink.close()
    print(f"monitor done: {verdicts} verdicts, {switches} model switches, "
          f"{episodes} episodes"
          + (" (stream interrupted)" if interrupted else ""))
    if sink is not None:
        print(f"archive written to {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AmpereBleed (DAC 2025) reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("boards", help="list the Table I board catalog")

    characterize = sub.add_parser(
        "characterize", help="run the Fig 2 sensitivity sweep"
    )
    characterize.add_argument("--samples", type=int, default=1000)
    characterize.add_argument("--seed", type=int, default=0)

    fingerprint = sub.add_parser(
        "fingerprint", help="fingerprint DPU models (Table III)"
    )
    fingerprint.add_argument("--models", nargs="*", default=None)
    fingerprint.add_argument("--traces", type=int, default=8)
    fingerprint.add_argument("--duration", type=float, default=5.0)
    fingerprint.add_argument("--folds", type=int, default=4)
    fingerprint.add_argument("--trees", type=int, default=20)
    fingerprint.add_argument(
        "--channels", nargs="*", default=["fpga/current"]
    )
    fingerprint.add_argument("--seed", type=int, default=0)
    fingerprint.add_argument(
        "--workers", type=int, default=None,
        help="evaluation worker processes (default: AMPEREBLEED_WORKERS "
             "env var, else serial; 0 = all CPUs)",
    )

    bench = sub.add_parser(
        "bench",
        help="run the fingerprinting pipeline bench "
             "(emits BENCH_fingerprint.json)",
    )
    bench.add_argument("--models", type=int, default=12)
    bench.add_argument("--traces", type=int, default=10)
    bench.add_argument("--folds", type=int, default=5)
    bench.add_argument("--trees", type=int, default=30)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--workers", type=int, default=None,
        help="parallel-run worker processes (default: AMPEREBLEED_WORKERS "
             "env var, else all CPUs; 0 = all CPUs)",
    )
    bench.add_argument(
        "--output", type=str, default="BENCH_fingerprint.json"
    )
    bench.add_argument(
        "--faults", action="store_true",
        help="run the accuracy-vs-fault-rate sweep instead "
             "(emits BENCH_fingerprint_faults.json)",
    )
    bench.add_argument(
        "--fault-rates", nargs="*", type=float, default=None,
        help="fault rates to sweep with --faults "
             "(default 0 0.05 0.1 0.2 0.4)",
    )
    bench.add_argument(
        "--stream", action="store_true",
        help="run the streaming-monitor latency bench instead "
             "(emits BENCH_fingerprint_stream.json)",
    )
    bench.add_argument(
        "--fleet", action="store_true",
        help="run the fleet serial-vs-scheduler bench instead "
             "(emits BENCH_fleet.json)",
    )
    bench.add_argument(
        "--chaos", action="store_true",
        help="run the fleet chaos/resilience harness instead "
             "(emits BENCH_fleet_chaos.json)",
    )
    bench.add_argument(
        "--check", action="store_true",
        help="time only the static checker's cold/warm passes and "
             "merge the check_flow block into BENCH_fingerprint.json",
    )
    bench.add_argument(
        "--scenarios", nargs="*", default=None,
        help="with --chaos: scenarios to run (default: AMPEREBLEED_CHAOS "
             "env var, else all of worker-sigkill worker-sigstop "
             "board-outage archive-corrupt fault-storm)",
    )
    bench.add_argument(
        "--smoke", action="store_true",
        help="with --fleet/--chaos: trim the batch for a quick pass",
    )
    bench.add_argument(
        "--boards", nargs="*", default=None,
        help="with --fleet: catalog boards to shard over (default: "
             "AMPEREBLEED_FLEET_BOARDS env var, else the full catalog)",
    )
    bench.add_argument(
        "--max-concurrent", type=int, default=4,
        help="with --fleet: recording sessions in flight at once",
    )
    bench.add_argument(
        "--repeat", type=int, default=1,
        help="run the bench N times and report min/median per stage "
             "(headline timings become the min)",
    )

    fleet = sub.add_parser(
        "fleet",
        help="shard recording campaigns across the board catalog "
             "(persistent worker pool + async scheduler)",
    )
    fleet.add_argument(
        "out",
        help="directory receiving one archive per job",
    )
    fleet.add_argument(
        "--boards", nargs="*", default=None,
        help="catalog boards to target (default: "
             "AMPEREBLEED_FLEET_BOARDS env var, else the full catalog)",
    )
    fleet.add_argument(
        "--kinds", nargs="*", default=None,
        choices=("fingerprint", "rsa", "campaign"),
        help="campaign kinds to run per board (default: all three)",
    )
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument(
        "--workers", type=int, default=None,
        help="pool worker processes (default: AMPEREBLEED_WORKERS env "
             "var, else all CPUs; 0 = all CPUs)",
    )
    fleet.add_argument(
        "--max-concurrent", type=int, default=4,
        help="recording sessions in flight at once",
    )
    fleet.add_argument(
        "--retries", type=int, default=1,
        help="job-level resume-and-retry attempts after an "
             "unrecovered worker crash",
    )
    fleet.add_argument(
        "--no-pool", action="store_true",
        help="run jobs inline instead of on the persistent pool "
             "(the serial baseline)",
    )
    fleet.add_argument(
        "--smoke", action="store_true",
        help="trim the default board list to the first two catalog "
             "boards",
    )

    check = sub.add_parser(
        "check",
        help="static determinism/concurrency contract checker "
             "(AST pass over src/)",
    )
    check.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to scan (default: src/)",
    )
    check.add_argument(
        "--rules", nargs="*", default=None,
        help="rule ids to run (default: all; see --list-rules)",
    )
    check.add_argument(
        "--baseline", type=str, default=None,
        help="baseline file of grandfathered findings (default: "
             "repro_check_baseline.json at the repo root, if present)",
    )
    check.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file (report every finding)",
    )
    check.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (json is CI-annotation friendly; sarif is "
             "SARIF 2.1.0 for code-scanning upload)",
    )
    check.add_argument(
        "--fail-on-findings", action="store_true",
        help="exit 1 when new findings remain after baseline/suppressions",
    )
    check.add_argument(
        "--fail-on-stale", action="store_true",
        help="exit 2 when the baseline holds entries matching nothing",
    )
    check.add_argument(
        "--write-baseline", action="store_true",
        help="grandfather current findings into the baseline file "
             "(existing justifications are kept)",
    )
    check.add_argument(
        "--prune-baseline", action="store_true",
        help="rewrite the baseline file with stale entries removed "
             "(justifications for surviving entries are kept)",
    )
    check.add_argument(
        "--changed-only", nargs="?", const="HEAD", default=None,
        metavar="BASE",
        help="report only files changed vs the given git ref (default "
             "HEAD) plus their transitive import dependents",
    )
    check.add_argument(
        "--no-cache", action="store_true",
        help="disable the per-module analysis cache "
             "(.repro_check_cache/)",
    )
    check.add_argument(
        "--cache-dir", type=str, default=None,
        help="override the analysis cache directory",
    )
    check.add_argument(
        "--workers", type=int, default=None,
        help="workers for the per-module pass (default: "
             "AMPEREBLEED_WORKERS or serial)",
    )
    check.add_argument(
        "--output", type=str, default=None,
        help="write the report to this file instead of stdout",
    )
    check.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit",
    )
    check.add_argument(
        "--verbose", action="store_true",
        help="also print baselined findings",
    )

    rsa = sub.add_parser("rsa", help="RSA Hamming-weight attack (Fig 4)")
    rsa.add_argument("--samples", type=int, default=8000)
    rsa.add_argument("--seed", type=int, default=0)
    rsa.add_argument(
        "--board", type=str, default=None,
        help="Table I board to attack (default ZCU102; see `boards`)",
    )

    covert = sub.add_parser(
        "covert", help="current-based covert channel demo"
    )
    covert.add_argument("--bits", type=int, default=64)
    covert.add_argument("--bit-period", type=float, default=0.08)
    covert.add_argument("--seed", type=int, default=0)
    covert.add_argument(
        "--board", type=str, default=None,
        help="Table I board to attack (default ZCU102; see `boards`)",
    )

    report = sub.add_parser(
        "report", help="compact evaluation report (markdown)"
    )
    report.add_argument("--samples", type=int, default=500)
    report.add_argument("--rsa-samples", type=int, default=6000)
    report.add_argument("--output", type=str, default=None)
    report.add_argument("--seed", type=int, default=0)
    report.add_argument(
        "--board", type=str, default=None,
        help="Table I board to evaluate (default ZCU102; see `boards`)",
    )
    report.add_argument(
        "--workers", type=int, default=None,
        help="evaluation worker processes (default: AMPEREBLEED_WORKERS "
             "env var, else serial; 0 = all CPUs)",
    )

    record = sub.add_parser(
        "record",
        help="acquisition plane only: stream an experiment's traces "
             "into a v2 archive",
    )
    record.add_argument(
        "--experiment", choices=("fingerprint", "rsa", "covert"),
        default="fingerprint",
    )
    record.add_argument(
        "--out", type=str, required=True,
        help="archive directory to create (must not hold a manifest)",
    )
    record.add_argument("--seed", type=int, default=0)
    record.add_argument(
        "--board", type=str, default=None,
        help="Table I board to record on (default ZCU102)",
    )
    record.add_argument(
        "--faults", type=float, default=None,
        help="arm deterministic fault injection at this rate in [0, 1] "
             "(fingerprint/rsa; dead channels are dropped, not fatal)",
    )
    record.add_argument(
        "--resume", action="store_true",
        help="continue an interrupted recording from the archive's "
             "last checkpoint (fingerprint/rsa)",
    )
    record.add_argument(
        "--models", nargs="*", default=None,
        help="fingerprint: victim models (default: full zoo)",
    )
    record.add_argument(
        "--traces", type=int, default=8,
        help="fingerprint: traces per model",
    )
    record.add_argument(
        "--duration", type=float, default=5.0,
        help="fingerprint: trace duration in seconds",
    )
    record.add_argument(
        "--folds", type=int, default=4,
        help="fingerprint: CV folds stored in the manifest config",
    )
    record.add_argument(
        "--trees", type=int, default=20,
        help="fingerprint: forest size stored in the manifest config",
    )
    record.add_argument(
        "--channels", nargs="*", default=["fpga/current"],
        help="fingerprint: domain/quantity channels to record",
    )
    record.add_argument(
        "--quantity", type=str, default="current",
        help="rsa: hwmon quantity to sweep",
    )
    record.add_argument(
        "--samples", type=int, default=8000,
        help="rsa: polls per key",
    )
    record.add_argument(
        "--bits", type=int, default=64, help="covert: payload bits"
    )
    record.add_argument(
        "--bit-period", type=float, default=0.08,
        help="covert: seconds per bit",
    )

    analyze = sub.add_parser(
        "analyze",
        help="analysis plane only: evaluate a recorded archive "
             "(no SoC, no sampling)",
    )
    analyze.add_argument("--archive", type=str, required=True)
    analyze.add_argument(
        "--workers", type=int, default=None,
        help="evaluation worker processes (default: AMPEREBLEED_WORKERS "
             "env var, else serial; 0 = all CPUs)",
    )

    replay = sub.add_parser(
        "replay",
        help="re-feed an archived capture through the detector or "
             "covert demodulator",
    )
    replay.add_argument("--archive", type=str, required=True)

    monitor = sub.add_parser(
        "monitor",
        help="record and classify one channel live: per-window top-k "
             "verdicts while the sampler polls",
    )
    monitor.add_argument(
        "--train-archive", type=str, required=True,
        help="recorded fingerprint archive to train the forest from",
    )
    monitor.add_argument(
        "--channel", type=str, default="fpga/current",
        help="domain/quantity channel to monitor",
    )
    monitor.add_argument(
        "--duration", type=float, default=20.0,
        help="monitoring session length in seconds",
    )
    monitor.add_argument(
        "--window", type=float, default=5.0,
        help="verdict window in seconds (train-trace length for parity "
             "with batch classification)",
    )
    monitor.add_argument(
        "--hop", type=float, default=None,
        help="window stride in seconds (default: tumbling windows)",
    )
    monitor.add_argument(
        "--chunk", type=float, default=1.0,
        help="stream chunk size in seconds (the latency bound)",
    )
    monitor.add_argument(
        "--top-k", type=int, default=3,
        help="candidates per verdict",
    )
    monitor.add_argument(
        "--smoothing", type=float, default=1.0,
        help="EMA weight of the newest window in (0, 1]; 1.0 = raw "
             "per-window probabilities",
    )
    monitor.add_argument(
        "--victims", nargs="*", default=None,
        help="victim models served back-to-back during the session "
             "(default: every class the forest knows)",
    )
    monitor.add_argument(
        "--out", type=str, default=None,
        help="also persist the monitored stream to this archive",
    )
    monitor.add_argument(
        "--resume", action="store_true",
        help="continue an interrupted monitor session from --out's "
             "last checkpoint (byte-identical to an uninterrupted run)",
    )
    monitor.add_argument("--seed", type=int, default=0)
    monitor.add_argument(
        "--board", type=str, default=None,
        help="Table I board to monitor on (default ZCU102)",
    )
    monitor.add_argument(
        "--faults", type=float, default=None,
        help="arm deterministic fault injection at this rate in [0, 1]; "
             "degraded chunks flag their verdicts",
    )

    return parser


_COMMANDS = {
    "boards": _cmd_boards,
    "characterize": _cmd_characterize,
    "fingerprint": _cmd_fingerprint,
    "bench": _cmd_bench,
    "fleet": _cmd_fleet,
    "check": _cmd_check,
    "rsa": _cmd_rsa,
    "covert": _cmd_covert,
    "report": _cmd_report,
    "record": _cmd_record,
    "analyze": _cmd_analyze,
    "replay": _cmd_replay,
    "monitor": _cmd_monitor,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
