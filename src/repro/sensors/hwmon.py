"""Simulated Linux hwmon sysfs tree over INA226 devices.

The attack's entire privilege story lives here: the kernel's ina226
driver exposes each sensor as ``/sys/class/hwmon/hwmonN`` with
world-readable attribute files —

* ``curr1_input``  — current in integer milliamps (1 mA steps),
* ``in0_input``    — shunt voltage in integer millivolts,
* ``in1_input``    — bus voltage in integer millivolts (1.25 mV LSB),
* ``power1_input`` — power in integer microwatts (25 mW steps here),
* ``update_interval`` — milliseconds between register refreshes;
  *readable* by anyone, *writable only by root* (the paper's attacker
  therefore lives with the 35 ms default).

Reads are served from the most recently latched conversion: polling
faster than the update interval returns runs of identical values.
Every conversion's noise is a pure function of its latch index
(counter-based hashing), so re-reading any historical instant gives
the same bytes the kernel would have served — across calls and runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.sensors.ina226 import Ina226, Ina226Config, Ina226Reading
from repro.soc.rails import PowerRail
from repro.utils.hashrand import hashed_normal, hashed_uniform
from repro.utils.rng import derive_seed

#: Noise stream tags (see utils.hashrand): one per physical source.
_STREAM_PHASE = 0
_STREAM_SHUNT = 1
_STREAM_BUS = 2
_STREAM_POWER = 3
_STREAM_RIPPLE = 4

#: The update-interval range the paper reports for these boards (ms).
MIN_UPDATE_INTERVAL_MS = 2
MAX_UPDATE_INTERVAL_MS = 35


class HwmonError(RuntimeError):
    """Base class for hwmon access failures."""


class HwmonPermissionError(HwmonError):
    """Raised when an unprivileged access hits a root-only attribute."""


class HwmonLookupError(HwmonError):
    """Raised for unknown devices or attributes (ENOENT)."""


class HwmonValueError(HwmonError, ValueError):
    """Raised when a write carries an invalid or out-of-range value.

    Subclasses :class:`ValueError` too, so callers validating inputs
    generically keep working.
    """


class HwmonTransientError(HwmonError):
    """A transient read failure (EAGAIN/EIO) — retrying may succeed.

    Only raised while a :class:`repro.faults.FaultPlan` is armed; the
    resilient sampler catches these per sample via
    :meth:`HwmonDevice.read_series_faulted` instead.
    """


class HwmonDevice:
    """One ``hwmonN`` directory backed by an INA226 on a power rail.

    Args:
        index: the N in ``hwmonN``.
        name: the device name file contents (e.g. ``"ina226_u79"``).
        sensor: the INA226 model instance.
        rail: the power rail the shunt sits on.
        seed: experiment seed; combined with ``name`` to key the
            device's noise streams and conversion phase.
    """

    READABLE_ATTRS = (
        "name",
        "curr1_input",
        "in0_input",
        "in1_input",
        "power1_input",
        "update_interval",
    )

    def __init__(
        self,
        index: int,
        name: str,
        sensor: Ina226,
        rail: PowerRail,
        seed: Optional[int] = 0,
    ):
        self.index = int(index)
        self.name = str(name)
        self.sensor = sensor
        self.rail = rail
        self._key = derive_seed(seed, f"hwmon:{name}")
        # Devices power up unsynchronized: a random fraction of one
        # update period offsets this device's conversion grid.
        self._phase_fraction = float(
            hashed_uniform(self._key, np.array([0]), stream=_STREAM_PHASE)[0]
        )
        # Failure injection (tests/robustness): None, or
        # ("stale", t_hang) — conversions stop at t_hang (I2C hang);
        # ("unbind", t_gone) — reads fail after t_gone (driver unbind).
        self._failure: Optional[Tuple[str, float]] = None
        # Scheduled fault injection: a repro.faults.FaultPlan armed at
        # this read boundary.  A None/no-op plan costs one attribute
        # check per read — the no-fault path stays bit-identical.
        self._fault_plan = None
        self._fault_key = 0

    @property
    def path(self) -> str:
        """The sysfs directory of this device."""
        return f"/sys/class/hwmon/hwmon{self.index}"

    @property
    def update_period(self) -> float:
        """Seconds between register refreshes."""
        return self.sensor.update_period

    @property
    def phase(self) -> float:
        """Offset of this device's conversion grid within one period."""
        return self._phase_fraction * self.update_period

    def inject_failure(self, mode: str, at_time: float) -> None:
        """Arm a failure mode for robustness testing.

        ``"stale"`` models an I2C hang: the device keeps serving the
        conversion latched before ``at_time`` forever.  ``"unbind"``
        models a driver unbind/hot-remove: reads at or after
        ``at_time`` raise :class:`HwmonLookupError` (ENOENT), as a
        poll loop holding a stale fd would observe.
        """
        if mode not in ("stale", "unbind"):
            raise ValueError(f"unknown failure mode {mode!r}")
        self._failure = (mode, float(at_time))

    def clear_failure(self) -> None:
        """Disarm any injected failure."""
        self._failure = None

    def arm_faults(self, plan) -> None:
        """Arm (or with ``None`` disarm) a scheduled fault plan.

        ``plan`` is a :class:`repro.faults.FaultPlan`; a no-op plan
        (``FaultPlan.none()``) is stored but never evaluated, so every
        read stays bit-identical to an unarmed device.
        """
        self._fault_plan = plan
        self._fault_key = 0 if plan is None else plan.device_key(self.name)

    @property
    def fault_plan(self):
        """The armed fault plan, or ``None``."""
        return self._fault_plan

    @property
    def faults_active(self) -> bool:
        """True when an armed plan can actually perturb reads."""
        return self._fault_plan is not None and not self._fault_plan.is_noop

    def latch_index(self, times: np.ndarray) -> np.ndarray:
        """Index of the conversion whose result is visible at each time."""
        times = np.atleast_1d(np.asarray(times, dtype=np.float64))
        if self._failure is not None and self._failure[0] == "stale":
            times = np.minimum(times, self._failure[1])
        latches = np.floor(
            (times - self.phase) / self.update_period
        ).astype(np.int64)
        if self.faults_active:
            # Value-shaping faults: update_interval flips and
            # stale-latch runs move which conversion a poll observes.
            latches = self._fault_plan.shape_latches(
                self._fault_key, latches, times
            )
        return latches

    def _convert_latches(self, latches: np.ndarray) -> Ina226Reading:
        """Run conversions for an array of latch indices (may repeat)."""
        period = self.update_period
        t_done = self.phase + latches * period
        t_start = t_done - period
        counters = latches.astype(np.uint64)
        power_noise = (
            hashed_normal(self._key, counters, stream=_STREAM_POWER)
            * self.rail.noise_power_sigma
        )
        ripple = (
            hashed_normal(self._key, counters, stream=_STREAM_RIPPLE)
            * self.rail.ripple_sigma
        )
        current, voltage = self.rail.window_state(
            t_start, t_done, power_noise=power_noise, ripple=ripple
        )
        shunt_noise = hashed_normal(self._key, counters, stream=_STREAM_SHUNT)
        bus_noise = hashed_normal(self._key, counters, stream=_STREAM_BUS)
        return self.sensor.convert(
            current, voltage, shunt_noise=shunt_noise, bus_noise=bus_noise
        )

    def readings_at(self, times: np.ndarray) -> Ina226Reading:
        """The latched conversion visible at each poll time (vectorized).

        Duplicate latches are converted once and broadcast back, both
        for speed and because the kernel would serve the same cached
        register to every poll within one period.
        """
        latches = self.latch_index(times)
        unique, inverse = np.unique(latches, return_inverse=True)
        reading = self._convert_latches(unique)
        return Ina226Reading(
            shunt_register=reading.shunt_register[inverse],
            bus_register=reading.bus_register[inverse],
            current_register=reading.current_register[inverse],
            power_register=reading.power_register[inverse],
            current_amps=reading.current_amps[inverse],
            bus_volts=reading.bus_volts[inverse],
            power_watts=reading.power_watts[inverse],
        )

    def _check_series_request(
        self,
        attribute: str,
        times: np.ndarray,
        raise_on_unbind: bool = True,
    ) -> np.ndarray:
        """Validate one (attribute, times) poll; returns clean times."""
        times = np.atleast_1d(np.asarray(times, dtype=np.float64))
        if raise_on_unbind and self._unbound_mask(times).any():
            raise HwmonLookupError(
                f"{self.path}/{attribute}: no such device "
                f"(driver unbound)"
            )
        if attribute == "update_interval":
            return times
        if attribute not in self.READABLE_ATTRS or attribute == "name":
            raise HwmonLookupError(
                f"{self.path}/{attribute}: not a readable numeric attribute"
            )
        return times

    def _unbound_mask(self, times: np.ndarray) -> np.ndarray:
        """Polls at or past an injected driver unbind (legacy ENOENT)."""
        if self._failure is not None and self._failure[0] == "unbind":
            return times >= self._failure[1]
        return np.zeros(times.shape, dtype=bool)

    def _attribute_values(
        self, attribute: str, reading: Ina226Reading
    ) -> np.ndarray:
        """Extract one sysfs attribute's integers from a conversion."""
        if attribute == "curr1_input":
            return np.rint(reading.current_amps * 1e3).astype(np.int64)
        if attribute == "in0_input":
            shunt_volts = reading.shunt_register * 2.5e-6
            return np.rint(shunt_volts * 1e3).astype(np.int64)
        if attribute == "in1_input":
            return np.rint(reading.bus_volts * 1e3).astype(np.int64)
        if attribute == "power1_input":
            return np.rint(reading.power_watts * 1e6).astype(np.int64)
        raise HwmonLookupError(f"{self.path}/{attribute}: unknown attribute")

    def read_series(self, attribute: str, times: np.ndarray) -> np.ndarray:
        """Integer attribute values at each poll time (the sysfs ABI).

        ``curr1_input`` in mA, ``in0_input``/``in1_input`` in mV,
        ``power1_input`` in uW, ``update_interval`` in ms.

        With an active fault plan this is the *naive* poll loop's view:
        torn values arrive silently corrupted, while the first
        transient error raises :class:`HwmonTransientError` and the
        first hotplug window raises :class:`HwmonLookupError` — the
        resilient sampler uses :meth:`read_series_faulted` instead.
        """
        if self.faults_active:
            values, transient, gone = self.read_series_faulted(
                attribute, times
            )
            if gone.any():
                raise HwmonLookupError(
                    f"{self.path}/{attribute}: no such device "
                    f"(sensor hotplug window)"
                )
            if transient.any():
                raise HwmonTransientError(
                    f"{self.path}/{attribute}: resource temporarily "
                    f"unavailable (EAGAIN)"
                )
            return values
        times = self._check_series_request(attribute, times)
        if attribute == "update_interval":
            return np.full(
                times.shape, round(self.update_period * 1e3), dtype=np.int64
            )
        reading = self.readings_at(times)
        return self._attribute_values(attribute, reading)

    def read_series_faulted(
        self, attribute: str, times: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One poll series with per-sample fault annotations.

        Returns ``(values, transient, gone)``: the attribute values
        (torn polls already corrupted in place, value-shaping faults
        applied), a boolean mask of transient EAGAIN/EIO failures, and
        a boolean mask of ENOENT polls (hotplug windows and injected
        driver unbinds).  Values under a raised mask are what the
        kernel *would* have served; a caller honoring the sysfs ABI
        must treat them as unread.  Never raises for scheduled faults,
        so a resilient poll loop can retry sample by sample.
        """
        times = self._check_series_request(
            attribute, times, raise_on_unbind=False
        )
        if attribute == "update_interval":
            values = np.full(
                times.shape, round(self.update_period * 1e3), dtype=np.int64
            )
        else:
            reading = self.readings_at(times)
            values = self._attribute_values(attribute, reading)
        gone = self._unbound_mask(times)
        if not self.faults_active:
            return values, np.zeros(times.shape, dtype=bool), gone
        plan = self._fault_plan
        key = self._fault_key
        gone = gone | plan.hotplug_mask(key, times)
        transient = plan.transient_mask(key, times) & ~gone
        torn = plan.torn_mask(key, times) & ~gone & ~transient
        values = plan.torn_values(key, values, times, torn)
        return values, transient, gone

    def read_series_batch(self, requests) -> List[np.ndarray]:
        """Serve several ``(attribute, times)`` polls in one pass.

        The conversions behind every request are computed once over the
        union of latch indices, then each request's values are gathered
        from that shared pass.  Because a conversion is a pure function
        of its latch index, the results are bit-identical to issuing
        one :meth:`read_series` per request — concurrent sampling
        threads and this batched path observe the same registers.

        With an active fault plan the batched union pass is skipped:
        each request runs through :meth:`read_series` so faults hit
        (and raise) exactly as they would per request.
        """
        if self.faults_active:
            return [
                self.read_series(attribute, times)
                for attribute, times in requests
            ]
        prepared = [
            (attribute, self._check_series_request(attribute, times))
            for attribute, times in requests
        ]
        convertible = [
            (position, attribute, times)
            for position, (attribute, times) in enumerate(prepared)
            if attribute != "update_interval"
        ]
        results: List[Optional[np.ndarray]] = [None] * len(prepared)
        for position, (attribute, times) in enumerate(prepared):
            if attribute == "update_interval":
                results[position] = np.full(
                    times.shape,
                    round(self.update_period * 1e3),
                    dtype=np.int64,
                )
        if convertible:
            latches = [
                self.latch_index(times) for _, _, times in convertible
            ]
            unique, inverse = np.unique(
                np.concatenate(latches), return_inverse=True
            )
            reading = self._convert_latches(unique)
            cursor = 0
            for (position, attribute, times), request_latches in zip(
                convertible, latches
            ):
                span = inverse[cursor:cursor + request_latches.size]
                cursor += request_latches.size
                request_reading = Ina226Reading(
                    shunt_register=reading.shunt_register[span],
                    bus_register=reading.bus_register[span],
                    current_register=reading.current_register[span],
                    power_register=reading.power_register[span],
                    current_amps=reading.current_amps[span],
                    bus_volts=reading.bus_volts[span],
                    power_watts=reading.power_watts[span],
                )
                results[position] = self._attribute_values(
                    attribute, request_reading
                )
        return results

    def read(self, attribute: str, time: float = 0.0) -> str:
        """Read one attribute file, returning its string contents."""
        if attribute == "name":
            return self.name
        value = self.read_series(attribute, np.array([time]))[0]
        return str(int(value))

    def write(self, attribute: str, value: str, privileged: bool = False) -> None:
        """Write an attribute file.

        Only ``update_interval`` is writable, and only by root — the
        unprivileged AmpereBleed attacker cannot speed the sensor up.
        """
        if attribute != "update_interval":
            raise HwmonLookupError(
                f"{self.path}/{attribute}: not a writable attribute"
            )
        if not privileged:
            raise HwmonPermissionError(
                f"{self.path}/update_interval: permission denied "
                f"(root required)"
            )
        try:
            interval_ms = int(value)
        except (TypeError, ValueError):
            raise HwmonValueError(
                f"{self.path}/update_interval: invalid value {value!r} "
                f"(expected an integer millisecond count)"
            ) from None
        if not (
            MIN_UPDATE_INTERVAL_MS <= interval_ms <= MAX_UPDATE_INTERVAL_MS
        ):
            raise HwmonValueError(
                f"{self.path}/update_interval: {interval_ms} ms is outside "
                f"the supported range [{MIN_UPDATE_INTERVAL_MS}, "
                f"{MAX_UPDATE_INTERVAL_MS}] ms for this INA226"
            )
        self.sensor.config = Ina226Config.for_update_period(interval_ms / 1e3)

    def __repr__(self) -> str:
        return f"HwmonDevice({self.path}, {self.name}, rail={self.rail.name})"


class HwmonTree:
    """The ``/sys/class/hwmon`` directory of one simulated system."""

    def __init__(self):
        self._devices: List[HwmonDevice] = []
        self._by_name: Dict[str, HwmonDevice] = {}

    def register(self, device: HwmonDevice) -> None:
        """Add a device; its index must match its registration order."""
        if device.index != len(self._devices):
            raise ValueError(
                f"device index {device.index} out of order; expected "
                f"{len(self._devices)}"
            )
        if device.name in self._by_name:
            raise ValueError(f"duplicate device name {device.name!r}")
        self._devices.append(device)
        self._by_name[device.name] = device

    def devices(self) -> List[HwmonDevice]:
        """All registered devices in hwmonN order."""
        return list(self._devices)

    def device(self, index: int) -> HwmonDevice:
        """Look up by hwmon index."""
        if not (0 <= index < len(self._devices)):
            raise HwmonLookupError(f"/sys/class/hwmon/hwmon{index}: no such device")
        return self._devices[index]

    def device_by_name(self, name: str) -> HwmonDevice:
        """Look up by device name (e.g. ``"ina226_u79"``)."""
        try:
            return self._by_name[name]
        except KeyError:
            available = ", ".join(sorted(self._by_name))
            raise HwmonLookupError(
                f"no hwmon device named {name!r}; available: {available}"
            ) from None

    def list_paths(self) -> List[str]:
        """All attribute file paths (what ``ls`` would enumerate)."""
        paths = []
        for device in self._devices:
            for attribute in HwmonDevice.READABLE_ATTRS:
                paths.append(f"{device.path}/{attribute}")
        return paths

    def _resolve(self, path: str) -> Tuple[HwmonDevice, str]:
        prefix = "/sys/class/hwmon/hwmon"
        if not path.startswith(prefix):
            raise HwmonLookupError(f"{path}: not under /sys/class/hwmon")
        remainder = path[len(prefix):]
        try:
            index_text, attribute = remainder.split("/", 1)
            index = int(index_text)
        except ValueError:
            raise HwmonLookupError(f"{path}: malformed hwmon path") from None
        return self.device(index), attribute

    def read(self, path: str, time: float = 0.0) -> str:
        """Read a full sysfs path at a simulation time (unprivileged)."""
        device, attribute = self._resolve(path)
        return device.read(attribute, time)

    def read_series(self, path: str, times: np.ndarray) -> np.ndarray:
        """Vectorized poll of a full sysfs path at many times."""
        device, attribute = self._resolve(path)
        return device.read_series(attribute, times)

    def write(self, path: str, value: str, privileged: bool = False) -> None:
        """Write a full sysfs path (root-only attributes enforce it)."""
        device, attribute = self._resolve(path)
        device.write(attribute, value, privileged=privileged)
