"""I2C register transport beneath hwmon: the INA226's wire interface.

The kernel's ina226 driver does not read currents; it reads 16-bit
registers over I2C and converts them.  This module models that layer:

* :class:`Ina226RegisterFile` — the device's register map (datasheet
  section 7.6): configuration, shunt/bus/current/power results,
  calibration, mask/enable, and the fixed manufacturer/die IDs;
* :class:`I2cBus` — a multi-drop bus with 7-bit addressing, matching
  the ZCU102's PMBus chain where the INA226s sit at 0x40-0x4B.

The hwmon layer in :mod:`repro.sensors.hwmon` remains the attack
surface; this transport exists so driver-level behaviours (calibration
writes, configuration decoding, ID probing) are faithful and testable.
"""

from __future__ import annotations

from typing import Dict

from repro.sensors.ina226 import (
    AVERAGING_COUNTS,
    CONVERSION_TIMES,
    Ina226,
    Ina226Config,
)

#: Register addresses (datasheet table 7-6).
REG_CONFIGURATION = 0x00
REG_SHUNT_VOLTAGE = 0x01
REG_BUS_VOLTAGE = 0x02
REG_POWER = 0x03
REG_CURRENT = 0x04
REG_CALIBRATION = 0x05
REG_MASK_ENABLE = 0x06
REG_ALERT_LIMIT = 0x07
REG_MANUFACTURER_ID = 0xFE
REG_DIE_ID = 0xFF

#: Fixed ID values (datasheet): "TI" and the INA226 die code.
MANUFACTURER_ID = 0x5449
DIE_ID = 0x2260

#: Configuration-register reset value (datasheet 7.6.1).
CONFIG_RESET = 0x4127

#: Field encodings for the configuration register.
_AVG_BITS = {count: index for index, count in enumerate(AVERAGING_COUNTS)}
_CT_BITS = {time: index for index, time in enumerate(CONVERSION_TIMES)}


def encode_configuration(config: Ina226Config) -> int:
    """Pack an :class:`Ina226Config` into the configuration register."""
    avg = _AVG_BITS[config.averages]
    vbusct = _CT_BITS[config.bus_conversion_time]
    vshct = _CT_BITS[config.shunt_conversion_time]
    mode = 0b111  # shunt and bus, continuous
    return (0b0100 << 12) | (avg << 9) | (vbusct << 6) | (vshct << 3) | mode


def decode_configuration(value: int) -> Ina226Config:
    """Unpack a configuration-register value."""
    avg = (value >> 9) & 0b111
    vbusct = (value >> 6) & 0b111
    vshct = (value >> 3) & 0b111
    return Ina226Config(
        shunt_conversion_time=CONVERSION_TIMES[vshct],
        bus_conversion_time=CONVERSION_TIMES[vbusct],
        averages=AVERAGING_COUNTS[avg],
    )


class I2cError(RuntimeError):
    """Raised for addressing or register-access failures (NACK)."""


class Ina226RegisterFile:
    """The register map of one INA226, backed by the sensor model.

    Result registers are served from the conversion visible at the
    access time (the caller supplies it, like the bus master's clock);
    configuration and calibration writes reconfigure the model, exactly
    as the kernel driver's probe/again paths do.
    """

    READ_ONLY = {
        REG_SHUNT_VOLTAGE,
        REG_BUS_VOLTAGE,
        REG_POWER,
        REG_CURRENT,
        REG_MANUFACTURER_ID,
        REG_DIE_ID,
    }

    def __init__(self, sensor: Ina226, rail_reader):
        """``rail_reader(time) -> Ina226Reading`` supplies conversions."""
        self.sensor = sensor
        self._rail_reader = rail_reader
        self._calibration = sensor.calibration
        self._mask_enable = 0x0000
        self._alert_limit = 0x0000

    def read(self, register: int, time: float = 0.0) -> int:
        """Read one 16-bit register (unsigned wire representation)."""
        if register == REG_CONFIGURATION:
            return encode_configuration(self.sensor.config)
        if register == REG_CALIBRATION:
            return self._calibration
        if register == REG_MASK_ENABLE:
            return self._mask_enable
        if register == REG_ALERT_LIMIT:
            return self._alert_limit
        if register == REG_MANUFACTURER_ID:
            return MANUFACTURER_ID
        if register == REG_DIE_ID:
            return DIE_ID
        if register in (
            REG_SHUNT_VOLTAGE, REG_BUS_VOLTAGE, REG_POWER, REG_CURRENT
        ):
            reading = self._rail_reader(time)
            if register == REG_SHUNT_VOLTAGE:
                raw = int(reading.shunt_register[0])
                return raw & 0xFFFF  # two's complement on the wire
            if register == REG_BUS_VOLTAGE:
                return int(reading.bus_register[0]) & 0x7FFF
            if register == REG_CURRENT:
                return int(reading.current_register[0]) & 0xFFFF
            return int(reading.power_register[0]) & 0xFFFF
        raise I2cError(f"register 0x{register:02X} does not exist")

    def write(self, register: int, value: int) -> None:
        """Write one 16-bit register."""
        if not (0 <= value <= 0xFFFF):
            raise I2cError(f"value 0x{value:X} exceeds 16 bits")
        if register in self.READ_ONLY:
            raise I2cError(f"register 0x{register:02X} is read-only")
        if register == REG_CONFIGURATION:
            if value == 0x8000:  # reset bit
                self.sensor.config = Ina226Config()
                return
            self.sensor.config = decode_configuration(value)
            return
        if register == REG_CALIBRATION:
            self._calibration = value & 0x7FFF
            self.sensor.calibration = self._calibration
            return
        if register == REG_MASK_ENABLE:
            self._mask_enable = value
            return
        if register == REG_ALERT_LIMIT:
            self._alert_limit = value
            return
        raise I2cError(f"register 0x{register:02X} does not exist")


class I2cBus:
    """A 7-bit-addressed bus carrying INA226 register transactions."""

    def __init__(self):
        self._devices: Dict[int, Ina226RegisterFile] = {}

    def attach(self, address: int, device: Ina226RegisterFile) -> None:
        """Put a device on the bus at a 7-bit address."""
        if not (0x08 <= address <= 0x77):
            raise I2cError(f"address 0x{address:02X} outside 7-bit range")
        if address in self._devices:
            raise I2cError(f"address 0x{address:02X} already in use")
        self._devices[address] = device

    def scan(self) -> list:
        """Addresses that ACK (what ``i2cdetect`` would print)."""
        return sorted(self._devices)

    def _device(self, address: int) -> Ina226RegisterFile:
        try:
            return self._devices[address]
        except KeyError:
            raise I2cError(f"no ACK from address 0x{address:02X}") from None

    def read_word(self, address: int, register: int, time: float = 0.0) -> int:
        """SMBus read-word transaction."""
        return self._device(address).read(register, time)

    def write_word(self, address: int, register: int, value: int) -> None:
        """SMBus write-word transaction."""
        self._device(address).write(register, value)

    def probe_ina226(self, address: int) -> bool:
        """Driver-style probe: check manufacturer and die IDs."""
        try:
            manufacturer = self.read_word(address, REG_MANUFACTURER_ID)
            die = self.read_word(address, REG_DIE_ID)
        except I2cError:
            return False
        return manufacturer == MANUFACTURER_ID and die == DIE_ID
