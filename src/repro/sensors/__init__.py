"""Sensor substrate: register-level INA226 and the hwmon sysfs tree."""

from repro.sensors.hwmon import (
    MAX_UPDATE_INTERVAL_MS,
    MIN_UPDATE_INTERVAL_MS,
    HwmonDevice,
    HwmonError,
    HwmonLookupError,
    HwmonPermissionError,
    HwmonTransientError,
    HwmonTree,
    HwmonValueError,
)
from repro.sensors.pmbus import (
    DIE_ID,
    MANUFACTURER_ID,
    I2cBus,
    I2cError,
    Ina226RegisterFile,
    decode_configuration,
    encode_configuration,
)
from repro.sensors.ina226 import (
    AVERAGING_COUNTS,
    BUS_LSB_VOLTS,
    CONVERSION_TIMES,
    POWER_LSB_RATIO,
    SHUNT_LSB_VOLTS,
    Ina226,
    Ina226Config,
    Ina226Reading,
)

__all__ = [
    "DIE_ID",
    "MANUFACTURER_ID",
    "I2cBus",
    "I2cError",
    "Ina226RegisterFile",
    "decode_configuration",
    "encode_configuration",
    "MAX_UPDATE_INTERVAL_MS",
    "MIN_UPDATE_INTERVAL_MS",
    "HwmonDevice",
    "HwmonError",
    "HwmonLookupError",
    "HwmonPermissionError",
    "HwmonTransientError",
    "HwmonTree",
    "HwmonValueError",
    "AVERAGING_COUNTS",
    "BUS_LSB_VOLTS",
    "CONVERSION_TIMES",
    "POWER_LSB_RATIO",
    "SHUNT_LSB_VOLTS",
    "Ina226",
    "Ina226Config",
    "Ina226Reading",
]
