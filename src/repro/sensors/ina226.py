"""Register-level model of the TI INA226 current/voltage/power monitor.

The INA226 (TI datasheet SBOS547) measures the voltage across a shunt
resistor and the bus voltage, and derives current and power through a
user-programmed calibration register:

* shunt-voltage register: 2.5 uV LSB, 16-bit signed;
* bus-voltage register: 1.25 mV LSB, 15-bit unsigned;
* calibration: ``CAL = 0.00512 / (current_lsb * R_shunt)``;
* current register: ``(shunt_reg * CAL) / 2048``, value LSB =
  ``current_lsb`` (1 mA on the ZCU102, which is why hwmon's
  ``curr1_input`` moves in 1 mA steps);
* power register: ``(current_reg * bus_reg) / 20000``, value LSB =
  ``25 * current_lsb`` — the fixed 25x resolution ratio the paper
  exploits to explain why power readings truncate what current shows.

Each conversion integrates the inputs over a programmable conversion
time and averages a programmable number of conversions; the total
update period on the ZCU102's default configuration is ~35 ms, which
is also the fastest an unprivileged attacker can see fresh data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import (
    require_non_negative,
    require_positive,
)

#: Datasheet constants.
SHUNT_LSB_VOLTS = 2.5e-6
BUS_LSB_VOLTS = 1.25e-3
CALIBRATION_SCALE = 0.00512
POWER_LSB_RATIO = 25
SHUNT_REG_MIN, SHUNT_REG_MAX = -32768, 32767
BUS_REG_MIN, BUS_REG_MAX = 0, 32767

#: Valid conversion times in seconds (datasheet table 7-4).
CONVERSION_TIMES = (
    140e-6,
    204e-6,
    332e-6,
    588e-6,
    1.1e-3,
    2.116e-3,
    4.156e-3,
    8.244e-3,
)

#: Valid averaging counts (datasheet table 7-3).
AVERAGING_COUNTS = (1, 4, 16, 64, 128, 256, 512, 1024)


def _nearest_allowed(value: float, allowed: Tuple[float, ...]) -> float:
    return min(allowed, key=lambda option: abs(option - value))


@dataclass(frozen=True)
class Ina226Config:
    """Conversion-time / averaging configuration.

    The defaults (1.1 ms per channel, 16 averages) give an update
    period of ``(1.1 + 1.1) ms * 16 = 35.2 ms`` — the ZCU102's stock
    hwmon ``update_interval`` of ~35 ms.
    """

    shunt_conversion_time: float = 1.1e-3
    bus_conversion_time: float = 1.1e-3
    averages: int = 16

    def __post_init__(self):
        if self.shunt_conversion_time not in CONVERSION_TIMES:
            raise ValueError(
                f"shunt conversion time {self.shunt_conversion_time} not in "
                f"{CONVERSION_TIMES}"
            )
        if self.bus_conversion_time not in CONVERSION_TIMES:
            raise ValueError(
                f"bus conversion time {self.bus_conversion_time} not in "
                f"{CONVERSION_TIMES}"
            )
        if self.averages not in AVERAGING_COUNTS:
            raise ValueError(
                f"averages {self.averages} not in {AVERAGING_COUNTS}"
            )

    @property
    def update_period(self) -> float:
        """Seconds between register updates (both channels, averaged)."""
        return (
            self.shunt_conversion_time + self.bus_conversion_time
        ) * self.averages

    @classmethod
    def for_update_period(cls, period_seconds: float) -> "Ina226Config":
        """Pick the config whose update period best matches a target.

        Mirrors what the Linux ina226 driver does when root writes
        ``update_interval``: it chooses the nearest supported averaging
        setting for the fixed default conversion time.
        """
        require_positive(period_seconds, "period_seconds")
        best = None
        best_error = float("inf")
        for conversion_time in CONVERSION_TIMES:
            for averages in AVERAGING_COUNTS:
                candidate = cls(
                    shunt_conversion_time=conversion_time,
                    bus_conversion_time=conversion_time,
                    averages=averages,
                )
                error = abs(candidate.update_period - period_seconds)
                if error < best_error:
                    best, best_error = candidate, error
        return best


@dataclass(frozen=True)
class Ina226Reading:
    """One conversion result, both as registers and engineering units."""

    shunt_register: np.ndarray
    bus_register: np.ndarray
    current_register: np.ndarray
    power_register: np.ndarray
    current_amps: np.ndarray
    bus_volts: np.ndarray
    power_watts: np.ndarray


class Ina226:
    """One INA226 instance wired to a shunt on a power rail.

    Args:
        shunt_ohms: shunt resistor value.
        current_lsb: desired current LSB in amps (1 mA on the ZCU102).
        config: conversion-time / averaging configuration.
        shunt_noise_volts: RMS input-referred noise of one shunt
            conversion (before averaging).  The datasheet's 10 uV p-p
            corresponds to ~2.5 uV RMS.
        bus_noise_volts: RMS input-referred noise of one bus conversion.
    """

    def __init__(
        self,
        shunt_ohms: float,
        current_lsb: float = 1e-3,
        config: Ina226Config = None,
        shunt_noise_volts: float = 2.5e-6,
        bus_noise_volts: float = 0.25e-3,
    ):
        self.shunt_ohms = require_positive(shunt_ohms, "shunt_ohms")
        self.current_lsb = require_positive(current_lsb, "current_lsb")
        self.config = config if config is not None else Ina226Config()
        self.shunt_noise_volts = require_non_negative(
            shunt_noise_volts, "shunt_noise_volts"
        )
        self.bus_noise_volts = require_non_negative(
            bus_noise_volts, "bus_noise_volts"
        )
        calibration = round(
            CALIBRATION_SCALE / (self.current_lsb * self.shunt_ohms)
        )
        if not (1 <= calibration <= 0x7FFF):
            raise ValueError(
                f"calibration {calibration} out of register range; "
                f"choose a different current_lsb/shunt combination"
            )
        self.calibration = int(calibration)

    @property
    def power_lsb(self) -> float:
        """Power register LSB in watts (fixed 25x the current LSB)."""
        return POWER_LSB_RATIO * self.current_lsb

    @property
    def update_period(self) -> float:
        """Seconds between fresh readings."""
        return self.config.update_period

    @property
    def max_current(self) -> float:
        """Largest measurable current before the shunt register clips."""
        return SHUNT_REG_MAX * SHUNT_LSB_VOLTS / self.shunt_ohms

    def convert(
        self,
        current_amps: np.ndarray,
        bus_volts: np.ndarray,
        rng: RngLike = None,
        shunt_noise: np.ndarray = None,
        bus_noise: np.ndarray = None,
    ) -> Ina226Reading:
        """Run conversions on true (window-averaged) rail conditions.

        ``current_amps`` / ``bus_volts`` are the physically true means
        over each conversion window; this method applies ADC noise
        (reduced by sqrt(averages)), register quantization, and the
        datasheet's current/power arithmetic.  Fully vectorized.

        ``shunt_noise`` / ``bus_noise`` optionally inject pre-drawn
        *standard-normal* noise (scaled internally by the configured
        sigmas); the hwmon layer uses this to make every conversion a
        pure function of its latch index.  When omitted, noise is drawn
        from ``rng``.
        """
        generator = ensure_rng(rng)
        current_amps = np.atleast_1d(np.asarray(current_amps, dtype=np.float64))
        bus_volts = np.atleast_1d(np.asarray(bus_volts, dtype=np.float64))
        if current_amps.shape != bus_volts.shape:
            raise ValueError("current and bus arrays must have equal shapes")
        averaging_gain = np.sqrt(self.config.averages)
        shunt_sigma = self.shunt_noise_volts / averaging_gain
        bus_sigma = self.bus_noise_volts / averaging_gain
        if shunt_noise is None:
            shunt_noise = generator.standard_normal(current_amps.shape)
        if bus_noise is None:
            bus_noise = generator.standard_normal(bus_volts.shape)

        shunt_volts = current_amps * self.shunt_ohms
        shunt_noisy = shunt_volts + shunt_sigma * np.asarray(
            shunt_noise, dtype=np.float64
        )
        shunt_register = np.clip(
            np.rint(shunt_noisy / SHUNT_LSB_VOLTS),
            SHUNT_REG_MIN,
            SHUNT_REG_MAX,
        ).astype(np.int64)

        bus_noisy = bus_volts + bus_sigma * np.asarray(bus_noise, dtype=np.float64)
        bus_register = np.clip(
            np.rint(bus_noisy / BUS_LSB_VOLTS), BUS_REG_MIN, BUS_REG_MAX
        ).astype(np.int64)

        # Datasheet equations 7-5 and 7-8 (integer register arithmetic).
        current_register = (shunt_register * self.calibration) // 2048
        power_register = (current_register * bus_register) // 20000

        return Ina226Reading(
            shunt_register=shunt_register,
            bus_register=bus_register,
            current_register=current_register,
            power_register=power_register,
            current_amps=current_register * self.current_lsb,
            bus_volts=bus_register * BUS_LSB_VOLTS,
            power_watts=power_register * self.power_lsb,
        )

    def __repr__(self) -> str:
        return (
            f"Ina226(shunt={self.shunt_ohms * 1e3:.3g} mOhm, "
            f"current_lsb={self.current_lsb * 1e3:.3g} mA, "
            f"update={self.update_period * 1e3:.3g} ms)"
        )
