"""Rule set encoding this repo's determinism & concurrency contracts.

Every result the reproduction reports (the 261x current-vs-RO ratio,
Table III accuracies, the RSA Hamming-weight separation) depends on runs
being bit-identical across seeds, worker counts, chunk sizes and fault
plans.  These rules turn the prose contracts of PRs 1-3 into static
checks over the AST:

==========  ============================================================
Rule        Contract
==========  ============================================================
RNG001      no unseeded ``np.random.default_rng()`` / ``SeedSequence()``
            (OS entropy makes a recording unreplayable)
RNG002      no stdlib ``random``, ``os.urandom``, ``secrets``,
            ``uuid.uuid4`` or legacy global-state ``np.random.*``
RNG003      Generators are built via ``repro.utils.rng`` (``ensure_rng``
            / ``spawn``) so the ``normalize_seed`` policy applies
TIME001     no wall-clock reads in simulated-time modules (the
            ``repro/perf`` timing helpers are exempt)
CONC001     functions submitted to ``perf.executor.parallel_map`` must
            not mutate module-level state (lost under fork)
CONC002     fields documented as lock-guarded (``_clock`` by
            ``_clock_lock``, ``_FIT_CONTEXT`` by ``_FIT_LOCK``) are only
            touched inside a ``with <lock>`` block
CONC003     only module-level functions go to ``parallel_map`` — no
            lambdas/closures (they capture handles and cannot pickle)
API001      hwmon register reads stay behind the
            ``read_series_faulted`` boundary (sensors/soc layers only)
API002      no float ``==`` / ``!=`` on computed data (seed/chunking
            fragile); exact sentinels must be suppressed explicitly
API003      no mutable default arguments (shared across calls — and
            across forked workers)
API004      no ``argsort`` calls inside loops outside ``repro/ml`` —
            per-iteration sorting is the quadratic pattern the
            presorted kernels replaced (``repro/perf`` keeps the
            frozen legacy copies and is exempt)
API005      streaming state classes must stay bounded: a ``push*``
            method growing ``self.<attr>`` in place (``append`` /
            ``extend`` / ``+=``) needs a matching trim (``pop`` /
            ``clear`` / ``del`` / slice rebind) somewhere in the
            class, else memory scales with the stream, not the window
API006      no bare ``multiprocessing.Pool`` / ``ProcessPoolExecutor``
            / ``SharedMemory`` outside ``repro/perf`` — ad-hoc pools
            skip the deterministic task→seed assignment, crash
            recovery, and segment-lifetime bookkeeping the
            ``repro.perf`` pool/shm layer provides
API007      no untimed blocking ``Queue.get`` / ``Event.wait`` /
            ``Process.join`` outside ``repro/perf`` +
            ``repro/resilience`` — a dead peer strands the caller
            forever; only the pool internals and the resilience layer
            that reaps them may park without a deadline
PARSE000    unreadable/unparseable files are findings, not skips
FLOW001     (whole-program) unseeded-generator taint must not reach
            Trace/archive/classifier sinks, even across modules
FLOW002     (whole-program) OS/clock entropy taint, same sinks
FLOW003     (whole-program) wall-clock values must not flow through
            helpers into simulated-time code outside repro/perf +
            repro/resilience
FLOW004     (whole-program) no unlocked module-state writes on paths
            reachable from parallel_map/WorkerPool task callables
FLOW005     (whole-program) no inconsistent (ABBA) lock-acquisition
            ordering anywhere, including through calls
==========  ============================================================

Each per-module rule is a pure function ``(Module) -> List[Finding]``;
the engine (:mod:`repro.check.engine`) handles file discovery,
suppression comments and the baseline.  Rules marked ``whole_program``
are evaluated by :mod:`repro.check.flow` over the assembled project
model instead.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.check.findings import Finding

# --------------------------------------------------------------------- model


@dataclass
class Module:
    """One parsed source file handed to every rule."""

    path: Path
    rel_path: str
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    @classmethod
    def parse(cls, path: Path, rel_path: str) -> "Module":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        return cls(
            path=path,
            rel_path=rel_path,
            source=source,
            tree=tree,
            lines=source.splitlines(),
        )

    def snippet(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        lineno = getattr(node, "lineno", 1)
        return Finding(
            path=self.rel_path,
            line=lineno,
            col=getattr(node, "col_offset", 0),
            rule=rule,
            message=message,
            snippet=self.snippet(lineno),
        )


def _no_module_findings(module: Module) -> List[Finding]:
    """Placeholder check for rules not evaluated per-module."""
    return []


@dataclass(frozen=True)
class Rule:
    """One named contract check.

    ``whole_program`` rules are not per-module functions: their
    findings come from the flow layer (:mod:`repro.check.flow`) or the
    engine itself (PARSE000); ``check`` is a no-op for them and the
    engine dispatches separately.
    """

    id: str
    name: str
    rationale: str
    check: Callable[[Module], List[Finding]] = _no_module_findings
    whole_program: bool = False


# ---------------------------------------------------------- shared utilities


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _import_map(tree: ast.Module) -> Dict[str, str]:
    """Local name -> canonical dotted origin, from every import node."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                origin = alias.name if alias.asname else local
                aliases[local] = origin
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


def _canonical(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve a call target through the module's import aliases.

    ``np.random.default_rng`` with ``import numpy as np`` resolves to
    ``numpy.random.default_rng``; ``default_rng`` imported from
    ``numpy.random`` resolves identically.
    """
    dotted = _dotted(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    origin = aliases.get(head)
    if origin is None:
        return dotted
    return f"{origin}.{rest}" if rest else origin


def _is_none(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _path_matches(rel_path: str, allowed: Sequence[str]) -> bool:
    """True when the POSIX rel path falls inside any allowed location."""
    posix = rel_path.replace("\\", "/")
    return any(piece in posix for piece in allowed)


# ------------------------------------------------------------------- RNG001

_SEEDED_FACTORIES = ("numpy.random.default_rng", "numpy.random.SeedSequence")


def check_rng001(module: Module) -> List[Finding]:
    """Unseeded numpy Generator construction reaches OS entropy."""
    aliases = _import_map(module.tree)
    findings = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        target = _canonical(node.func, aliases)
        if target not in _SEEDED_FACTORIES:
            continue
        unseeded = not node.args and not node.keywords
        none_seed = bool(node.args) and _is_none(node.args[0])
        none_kw = any(
            kw.arg in ("seed", "entropy") and _is_none(kw.value)
            for kw in node.keywords
        )
        if unseeded or none_seed or none_kw:
            findings.append(
                module.finding(
                    "RNG001",
                    node,
                    f"{target.rsplit('.', 1)[-1]} without a seed draws OS "
                    f"entropy; the recording cannot be replayed (route "
                    f"seeds through repro.utils.rng.normalize_seed)",
                )
            )
    return findings


# ------------------------------------------------------------------- RNG002

_BANNED_CALL_PREFIXES = ("random.", "secrets.")
_BANNED_CALLS = {"os.urandom", "uuid.uuid4", "uuid.uuid1"}
_NUMPY_LEGACY = {
    "seed",
    "rand",
    "randn",
    "randint",
    "random",
    "random_sample",
    "choice",
    "shuffle",
    "permutation",
    "normal",
    "uniform",
    "standard_normal",
    "get_state",
    "set_state",
}


def check_rng002(module: Module) -> List[Finding]:
    """Nondeterministic or global-state entropy sources are banned."""
    aliases = _import_map(module.tree)
    findings = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        target = _canonical(node.func, aliases)
        if target is None:
            continue
        if target in _BANNED_CALLS or target.startswith(_BANNED_CALL_PREFIXES):
            findings.append(
                module.finding(
                    "RNG002",
                    node,
                    f"{target} is an unseedable/OS entropy source; use an "
                    f"explicit numpy Generator from repro.utils.rng",
                )
            )
            continue
        prefix, _, tail = target.rpartition(".")
        if prefix == "numpy.random" and tail in _NUMPY_LEGACY:
            findings.append(
                module.finding(
                    "RNG002",
                    node,
                    f"np.random.{tail} uses numpy's hidden global RNG "
                    f"state (order- and import-sensitive); draw from an "
                    f"explicit Generator instead",
                )
            )
    return findings


# ------------------------------------------------------------------- RNG003

#: The one module allowed to construct Generators directly — everything
#: else goes through ensure_rng/spawn so the seed policy applies.
_RNG_HELPER_MODULES = ("repro/utils/rng.py",)


def check_rng003(module: Module) -> List[Finding]:
    """Direct default_rng construction bypasses the seed policy."""
    if _path_matches(module.rel_path, _RNG_HELPER_MODULES):
        return []
    aliases = _import_map(module.tree)
    findings = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        if _canonical(node.func, aliases) != "numpy.random.default_rng":
            continue
        findings.append(
            module.finding(
                "RNG003",
                node,
                "construct Generators via repro.utils.rng.ensure_rng or "
                "spawn so the library seed policy (None -> 0, name-keyed "
                "streams) applies uniformly",
            )
        )
    return findings


# ------------------------------------------------------------------ TIME001

_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Modules whose whole job is wall-clock timing (bench/StageTimer).
_WALL_CLOCK_ALLOWED = ("repro/perf/",)


def check_time001(module: Module) -> List[Finding]:
    """Wall-clock reads poison simulated-time determinism."""
    if _path_matches(module.rel_path, _WALL_CLOCK_ALLOWED):
        return []
    aliases = _import_map(module.tree)
    findings = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        target = _canonical(node.func, aliases)
        if target in _WALL_CLOCK_CALLS:
            findings.append(
                module.finding(
                    "TIME001",
                    node,
                    f"{target} reads the wall clock inside a "
                    f"simulated-time module; derive times from the "
                    f"experiment clock (repro/perf timing helpers are "
                    f"the only exemption)",
                )
            )
    return findings


# ------------------------------------------------------------------ CONC001

_MUTATORS = {
    "append",
    "extend",
    "insert",
    "add",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "clear",
    "remove",
    "discard",
    "sort",
    "reverse",
}


def _module_level_names(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                for name in ast.walk(target):
                    if isinstance(name, ast.Name):
                        names.add(name.id)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
    return names


def _submitted_names(tree: ast.Module, aliases: Dict[str, str]) -> Set[str]:
    """Names passed as the task callable to parallel_map."""
    submitted: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        target = _canonical(node.func, aliases) or ""
        if not target.endswith("parallel_map"):
            continue
        fn = node.args[0] if node.args else None
        if fn is None:
            for kw in node.keywords:
                if kw.arg == "fn":
                    fn = kw.value
        if isinstance(fn, ast.Name):
            submitted.add(fn.id)
    return submitted


def check_conc001(module: Module) -> List[Finding]:
    """Worker tasks mutating module globals lose the writes under fork."""
    aliases = _import_map(module.tree)
    globals_ = _module_level_names(module.tree)
    submitted = _submitted_names(module.tree, aliases)
    if not submitted or not globals_:
        return []
    findings = []
    for node in module.tree.body:
        if not isinstance(node, ast.FunctionDef):
            continue
        if node.name not in submitted:
            continue
        declared_global: Set[str] = set()
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.Global):
                declared_global.update(
                    name for name in stmt.names if name in globals_
                )
        for stmt in ast.walk(node):
            mutated: Optional[str] = None
            if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id in declared_global
                    ):
                        mutated = target.id
                    elif isinstance(target, ast.Subscript):
                        base = target.value
                        if isinstance(base, ast.Name) and base.id in globals_:
                            mutated = base.id
            elif isinstance(stmt, ast.Call):
                func = stmt.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATORS
                    and isinstance(func.value, ast.Name)
                    and func.value.id in globals_
                ):
                    mutated = func.value.id
            if mutated is not None:
                findings.append(
                    module.finding(
                        "CONC001",
                        stmt,
                        f"{node.name}() is submitted to parallel_map but "
                        f"mutates module-level {mutated!r}; writes in a "
                        f"forked worker never reach the parent (pass "
                        f"state through arguments and return values)",
                    )
                )
    return findings


# ------------------------------------------------------------------ CONC002

#: Fields whose access contract is "hold this lock".  The rule only
#: applies where the lock actually exists in the same scope (class body
#: assigns ``self.<lock>``, or the module defines it at top level), so
#: an unrelated ``_clock`` in a lockless class is not flagged.
GUARDED_FIELDS: Dict[str, str] = {
    "_clock": "_clock_lock",
    "_FIT_CONTEXT": "_FIT_LOCK",
}


class _LockScopeVisitor(ast.NodeVisitor):
    """Tracks class/function nesting and the set of locks held."""

    def __init__(self, module: Module, module_locks: Set[str]):
        self.module = module
        self.module_locks = module_locks
        self.class_stack: List[Set[str]] = []
        self.function_depth = 0
        self.held: List[str] = []
        self.in_init = False
        self.findings: List[Finding] = []

    # -- scope bookkeeping

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.class_stack.append(_class_self_attrs(node))
        self.generic_visit(node)
        self.class_stack.pop()

    def _visit_function(self, node) -> None:
        outer_init = self.in_init
        if self.class_stack and node.name == "__init__":
            self.in_init = True
        self.function_depth += 1
        self.generic_visit(node)
        self.function_depth -= 1
        self.in_init = outer_init

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_With(self, node: ast.With) -> None:
        acquired = []
        for item in node.items:
            dotted = _dotted(item.context_expr) or ""
            tail = dotted.rsplit(".", 1)[-1]
            if tail in GUARDED_FIELDS.values():
                acquired.append(tail)
        self.held.extend(acquired)
        self.generic_visit(node)
        del self.held[len(self.held) - len(acquired):]

    visit_AsyncWith = visit_With

    # -- the accesses under contract

    def _flag(self, node: ast.AST, name: str, lock: str) -> None:
        self.findings.append(
            self.module.finding(
                "CONC002",
                node,
                f"{name} is documented as guarded by {lock}; access it "
                f"inside a `with {lock}:` block (or move the access "
                f"into the guarded section)",
            )
        )

    def visit_Attribute(self, node: ast.Attribute) -> None:
        lock = GUARDED_FIELDS.get(node.attr)
        if (
            lock is not None
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and self.function_depth > 0
            and not self.in_init
            and lock not in self.held
            and self.class_stack
            and lock in self.class_stack[-1]
        ):
            self._flag(node, f"self.{node.attr}", f"self.{lock}")
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        lock = GUARDED_FIELDS.get(node.id)
        if (
            lock is not None
            and self.function_depth > 0
            and lock in self.module_locks
            and lock not in self.held
        ):
            self._flag(node, node.id, lock)
        self.generic_visit(node)


def _class_self_attrs(node: ast.ClassDef) -> Set[str]:
    """Attribute names ever assigned on ``self`` within a class body."""
    attrs: Set[str] = set()
    for stmt in ast.walk(node):
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    attrs.add(target.attr)
    return attrs


def check_conc002(module: Module) -> List[Finding]:
    """Lock-guarded fields touched outside their ``with`` block."""
    module_locks = {
        name
        for name in _module_level_names(module.tree)
        if name in GUARDED_FIELDS.values()
    }
    visitor = _LockScopeVisitor(module, module_locks)
    visitor.visit(module.tree)
    return visitor.findings


# ------------------------------------------------------------------ CONC003


def _nested_function_names(tree: ast.Module) -> Set[str]:
    """Names of functions defined inside another function."""
    nested: Set[str] = set()

    def walk(node: ast.AST, inside_function: bool) -> None:
        for child in ast.iter_child_nodes(node):
            is_fn = isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef)
            )
            if is_fn and inside_function:
                nested.add(child.name)
            walk(child, inside_function or is_fn)

    walk(tree, False)
    return nested


def _lambda_names(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def check_conc003(module: Module) -> List[Finding]:
    """Closures/lambdas handed to parallel_map cannot cross the fork."""
    aliases = _import_map(module.tree)
    nested = _nested_function_names(module.tree)
    lambdas = _lambda_names(module.tree)
    findings = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        target = _canonical(node.func, aliases) or ""
        if not target.endswith("parallel_map"):
            continue
        fn = node.args[0] if node.args else None
        if fn is None:
            for kw in node.keywords:
                if kw.arg == "fn":
                    fn = kw.value
        if fn is None:
            continue
        bad: Optional[str] = None
        if isinstance(fn, ast.Lambda):
            bad = "a lambda"
        elif isinstance(fn, ast.Name) and fn.id in lambdas:
            bad = f"lambda {fn.id!r}"
        elif isinstance(fn, ast.Name) and fn.id in nested:
            bad = f"nested function {fn.id!r}"
        if bad is not None:
            findings.append(
                module.finding(
                    "CONC003",
                    node,
                    f"parallel_map received {bad}; tasks must be "
                    f"module-level picklable functions — closures "
                    f"capture parent state (open file handles, live "
                    f"Generators) that is stale or unpicklable in a "
                    f"forked worker",
                )
            )
    return findings


# ------------------------------------------------------------------- API001

_HWMON_READ_METHODS = {
    "read_series",
    "read_series_batch",
    "read_series_faulted",
    "readings_at",
}

#: The acquisition boundary: only the sensor tree itself and the SoC
#: sampling facade may touch raw hwmon register reads.  Everyone else
#: goes through Soc.sample/sample_faulted so fault plans, hardening and
#: health tracking always apply.
_HWMON_ALLOWED = ("repro/sensors/", "repro/soc/soc.py")


def check_api001(module: Module) -> List[Finding]:
    """Raw hwmon reads outside the read_series_faulted boundary."""
    if _path_matches(module.rel_path, _HWMON_ALLOWED):
        return []
    findings = []
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _HWMON_READ_METHODS
        ):
            findings.append(
                module.finding(
                    "API001",
                    node,
                    f".{node.func.attr}() is a raw hwmon register read; "
                    f"outside repro/sensors and repro/soc it must go "
                    f"through Soc.sample/sample_faulted (the "
                    f"read_series_faulted boundary) so fault plans and "
                    f"sensor health apply",
                )
            )
    return findings


# ------------------------------------------------------------------- API002


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.USub, ast.UAdd)
    ):
        return _is_float_literal(node.operand)
    return False


def check_api002(module: Module) -> List[Finding]:
    """Exact float equality on computed data is seed/chunking fragile."""
    findings = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_float_literal(left) or _is_float_literal(right):
                findings.append(
                    module.finding(
                        "API002",
                        node,
                        "float == / != against a literal is fragile on "
                        "computed trace data; compare integer registers, "
                        "use np.isclose, or suppress with a justification "
                        "if this is an exact sentinel",
                    )
                )
                break
    return findings


# ------------------------------------------------------------------- API003

_MUTABLE_FACTORY_CALLS = {
    "list",
    "dict",
    "set",
    "bytearray",
    "numpy.array",
    "numpy.zeros",
    "numpy.ones",
    "numpy.empty",
    "collections.defaultdict",
    "collections.deque",
}


def check_api003(module: Module) -> List[Finding]:
    """Mutable default arguments are shared across calls and workers."""
    aliases = _import_map(module.tree)
    findings = []
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            default
            for default in node.args.kw_defaults
            if default is not None
        ]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set))
            if isinstance(default, ast.Call):
                target = _canonical(default.func, aliases)
                mutable = target in _MUTABLE_FACTORY_CALLS
            if mutable:
                findings.append(
                    module.finding(
                        "API003",
                        default,
                        f"mutable default argument in {node.name}(); the "
                        f"object is created once and shared by every call "
                        f"(and every forked worker) — default to None and "
                        f"construct inside the function",
                    )
                )
    return findings


# ------------------------------------------------------------------- API004

#: Where per-iteration sorts are sanctioned: the presorted CART itself
#: (repro/ml — one stable presort per fit plus a measured small-node
#: branch) and the frozen legacy kernels + micro-benches (repro/perf)
#: whose whole point is preserving the old pattern for comparison.
_ARGSORT_ALLOWED = ("repro/ml/", "repro/perf/")

_LOOP_NODES = (
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
)


def check_api004(module: Module) -> List[Finding]:
    """Sorting inside a loop re-derives order the caller should presort.

    One ``argsort`` per node/row/trace is how the pre-vectorization
    CART spent its time: O(n log n) work per iteration that a single
    columnwise presort (or one batched sort) does once.  Outside the
    sanctioned kernels, an ``argsort`` in any loop body (or
    comprehension) is flagged — hoist it above the loop or batch the
    whole operation.
    """
    if _path_matches(module.rel_path, _ARGSORT_ALLOWED):
        return []
    aliases = _import_map(module.tree)
    findings = []
    seen: Set[int] = set()
    once: Set[int] = set()
    for loop in ast.walk(module.tree):
        if not isinstance(loop, _LOOP_NODES):
            continue
        # The iterable itself is evaluated once, not per iteration:
        # ``for i in np.argsort(x)`` is a single sort and stays legal.
        header = getattr(loop, "iter", None)
        if header is None and getattr(loop, "generators", None):
            header = loop.generators[0].iter
        if header is not None:
            once.update(id(sub) for sub in ast.walk(header))
        for node in ast.walk(loop):
            if (
                not isinstance(node, ast.Call)
                or id(node) in seen
                or id(node) in once
            ):
                continue
            target = _canonical(node.func, aliases)
            is_argsort = target == "numpy.argsort" or (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "argsort"
            )
            if is_argsort:
                seen.add(id(node))
                findings.append(
                    module.finding(
                        "API004",
                        node,
                        "argsort inside a loop re-sorts per iteration — "
                        "the quadratic pattern the presorted kernels "
                        "replaced; presort once outside the loop (see "
                        "repro.ml.tree's columnwise presort) or batch "
                        "the sort over one axis",
                    )
                )
    return findings


# ------------------------------------------------------------------- API005

#: In-place growth calls on ``self.<attr>`` collections.
_STREAM_GROW_METHODS = ("append", "extend", "appendleft", "insert")
#: Trimming calls that bound a buffer.
_STREAM_TRIM_METHODS = ("pop", "popleft", "popitem", "clear", "remove")


def _self_attr(node: ast.AST) -> Optional[str]:
    """``attr`` for a ``self.attr`` expression, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def check_api005(module: Module) -> List[Finding]:
    """Unbounded accumulation in a streaming state machine.

    The streaming plane's whole contract is O(window) memory over an
    unbounded stream; an ``self.<attr>.append`` inside a ``push*``
    method grows with every chunk unless something trims the buffer.
    A class is considered bounded for ``<attr>`` when any of its
    methods trims it in place (``pop``/``popleft``/``clear``/
    ``remove``/``del self.<attr>[...]``) or rebinds it outside
    ``__init__`` (the repo's slice-advance idiom,
    ``self._buf = self._buf[hop:]``).  ``+=`` on a self attribute in a
    ``push*`` method counts as growth, not a rebind.
    """
    findings = []
    for cls in ast.walk(module.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        grow_sites: List[Tuple[str, ast.AST]] = []
        trimmed: Set[str] = set()
        for method in cls.body:
            if not isinstance(
                method, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            in_push = method.name.startswith("push")
            for node in ast.walk(method):
                if isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute
                ):
                    attr = _self_attr(node.func.value)
                    if attr is not None:
                        if node.func.attr in _STREAM_TRIM_METHODS:
                            trimmed.add(attr)
                        elif (
                            in_push
                            and node.func.attr in _STREAM_GROW_METHODS
                        ):
                            grow_sites.append((attr, node))
                elif isinstance(node, ast.AugAssign):
                    attr = _self_attr(node.target)
                    if attr is not None and in_push:
                        grow_sites.append((attr, node))
                elif isinstance(node, ast.Assign):
                    if method.name == "__init__":
                        continue
                    for target in node.targets:
                        attr = _self_attr(target)
                        if attr is not None:
                            trimmed.add(attr)
                elif isinstance(node, ast.Delete):
                    for target in node.targets:
                        base = (
                            target.value
                            if isinstance(target, ast.Subscript)
                            else target
                        )
                        attr = _self_attr(base)
                        if attr is not None:
                            trimmed.add(attr)
        for attr, node in grow_sites:
            if attr in trimmed:
                continue
            findings.append(
                module.finding(
                    "API005",
                    node,
                    f"self.{attr} grows on every push with no trim "
                    "anywhere in the class — streaming state must stay "
                    "O(window), not O(stream); pop/clear/del the old "
                    "entries or rebind a bounded slice "
                    "(self._buf = self._buf[hop:])",
                )
            )
    return findings


# ------------------------------------------------------------------- API006

#: Process-pool / shared-memory constructors the perf layer wraps.
_RAW_POOL_CALLS = {
    "multiprocessing.Pool": "repro.perf.parallel_map (or "
    "repro.perf.pool.get_pool)",
    "multiprocessing.pool.Pool": "repro.perf.parallel_map (or "
    "repro.perf.pool.get_pool)",
    "concurrent.futures.ProcessPoolExecutor": "repro.perf.parallel_map "
    "(or repro.perf.pool.get_pool)",
    "concurrent.futures.process.ProcessPoolExecutor": (
        "repro.perf.parallel_map (or repro.perf.pool.get_pool)"
    ),
    "multiprocessing.shared_memory.SharedMemory": (
        "repro.perf.shm.publish_arrays / SharedArena"
    ),
}

#: The one layer allowed to construct pools and segments directly.
_RAW_POOL_ALLOWED = ("repro/perf/",)


def check_api006(module: Module) -> List[Finding]:
    """Ad-hoc pools/segments bypass the perf layer's guarantees.

    A bare ``multiprocessing.Pool`` or ``ProcessPoolExecutor`` loses
    the :func:`~repro.perf.parallel_map` contract (submission-order
    results, deterministic task→seed assignment, nested-worker serial
    degradation, crash respawn); a bare ``SharedMemory`` segment loses
    the arena's alignment, resource-tracker, and lifetime bookkeeping.
    Only ``repro/perf/`` — the layer providing those wrappers — may
    construct them directly.
    """
    if _path_matches(module.rel_path, _RAW_POOL_ALLOWED):
        return []
    aliases = _import_map(module.tree)
    findings = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        target = _canonical(node.func, aliases)
        replacement = _RAW_POOL_CALLS.get(target)
        if replacement is not None:
            findings.append(
                module.finding(
                    "API006",
                    node,
                    f"{target} constructed outside repro/perf bypasses "
                    f"the pooled execution/shared-memory layer; use "
                    f"{replacement} instead",
                )
            )
    return findings


# ------------------------------------------------------------------- API007

#: Blocking rendezvous methods whose no-timeout form can hang forever.
_BLOCKING_METHODS = ("get", "wait", "join")

#: The layers allowed to park without a deadline: the pool internals
#: (repro/perf — whose collector is itself watched) and the resilience
#: layer that reaps hung workers.  Everyone else must bound the wait so
#: a dead peer surfaces as a timeout, not a hang.
_BLOCKING_ALLOWED = ("repro/perf/", "repro/resilience/")


def _keyword(node: ast.Call, name: str) -> Optional[ast.expr]:
    for kw in node.keywords:
        if kw.arg == name:
            return kw.value
    return None


def check_api007(module: Module) -> List[Finding]:
    """Untimed blocking waits strand the caller when the peer dies.

    The chaos harness's first invariant is *no hang*: every wait on
    another process or thread must carry a deadline so a SIGKILLed
    worker or dead collector turns into a timeout the caller can
    handle.  A call is flagged when it blocks indefinitely:
    ``q.get()`` / ``q.get(True)`` / ``q.get(block=True)``,
    ``event.wait()``, ``proc.join()``, or any of them with an explicit
    ``timeout=None``.  Calls with a finite timeout — positional
    (``join(2.0)``, ``wait(5)``, ``get(True, 5)``) or keyword — pass,
    as do non-blocking forms (``get(False)``, ``get_nowait``),
    value-carrying lookups (``d.get(key)``, ``sep.join(parts)``), and
    ``await``-ed coroutine methods (the event loop stays responsive).
    """
    if _path_matches(module.rel_path, _BLOCKING_ALLOWED):
        return []
    awaited = {
        id(node.value)
        for node in ast.walk(module.tree)
        if isinstance(node, ast.Await)
    }
    findings = []
    for node in ast.walk(module.tree):
        if (
            not isinstance(node, ast.Call)
            or not isinstance(node.func, ast.Attribute)
            or node.func.attr not in _BLOCKING_METHODS
            or id(node) in awaited
        ):
            continue
        timeout = _keyword(node, "timeout")
        if timeout is not None and not _is_none(timeout):
            continue
        attr = node.func.attr
        if attr in ("wait", "join"):
            # A positional argument is the timeout (join(2.0)) or the
            # payload (sep.join(parts)) — either way, not an untimed
            # park.
            blocking = not node.args
        else:  # get
            if len(node.args) >= 2:
                blocking = False  # get(True, 5): second arg is timeout
            elif len(node.args) == 1:
                first = node.args[0]
                blocking = (
                    isinstance(first, ast.Constant) and first.value is True
                )
            else:
                block = _keyword(node, "block")
                blocking = block is None or (
                    isinstance(block, ast.Constant) and block.value is True
                )
        if blocking:
            findings.append(
                module.finding(
                    "API007",
                    node,
                    f".{attr}() blocks with no timeout; if the peer "
                    f"process/thread dies this caller hangs forever — "
                    f"pass a finite timeout and handle expiry (only "
                    f"repro/perf and repro/resilience may park "
                    f"indefinitely)",
                )
            )
    return findings


# ----------------------------------------------------------------- registry

RULES: Dict[str, Rule] = {
    rule.id: rule
    for rule in (
        Rule(
            "RNG001",
            "unseeded-generator",
            "unseeded default_rng/SeedSequence draws OS entropy; "
            "recordings become unreplayable",
            check_rng001,
        ),
        Rule(
            "RNG002",
            "banned-entropy-source",
            "stdlib random / os.urandom / secrets / legacy np.random.* "
            "bypass the explicit-Generator seed discipline",
            check_rng002,
        ),
        Rule(
            "RNG003",
            "rng-helper-bypass",
            "Generators must be built by utils.rng.ensure_rng/spawn so "
            "normalize_seed(None) -> 0 applies everywhere",
            check_rng003,
        ),
        Rule(
            "TIME001",
            "wall-clock-in-simulated-time",
            "time.time()/datetime.now() in simulated-time modules breaks "
            "replayability (repro/perf timing helpers exempt)",
            check_time001,
        ),
        Rule(
            "CONC001",
            "worker-global-mutation",
            "parallel_map tasks mutating module globals silently lose "
            "the writes under fork",
            check_conc001,
        ),
        Rule(
            "CONC002",
            "unlocked-guarded-field",
            "fields documented as lock-guarded (_clock/_FIT_CONTEXT) "
            "must be accessed under their lock",
            check_conc002,
        ),
        Rule(
            "CONC003",
            "worker-closure-capture",
            "lambdas/closures submitted to parallel_map capture "
            "unpicklable parent state (handles, live Generators)",
            check_conc003,
        ),
        Rule(
            "API001",
            "hwmon-boundary",
            "raw hwmon register reads outside repro/sensors + "
            "repro/soc bypass fault plans and sensor health",
            check_api001,
        ),
        Rule(
            "API002",
            "float-equality",
            "float ==/!= against literals is fragile on computed trace "
            "data; exact sentinels need an explicit suppression",
            check_api002,
        ),
        Rule(
            "API003",
            "mutable-default-argument",
            "mutable defaults are shared across calls and forked "
            "workers",
            check_api003,
        ),
        Rule(
            "API004",
            "argsort-in-loop",
            "per-iteration argsort outside repro/ml re-derives order "
            "the presorted/batched kernels compute once",
            check_api004,
        ),
        Rule(
            "API005",
            "unbounded-stream-state",
            "push* methods appending to untrimmed self collections "
            "grow with the stream; streaming state must stay O(window)",
            check_api005,
        ),
        Rule(
            "API006",
            "raw-process-pool",
            "bare multiprocessing.Pool/ProcessPoolExecutor/SharedMemory "
            "outside repro/perf bypasses the pooled execution and "
            "shared-memory lifetime layer",
            check_api006,
        ),
        Rule(
            "API007",
            "untimed-blocking-call",
            "blocking Queue.get/Event.wait/Process.join without a "
            "timeout hangs forever when the peer dies; bound every "
            "wait outside repro/perf + repro/resilience",
            check_api007,
        ),
        # Whole-program rules: evaluated by repro.check.flow over the
        # project model, not per module (see that package's docstring).
        Rule(
            "PARSE000",
            "unparseable-file",
            "a file the checker cannot read or parse can hide any "
            "violation; it is reported as a finding so the tree can "
            "never check green around it",
            whole_program=True,
        ),
        Rule(
            "FLOW001",
            "entropy-taint-reaches-sink",
            "a value derived from an unseeded default_rng/SeedSequence "
            "reaches a Trace/archive/classifier sink — even through "
            "helpers in other modules — making the recording "
            "unreplayable; sanitize via utils.rng.ensure_rng",
            whole_program=True,
        ),
        Rule(
            "FLOW002",
            "os-entropy-taint-reaches-sink",
            "a value derived from OS/clock entropy (os.urandom, "
            "secrets, stdlib random, time-seeded generators) reaches "
            "a recording sink; such runs cannot be replayed",
            whole_program=True,
        ),
        Rule(
            "FLOW003",
            "wall-clock-taint-escape",
            "a helper's wall-clock return value flows into "
            "simulated-time code outside repro/perf + "
            "repro/resilience; the interprocedural TIME001",
            whole_program=True,
        ),
        Rule(
            "FLOW004",
            "unlocked-worker-path-write",
            "a function reachable from a parallel_map/WorkerPool task "
            "writes module-level state without a lock; the write is "
            "lost under fork (the interprocedural CONC001)",
            whole_program=True,
        ),
        Rule(
            "FLOW005",
            "inconsistent-lock-order",
            "two locks are acquired in opposite orders on different "
            "paths (including through calls) — the ABBA deadlock "
            "shape",
            whole_program=True,
        ),
    )
}
