"""Per-module symbol tables and local flow facts.

This is the per-module half of the whole-program analysis: one AST walk
per file that produces a JSON-serializable :class:`ModuleFacts` — the
unit the incremental cache stores and the worker pool computes in
parallel.  Everything interprocedural (call-edge resolution, taint
fixpoints, lock-order merging) happens later, in
:mod:`repro.check.flow.callgraph`, :mod:`~repro.check.flow.taint` and
:mod:`~repro.check.flow.locks`, over these facts alone — the source is
never re-read.

Local dataflow is intentionally modest: flow-insensitive name-level
taint within one function, with three atom kinds —

* ``source:<kind>`` — the value originates at a taint source here;
* ``param:<i>`` — the value derives from positional parameter ``i``;
* ``call:<j>`` — the value is the result of this function's ``j``-th
  recorded call site (resolved and evaluated interprocedurally).

Reads of ``self.<attr>`` contribute ``selfattr:<attr>`` atoms, which
the global phase resolves against every write to that attribute across
the class (the ``__init__``-launders-an-RNG pattern).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.check.flow.modgraph import module_imports, module_name_for
from repro.check.rules import Module, _canonical, _dotted, _import_map

__all__ = [
    "CallSite",
    "FunctionFacts",
    "ModuleFacts",
    "extract_module_facts",
]

#: Collection-mutator method names that count as a write to the base.
_MUTATOR_METHODS = {
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "clear", "remove", "discard", "sort", "reverse",
    "appendleft", "popleft",
}

#: Submission entry points whose first argument is a task callable.
_SUBMIT_ATTRS = {"submit", "map"}

#: Classes/factories whose instances expose submit()/map() task entry
#: points (bound-name resolution: ``pool = WorkerPool(4); pool.submit``).
_POOL_FACTORIES = ("WorkerPool", "get_pool")


def _is_lock_name(tail: str) -> bool:
    """Heuristic: the dotted tail names a lock object."""
    return "lock" in tail.lower()


@dataclass
class CallSite:
    """One call expression, with enough context to resolve it later."""

    name: str                 # import-alias-canonical dotted target
    line: int
    col: int
    args: List[List[str]] = field(default_factory=list)
    kwargs: Dict[str, List[str]] = field(default_factory=dict)
    base: List[str] = field(default_factory=list)  # taint of func.value
    locks_held: List[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "name": self.name, "line": self.line, "col": self.col,
            "args": self.args, "kwargs": self.kwargs,
            "base": self.base, "locks_held": self.locks_held,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "CallSite":
        return cls(
            name=raw["name"], line=raw["line"], col=raw["col"],
            args=[list(a) for a in raw["args"]],
            kwargs={k: list(v) for k, v in raw["kwargs"].items()},
            base=list(raw["base"]),
            locks_held=list(raw["locks_held"]),
        )


@dataclass
class FunctionFacts:
    """Local facts for one function or method."""

    qualname: str             # "f" or "Class.f"
    line: int
    params: List[str] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    returns: List[str] = field(default_factory=list)      # taint atoms
    self_writes: Dict[str, List[str]] = field(default_factory=dict)
    global_writes: List[dict] = field(default_factory=list)
    locks_acquired: List[str] = field(default_factory=list)
    lock_pairs: List[dict] = field(default_factory=list)
    submissions: List[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "qualname": self.qualname, "line": self.line,
            "params": self.params,
            "calls": [c.to_dict() for c in self.calls],
            "returns": self.returns,
            "self_writes": self.self_writes,
            "global_writes": self.global_writes,
            "locks_acquired": self.locks_acquired,
            "lock_pairs": self.lock_pairs,
            "submissions": self.submissions,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "FunctionFacts":
        facts = cls(qualname=raw["qualname"], line=raw["line"])
        facts.params = list(raw["params"])
        facts.calls = [CallSite.from_dict(c) for c in raw["calls"]]
        facts.returns = list(raw["returns"])
        facts.self_writes = {
            k: list(v) for k, v in raw["self_writes"].items()
        }
        facts.global_writes = [dict(w) for w in raw["global_writes"]]
        facts.locks_acquired = list(raw["locks_acquired"])
        facts.lock_pairs = [dict(p) for p in raw["lock_pairs"]]
        facts.submissions = [dict(s) for s in raw["submissions"]]
        return facts


@dataclass
class ModuleFacts:
    """Everything the whole-program phase needs from one module."""

    module: str
    rel_path: str
    imports: List[str] = field(default_factory=list)
    functions: Dict[str, FunctionFacts] = field(default_factory=dict)
    classes: Dict[str, List[str]] = field(default_factory=dict)
    toplevel_names: List[str] = field(default_factory=list)
    snippets: Dict[str, str] = field(default_factory=dict)  # line -> text

    def snippet(self, line: int) -> str:
        return self.snippets.get(str(line), "")

    def to_dict(self) -> dict:
        return {
            "module": self.module,
            "rel_path": self.rel_path,
            "imports": self.imports,
            "functions": {
                k: f.to_dict() for k, f in self.functions.items()
            },
            "classes": self.classes,
            "toplevel_names": self.toplevel_names,
            "snippets": self.snippets,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "ModuleFacts":
        facts = cls(module=raw["module"], rel_path=raw["rel_path"])
        facts.imports = list(raw["imports"])
        facts.functions = {
            k: FunctionFacts.from_dict(f)
            for k, f in raw["functions"].items()
        }
        facts.classes = {k: list(v) for k, v in raw["classes"].items()}
        facts.toplevel_names = list(raw["toplevel_names"])
        facts.snippets = dict(raw["snippets"])
        return facts


# ------------------------------------------------------------- extraction


class _FunctionExtractor:
    """One function's local-flow walk (called with class context)."""

    def __init__(
        self,
        module: Module,
        aliases: Dict[str, str],
        toplevel: Set[str],
        node: ast.AST,
        qualname: str,
        class_name: Optional[str],
    ):
        self.module = module
        self.aliases = aliases
        self.toplevel = toplevel
        self.node = node
        self.class_name = class_name
        args = node.args
        params = [a.arg for a in args.posonlyargs + args.args]
        if class_name and params and params[0] in ("self", "cls"):
            params = params[1:]
            self.self_name = "self"
        else:
            self.self_name = None if class_name is None else "self"
        self.facts = FunctionFacts(
            qualname=qualname, line=node.lineno, params=params
        )
        self.env: Dict[str, Set[str]] = {
            name: {f"param:{i}"} for i, name in enumerate(params)
        }
        #: local var -> canonical class name it was constructed from
        self.bound: Dict[str, str] = {}
        self.call_index: Dict[int, int] = {}   # id(node) -> call idx
        self.call_nodes: List[ast.Call] = []
        self.lock_stack: List[str] = []
        self.declared_global: Set[str] = {
            name
            for stmt in ast.walk(node)
            if isinstance(stmt, ast.Global)
            for name in stmt.names
        }
        # Names assigned locally (no ``global``) shadow module-level
        # names; writes through them are not global writes.
        self.local_names: Set[str] = set(self.env)
        for stmt in ast.walk(node):
            if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id not in self.declared_global
                    ):
                        self.local_names.add(target.id)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                for sub in ast.walk(stmt.target):
                    if isinstance(sub, ast.Name):
                        self.local_names.add(sub.id)

    # -- naming ---------------------------------------------------------

    def _lock_identity(self, expr: ast.AST) -> Optional[str]:
        """Qualified identity for a lock context expression."""
        dotted = _dotted(expr)
        if not dotted:
            return None
        tail = dotted.rsplit(".", 1)[-1]
        if not _is_lock_name(tail):
            return None
        head = dotted.split(".", 1)[0]
        if head == "self" and self.class_name:
            return f"{self.module.rel_path}::{self.class_name}.{tail}"
        canonical = _canonical(expr, self.aliases) or dotted
        if canonical != dotted or head in self.toplevel:
            # resolved through an import, or a module-level lock
            if "." not in canonical:
                return f"{self.module.rel_path}::{canonical}"
            return canonical
        return f"{self.module.rel_path}::{dotted}"

    def _call_target(self, node: ast.Call) -> Tuple[str, List[str]]:
        """(canonical target name, base-object taint atoms)."""
        func = node.func
        base_atoms: List[str] = []
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name):
                if base.id == "self" and self.class_name:
                    return f"self.{func.attr}", []
                bound_cls = self.bound.get(base.id)
                if bound_cls is not None:
                    return f"{bound_cls}.{func.attr}", sorted(
                        self._expr_taint(base)
                    )
            base_atoms = sorted(self._expr_taint(base))
        canonical = _canonical(func, self.aliases)
        return canonical or "", base_atoms

    # -- taint ----------------------------------------------------------

    def _expr_taint(self, node: Optional[ast.AST]) -> Set[str]:
        if node is None:
            return set()
        if isinstance(node, ast.Name):
            return set(self.env.get(node.id, ()))
        if isinstance(node, ast.Call):
            idx = self.call_index.get(id(node))
            return {f"call:{idx}"} if idx is not None else set()
        if isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and self.class_name
            ):
                local = self.env.get(f"self.{node.attr}", set())
                return {f"selfattr:{node.attr}"} | local
            return self._expr_taint(node.value)
        if isinstance(node, ast.BinOp):
            return self._expr_taint(node.left) | self._expr_taint(node.right)
        if isinstance(node, ast.UnaryOp):
            return self._expr_taint(node.operand)
        if isinstance(node, ast.BoolOp):
            out: Set[str] = set()
            for value in node.values:
                out |= self._expr_taint(value)
            return out
        if isinstance(node, ast.Compare):
            out = self._expr_taint(node.left)
            for comparator in node.comparators:
                out |= self._expr_taint(comparator)
            return out
        if isinstance(node, ast.IfExp):
            return self._expr_taint(node.body) | self._expr_taint(node.orelse)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out = set()
            for elt in node.elts:
                out |= self._expr_taint(elt)
            return out
        if isinstance(node, ast.Dict):
            out = set()
            for value in node.values:
                out |= self._expr_taint(value)
            return out
        if isinstance(node, ast.Subscript):
            return self._expr_taint(node.value)
        if isinstance(node, ast.Starred):
            return self._expr_taint(node.value)
        if isinstance(node, ast.Await):
            return self._expr_taint(node.value)
        if isinstance(node, ast.NamedExpr):
            return self._expr_taint(node.value)
        if isinstance(node, ast.FormattedValue):
            return self._expr_taint(node.value)
        if isinstance(node, ast.JoinedStr):
            out = set()
            for value in node.values:
                out |= self._expr_taint(value)
            return out
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)
        ):
            out = self._expr_taint(node.elt)
            for gen in node.generators:
                out |= self._expr_taint(gen.iter)
            return out
        if isinstance(node, ast.DictComp):
            out = self._expr_taint(node.value)
            for gen in node.generators:
                out |= self._expr_taint(gen.iter)
            return out
        return set()

    def _bind(self, name: str, atoms: Set[str]) -> bool:
        known = self.env.setdefault(name, set())
        before = len(known)
        known |= atoms
        return len(known) != before

    def _assign_target(self, target: ast.AST, atoms: Set[str]) -> bool:
        changed = False
        if isinstance(target, ast.Name):
            changed |= self._bind(target.id, atoms)
        elif isinstance(target, ast.Attribute):
            if (
                isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and self.class_name
            ):
                changed |= self._bind(f"self.{target.attr}", atoms)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                changed |= self._assign_target(elt, atoms)
        elif isinstance(target, ast.Starred):
            changed |= self._assign_target(target.value, atoms)
        return changed

    def _dataflow_pass(self) -> bool:
        changed = False
        for node in ast.walk(self.node):
            if isinstance(node, ast.Assign):
                atoms = self._expr_taint(node.value)
                # Bound-name resolution: var = ClassName(...) makes
                # var.method() resolvable later.
                if (
                    isinstance(node.value, ast.Call)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                ):
                    target_name = _canonical(
                        node.value.func, self.aliases
                    )
                    if target_name and (
                        target_name.rsplit(".", 1)[-1][:1].isupper()
                        or target_name.rsplit(".", 1)[-1].startswith(
                            _POOL_FACTORIES
                        )
                    ):
                        var = node.targets[0].id
                        if self.bound.get(var) != target_name:
                            self.bound[var] = target_name
                            changed = True
                for target in node.targets:
                    changed |= self._assign_target(target, atoms)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                atoms = self._expr_taint(node.value)
                changed |= self._assign_target(node.target, atoms)
            elif isinstance(node, ast.NamedExpr):
                atoms = self._expr_taint(node.value)
                changed |= self._assign_target(node.target, atoms)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                atoms = self._expr_taint(node.iter)
                changed |= self._assign_target(node.target, atoms)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is not None:
                        atoms = self._expr_taint(item.context_expr)
                        changed |= self._assign_target(
                            item.optional_vars, atoms
                        )
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp,
                       ast.GeneratorExp)
            ):
                for gen in node.generators:
                    atoms = self._expr_taint(gen.iter)
                    changed |= self._assign_target(gen.target, atoms)
        return changed

    # -- structural walk (locks, writes, submissions, calls) ------------

    def _walk_structure(self, node: ast.AST) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            n_acquired = 0
            for item in node.items:
                lock = self._lock_identity(item.context_expr)
                if lock is not None:
                    for held in self.lock_stack:
                        if held != lock:
                            self.facts.lock_pairs.append(
                                {
                                    "outer": held,
                                    "inner": lock,
                                    "line": item.context_expr.lineno,
                                }
                            )
                    if lock not in self.facts.locks_acquired:
                        self.facts.locks_acquired.append(lock)
                    self.lock_stack.append(lock)
                    n_acquired += 1
            for child in ast.iter_child_nodes(node):
                self._walk_structure(child)
            if n_acquired:
                del self.lock_stack[-n_acquired:]
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node is not self.node:
                return  # nested functions analyzed separately
        if isinstance(node, ast.Lambda):
            return
        if isinstance(node, ast.Call):
            self._record_call(node)
        self._record_writes(node)
        for child in ast.iter_child_nodes(node):
            self._walk_structure(child)

    def _record_call(self, node: ast.Call) -> None:
        name, base_atoms = self._call_target(node)
        idx = len(self.call_nodes)
        self.call_index[id(node)] = idx
        self.call_nodes.append(node)
        self.facts.calls.append(
            CallSite(
                name=name,
                line=node.lineno,
                col=node.col_offset,
                base=base_atoms,
                locks_held=list(self.lock_stack),
            )
        )
        # Task submissions: parallel_map(fn, ...) / pool.submit(fn, ...)
        is_submit = name.endswith("parallel_map") or (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SUBMIT_ATTRS
            and any(
                piece in name
                for piece in ("WorkerPool", "get_pool", "pool")
            )
        )
        if is_submit:
            fn = node.args[0] if node.args else None
            if fn is None:
                for kw in node.keywords:
                    if kw.arg == "fn":
                        fn = kw.value
            task = (
                _canonical(fn, self.aliases)
                if fn is not None
                else None
            )
            if isinstance(fn, ast.Attribute) and task is None:
                task = _dotted(fn)
            if task:
                self.facts.submissions.append(
                    {"task": task, "line": node.lineno,
                     "col": node.col_offset, "via": name}
                )

    def _record_writes(self, node: ast.AST) -> None:
        def _write(name: str, where: ast.AST, kind: str) -> None:
            self.facts.global_writes.append(
                {
                    "name": name,
                    "line": where.lineno,
                    "col": getattr(where, "col_offset", 0),
                    "kind": kind,
                    "locks_held": list(self.lock_stack),
                }
            )

        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id in self.declared_global
                    and target.id in self.toplevel
                ):
                    _write(target.id, node, "assign")
                elif isinstance(target, ast.Subscript):
                    base = target.value
                    if (
                        isinstance(base, ast.Name)
                        and base.id in self.toplevel
                        and base.id not in self.local_names
                    ):
                        _write(base.id, node, "setitem")
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATOR_METHODS
                and isinstance(func.value, ast.Name)
                and func.value.id in self.toplevel
                and func.value.id not in self.local_names
            ):
                _write(func.value.id, node, "mutate")
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                base = (
                    target.value
                    if isinstance(target, ast.Subscript)
                    else target
                )
                if (
                    isinstance(base, ast.Name)
                    and base.id in self.toplevel
                    and base.id not in self.local_names
                ):
                    _write(base.id, node, "delete")

    # -- driver ---------------------------------------------------------

    def run(self) -> FunctionFacts:
        self._walk_structure(self.node)
        for _ in range(10):
            if not self._dataflow_pass():
                break
        # Final pass: freeze arg taints, returns and self-writes from
        # the stabilized environment.
        for idx, call in enumerate(self.call_nodes):
            site = self.facts.calls[idx]
            # Re-derive the target name: bound-name classes (var =
            # ClassName(); var.method()) are only known post-dataflow.
            site.name = self._call_target(call)[0]
            site.args = [
                sorted(self._expr_taint(arg)) for arg in call.args
            ]
            site.kwargs = {
                kw.arg: sorted(self._expr_taint(kw.value))
                for kw in call.keywords
                if kw.arg is not None
            }
            if isinstance(call.func, ast.Attribute):
                site.base = sorted(self._expr_taint(call.func.value))
        returns: Set[str] = set()
        for node in ast.walk(self.node):
            if isinstance(node, ast.Return) and node.value is not None:
                returns |= self._expr_taint(node.value)
        self.facts.returns = sorted(returns)
        self_writes: Dict[str, Set[str]] = {}
        for node in ast.walk(self.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and self.class_name
                    ):
                        self_writes.setdefault(target.attr, set()).update(
                            self._expr_taint(node.value)
                        )
        self.facts.self_writes = {
            attr: sorted(atoms) for attr, atoms in self_writes.items()
        }
        return self.facts


def extract_module_facts(module: Module) -> ModuleFacts:
    """One parse-tree walk producing the module's serializable facts."""
    aliases = _import_map(module.tree)
    name = module_name_for(module.rel_path)
    facts = ModuleFacts(module=name, rel_path=module.rel_path)
    facts.imports = sorted(module_imports(module.tree, name))

    toplevel: Set[str] = set()
    for node in module.tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        toplevel.add(sub.id)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(node.target, ast.Name):
                toplevel.add(node.target.id)
    facts.toplevel_names = sorted(toplevel)

    lines_needed: Set[int] = set()

    def _extract_function(
        node: ast.AST, qualname: str, class_name: Optional[str]
    ) -> None:
        extractor = _FunctionExtractor(
            module, aliases, toplevel, node, qualname, class_name
        )
        fn_facts = extractor.run()
        facts.functions[qualname] = fn_facts
        lines_needed.update(c.line for c in fn_facts.calls)
        lines_needed.update(w["line"] for w in fn_facts.global_writes)
        lines_needed.update(p["line"] for p in fn_facts.lock_pairs)
        lines_needed.update(s["line"] for s in fn_facts.submissions)

    def _visit(body, prefix: str, class_name: Optional[str]) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{node.name}"
                _extract_function(node, qualname, class_name)
                # nested defs inside functions are analyzed as part of
                # their enclosing function's structure walk only when
                # reached; independent extraction keeps them callable.
                _visit(
                    node.body, f"{qualname}.<locals>.", class_name
                )
            elif isinstance(node, ast.ClassDef):
                methods = [
                    stmt.name
                    for stmt in node.body
                    if isinstance(
                        stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                    )
                ]
                facts.classes[f"{prefix}{node.name}"] = methods
                _visit(
                    node.body, f"{prefix}{node.name}.", node.name
                )

    _visit(module.tree.body, "", None)

    facts.snippets = {
        str(line): module.snippet(line)
        for line in sorted(lines_needed)
        if module.snippet(line)
    }
    return facts
