"""Lock-discipline and fork-safety analysis over the call graph.

FLOW004 — *unlocked shared write on a worker path*.  The set of
functions transitively reachable from any task callable handed to
``parallel_map`` / ``WorkerPool.submit`` / ``pool.map`` runs inside
forked workers.  A write to module-level state (a ``global`` assign, a
``STATE[key] = ...`` store, or a mutator call like ``CACHE.update``)
on one of those paths is lost in the child — or races the parent when
the pool ever goes threaded — unless a lock lexically dominates it.
This is the interprocedural generalization of CONC001, which can only
see a mutation in the submitted function itself, in the same file.

FLOW005 — *inconsistent lock-acquisition order*.  Every ``with``-block
acquisition records (held, inner) pairs, including pairs completed
through calls (caller holds A, callee acquires B).  Two locks acquired
in both orders anywhere in the program is the classic ABBA deadlock
shape; both sites are reported.

The pool/shm internals (``repro/perf/``) are exempt from FLOW004: that
layer *is* the supervised infrastructure (its globals are the pool
registry protected by its own lifecycle) and its discipline is pinned
by the chaos/resilience test suites instead.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.check.findings import Finding
from repro.check.flow.callgraph import CallGraph, FunctionId
from repro.check.flow.symbols import ModuleFacts

__all__ = ["run_locks", "LockAnalysis"]

_WORKER_WRITE_EXEMPT = ("repro/perf/",)


def _short_lock(lock: str) -> str:
    """Human-readable tail of a qualified lock identity."""
    return lock.split("::")[-1].split(".")[-1] if lock else lock


class LockAnalysis:
    """Worker-path write checking and global lock-order merging."""

    def __init__(self, project: Dict[str, ModuleFacts], graph: CallGraph):
        self.project = project
        self.graph = graph
        self.facts_by_id = graph.functions
        #: function id -> locks it (transitively) may acquire
        self.acquires: Dict[FunctionId, Set[str]] = {
            fn_id: set(fn.locks_acquired)
            for fn_id, fn in graph.functions.items()
        }
        self._close_acquires()

    def _close_acquires(self) -> None:
        changed = True
        while changed:
            changed = False
            for fn_id, callees in self.graph.edges.items():
                mine = self.acquires[fn_id]
                before = len(mine)
                for callee in callees:
                    mine |= self.acquires.get(callee, set())
                if len(mine) != before:
                    changed = True

    # -- FLOW004 --------------------------------------------------------

    def worker_write_findings(self) -> List[Finding]:
        roots = self.graph.task_roots()
        if not roots:
            return []
        #: task id -> one submission record (first wins, for messages)
        submitted: Dict[FunctionId, dict] = {}
        for task, record in roots:
            submitted.setdefault(task, record)
        reachable = self.graph.reachable_from(submitted)
        #: function id -> nearest submitted root (for diagnostics)
        origin: Dict[FunctionId, FunctionId] = {}
        for task in submitted:
            for fn_id in self.graph.reachable_from([task]):
                origin.setdefault(fn_id, task)

        findings: List[Finding] = []
        seen: Set[Tuple[str, int, str]] = set()
        for fn_id in sorted(reachable):
            module_name = self.graph.module_of(fn_id)
            facts = self.project.get(module_name)
            if facts is None:
                continue
            if any(
                piece in facts.rel_path for piece in _WORKER_WRITE_EXEMPT
            ):
                continue
            fn = self.facts_by_id[fn_id]
            root = origin.get(fn_id, fn_id)
            record = submitted.get(root, {})
            for write in fn.global_writes:
                if write["locks_held"]:
                    continue
                key = (facts.rel_path, write["line"], write["name"])
                if key in seen:
                    continue
                seen.add(key)
                via = record.get("via", "parallel_map")
                where = (
                    f"{record.get('submitter', '?')} line "
                    f"{record.get('line', '?')}"
                )
                findings.append(
                    Finding(
                        path=facts.rel_path,
                        line=write["line"],
                        col=write["col"],
                        rule="FLOW004",
                        message=(
                            f"{fn.qualname}() writes module-level "
                            f"{write['name']!r} without holding a lock, "
                            f"and is reachable from worker task "
                            f"{root.split(':', 1)[1]}() (submitted via "
                            f"{via} at {where}); the write is lost in "
                            f"the forked child — pass state through "
                            f"return values, or guard it with a lock "
                            f"if it is parent-side"
                        ),
                        snippet=facts.snippet(write["line"]),
                    )
                )
        return findings

    # -- FLOW005 --------------------------------------------------------

    def lock_order_findings(self) -> List[Finding]:
        #: (outer, inner) -> first site (rel_path, line, snippet)
        edges: Dict[Tuple[str, str], Tuple[str, int, str]] = {}
        for module_name, facts in self.project.items():
            for qualname, fn in facts.functions.items():
                fn_id = f"{module_name}:{qualname}"
                for pair in fn.lock_pairs:
                    key = (pair["outer"], pair["inner"])
                    edges.setdefault(
                        key,
                        (
                            facts.rel_path,
                            pair["line"],
                            facts.snippet(pair["line"]),
                        ),
                    )
                # calls made while holding a lock: the callee's
                # transitive acquisitions complete the pair.
                for idx, site in enumerate(fn.calls):
                    if not site.locks_held:
                        continue
                    callee = self.graph.site_targets.get((fn_id, idx))
                    if callee is None:
                        continue
                    for inner in self.acquires.get(callee, ()):
                        for outer in site.locks_held:
                            if outer == inner:
                                continue
                            edges.setdefault(
                                (outer, inner),
                                (
                                    facts.rel_path,
                                    site.line,
                                    facts.snippet(site.line),
                                ),
                            )

        findings: List[Finding] = []
        reported: Set[Tuple[str, str]] = set()
        for (outer, inner), site in sorted(edges.items()):
            reverse = (inner, outer)
            if reverse not in edges:
                continue
            pair_key = (min(outer, inner), max(outer, inner))
            if pair_key in reported:
                continue
            reported.add(pair_key)
            for (a, b) in ((outer, inner), reverse):
                rel_path, line, snippet = edges[(a, b)]
                other = edges[(b, a)]
                findings.append(
                    Finding(
                        path=rel_path,
                        line=line,
                        col=0,
                        rule="FLOW005",
                        message=(
                            f"lock {_short_lock(b)} is acquired while "
                            f"holding {_short_lock(a)} here, but the "
                            f"opposite order occurs at {other[0]}:"
                            f"{other[1]} — inconsistent ordering is "
                            f"the ABBA deadlock shape; pick one global "
                            f"order for ({_short_lock(a)}, "
                            f"{_short_lock(b)}) and apply it at both "
                            f"sites"
                        ),
                        snippet=snippet,
                    )
                )
        return findings


def run_locks(
    project: Dict[str, ModuleFacts],
    graph: CallGraph,
    selected: Set[str],
) -> List[Finding]:
    """Run FLOW004/FLOW005 and return their findings."""
    if not selected & {"FLOW004", "FLOW005"}:
        return []
    analysis = LockAnalysis(project, graph)
    findings: List[Finding] = []
    if "FLOW004" in selected:
        findings.extend(analysis.worker_write_findings())
    if "FLOW005" in selected:
        findings.extend(analysis.lock_order_findings())
    return findings
