"""SARIF 2.1.0 emitter for ``repro check`` results.

Static Analysis Results Interchange Format, the schema GitHub code
scanning and most CI annotators consume.  One ``run`` with one
``tool.driver`` (``repro-check``); every selected rule appears in the
driver's rule table, every new finding becomes a ``result`` with a
``physicalLocation``, and parse errors are emitted as
``tool`` execution notifications so a broken file is visible in the
artifact too.
"""

from __future__ import annotations

import json
from typing import Dict, List

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _result(finding) -> Dict:
    return {
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": max(1, finding.line),
                        "startColumn": finding.col + 1,
                        "snippet": {"text": finding.snippet},
                    },
                }
            }
        ],
        "fingerprints": {"reproCheck/v1": finding.fingerprint},
    }


def render_sarif(result, rules: Dict[str, object]) -> str:
    """Serialize a :class:`~repro.check.engine.CheckResult` as SARIF.

    Args:
        result: the check result (new findings become ``results``;
            baselined findings are emitted with ``"baselineState":
            "unchanged"`` so annotators can hide them).
        rules: the rule registry (id -> Rule), used for the driver's
            rule table; only rules that ran are listed.
    """
    ran = set(result.rules_run)
    driver_rules: List[Dict] = []
    for rule_id in sorted(ran):
        rule = rules.get(rule_id)
        if rule is None:
            continue
        driver_rules.append(
            {
                "id": rule.id,
                "name": rule.name,
                "shortDescription": {"text": rule.name},
                "fullDescription": {"text": rule.rationale},
                "defaultConfiguration": {"level": "error"},
            }
        )
    results = [_result(finding) for finding in result.findings]
    for finding in result.baselined:
        entry = _result(finding)
        entry["baselineState"] = "unchanged"
        entry["level"] = "note"
        results.append(entry)
    notifications = [
        {
            "level": "error",
            "message": {"text": error.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": error.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {"startLine": max(1, error.line)},
                    }
                }
            ],
        }
        for error in result.errors
    ]
    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-check",
                        "informationUri": (
                            "https://github.com/amperebleed/repro"
                        ),
                        "rules": driver_rules,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
                "invocations": [
                    {
                        "executionSuccessful": result.ok,
                        "toolExecutionNotifications": notifications,
                    }
                ],
            }
        ],
    }
    return json.dumps(document, indent=2)
