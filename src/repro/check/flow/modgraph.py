"""Module graph for the whole-program analysis.

The graph's nodes are the scanned files, named by dotted module path
(``src/repro/core/io.py`` -> ``repro.core.io``; a bare fixture file
``helper.py`` -> ``helper``).  Edges follow imports *between scanned
modules only* — third-party imports are not project edges.  The graph
answers the two questions the incremental layer needs:

* which scanned modules does module M import (cache validity: M's
  cached facts are stale when any imported module's content changed);
* which modules transitively depend on M (``--changed-only``: a change
  to M re-analyzes M plus this closure).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set

__all__ = [
    "module_name_for",
    "module_imports",
    "ModuleGraph",
]


def module_name_for(rel_path: str) -> str:
    """Dotted module name for a scan-root-relative POSIX path.

    A leading ``src/`` segment is stripped (the repo layout), and a
    package ``__init__.py`` names the package itself.
    """
    posix = rel_path.replace("\\", "/")
    if posix.startswith("src/"):
        posix = posix[len("src/"):]
    if posix.endswith(".py"):
        posix = posix[: -len(".py")]
    parts = [piece for piece in posix.split("/") if piece]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else posix


def module_imports(tree: ast.Module, own_name: str) -> Set[str]:
    """Module names imported by ``tree`` (absolute and relative).

    ``from a.b import c`` contributes both ``a.b`` and ``a.b.c`` —
    ``c`` may be a submodule or a symbol, and the graph keeps whichever
    of the two names actually exists among the scanned modules.
    """
    imported: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                imported.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # level 1 = current package: drop the module's own leaf.
                base_parts = own_name.split(".")
                base_parts = base_parts[: len(base_parts) - node.level]
                prefix = ".".join(base_parts)
                module = (
                    f"{prefix}.{node.module}" if node.module else prefix
                )
            else:
                module = node.module or ""
            if module:
                imported.add(module)
                for alias in node.names:
                    imported.add(f"{module}.{alias.name}")
    imported.discard(own_name)
    return imported


class ModuleGraph:
    """Import edges between scanned modules, with reverse closure."""

    def __init__(self, imports_by_module: Dict[str, Iterable[str]]):
        known = set(imports_by_module)
        #: module -> scanned modules it imports
        self.imports: Dict[str, Set[str]] = {
            name: {dep for dep in deps if dep in known and dep != name}
            for name, deps in imports_by_module.items()
        }
        #: module -> scanned modules that import it
        self.dependents: Dict[str, Set[str]] = {name: set() for name in known}
        for name, deps in self.imports.items():
            for dep in deps:
                self.dependents[dep].add(name)

    def modules(self) -> List[str]:
        return sorted(self.imports)

    def dependents_closure(self, roots: Iterable[str]) -> Set[str]:
        """``roots`` plus every module that transitively imports one."""
        seen: Set[str] = set()
        stack = [root for root in roots if root in self.dependents]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            stack.extend(self.dependents.get(name, ()))
        return seen

    def imports_closure(self, roots: Iterable[str]) -> Set[str]:
        """``roots`` plus everything they transitively import."""
        seen: Set[str] = set()
        stack = [root for root in roots if root in self.imports]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            stack.extend(self.imports.get(name, ()))
        return seen
