"""Import-alias-resolved call graph over the project model.

Functions are identified as ``"<module>:<qualname>"`` — for example
``repro.core.io:TraceArchiveWriter.append``.  Resolution handles the
intra-package patterns the repo actually uses:

* bare local calls (``helper()`` resolves in the caller's module);
* alias-resolved dotted calls (``import repro.core.io as cio;
  cio.save_traceset(...)`` and ``from repro.utils.rng import
  ensure_rng; ensure_rng(...)``);
* ``self.method()`` within a class;
* bound-name method calls (``w = TraceArchiveWriter(...);
  w.append(...)`` — recorded as ``<Class>.append`` at extraction);
* class constructors (``Trace(...)`` resolves to
  ``<module>:<Class>.__init__`` when defined).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.check.flow.symbols import CallSite, FunctionFacts, ModuleFacts

__all__ = ["FunctionId", "CallGraph"]

FunctionId = str  # "<module>:<qualname>"


class CallGraph:
    """Resolved call edges plus reachability over a project model."""

    def __init__(self, project: Dict[str, ModuleFacts]):
        self.project = project
        #: function id -> facts
        self.functions: Dict[FunctionId, FunctionFacts] = {}
        #: class id "<module>:<Class>" -> method names
        self.classes: Dict[str, List[str]] = {}
        for facts in project.values():
            for qualname, fn in facts.functions.items():
                self.functions[f"{facts.module}:{qualname}"] = fn
            for cls, methods in facts.classes.items():
                self.classes[f"{facts.module}:{cls}"] = methods
        #: resolved edges: function id -> set of callee function ids
        self.edges: Dict[FunctionId, Set[FunctionId]] = {}
        #: per call site: (function id, call index) -> callee id
        self.site_targets: Dict[Tuple[FunctionId, int], FunctionId] = {}
        for module_name, facts in project.items():
            for qualname, fn in facts.functions.items():
                caller = f"{module_name}:{qualname}"
                targets: Set[FunctionId] = set()
                for idx, site in enumerate(fn.calls):
                    callee = self.resolve_call(module_name, qualname, site)
                    if callee is not None:
                        targets.add(callee)
                        self.site_targets[(caller, idx)] = callee
                self.edges[caller] = targets

    # -- resolution -----------------------------------------------------

    def module_of(self, function_id: FunctionId) -> str:
        return function_id.split(":", 1)[0]

    def _module_prefix(self, dotted: str) -> Optional[Tuple[str, str]]:
        """Longest scanned-module prefix of ``dotted`` + the remainder."""
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:cut])
            if module in self.project:
                return module, ".".join(parts[cut:])
        return None

    def resolve_name(
        self, dotted: str, from_module: str
    ) -> Optional[FunctionId]:
        """Resolve a canonical dotted name to a project function id."""
        if not dotted:
            return None
        # Bare (or dotted-local) name in the caller's own module.
        own = self.project.get(from_module)
        if own is not None:
            if dotted in own.functions:
                return f"{from_module}:{dotted}"
            if dotted in own.classes:
                return self._constructor(f"{from_module}:{dotted}")
            head, _, rest = dotted.partition(".")
            if rest and head in own.classes:
                return self._method(f"{from_module}:{head}", rest)
        # Cross-module: longest module prefix, remainder is the symbol.
        split = self._module_prefix(dotted)
        if split is None:
            return None
        module, symbol = split
        if not symbol:
            return None
        target = self.project[module]
        if symbol in target.functions:
            return f"{module}:{symbol}"
        if symbol in target.classes:
            return self._constructor(f"{module}:{symbol}")
        head, _, rest = symbol.partition(".")
        if rest and head in target.classes:
            return self._method(f"{module}:{head}", rest)
        return None

    def _constructor(self, class_id: str) -> Optional[FunctionId]:
        if "__init__" in self.classes.get(class_id, ()):
            return f"{class_id}.__init__"
        return None

    def _method(self, class_id: str, method: str) -> Optional[FunctionId]:
        if method in self.classes.get(class_id, ()):
            return f"{class_id}.{method}"
        return None

    def resolve_call(
        self, module: str, caller_qualname: str, site: CallSite
    ) -> Optional[FunctionId]:
        """Resolve one call site from within ``module:caller_qualname``."""
        name = site.name
        if not name:
            return None
        if name.startswith("self."):
            # Method call on the enclosing class.
            if "." in caller_qualname:
                cls = caller_qualname.rsplit(".", 1)[0]
                # strip <locals> chains back to the class qualname
                cls = cls.split(".<locals>.")[0]
                resolved = self._method(
                    f"{module}:{cls}", name[len("self."):]
                )
                if resolved is not None:
                    return resolved
            return None
        return self.resolve_name(name, module)

    # -- reachability ---------------------------------------------------

    def reachable_from(
        self, roots: Iterable[FunctionId]
    ) -> Set[FunctionId]:
        """Functions transitively reachable from ``roots`` (inclusive)."""
        seen: Set[FunctionId] = set()
        stack = [root for root in roots if root in self.functions]
        while stack:
            fn = stack.pop()
            if fn in seen:
                continue
            seen.add(fn)
            stack.extend(self.edges.get(fn, ()))
        return seen

    def task_roots(self) -> List[Tuple[FunctionId, dict]]:
        """Resolved task callables from every recorded submission.

        Returns ``(task function id, submission record)`` pairs; the
        record keeps the submitting module/line for diagnostics.
        """
        roots: List[Tuple[FunctionId, dict]] = []
        for module_name, facts in self.project.items():
            for qualname, fn in facts.functions.items():
                for sub in fn.submissions:
                    task = self.resolve_name(sub["task"], module_name)
                    if task is not None:
                        record = dict(sub)
                        record["submitter"] = f"{module_name}:{qualname}"
                        roots.append((task, record))
        return roots
