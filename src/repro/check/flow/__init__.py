"""``repro.check.flow`` — whole-program flow analysis for the checker.

Where :mod:`repro.check.rules` checks one file at a time, this package
builds a *project model* — module graph, per-module symbol tables and
an import-alias-resolved call graph — and runs interprocedural
analyses over it:

==========  ===========================================================
Rule        Contract
==========  ===========================================================
FLOW001     no value derived from an unseeded ``default_rng`` /
            ``SeedSequence`` may reach a recording sink (``Trace`` /
            archive append / classifier ``fit``) without passing
            through ``repro.utils.rng.ensure_rng`` — even when the
            generator is laundered through helpers in other modules
FLOW002     same sinks, OS/clock entropy (``os.urandom``, ``secrets``,
            stdlib ``random``, time-seeded generators)
FLOW003     a helper's wall-clock return value (``time.time`` /
            ``monotonic`` / ``perf_counter``) must not flow into
            simulated-time code outside ``repro/perf`` +
            ``repro/resilience``
FLOW004     no unlocked write to module-level state in any function
            transitively reachable from a ``parallel_map`` /
            ``WorkerPool.submit`` task callable (the interprocedural
            CONC001)
FLOW005     no inconsistent lock-acquisition order anywhere in the
            program (ABBA deadlock shape), including orders completed
            through calls
==========  ===========================================================

The per-module half (fact extraction) is pure and cacheable — see
:mod:`repro.check.flow.cache`; the whole-program half here is a cheap
fixpoint over those facts and always runs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from repro.check.findings import Finding
from repro.check.flow.cache import CACHE_VERSION, DEFAULT_CACHE_DIR, FactCache
from repro.check.flow.callgraph import CallGraph
from repro.check.flow.locks import run_locks
from repro.check.flow.modgraph import ModuleGraph, module_name_for
from repro.check.flow.sarif import render_sarif
from repro.check.flow.symbols import ModuleFacts, extract_module_facts
from repro.check.flow.taint import run_taint

__all__ = [
    "CACHE_VERSION",
    "DEFAULT_CACHE_DIR",
    "CallGraph",
    "FactCache",
    "FLOW_RULE_IDS",
    "ModuleFacts",
    "ModuleGraph",
    "build_module_graph",
    "extract_module_facts",
    "module_name_for",
    "render_sarif",
    "run_flow_analysis",
]

FLOW_RULE_IDS = ("FLOW001", "FLOW002", "FLOW003", "FLOW004", "FLOW005")


def build_module_graph(project: Dict[str, ModuleFacts]) -> ModuleGraph:
    """Import graph restricted to the scanned modules."""
    return ModuleGraph(
        {name: facts.imports for name, facts in project.items()}
    )


def run_flow_analysis(
    project: Dict[str, ModuleFacts],
    selected: Iterable[str],
) -> List[Finding]:
    """Run every selected FLOW rule over the assembled project model."""
    wanted: Set[str] = set(selected) & set(FLOW_RULE_IDS)
    if not wanted or not project:
        return []
    graph = CallGraph(project)
    findings: List[Finding] = []
    findings.extend(run_taint(project, graph, wanted))
    findings.extend(run_locks(project, graph, wanted))
    return findings
