"""Content-hash keyed per-module analysis cache (mypy-style).

One JSON file per analyzed module under ``.repro_check_cache/``, named
by a hash of the module's scan-relative path.  An entry stores the
module's own content hash, the content hashes of every *scanned*
module it imports, and the full per-module analysis product: findings
from the syntactic rules (pre-baseline, post-suppression), the inline
suppression table, parse errors, and the serialized
:class:`~repro.check.flow.symbols.ModuleFacts` the whole-program phase
consumes.

Validity is transitive by construction: an entry is usable only when
its own hash matches *and* every recorded import dependency still has
the recorded hash — so editing one module invalidates exactly that
module plus its transitive dependents (each dependent records the
changed module's old hash), and nothing else.  The interprocedural
phase itself (taint fixpoint, lock merging) always re-runs over the
assembled facts; it is cheap next to parsing and extraction.

Entries are additionally keyed by :data:`CACHE_VERSION`, which must be
bumped whenever the fact schema or any rule's behavior changes.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Optional

__all__ = ["CACHE_VERSION", "DEFAULT_CACHE_DIR", "FactCache", "content_hash"]

#: Bump on any change to rules, fact extraction, or entry schema.
CACHE_VERSION = "flow-1"

DEFAULT_CACHE_DIR = ".repro_check_cache"


def content_hash(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class FactCache:
    """Load/store per-module analysis entries with dep validation."""

    def __init__(self, directory: Path):
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0

    def _entry_path(self, rel_path: str) -> Path:
        digest = hashlib.sha256(
            f"{CACHE_VERSION}::{rel_path}".encode()
        ).hexdigest()[:32]
        return self.directory / f"{digest}.json"

    def load(
        self,
        rel_path: str,
        file_hash: str,
        hashes_by_module: Dict[str, str],
    ) -> Optional[dict]:
        """Return the cached entry when still valid, else ``None``.

        ``hashes_by_module`` maps every scanned module name to its
        current content hash; dependencies outside the scan set are
        ignored (third-party imports carry no project facts).
        """
        path = self._entry_path(rel_path)
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (
            raw.get("version") != CACHE_VERSION
            or raw.get("hash") != file_hash
        ):
            self.misses += 1
            return None
        for dep, dep_hash in raw.get("dep_hashes", {}).items():
            if hashes_by_module.get(dep, dep_hash) != dep_hash:
                self.misses += 1
                return None
        self.hits += 1
        return raw

    def store(
        self,
        rel_path: str,
        file_hash: str,
        entry: dict,
        hashes_by_module: Dict[str, str],
        dep_modules,
    ) -> None:
        """Persist one module's analysis entry (best-effort)."""
        document = dict(entry)
        document["version"] = CACHE_VERSION
        document["hash"] = file_hash
        document["dep_hashes"] = {
            dep: hashes_by_module[dep]
            for dep in dep_modules
            if dep in hashes_by_module
        }
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            path = self._entry_path(rel_path)
            tmp = path.with_suffix(".tmp")
            tmp.write_text(
                json.dumps(document, separators=(",", ":")),
                encoding="utf-8",
            )
            tmp.replace(path)
        except OSError:
            pass  # a read-only checkout still checks, just never warm
