"""Interprocedural taint analysis: entropy and wall-clock domains.

Two taint lattices run over the call graph in one fixpoint:

* **entropy** — values originating from an *unseeded*
  ``numpy.random.default_rng()`` / ``SeedSequence()`` (kind
  ``entropy``) or from OS/clock entropy — ``os.urandom``,
  ``secrets.*``, stdlib ``random.*``, ``uuid.uuid4`` or a
  ``default_rng`` seeded from a wall-clock value (kind ``os-entropy``).
  Neither may reach a recording sink (``Trace``/``TraceSet``
  construction, archive writes, classifier ``fit``) except through the
  :func:`repro.utils.rng.ensure_rng` / ``spawn`` sanitizers.
  Violations are FLOW001 (unseeded generator taint) and FLOW002
  (OS/clock entropy taint).

* **wallclock** — values returned by ``time.time``/``monotonic``/
  ``perf_counter`` (and datetime ``now``-style constructors).  A call
  site *outside* the supervision layers (``repro/perf``,
  ``repro/resilience``) whose resolved project callee returns a
  wall-clock-tainted value is FLOW003: real time has leaked into
  simulated-time computation through a helper, which the per-file
  TIME001 rule cannot see.

The algorithm is summary-based: each function's return taint and
self-attribute writes are evaluated from its local facts
(:class:`~repro.check.flow.symbols.FunctionFacts`), with call atoms
resolved through the call graph, iterated to a fixpoint (kind sets only
grow, so termination is structural).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.check.findings import Finding
from repro.check.flow.callgraph import CallGraph, FunctionId
from repro.check.flow.symbols import ModuleFacts

__all__ = ["TaintAnalysis", "run_taint"]

# Taint kinds.
ENTROPY = "entropy"          # unseeded Generator/SeedSequence
OS_ENTROPY = "os-entropy"    # urandom/secrets/random/uuid/time-seeded
WALLCLOCK = "wallclock"      # time.time()/monotonic()/perf_counter()

_WALLCLOCK_SOURCES = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

_OS_ENTROPY_SOURCES = {"os.urandom", "uuid.uuid4", "uuid.uuid1"}
_OS_ENTROPY_PREFIXES = ("random.", "secrets.")

#: Conditional sources: unseeded construction is ``entropy``; seeding
#: from a wall-clock/entropy value launders into ``os-entropy``.
_GENERATOR_FACTORIES = {
    "numpy.random.default_rng",
    "numpy.random.SeedSequence",
}

#: Sanitizers: their result is clean regardless of argument taint (the
#: seed policy normalizes whatever comes in).
_SANITIZERS = {
    "repro.utils.rng.ensure_rng",
    "repro.utils.rng.spawn",
    "repro.utils.rng.derive_seed",
    "repro.utils.rng.normalize_seed",
    "repro.session.normalize_seed",
}

#: Recording sinks by canonical dotted name (suffix match on the
#: resolved name covers both direct and bound-name calls).
_SINK_SUFFIXES = (
    "repro.core.traces.Trace",
    "repro.core.traces.TraceSet",
    "repro.core.io.save_traceset",
    # top-level re-exports (``from repro import Trace``)
    "repro.Trace",
    "repro.TraceSet",
    "repro.save_traceset",
    "TraceArchiveWriter.append",
    "TraceArchiveWriter.append_many",
)

#: Classifier sinks by bare attribute (``clf.fit(X, y)``).
_SINK_ATTRS = {"fit", "partial_fit"}

#: Modules whose wall-clock plumbing is the supervision layer's job.
_WALLCLOCK_EXEMPT = ("repro/perf/", "repro/resilience/")

Kinds = FrozenSet[str]
_EMPTY: Kinds = frozenset()


def _is_sink(site_name: str) -> bool:
    if not site_name:
        return False
    if any(site_name.endswith(suffix) for suffix in _SINK_SUFFIXES):
        return True
    tail = site_name.rsplit(".", 1)[-1]
    return tail in _SINK_ATTRS


def _source_kinds(name: str) -> Optional[Kinds]:
    """Kinds produced by calling ``name`` unconditionally, if a source."""
    if name in _WALLCLOCK_SOURCES:
        return frozenset({WALLCLOCK})
    if name in _OS_ENTROPY_SOURCES or name.startswith(
        _OS_ENTROPY_PREFIXES
    ):
        return frozenset({OS_ENTROPY})
    return None


class TaintAnalysis:
    """Fixpoint taint summaries over a resolved call graph."""

    def __init__(self, project: Dict[str, ModuleFacts], graph: CallGraph):
        self.project = project
        self.graph = graph
        #: function id -> kinds its return value may carry
        self.returns: Dict[FunctionId, Set[str]] = {
            fn: set() for fn in graph.functions
        }
        #: function id -> parameter indices that flow to its return
        self.ret_params: Dict[FunctionId, Set[int]] = {
            fn: set() for fn in graph.functions
        }
        #: "<module>:<Class>" -> attr -> kinds ever stored there
        self.class_attrs: Dict[str, Dict[str, Set[str]]] = {}
        self._solve()

    # -- evaluation -----------------------------------------------------

    def _class_attr_kinds(self, module: str, qualname: str, attr: str) -> Set[str]:
        cls = qualname.split(".<locals>.")[0]
        if "." in cls:
            cls = cls.rsplit(".", 1)[0]
            return self.class_attrs.get(f"{module}:{cls}", {}).get(
                attr, set()
            )
        return set()

    def eval_atoms(
        self,
        atoms,
        fn_id: FunctionId,
        include_params: bool = False,
        _guard: Optional[Set[Tuple[FunctionId, int]]] = None,
    ) -> Tuple[Set[str], Set[int]]:
        """Evaluate taint atoms in the context of ``fn_id``.

        Returns ``(kinds, param_indices)``; parameter indices are only
        collected when ``include_params`` (summary computation).
        """
        module, qualname = fn_id.split(":", 1)
        fn = self.graph.functions[fn_id]
        kinds: Set[str] = set()
        params: Set[int] = set()
        guard = _guard if _guard is not None else set()
        for atom in atoms:
            tag, _, value = atom.partition(":")
            if tag == "source":
                kinds.add(value)
            elif tag == "param":
                params.add(int(value))
            elif tag == "selfattr":
                kinds |= self._class_attr_kinds(module, qualname, value)
            elif tag == "call":
                idx = int(value)
                if (fn_id, idx) in guard or idx >= len(fn.calls):
                    continue
                guard.add((fn_id, idx))
                ck, cp = self._eval_call(fn_id, idx, guard)
                guard.discard((fn_id, idx))
                kinds |= ck
                params |= cp
        if not include_params:
            params = set()
        return kinds, params

    def _eval_call(
        self,
        fn_id: FunctionId,
        idx: int,
        guard: Set[Tuple[FunctionId, int]],
    ) -> Tuple[Set[str], Set[int]]:
        """Kinds/params the result of one call site may carry."""
        fn = self.graph.functions[fn_id]
        site = fn.calls[idx]
        name = site.name

        def _args_eval() -> Tuple[Set[str], Set[int]]:
            kinds: Set[str] = set()
            params: Set[int] = set()
            for atom_set in list(site.args) + list(site.kwargs.values()):
                k, p = self.eval_atoms(
                    atom_set, fn_id, include_params=True, _guard=guard
                )
                kinds |= k
                params |= p
            return kinds, params

        if name in _SANITIZERS:
            return set(), set()
        if name in _GENERATOR_FACTORIES:
            if not site.args and not site.kwargs:
                return {ENTROPY}, set()
            arg_kinds, arg_params = _args_eval()
            kinds = set()
            if arg_kinds:
                # seeded from entropy/clock: still unreplayable
                kinds.add(OS_ENTROPY)
            return kinds, arg_params
        source = _source_kinds(name)
        if source is not None:
            return set(source), set()

        callee = self.graph.site_targets.get((fn_id, idx))
        if callee is not None:
            kinds = set(self.returns.get(callee, ()))
            params: Set[int] = set()
            for param_index in self.ret_params.get(callee, ()):
                if param_index < len(site.args):
                    k, p = self.eval_atoms(
                        site.args[param_index],
                        fn_id,
                        include_params=True,
                        _guard=guard,
                    )
                    kinds |= k
                    params |= p
            return kinds, params

        # Unresolved (builtin/third-party) call: taint flows through —
        # int(time.time()), np.asarray(values), rng.normal(...).
        kinds, params = _args_eval()
        base_kinds, base_params = self.eval_atoms(
            site.base, fn_id, include_params=True, _guard=guard
        )
        return kinds | base_kinds, params | base_params

    # -- fixpoint -------------------------------------------------------

    def _solve(self) -> None:
        for _ in range(50):
            changed = False
            for fn_id, fn in self.graph.functions.items():
                kinds, params = self.eval_atoms(
                    fn.returns, fn_id, include_params=True
                )
                if not kinds <= self.returns[fn_id]:
                    self.returns[fn_id] |= kinds
                    changed = True
                if not params <= self.ret_params[fn_id]:
                    self.ret_params[fn_id] |= params
                    changed = True
                # class attribute stores
                module, qualname = fn_id.split(":", 1)
                if "." in qualname and fn.self_writes:
                    cls = qualname.split(".<locals>.")[0]
                    if "." in cls:
                        cls = cls.rsplit(".", 1)[0]
                        table = self.class_attrs.setdefault(
                            f"{module}:{cls}", {}
                        )
                        for attr, atoms in fn.self_writes.items():
                            k, _ = self.eval_atoms(atoms, fn_id)
                            known = table.setdefault(attr, set())
                            if not k <= known:
                                known |= k
                                changed = True
            if not changed:
                break

    # -- findings -------------------------------------------------------

    def findings(self, selected: Set[str]) -> List[Finding]:
        out: List[Finding] = []
        for module_name, facts in self.project.items():
            wallclock_exempt = any(
                piece in facts.rel_path for piece in _WALLCLOCK_EXEMPT
            )
            for qualname, fn in facts.functions.items():
                fn_id = f"{module_name}:{qualname}"
                for idx, site in enumerate(fn.calls):
                    if _is_sink(site.name) and (
                        "FLOW001" in selected or "FLOW002" in selected
                    ):
                        kinds, _ = self._eval_call_args(fn_id, idx)
                        if ENTROPY in kinds and "FLOW001" in selected:
                            out.append(
                                self._finding(
                                    "FLOW001", facts, site,
                                    f"a value derived from an unseeded "
                                    f"default_rng/SeedSequence reaches "
                                    f"recording sink {site.name!r} (in "
                                    f"{qualname}); route the generator "
                                    f"through repro.utils.rng.ensure_rng "
                                    f"so the run can be replayed",
                                )
                            )
                        if OS_ENTROPY in kinds and "FLOW002" in selected:
                            out.append(
                                self._finding(
                                    "FLOW002", facts, site,
                                    f"a value derived from OS/clock "
                                    f"entropy (os.urandom / secrets / "
                                    f"random / time-seeded generator) "
                                    f"reaches recording sink "
                                    f"{site.name!r} (in {qualname}); "
                                    f"recordings seeded this way cannot "
                                    f"be replayed — use ensure_rng with "
                                    f"an explicit seed",
                                )
                            )
                    if (
                        "FLOW003" in selected
                        and not wallclock_exempt
                    ):
                        callee = self.graph.site_targets.get((fn_id, idx))
                        if callee is not None:
                            kinds = self.returns.get(callee, set())
                            if WALLCLOCK in kinds:
                                out.append(
                                    self._finding(
                                        "FLOW003", facts, site,
                                        f"{site.name}() returns a "
                                        f"wall-clock-derived value "
                                        f"(defined in "
                                        f"{self.graph.module_of(callee)}) "
                                        f"which flows into simulated-"
                                        f"time code here; derive times "
                                        f"from the experiment clock "
                                        f"(only repro/perf and "
                                        f"repro/resilience may consume "
                                        f"wall time)",
                                    )
                                )
        return out

    def _eval_call_args(
        self, fn_id: FunctionId, idx: int
    ) -> Tuple[Set[str], Set[int]]:
        fn = self.graph.functions[fn_id]
        site = fn.calls[idx]
        kinds: Set[str] = set()
        for atom_set in list(site.args) + list(site.kwargs.values()):
            k, _ = self.eval_atoms(atom_set, fn_id)
            kinds |= k
        base_kinds, _ = self.eval_atoms(site.base, fn_id)
        return kinds | base_kinds, set()

    def _finding(
        self, rule: str, facts: ModuleFacts, site, message: str
    ) -> Finding:
        return Finding(
            path=facts.rel_path,
            line=site.line,
            col=site.col,
            rule=rule,
            message=message,
            snippet=facts.snippet(site.line),
        )


def run_taint(
    project: Dict[str, ModuleFacts],
    graph: CallGraph,
    selected: Set[str],
) -> List[Finding]:
    """Run both taint domains; return FLOW001-003 findings."""
    if not selected & {"FLOW001", "FLOW002", "FLOW003"}:
        return []
    return TaintAnalysis(project, graph).findings(selected)
