"""Baseline file support: grandfathered findings with justifications.

The baseline is a checked-in JSON document listing findings that are
*intentional* and may stay in the tree.  Each entry carries a one-line
justification so the exemption is reviewable.  Matching is by
fingerprint — rule id, path and the stripped source line — never by
line number, so entries survive unrelated edits; an entry that matches
nothing is reported as *stale* and should be deleted.

Workflow::

    python -m repro check                    # see new findings
    # fix them, or when intentional:
    python -m repro check --write-baseline   # grandfather what remains
    # then fill in each new entry's "justification" by hand

Format (``repro_check_baseline.json`` at the repo root)::

    {
      "version": 1,
      "entries": [
        {"rule": "API002",
         "path": "src/repro/faults/plan.py",
         "snippet": "self.transient_rate == 0.0",
         "justification": "exact-zero sentinel for a disabled fault class"}
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List

from repro.check.findings import Finding

BASELINE_VERSION = 1

#: Default baseline filename, resolved against the scan root.
DEFAULT_BASELINE_NAME = "repro_check_baseline.json"

#: Placeholder --write-baseline leaves for the human to replace.
TODO_JUSTIFICATION = "TODO: justify or fix"


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding."""

    rule: str
    path: str
    snippet: str
    justification: str = ""

    @property
    def fingerprint(self) -> str:
        return f"{self.rule}::{self.path}::{self.snippet}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "snippet": self.snippet,
            "justification": self.justification,
        }


class BaselineError(ValueError):
    """The baseline file is malformed."""


def load_baseline(path: Path) -> List[BaselineEntry]:
    """Parse a baseline file, validating its schema."""
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise BaselineError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(document, dict) or "entries" not in document:
        raise BaselineError(f"{path}: expected an object with 'entries'")
    version = document.get("version", BASELINE_VERSION)
    if version != BASELINE_VERSION:
        raise BaselineError(
            f"{path}: unsupported baseline version {version!r} "
            f"(expected {BASELINE_VERSION})"
        )
    entries = []
    for index, raw in enumerate(document["entries"]):
        try:
            entries.append(
                BaselineEntry(
                    rule=str(raw["rule"]),
                    path=str(raw["path"]),
                    snippet=str(raw["snippet"]),
                    justification=str(raw.get("justification", "")),
                )
            )
        except (TypeError, KeyError) as exc:
            raise BaselineError(
                f"{path}: entry {index} is missing rule/path/snippet"
            ) from exc
    return entries


def write_baseline(
    path: Path,
    findings: Iterable[Finding],
    existing: Iterable[BaselineEntry] = (),
) -> List[BaselineEntry]:
    """Write a baseline covering ``findings``, keeping old justifications.

    Findings already covered by an ``existing`` entry keep that entry
    (and its justification) verbatim; new findings get a
    ``TODO_JUSTIFICATION`` placeholder.  Stale entries are dropped.
    Returns the entries written, sorted by (path, rule, snippet).
    """
    by_fingerprint = {entry.fingerprint: entry for entry in existing}
    merged = {}
    for finding in findings:
        kept = by_fingerprint.get(finding.fingerprint)
        if kept is None:
            kept = BaselineEntry(
                rule=finding.rule,
                path=finding.path,
                snippet=finding.snippet,
                justification=TODO_JUSTIFICATION,
            )
        merged[kept.fingerprint] = kept
    entries = sorted(
        merged.values(), key=lambda e: (e.path, e.rule, e.snippet)
    )
    document = {
        "version": BASELINE_VERSION,
        "entries": [entry.to_dict() for entry in entries],
    }
    Path(path).write_text(
        json.dumps(document, indent=2) + "\n", encoding="utf-8"
    )
    return entries


def prune_baseline(
    path: Path,
    existing: Iterable[BaselineEntry],
    stale: Iterable[BaselineEntry],
) -> List[BaselineEntry]:
    """Rewrite ``path`` with the ``stale`` entries removed.

    Unlike :func:`write_baseline` this never drops entries that simply
    were not exercised by the run (a ``--rules`` or path subset), only
    the ones the engine proved stale.  Surviving entries keep their
    justifications verbatim.  Returns the entries written.
    """
    stale_fingerprints = {entry.fingerprint for entry in stale}
    entries = sorted(
        (
            entry
            for entry in existing
            if entry.fingerprint not in stale_fingerprints
        ),
        key=lambda e: (e.path, e.rule, e.snippet),
    )
    document = {
        "version": BASELINE_VERSION,
        "entries": [entry.to_dict() for entry in entries],
    }
    Path(path).write_text(
        json.dumps(document, indent=2) + "\n", encoding="utf-8"
    )
    return entries
