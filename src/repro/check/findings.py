"""Finding model for the ``repro.check`` static analyzer.

A :class:`Finding` is one rule violation at one source location.  Its
identity for baseline purposes is the *fingerprint* — rule id, path and
the stripped source line — deliberately excluding the line number, so a
grandfathered finding survives unrelated edits that shift the file.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Args:
        path: file path, POSIX-style, relative to the scan root.
        line: 1-based source line of the offending node.
        col: 0-based column of the offending node.
        rule: rule identifier (e.g. ``"RNG001"``).
        message: human-readable description of the violation.
        snippet: the stripped source line, used for baseline matching.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    snippet: str = ""

    @property
    def fingerprint(self) -> str:
        """Line-number-free identity used to match baseline entries."""
        return f"{self.rule}::{self.path}::{self.snippet}"

    def format(self) -> str:
        """One ``path:line:col: RULE message`` diagnostic line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> Dict:
        """JSON-ready representation (CI annotation schema)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "snippet": self.snippet,
        }
