"""File discovery, suppression, baseline matching and reporting.

The engine is the orchestration half of ``repro.check``: it finds the
Python files to scan, parses each one once, runs the selected rules
(:data:`repro.check.rules.RULES`), drops findings suppressed by inline
``# repro: ignore[RULE]`` comments, matches the remainder against the
checked-in baseline, and renders the result as text or JSON.

Exit-code policy (used by the CLI): a run is *clean* when there are no
new findings and no unparsable files; stale baseline entries are
reported but do not fail the run unless ``--fail-on-findings`` is given
together with strict mode.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

from repro.check.baseline import BaselineEntry, load_baseline
from repro.check.findings import Finding
from repro.check.rules import RULES, Module, Rule

PathLike = Union[str, Path]

#: Inline suppression: ``# repro: ignore[RULE1,RULE2] optional reason``.
SUPPRESS_RE = re.compile(r"#\s*repro:\s*ignore\[([A-Za-z0-9_,\s]+)\]")


@dataclass(frozen=True)
class ParseError:
    """A file the checker could not parse (reported, and fails the run)."""

    path: str
    line: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:0: PARSE {self.message}"

    def to_dict(self) -> Dict:
        return {"path": self.path, "line": self.line, "message": self.message}


@dataclass
class CheckResult:
    """Everything one ``run_check`` pass produced."""

    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    errors: List[ParseError] = field(default_factory=list)
    stale_baseline: List[BaselineEntry] = field(default_factory=list)
    files_scanned: int = 0
    rules_run: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Clean: nothing new to report and every file parsed."""
        return not self.findings and not self.errors


class UnknownRuleError(ValueError):
    """A ``--rules`` selection named a rule that does not exist."""


def select_rules(rule_ids: Optional[Sequence[str]] = None) -> List[Rule]:
    """Resolve a rule-id selection (case-insensitive) to Rule objects."""
    if not rule_ids:
        return list(RULES.values())
    selected = []
    for rule_id in rule_ids:
        rule = RULES.get(rule_id.upper())
        if rule is None:
            known = ", ".join(sorted(RULES))
            raise UnknownRuleError(
                f"unknown rule {rule_id!r}; known rules: {known}"
            )
        selected.append(rule)
    return selected


def iter_python_files(
    paths: Iterable[PathLike], root: Path
) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.is_absolute():
            path = root / path
        if path.is_dir():
            files.update(
                candidate
                for candidate in path.rglob("*.py")
                if "__pycache__" not in candidate.parts
            )
        elif path.suffix == ".py" and path.exists():
            files.add(path)
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(files)


def _rel_path(path: Path, root: Path) -> str:
    try:
        return str(PurePosixPath(path.relative_to(root)))
    except ValueError:
        return str(PurePosixPath(path))


def _suppressions(lines: Sequence[str]) -> Dict[int, Set[str]]:
    """Per-line sets of suppressed rule ids (1-based line numbers)."""
    table: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(lines, start=1):
        match = SUPPRESS_RE.search(line)
        if match:
            table[lineno] = {
                piece.strip().upper()
                for piece in match.group(1).split(",")
                if piece.strip()
            }
    return table


def default_root() -> Path:
    """The repo root: cwd when it holds ``src/repro``, else derived
    from this package's location (``src/repro/check`` -> repo)."""
    cwd = Path.cwd()
    if (cwd / "src" / "repro" / "__init__.py").exists():
        return cwd
    src = Path(__file__).resolve().parents[2]
    if src.name == "src" and (src / "repro" / "__init__.py").exists():
        return src.parent
    return cwd


def default_paths(root: Path) -> List[Path]:
    """What to scan when no paths are given: the library source."""
    src = root / "src"
    if src.is_dir():
        return [src]
    return [Path(__file__).resolve().parents[1]]


def run_check(
    paths: Optional[Sequence[PathLike]] = None,
    rules: Optional[Sequence[str]] = None,
    baseline: Optional[PathLike] = None,
    root: Optional[PathLike] = None,
) -> CheckResult:
    """Run the selected rules over ``paths`` and classify the findings.

    Args:
        paths: files/directories to scan (default: ``<root>/src``).
        rules: rule-id selection (default: every registered rule).
        baseline: baseline file.  ``None`` auto-loads
            ``<root>/repro_check_baseline.json`` when it exists; pass
            ``""`` to force no baseline.
        root: directory findings are reported relative to (default:
            auto-detected repo root).

    Returns:
        a :class:`CheckResult`; ``result.ok`` is the pass/fail signal.
    """
    root = Path(root) if root is not None else default_root()
    selected = select_rules(rules)
    scan_paths = (
        [Path(p) for p in paths] if paths else default_paths(root)
    )
    if baseline is None:
        candidate = root / "repro_check_baseline.json"
        baseline_entries = (
            load_baseline(candidate) if candidate.exists() else []
        )
    elif baseline == "":
        baseline_entries = []
    else:
        baseline_entries = load_baseline(Path(baseline))

    result = CheckResult(rules_run=[rule.id for rule in selected])
    raw_findings: List[Finding] = []
    for file_path in iter_python_files(scan_paths, root):
        rel = _rel_path(file_path, root)
        try:
            module = Module.parse(file_path, rel)
        except SyntaxError as exc:
            result.errors.append(
                ParseError(rel, exc.lineno or 1, f"syntax error: {exc.msg}")
            )
            continue
        result.files_scanned += 1
        suppressions = _suppressions(module.lines)
        for rule in selected:
            for finding in rule.check(module):
                if rule.id in suppressions.get(finding.line, ()):
                    result.suppressed += 1
                else:
                    raw_findings.append(finding)

    used_entries: Set[str] = set()
    by_fingerprint = {
        entry.fingerprint: entry for entry in baseline_entries
    }
    for finding in sorted(raw_findings):
        entry = by_fingerprint.get(finding.fingerprint)
        if entry is not None:
            used_entries.add(entry.fingerprint)
            result.baselined.append(finding)
        else:
            result.findings.append(finding)
    # Entries for rules that did not run are neither used nor stale.
    selected_ids = {rule.id for rule in selected}
    result.stale_baseline = [
        entry
        for entry in baseline_entries
        if entry.fingerprint not in used_entries
        and entry.rule in selected_ids
    ]
    return result


# ---------------------------------------------------------------- rendering


def render_text(result: CheckResult, verbose: bool = False) -> str:
    """Human-readable report: one diagnostic line per new finding."""
    lines: List[str] = []
    for error in result.errors:
        lines.append(error.format())
    for finding in result.findings:
        lines.append(finding.format())
    if verbose:
        for finding in result.baselined:
            lines.append(f"{finding.format()} [baselined]")
    for entry in result.stale_baseline:
        lines.append(
            f"{entry.path}: STALE baseline entry {entry.rule} "
            f"({entry.snippet!r}) matches nothing — delete it"
        )
    lines.append(
        f"{len(result.findings)} finding"
        f"{'' if len(result.findings) == 1 else 's'} "
        f"({len(result.baselined)} baselined, {result.suppressed} "
        f"suppressed, {len(result.stale_baseline)} stale baseline "
        f"entries) across {result.files_scanned} files"
    )
    return "\n".join(lines)


def render_json(result: CheckResult) -> str:
    """Machine-readable report for CI annotation."""
    document = {
        "version": 1,
        "ok": result.ok,
        "summary": {
            "findings": len(result.findings),
            "baselined": len(result.baselined),
            "suppressed": result.suppressed,
            "errors": len(result.errors),
            "stale_baseline": len(result.stale_baseline),
            "files_scanned": result.files_scanned,
            "rules_run": result.rules_run,
        },
        "findings": [finding.to_dict() for finding in result.findings],
        "baselined": [finding.to_dict() for finding in result.baselined],
        "errors": [error.to_dict() for error in result.errors],
        "stale_baseline": [
            entry.to_dict() for entry in result.stale_baseline
        ],
    }
    return json.dumps(document, indent=2)
