"""File discovery, caching, suppression, baseline matching, reporting.

The engine is the orchestration half of ``repro.check``.  A run has
two phases:

1. a **per-module phase** — parse each file once, run every syntactic
   rule (:data:`repro.check.rules.RULES`), apply inline
   ``# repro: ignore[RULE]`` suppressions, and extract the module's
   flow facts (:mod:`repro.check.flow.symbols`).  This phase is pure
   per file, so it is cached under ``.repro_check_cache/`` keyed by
   content hash (invalidated transitively through the module graph)
   and fanned out over :func:`repro.perf.parallel_map` when workers
   are available;
2. a **whole-program phase** — assemble the cached/fresh facts into a
   project model and run the FLOW rules (:mod:`repro.check.flow`)
   over the call graph.  This phase always runs; it is cheap next to
   parsing.

Findings from both phases flow through the same suppression and
baseline machinery.  Files that cannot be read or parsed are *never*
skipped: they produce a synthetic ``PARSE000`` finding (plus a
:class:`ParseError` for the exit-code path), so a broken file cannot
make the tree check green.

Exit-code policy (used by the CLI): a run is *clean* when there are no
new findings and no unparsable files; stale baseline entries are
reported but do not fail the run unless ``--fail-on-stale`` is given.
"""

from __future__ import annotations

import json
import re
import subprocess
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

from repro.check.baseline import BaselineEntry, load_baseline
from repro.check.findings import Finding
from repro.check.flow import (
    FactCache,
    ModuleFacts,
    ModuleGraph,
    build_module_graph,
    extract_module_facts,
    module_name_for,
    run_flow_analysis,
)
from repro.check.flow.cache import DEFAULT_CACHE_DIR, content_hash
from repro.check.rules import RULES, Module, Rule

PathLike = Union[str, Path]

#: Inline suppression: ``# repro: ignore[RULE1,RULE2] optional reason``.
SUPPRESS_RE = re.compile(r"#\s*repro:\s*ignore\[([A-Za-z0-9_,\s]+)\]")


@dataclass(frozen=True)
class ParseError:
    """A file the checker could not parse (reported, and fails the run)."""

    path: str
    line: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:0: PARSE {self.message}"

    def to_dict(self) -> Dict:
        return {"path": self.path, "line": self.line, "message": self.message}


@dataclass
class CheckResult:
    """Everything one ``run_check`` pass produced."""

    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    errors: List[ParseError] = field(default_factory=list)
    stale_baseline: List[BaselineEntry] = field(default_factory=list)
    files_scanned: int = 0
    rules_run: List[str] = field(default_factory=list)
    #: incremental-run accounting (0 when the cache is disabled)
    modules_analyzed: int = 0
    cache_hits: int = 0
    #: rel paths selected by --changed-only (None when not used)
    changed_files: Optional[List[str]] = None

    @property
    def ok(self) -> bool:
        """Clean: nothing new to report and every file parsed."""
        return not self.findings and not self.errors


class UnknownRuleError(ValueError):
    """A ``--rules`` selection named a rule that does not exist."""


class GitDiffError(RuntimeError):
    """``--changed-only`` could not resolve the changed file set."""


def select_rules(rule_ids: Optional[Sequence[str]] = None) -> List[Rule]:
    """Resolve a rule-id selection (case-insensitive) to Rule objects."""
    if not rule_ids:
        return list(RULES.values())
    selected = []
    for rule_id in rule_ids:
        rule = RULES.get(rule_id.upper())
        if rule is None:
            known = ", ".join(sorted(RULES))
            raise UnknownRuleError(
                f"unknown rule {rule_id!r}; known rules: {known}"
            )
        selected.append(rule)
    return selected


def iter_python_files(
    paths: Iterable[PathLike], root: Path
) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.is_absolute():
            path = root / path
        if path.is_dir():
            files.update(
                candidate
                for candidate in path.rglob("*.py")
                if "__pycache__" not in candidate.parts
            )
        elif path.suffix == ".py" and path.exists():
            files.add(path)
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(files)


def _rel_path(path: Path, root: Path) -> str:
    try:
        return str(PurePosixPath(path.relative_to(root)))
    except ValueError:
        return str(PurePosixPath(path))


def _suppressions(lines: Sequence[str]) -> Dict[int, Set[str]]:
    """Per-line sets of suppressed rule ids (1-based line numbers)."""
    table: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(lines, start=1):
        match = SUPPRESS_RE.search(line)
        if match:
            table[lineno] = {
                piece.strip().upper()
                for piece in match.group(1).split(",")
                if piece.strip()
            }
    return table


def default_root() -> Path:
    """The repo root: cwd when it holds ``src/repro``, else derived
    from this package's location (``src/repro/check`` -> repo)."""
    cwd = Path.cwd()
    if (cwd / "src" / "repro" / "__init__.py").exists():
        return cwd
    src = Path(__file__).resolve().parents[2]
    if src.name == "src" and (src / "repro" / "__init__.py").exists():
        return src.parent
    return cwd


def default_paths(root: Path) -> List[Path]:
    """What to scan when no paths are given: the library source."""
    src = root / "src"
    if src.is_dir():
        return [src]
    return [Path(__file__).resolve().parents[1]]


# ------------------------------------------------------- per-module phase


def _parse_failure_entry(rel: str, line: int, message: str) -> Dict:
    """Cacheable per-module entry for an unreadable/unparseable file."""
    return {
        "parse_error": {"path": rel, "line": line, "message": message},
        "findings": [
            Finding(
                path=rel,
                line=line,
                col=0,
                rule="PARSE000",
                message=(
                    f"file could not be analyzed ({message}); a file "
                    f"the checker cannot parse can hide any violation "
                    f"— fix it or delete it"
                ),
                snippet="",
            ).to_dict()
        ],
        "suppressed": {},
        "suppress_lines": {},
        "facts": None,
        "module": module_name_for(rel),
        "imports": [],
    }


def analyze_source_file(payload) -> Dict:
    """Per-module analysis pass: rules + suppressions + flow facts.

    ``payload`` is ``(absolute path, rel path)``.  Pure function of the
    file's content — this is the unit the cache stores and
    ``parallel_map`` fans out.  Runs *every* per-module rule; the
    caller filters by selection so one cache entry serves any
    ``--rules`` subset.
    """
    path_str, rel = payload
    path = Path(path_str)
    try:
        module = Module.parse(path, rel)
    except SyntaxError as exc:
        return _parse_failure_entry(
            rel, exc.lineno or 1, f"syntax error: {exc.msg}"
        )
    except (OSError, UnicodeDecodeError, ValueError) as exc:
        return _parse_failure_entry(rel, 1, f"unreadable: {exc}")

    suppressions = _suppressions(module.lines)
    findings: List[Dict] = []
    suppressed: Dict[str, int] = {}
    for rule in RULES.values():
        if rule.whole_program:
            continue
        for finding in rule.check(module):
            if rule.id in suppressions.get(finding.line, ()):
                suppressed[rule.id] = suppressed.get(rule.id, 0) + 1
            else:
                findings.append(finding.to_dict())
    facts = extract_module_facts(module)
    return {
        "parse_error": None,
        "findings": findings,
        "suppressed": suppressed,
        "suppress_lines": {
            str(line): sorted(rules)
            for line, rules in suppressions.items()
        },
        "facts": facts.to_dict(),
        "module": facts.module,
        "imports": facts.imports,
    }


def _git_changed_files(root: Path, base: str) -> List[str]:
    """POSIX rel paths changed vs ``base`` per ``git diff --name-only``."""
    try:
        proc = subprocess.run(
            ["git", "diff", "--name-only", base, "--", "*.py"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired) as exc:
        raise GitDiffError(f"git diff failed: {exc}") from exc
    if proc.returncode != 0:
        raise GitDiffError(
            f"git diff --name-only {base} failed: "
            f"{proc.stderr.strip() or proc.stdout.strip()}"
        )
    return [line.strip() for line in proc.stdout.splitlines() if line.strip()]


def run_check(
    paths: Optional[Sequence[PathLike]] = None,
    rules: Optional[Sequence[str]] = None,
    baseline: Optional[PathLike] = None,
    root: Optional[PathLike] = None,
    *,
    use_cache: bool = True,
    cache_dir: Optional[PathLike] = None,
    workers: Optional[int] = None,
    changed_base: Optional[str] = None,
) -> CheckResult:
    """Run the selected rules over ``paths`` and classify the findings.

    Args:
        paths: files/directories to scan (default: ``<root>/src``).
        rules: rule-id selection (default: every registered rule).
        baseline: baseline file.  ``None`` auto-loads
            ``<root>/repro_check_baseline.json`` when it exists; pass
            ``""`` to force no baseline.
        root: directory findings are reported relative to (default:
            auto-detected repo root).
        use_cache: reuse per-module analysis cached under
            ``<root>/.repro_check_cache/`` (content-hash keyed,
            transitively invalidated through the module graph).
        cache_dir: override the cache location.
        workers: worker count for the per-module pass (``None`` honors
            ``AMPEREBLEED_WORKERS``; serial fallback as usual).
        changed_base: when set, report findings only for files changed
            vs this git ref (``git diff --name-only <base>``) plus
            their transitive dependents in the module graph.

    Returns:
        a :class:`CheckResult`; ``result.ok`` is the pass/fail signal.
    """
    root = Path(root) if root is not None else default_root()
    selected = select_rules(rules)
    selected_ids = {rule.id for rule in selected}
    scan_paths = (
        [Path(p) for p in paths] if paths else default_paths(root)
    )
    if baseline is None:
        candidate = root / "repro_check_baseline.json"
        baseline_entries = (
            load_baseline(candidate) if candidate.exists() else []
        )
    elif baseline == "":
        baseline_entries = []
    else:
        baseline_entries = load_baseline(Path(baseline))

    result = CheckResult(rules_run=[rule.id for rule in selected])

    files = iter_python_files(scan_paths, root)
    rels = [_rel_path(path, root) for path in files]
    hashes = [content_hash(path.read_bytes()) for path in files]
    hashes_by_module: Dict[str, str] = {
        module_name_for(rel): digest
        for rel, digest in zip(rels, hashes)
    }

    cache: Optional[FactCache] = None
    if use_cache:
        cache = FactCache(
            Path(cache_dir) if cache_dir is not None
            else root / DEFAULT_CACHE_DIR
        )

    entries: Dict[str, Dict] = {}
    misses: List[int] = []
    for index, rel in enumerate(rels):
        entry = (
            cache.load(rel, hashes[index], hashes_by_module)
            if cache is not None
            else None
        )
        if entry is None:
            misses.append(index)
        else:
            entries[rel] = entry
    # A changed module invalidates its transitive dependents too: their
    # cached analysis was derived against the old import surface.
    if misses and entries:
        index_by_rel = {rel: i for i, rel in enumerate(rels)}
        imports_by_module = {
            entry["module"]: entry.get("imports", [])
            for entry in entries.values()
        }
        dirty = {module_name_for(rels[i]) for i in misses}
        for name in dirty:
            imports_by_module.setdefault(name, [])
        invalid = ModuleGraph(imports_by_module).dependents_closure(dirty)
        for rel in list(entries):
            if entries[rel]["module"] in invalid:
                del entries[rel]
                misses.append(index_by_rel[rel])
        misses.sort()
    result.cache_hits = len(rels) - len(misses)
    result.modules_analyzed = len(misses)

    if misses:
        payloads = [(str(files[i]), rels[i]) for i in misses]
        if len(payloads) > 1:
            from repro.perf.executor import parallel_map

            fresh = parallel_map(
                analyze_source_file, payloads, workers=workers,
                chunksize=8,
            )
        else:
            fresh = [analyze_source_file(payloads[0])]
        for index, entry in zip(misses, fresh):
            rel = rels[index]
            entries[rel] = entry
            if cache is not None:
                cache.store(
                    rel,
                    hashes[index],
                    entry,
                    hashes_by_module,
                    entry.get("imports", []),
                )

    # -- assemble per-module results ------------------------------------
    raw_findings: List[Finding] = []
    project: Dict[str, ModuleFacts] = {}
    rel_by_module: Dict[str, str] = {}
    for rel in rels:
        entry = entries[rel]
        error = entry.get("parse_error")
        if error is not None:
            result.errors.append(
                ParseError(error["path"], error["line"], error["message"])
            )
            if "PARSE000" in selected_ids:
                raw_findings.extend(
                    Finding(**raw) for raw in entry["findings"]
                )
            continue
        result.files_scanned += 1
        for raw in entry["findings"]:
            if raw["rule"] in selected_ids:
                raw_findings.append(Finding(**raw))
        for rule_id, count in entry.get("suppressed", {}).items():
            if rule_id in selected_ids:
                result.suppressed += count
        if entry.get("facts") is not None:
            facts = ModuleFacts.from_dict(entry["facts"])
            project[facts.module] = facts
            rel_by_module[facts.module] = rel

    # -- whole-program phase --------------------------------------------
    flow_findings = run_flow_analysis(project, selected_ids)
    for finding in flow_findings:
        entry = entries.get(finding.path)
        if entry is not None:
            suppressed_rules = entry.get("suppress_lines", {}).get(
                str(finding.line), ()
            )
            if finding.rule in suppressed_rules:
                result.suppressed += 1
                continue
        raw_findings.append(finding)

    # -- --changed-only filtering ---------------------------------------
    if changed_base is not None:
        changed = set(_git_changed_files(root, changed_base))
        changed_modules = {
            module
            for module, rel in rel_by_module.items()
            if rel in changed
        }
        graph = build_module_graph(project)
        keep_modules = graph.dependents_closure(changed_modules)
        keep_rels = {rel_by_module[m] for m in keep_modules}
        # Files that failed to parse have no module; keep them when
        # they themselves changed.
        keep_rels |= changed & set(rels)
        result.changed_files = sorted(keep_rels)
        raw_findings = [
            finding for finding in raw_findings
            if finding.path in keep_rels
        ]
        result.errors = [
            error for error in result.errors if error.path in keep_rels
        ]

    # -- baseline matching ----------------------------------------------
    used_entries: Set[str] = set()
    by_fingerprint = {
        entry.fingerprint: entry for entry in baseline_entries
    }
    for finding in sorted(raw_findings):
        matched = by_fingerprint.get(finding.fingerprint)
        if matched is not None:
            used_entries.add(matched.fingerprint)
            result.baselined.append(finding)
        else:
            result.findings.append(finding)
    # Entries for rules that did not run are neither used nor stale;
    # under --changed-only an unscanned file's entries stay untouched.
    result.stale_baseline = [
        entry
        for entry in baseline_entries
        if entry.fingerprint not in used_entries
        and entry.rule in selected_ids
        and (changed_base is None or entry.path in (result.changed_files or ()))
    ]
    return result


# ---------------------------------------------------------------- rendering


def render_text(result: CheckResult, verbose: bool = False) -> str:
    """Human-readable report: one diagnostic line per new finding."""
    lines: List[str] = []
    for error in result.errors:
        lines.append(error.format())
    for finding in result.findings:
        lines.append(finding.format())
    if verbose:
        for finding in result.baselined:
            lines.append(f"{finding.format()} [baselined]")
    for entry in result.stale_baseline:
        lines.append(
            f"{entry.path}: STALE baseline entry {entry.rule} "
            f"({entry.snippet!r}) matches nothing — delete it"
        )
    lines.append(
        f"{len(result.findings)} finding"
        f"{'' if len(result.findings) == 1 else 's'} "
        f"({len(result.baselined)} baselined, {result.suppressed} "
        f"suppressed, {len(result.stale_baseline)} stale baseline "
        f"entries) across {result.files_scanned} files"
    )
    return "\n".join(lines)


def render_json(result: CheckResult) -> str:
    """Machine-readable report for CI annotation."""
    document = {
        "version": 1,
        "ok": result.ok,
        "summary": {
            "findings": len(result.findings),
            "baselined": len(result.baselined),
            "suppressed": result.suppressed,
            "errors": len(result.errors),
            "stale_baseline": len(result.stale_baseline),
            "files_scanned": result.files_scanned,
            "rules_run": result.rules_run,
            "modules_analyzed": result.modules_analyzed,
            "cache_hits": result.cache_hits,
        },
        "findings": [finding.to_dict() for finding in result.findings],
        "baselined": [finding.to_dict() for finding in result.baselined],
        "errors": [error.to_dict() for error in result.errors],
        "stale_baseline": [
            entry.to_dict() for entry in result.stale_baseline
        ],
    }
    if result.changed_files is not None:
        document["changed_files"] = result.changed_files
    return json.dumps(document, indent=2)
