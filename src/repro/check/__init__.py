"""``repro.check`` — AST-based determinism & concurrency contract checker.

A custom static-analysis pass over the repository's own source that
encodes the contracts the reproduction's claims rest on: explicit
seeding, no wall-clock reads in simulated-time code, fork-safe
parallelism, lock discipline and hwmon API hygiene.  See
:mod:`repro.check.rules` for the rule table and
:mod:`repro.check.baseline` for the grandfathering workflow.

Per-file syntactic rules are complemented by the whole-program flow
layer (:mod:`repro.check.flow`): interprocedural seed/clock taint
tracking and lock-discipline analysis over a cached, incrementally
invalidated project model.

Run it as ``python -m repro check`` (flags: ``--rules``, ``--baseline``,
``--format json|sarif``, ``--fail-on-findings``, ``--fail-on-stale``,
``--write-baseline``, ``--prune-baseline``, ``--changed-only``,
``--no-cache``, ``--workers``, ``--list-rules``) or programmatically::

    from repro.check import run_check
    result = run_check(["src"])
    assert result.ok, [f.format() for f in result.findings]
"""

from repro.check.baseline import (
    BaselineEntry,
    BaselineError,
    load_baseline,
    prune_baseline,
    write_baseline,
)
from repro.check.engine import (
    CheckResult,
    GitDiffError,
    ParseError,
    UnknownRuleError,
    render_json,
    render_text,
    run_check,
    select_rules,
)
from repro.check.findings import Finding
from repro.check.flow import render_sarif
from repro.check.rules import RULES, Module, Rule

__all__ = [
    "BaselineEntry",
    "BaselineError",
    "CheckResult",
    "Finding",
    "GitDiffError",
    "Module",
    "ParseError",
    "RULES",
    "Rule",
    "UnknownRuleError",
    "load_baseline",
    "prune_baseline",
    "render_json",
    "render_sarif",
    "render_text",
    "run_check",
    "select_rules",
    "write_baseline",
]
