"""``repro.check`` — AST-based determinism & concurrency contract checker.

A custom static-analysis pass over the repository's own source that
encodes the contracts the reproduction's claims rest on: explicit
seeding, no wall-clock reads in simulated-time code, fork-safe
parallelism, lock discipline and hwmon API hygiene.  See
:mod:`repro.check.rules` for the rule table and
:mod:`repro.check.baseline` for the grandfathering workflow.

Run it as ``python -m repro check`` (flags: ``--rules``, ``--baseline``,
``--format json``, ``--fail-on-findings``, ``--write-baseline``,
``--list-rules``) or programmatically::

    from repro.check import run_check
    result = run_check(["src"])
    assert result.ok, [f.format() for f in result.findings]
"""

from repro.check.baseline import (
    BaselineEntry,
    BaselineError,
    load_baseline,
    write_baseline,
)
from repro.check.engine import (
    CheckResult,
    ParseError,
    UnknownRuleError,
    render_json,
    render_text,
    run_check,
    select_rules,
)
from repro.check.findings import Finding
from repro.check.rules import RULES, Module, Rule

__all__ = [
    "BaselineEntry",
    "BaselineError",
    "CheckResult",
    "Finding",
    "Module",
    "ParseError",
    "RULES",
    "Rule",
    "UnknownRuleError",
    "load_baseline",
    "render_json",
    "render_text",
    "run_check",
    "select_rules",
    "write_baseline",
]
