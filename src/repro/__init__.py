"""AmpereBleed (DAC 2025) reproduction.

A circuit-free current side-channel attack on ARM-FPGA SoCs, rebuilt on a
physics-grounded simulation substrate (no hardware required):

* :mod:`repro.boards` — evaluation-board catalog and INA226 sensor maps.
* :mod:`repro.fpga` — fabric, PDN, power model, power-virus / RO / RSA
  victim circuits.
* :mod:`repro.sensors` — register-level INA226 model and an in-memory
  hwmon sysfs tree.
* :mod:`repro.soc` — SoC composition: rails, workload timelines, sampling.
* :mod:`repro.dpu` — layer-level DPU execution model and 39 DNN
  architectures over 7 families.
* :mod:`repro.crypto` — RSA-1024 reference math and key construction.
* :mod:`repro.ml` — from-scratch decision-tree / random-forest stack.
* :mod:`repro.core` — the attack itself: unprivileged sampling,
  characterization, DNN fingerprinting, RSA Hamming-weight inference.
* :mod:`repro.session` — acquisition sessions: the one place the
  board/SoC/sampler stack is constructed and seeded.
* :mod:`repro.analysis` — statistics shared by the evaluation benches.

The public entry points re-exported here are the ones a downstream user
needs to mount the three attacks end to end; see ``examples/``.
"""

__version__ = "1.0.0"

from repro.core import (
    CharacterizationResult,
    DnnFingerprinter,
    FingerprintAnalyzer,
    FingerprintConfig,
    HwmonSampler,
    RsaHammingWeightAttack,
    Trace,
    TraceArchiveReader,
    TraceArchiveWriter,
    TraceSet,
    TraceStream,
    characterize,
)
from repro.dpu import DpuRunner, build_model, list_models
from repro.fpga import PowerVirusArray, RingOscillator, RoSensorBank, RsaCircuit
from repro.ml import RandomForestClassifier
from repro.session import AttackSession
from repro.soc import Soc

__all__ = [
    "__version__",
    "AttackSession",
    "CharacterizationResult",
    "DnnFingerprinter",
    "FingerprintAnalyzer",
    "FingerprintConfig",
    "HwmonSampler",
    "RsaHammingWeightAttack",
    "Trace",
    "TraceArchiveReader",
    "TraceArchiveWriter",
    "TraceSet",
    "TraceStream",
    "characterize",
    "DpuRunner",
    "build_model",
    "list_models",
    "PowerVirusArray",
    "RingOscillator",
    "RoSensorBank",
    "RsaCircuit",
    "RandomForestClassifier",
    "Soc",
]
