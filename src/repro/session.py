"""Acquisition sessions: the on-device half of every attack.

The paper's threat model is collect-once / analyze-anywhere: one
unprivileged process on the board records hwmon traces, and the heavy
analysis (forest training, the Table III grid) happens later on the
attacker's machine.  :class:`AttackSession` is the library's single
owner of the *device side* of that split — the board spec, the
simulated SoC, the unprivileged sampler, and the channel registry —
with one seed-derivation policy shared by every pipeline.

Before this module existed, each pipeline (`characterize`,
`DnnFingerprinter`, `RsaHammingWeightAttack`, `CovertChannel`,
`AttackCampaign`) privately built its own ``Soc("ZCU102", seed=...)``
with subtly different ``None`` handling; now they all accept a
``session=`` and fall back to :func:`AttackSession.create` with the
same normalization.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.boards.catalog import BoardSpec
from repro.core.sampler import HwmonSampler
from repro.soc.soc import QUANTITY_ATTRS, Soc
from repro.utils.rng import derive_seed, normalize_seed

__all__ = [
    "DEFAULT_BOARD",
    "AttackSession",
    "normalize_seed",
    "resolve_session",
]

#: Default board: the paper's experimental machine.
DEFAULT_BOARD = "ZCU102"


class AttackSession:
    """One attacker foothold on one board: SoC + sampler + seed.

    Args:
        soc: the simulated platform (build with :meth:`create` to get
            the default board construction).
        sampler: the unprivileged polling loop; defaults to a fresh
            :class:`HwmonSampler` keyed by the session seed.
        seed: session seed (``None`` normalizes to 0 — see
            :func:`normalize_seed`).

    All attack pipelines accept a session so several of them can share
    one foothold (same SoC, same noise streams) — exactly what one
    malicious process on the real board would have.
    """

    def __init__(
        self,
        soc: Soc,
        sampler: Optional[HwmonSampler] = None,
        seed: Optional[int] = 0,
    ):
        if not isinstance(soc, Soc):
            raise TypeError("soc must be a repro.soc.Soc")
        self.seed = normalize_seed(seed)
        self.soc = soc
        self.sampler = (
            sampler
            if sampler is not None
            else HwmonSampler(soc, seed=self.seed)
        )

    @classmethod
    def create(
        cls,
        board=DEFAULT_BOARD,
        seed: Optional[int] = 0,
        poll_jitter: float = 120e-6,
        hardening=None,
        faults=None,
        retry_policy=None,
    ) -> "AttackSession":
        """Build a session on a fresh simulated board.

        This is the one place the library constructs the
        SoC-plus-sampler pair, so every pipeline derives its noise
        streams identically.

        ``faults`` arms deterministic fault injection on every hwmon
        device: a :class:`repro.faults.FaultPlan`, a rate in [0, 1]
        (shorthand for :meth:`FaultPlan.at_rate`), or ``None`` to
        consult ``AMPEREBLEED_FAULT_RATE`` (unset or 0 arms nothing
        and keeps the bit-identical fast path).  ``retry_policy``
        configures the sampler's resilient read loop.
        """
        seed = normalize_seed(seed)
        soc = Soc(board, seed=seed, hardening=hardening)
        sampler = HwmonSampler(
            soc, poll_jitter=poll_jitter, seed=seed,
            retry_policy=retry_policy,
        )
        session = cls(soc, sampler=sampler, seed=seed)
        session.arm_faults(faults)
        return session

    def arm_faults(self, faults=None):
        """Arm (or re-arm) fault injection on this session's devices.

        Accepts the same spellings as :meth:`create`'s ``faults``
        argument; the resolved plan (or ``None`` when nothing was
        armed) is returned.  The plan's per-device schedule is keyed by
        its own seed — by default derived from the session seed, so
        sessions with different seeds fail differently.
        """
        from repro.faults import resolve_fault_plan

        plan = resolve_fault_plan(faults, seed=self.derive("faults"))
        if plan is not None:
            self.soc.arm_faults(plan)
        return plan

    @property
    def board(self) -> BoardSpec:
        """The board under attack."""
        return self.soc.board

    def derive(self, name: str) -> int:
        """A stable integer sub-seed keyed by ``(session seed, name)``."""
        return derive_seed(self.seed, name)

    # ------------------------------------------------ channel registry

    def domains(self) -> List[str]:
        """Sensor domains pollable on this board, in stable order.

        These are the paper's Table II sensitive channels — the rails
        an unprivileged process can meaningfully observe.
        """
        return [domain for domain, _ in self.soc.sensitive_channels()]

    def channels(
        self, quantities: Optional[Tuple[str, ...]] = None
    ) -> List[Tuple[str, str]]:
        """Every pollable ``(domain, quantity)`` pair on this board.

        ``quantities`` restricts the registry (e.g. ``("current",)``
        for the four Table II current channels).
        """
        if quantities is None:
            quantities = tuple(QUANTITY_ATTRS)
        for quantity in quantities:
            if quantity not in QUANTITY_ATTRS:
                known = ", ".join(sorted(QUANTITY_ATTRS))
                raise ValueError(
                    f"unknown quantity {quantity!r}; expected one of {known}"
                )
        return [
            (domain, quantity)
            for domain in self.domains()
            for quantity in quantities
        ]

    def monitor(
        self,
        classifier,
        domain: str = "fpga",
        quantity: str = "current",
        *,
        duration: float,
        window_samples: int,
        hop_samples: Optional[int] = None,
        poll_hz: Optional[float] = None,
        chunk_samples: Optional[int] = None,
        chunk_duration: Optional[float] = None,
        n_features: int = 140,
        top_k: int = 3,
        smoothing: float = 1.0,
        detector=None,
        baseline: Optional[Tuple[float, float]] = None,
        start: float = 0.0,
        label: Optional[str] = None,
        sink=None,
        trace_id: str = "monitor",
        resume: bool = False,
    ):
        """Record one channel and classify it live, in a single pass.

        The streaming shape of the attack: a
        :class:`~repro.core.sampler.TraceStream` polls the channel in
        bounded chunks, every chunk is (optionally) persisted to
        ``sink`` with a progress checkpoint, and a
        :class:`~repro.core.streaming.StreamingAnalyzer` turns it into
        live :class:`~repro.core.streaming.MonitorUpdate`\\ s — one per
        chunk plus a final flush.  A stream killed by a dead channel
        ends with an :class:`~repro.core.streaming.Interruption` event
        instead of an exception, keeping the verdicts already earned.

        With ``resume=True`` (``sink`` reopened via
        ``TraceArchiveWriter(..., resume=True)``), chunks the
        interrupted session already persisted are replayed through the
        analyzer off disk — rebuilding smoothing/detector state
        deterministically — and the live stream skips past them, so
        the completed session's archive and verdicts are byte-identical
        to an uninterrupted run's.  Replayed chunks do not re-yield
        their updates; only fresh chunks produce output.
        """
        from repro.core.streaming import (
            StreamingAnalyzer,
            WindowSpec,
            monitor_chunks,
        )

        analyzer = StreamingAnalyzer(
            classifier,
            WindowSpec(
                window_samples,
                window_samples if hop_samples is None else hop_samples,
            ),
            n_features,
            top_k=top_k,
            smoothing=smoothing,
            detector=detector,
            baseline=baseline,
        )
        stream = self.sampler.stream(
            domain,
            quantity,
            start=start,
            duration=duration,
            poll_hz=poll_hz,
            chunk_samples=chunk_samples,
            chunk_duration=chunk_duration,
            label=label,
        )
        parts_done = 0
        if resume:
            if sink is None:
                raise ValueError("resume=True needs a sink archive writer")
            from repro.core.io import read_chunk_entry

            sink.drop_entries_after_checkpoint()
            recovered = sorted(
                (
                    entry
                    for entry in sink.entries
                    if entry.get("trace_id") == trace_id
                ),
                key=lambda entry: entry["part"],
            )
            skipped = 0
            for entry in recovered:
                chunk = read_chunk_entry(sink.path, entry)
                analyzer.push_chunk(chunk)
                skipped += chunk.n_samples
            parts_done = len(recovered)
            stream.skip_samples(skipped)

        def _recorded(chunks, part):
            for chunk in chunks:
                if sink is not None:
                    sink.append(chunk, trace_id=trace_id, part=part)
                    part += 1
                    sink.checkpoint(
                        {
                            "experiment": "monitor",
                            "trace_id": trace_id,
                            "parts_done": part,
                        }
                    )
                yield chunk

        return monitor_chunks(analyzer, _recorded(stream, parts_done))

    def __repr__(self) -> str:
        return (
            f"AttackSession({self.board.name}, seed={self.seed}, "
            f"{len(self.domains())} domains)"
        )


def resolve_session(
    session: Optional[AttackSession],
    soc: Optional[Soc] = None,
    sampler: Optional[HwmonSampler] = None,
    board=None,
    seed: Optional[int] = 0,
) -> AttackSession:
    """The shared constructor shim for pipelines.

    Pipelines accept ``session=`` (preferred), or legacy ``soc=`` /
    ``sampler=`` parts, or nothing at all; this resolves the three
    spellings into one :class:`AttackSession` with the library seed
    policy applied.
    """
    if session is not None:
        if soc is not None and soc is not session.soc:
            raise ValueError("pass either session or soc, not both")
        if sampler is not None and sampler is not session.sampler:
            raise ValueError("pass either session or sampler, not both")
        return session
    if soc is not None:
        return AttackSession(soc, sampler=sampler, seed=seed)
    if sampler is not None:
        return AttackSession(sampler.soc, sampler=sampler, seed=seed)
    return AttackSession.create(
        board=DEFAULT_BOARD if board is None else board, seed=seed
    )
