"""Catalog of ARM-FPGA SoC evaluation boards with INA226 sensors.

This is the data behind Table I of the paper: eight representative
AMD-Xilinx boards across two FPGA families (Zynq UltraScale+ and Versal),
each integrating INA226 current/voltage/power monitors on its power rails.
The catalog drives board-level parameterization of the simulator (supply
voltage band, CPU model, DRAM size, sensor count) and the Table I bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class BoardSpec:
    """Static description of one evaluation board.

    Attributes mirror the columns of Table I in the paper.
    """

    name: str
    fpga_family: str
    #: Regulated FPGA core voltage band (min, max) in volts.
    fpga_voltage_range: Tuple[float, float]
    cpu_model: str
    #: Number of application CPU cores.
    cpu_cores: int
    #: CPU base frequency in Hz.
    cpu_frequency_hz: float
    #: DRAM capacity in bytes.
    dram_bytes: int
    #: Number of INA226 sensors integrated on the board.
    ina226_count: int
    #: List price in USD at the time of the paper.
    price_usd: float
    #: FPGA fabric clock in Hz (as configured in the paper where known).
    fabric_frequency_hz: float = 300e6
    #: Fabric resource counts (LUTs, flip-flops, DSP blocks).
    luts: int = 0
    flip_flops: int = 0
    dsp_blocks: int = 0

    @property
    def fpga_voltage_nominal(self) -> float:
        """Mid-band FPGA core voltage in volts."""
        low, high = self.fpga_voltage_range
        return (low + high) / 2.0

    @property
    def fpga_voltage_span(self) -> float:
        """Width of the regulated voltage band in volts."""
        low, high = self.fpga_voltage_range
        return high - low

    @property
    def dram_gib(self) -> int:
        """DRAM capacity in GiB (as marketed)."""
        return int(self.dram_bytes // (1024**3))


GIB = 1024**3

#: Zynq UltraScale+ boards regulate VCCINT to 0.825-0.876 V; Versal boards
#: regulate to 0.775-0.825 V (Table I).
ZYNQ_US_PLUS_BAND = (0.825, 0.876)
VERSAL_BAND = (0.775, 0.825)

_BOARDS: List[BoardSpec] = [
    BoardSpec(
        name="ZCU102",
        fpga_family="Zynq UltraScale+",
        fpga_voltage_range=ZYNQ_US_PLUS_BAND,
        cpu_model="Cortex-A53",
        cpu_cores=4,
        cpu_frequency_hz=1200e6,
        dram_bytes=4 * GIB,
        ina226_count=18,
        price_usd=3234.0,
        fabric_frequency_hz=300e6,
        luts=274_080,
        flip_flops=548_160,
        dsp_blocks=2_520,
    ),
    BoardSpec(
        name="ZCU111",
        fpga_family="Zynq UltraScale+",
        fpga_voltage_range=ZYNQ_US_PLUS_BAND,
        cpu_model="Cortex-A53",
        cpu_cores=4,
        cpu_frequency_hz=1200e6,
        dram_bytes=4 * GIB,
        ina226_count=14,
        price_usd=14995.0,
        luts=425_280,
        flip_flops=850_560,
        dsp_blocks=4_272,
    ),
    BoardSpec(
        name="ZCU216",
        fpga_family="Zynq UltraScale+",
        fpga_voltage_range=ZYNQ_US_PLUS_BAND,
        cpu_model="Cortex-A53",
        cpu_cores=4,
        cpu_frequency_hz=1200e6,
        dram_bytes=4 * GIB,
        ina226_count=14,
        price_usd=16995.0,
        luts=425_280,
        flip_flops=850_560,
        dsp_blocks=4_272,
    ),
    BoardSpec(
        name="ZCU1285",
        fpga_family="Zynq UltraScale+",
        fpga_voltage_range=ZYNQ_US_PLUS_BAND,
        cpu_model="Cortex-A53",
        cpu_cores=4,
        cpu_frequency_hz=1200e6,
        dram_bytes=8 * GIB,
        ina226_count=21,
        price_usd=32394.0,
        luts=537_600,
        flip_flops=1_075_200,
        dsp_blocks=5_520,
    ),
    BoardSpec(
        name="VEK280",
        fpga_family="Versal",
        fpga_voltage_range=VERSAL_BAND,
        cpu_model="Cortex-A72",
        cpu_cores=2,
        cpu_frequency_hz=1700e6,
        dram_bytes=12 * GIB,
        ina226_count=20,
        price_usd=6995.0,
        luts=417_792,
        flip_flops=835_584,
        dsp_blocks=1_312,
    ),
    BoardSpec(
        name="VCK190",
        fpga_family="Versal",
        fpga_voltage_range=VERSAL_BAND,
        cpu_model="Cortex-A72",
        cpu_cores=2,
        cpu_frequency_hz=1700e6,
        dram_bytes=8 * GIB,
        ina226_count=17,
        price_usd=13195.0,
        luts=899_840,
        flip_flops=1_799_680,
        dsp_blocks=1_968,
    ),
    BoardSpec(
        name="VHK158",
        fpga_family="Versal",
        fpga_voltage_range=VERSAL_BAND,
        cpu_model="Cortex-A72",
        cpu_cores=2,
        cpu_frequency_hz=1700e6,
        dram_bytes=32 * GIB,
        ina226_count=22,
        price_usd=14995.0,
        luts=894_432,
        flip_flops=1_788_864,
        dsp_blocks=0,
    ),
    BoardSpec(
        name="VPK180",
        fpga_family="Versal",
        fpga_voltage_range=VERSAL_BAND,
        cpu_model="Cortex-A72",
        cpu_cores=2,
        cpu_frequency_hz=1700e6,
        dram_bytes=12 * GIB,
        ina226_count=19,
        price_usd=17995.0,
        luts=1_139_712,
        flip_flops=2_279_424,
        dsp_blocks=1_904,
    ),
]

BOARD_CATALOG: Dict[str, BoardSpec] = {board.name: board for board in _BOARDS}


def list_boards() -> List[BoardSpec]:
    """Return all cataloged boards in Table I order."""
    return list(_BOARDS)


def get_board(name: str) -> BoardSpec:
    """Look up a board by name (case-insensitive).

    Raises :class:`KeyError` with the available names on a miss.
    """
    key = name.upper()
    if key not in BOARD_CATALOG:
        available = ", ".join(sorted(BOARD_CATALOG))
        raise KeyError(f"unknown board {name!r}; available: {available}")
    return BOARD_CATALOG[key]


def boards_by_family(family: str) -> List[BoardSpec]:
    """Return all boards of one FPGA family (e.g. ``"Versal"``)."""
    return [board for board in _BOARDS if board.fpga_family == family]
