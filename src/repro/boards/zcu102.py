"""ZCU102 power-rail and INA226 sensor map.

The ZCU102 evaluation board (UG1182) instruments 18 power rails with
INA226 monitors on the PMBus/I2C power-management bus.  The Linux hwmon
subsystem exposes each of them as an ``ina226_uXX`` device with
unprivileged-readable ``curr1_input`` / ``in1_input`` / ``power1_input``
attributes.  Table II of the paper highlights the four sensors whose
readings leak victim activity:

========== =============================================================
ina226_u76 full-power domain (FPD) of the ARM processor cores
ina226_u77 low-power domain (LPD) of the ARM processor cores
ina226_u79 FPGA programmable logic (VCCINT)
ina226_u93 DDR memory
========== =============================================================

The remaining 14 rails are auxiliary/IO/transceiver supplies; they are
modeled too so that enumeration through the simulated hwmon tree looks
like the real board.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class SensorSpec:
    """Static description of one INA226 instance on a board.

    Attributes:
        designator: schematic reference (e.g. ``"u76"``).
        rail: electrical rail name from the board user guide.
        domain: logical domain key used by the SoC simulator to route
            workload power onto this sensor (``"fpd"``, ``"lpd"``,
            ``"fpga"``, ``"ddr"`` or ``"aux"``).
        description: human-readable summary (Table II wording for the
            four sensitive sensors).
        shunt_ohms: shunt resistor value in ohms.
        nominal_voltage: rail nominal voltage in volts.
        max_current: design maximum load current in amperes (used to
            pick the INA226 calibration so current LSB = 1 mA).
        sensitive: True for the four sensors Table II calls out.
        idle_current: typical rail current in amperes with the board
            idling (gives hwmon readings a realistic floor).
    """

    designator: str
    rail: str
    domain: str
    description: str
    shunt_ohms: float
    nominal_voltage: float
    max_current: float
    sensitive: bool = False
    idle_current: float = 0.05


#: The four sensitive sensors of Table II, followed by the auxiliary
#: rails of UG1182 (shunt values follow the board's 2 mOhm / 5 mOhm
#: design practice).
ZCU102_SENSORS: List[SensorSpec] = [
    SensorSpec(
        designator="u76",
        rail="VCCPSINTFP",
        domain="fpd",
        description=(
            "current, voltage, and power for full-power domain of the "
            "ARM processor cores."
        ),
        shunt_ohms=0.005,
        nominal_voltage=0.85,
        max_current=8.0,
        sensitive=True,
        idle_current=0.35,
    ),
    SensorSpec(
        designator="u77",
        rail="VCCPSINTLP",
        domain="lpd",
        description=(
            "current, voltage, and power for low-power domain of the "
            "ARM processor cores."
        ),
        shunt_ohms=0.005,
        nominal_voltage=0.85,
        max_current=4.0,
        sensitive=True,
        idle_current=0.18,
    ),
    SensorSpec(
        designator="u79",
        rail="VCCINT",
        domain="fpga",
        description=(
            "current, voltage, and power for FPGA's logic and "
            "processing elements."
        ),
        shunt_ohms=0.002,
        nominal_voltage=0.85,
        max_current=16.0,
        sensitive=True,
        idle_current=0.55,
    ),
    SensorSpec(
        designator="u93",
        rail="VCCPSDDR",
        domain="ddr",
        description="current, voltage, and power for DDR memory.",
        shunt_ohms=0.005,
        nominal_voltage=1.2,
        max_current=6.0,
        sensitive=True,
        idle_current=0.25,
    ),
    SensorSpec(
        designator="u78",
        rail="VCCPSAUX",
        domain="aux",
        description="PS auxiliary supply.",
        shunt_ohms=0.005,
        nominal_voltage=1.8,
        max_current=2.0,
        idle_current=0.08,
    ),
    SensorSpec(
        designator="u80",
        rail="VCCPSPLL",
        domain="aux",
        description="PS PLL supply.",
        shunt_ohms=0.005,
        nominal_voltage=1.2,
        max_current=1.0,
        idle_current=0.03,
    ),
    SensorSpec(
        designator="u81",
        rail="MGTRAVCC",
        domain="aux",
        description="PS-GTR transceiver analog supply.",
        shunt_ohms=0.005,
        nominal_voltage=0.85,
        max_current=2.0,
        idle_current=0.05,
    ),
    SensorSpec(
        designator="u82",
        rail="MGTRAVTT",
        domain="aux",
        description="PS-GTR transceiver termination supply.",
        shunt_ohms=0.005,
        nominal_voltage=1.8,
        max_current=2.0,
        idle_current=0.04,
    ),
    SensorSpec(
        designator="u83",
        rail="VCCPSDDRPLL",
        domain="aux",
        description="PS DDR PLL supply.",
        shunt_ohms=0.005,
        nominal_voltage=1.8,
        max_current=0.5,
        idle_current=0.01,
    ),
    SensorSpec(
        designator="u84",
        rail="VCCO_PSDDR_504",
        domain="aux",
        description="PS DDR IO bank supply.",
        shunt_ohms=0.005,
        nominal_voltage=1.2,
        max_current=3.0,
        idle_current=0.12,
    ),
    SensorSpec(
        designator="u85",
        rail="VCCAUX",
        domain="aux",
        description="PL auxiliary supply.",
        shunt_ohms=0.005,
        nominal_voltage=1.8,
        max_current=3.0,
        idle_current=0.14,
    ),
    SensorSpec(
        designator="u86",
        rail="VCC1V2",
        domain="aux",
        description="1.2 V utility supply.",
        shunt_ohms=0.005,
        nominal_voltage=1.2,
        max_current=3.0,
        idle_current=0.10,
    ),
    SensorSpec(
        designator="u87",
        rail="VCC3V3",
        domain="aux",
        description="3.3 V utility supply.",
        shunt_ohms=0.005,
        nominal_voltage=3.3,
        max_current=3.0,
        idle_current=0.20,
    ),
    SensorSpec(
        designator="u88",
        rail="VADJ_FMC",
        domain="aux",
        description="FMC adjustable IO supply.",
        shunt_ohms=0.005,
        nominal_voltage=1.8,
        max_current=3.0,
        idle_current=0.02,
    ),
    SensorSpec(
        designator="u89",
        rail="MGTAVCC",
        domain="aux",
        description="GTH transceiver analog supply.",
        shunt_ohms=0.005,
        nominal_voltage=0.9,
        max_current=4.0,
        idle_current=0.15,
    ),
    SensorSpec(
        designator="u90",
        rail="MGTAVTT",
        domain="aux",
        description="GTH transceiver termination supply.",
        shunt_ohms=0.005,
        nominal_voltage=1.2,
        max_current=4.0,
        idle_current=0.12,
    ),
    SensorSpec(
        designator="u91",
        rail="MGTVCCAUX",
        domain="aux",
        description="GTH transceiver auxiliary supply.",
        shunt_ohms=0.005,
        nominal_voltage=1.8,
        max_current=1.0,
        idle_current=0.03,
    ),
    SensorSpec(
        designator="u92",
        rail="VCCBRAM",
        domain="aux",
        description="PL block-RAM supply.",
        shunt_ohms=0.005,
        nominal_voltage=0.85,
        max_current=4.0,
        idle_current=0.09,
    ),
]

SENSORS_BY_DESIGNATOR: Dict[str, SensorSpec] = {
    sensor.designator: sensor for sensor in ZCU102_SENSORS
}

#: Domain key -> designator for the four sensitive sensors (Table II).
SENSITIVE_SENSOR_MAP: Dict[str, str] = {
    sensor.domain: sensor.designator
    for sensor in ZCU102_SENSORS
    if sensor.sensitive
}


def sensitive_sensors() -> List[SensorSpec]:
    """Return the four Table II sensors in paper order."""
    return [sensor for sensor in ZCU102_SENSORS if sensor.sensitive]


def sensor_map_for(
    ina226_count: int, base: List[SensorSpec] = None
) -> List[SensorSpec]:
    """A sensor map sized for a board with ``ina226_count`` devices.

    ``base`` defaults to the ZCU102's map; boards with their own
    published map (e.g. the VCK190, :mod:`repro.boards.versal`) pass
    theirs.  Smaller counts truncate (the four sensitive sensors always
    survive — every board instruments its core, CPU and DRAM rails);
    larger counts pad with synthesized auxiliary rails.
    """
    if ina226_count < 4:
        raise ValueError("a board needs at least the four sensitive sensors")
    base = list(ZCU102_SENSORS) if base is None else list(base)
    if ina226_count <= len(base):
        return base[:ina226_count]
    padded = list(base)
    for index in range(ina226_count - len(base)):
        padded.append(
            SensorSpec(
                designator=f"u{100 + index}",
                rail=f"VCCAUX_EXT{index}",
                domain="aux",
                description="auxiliary supply (synthesized map entry).",
                shunt_ohms=0.005,
                nominal_voltage=1.8,
                max_current=2.0,
                idle_current=0.05,
            )
        )
    return padded


def get_sensor(designator: str) -> SensorSpec:
    """Look up a ZCU102 INA226 instance by schematic designator."""
    key = designator.lower()
    if key not in SENSORS_BY_DESIGNATOR:
        available = ", ".join(sorted(SENSORS_BY_DESIGNATOR))
        raise KeyError(f"unknown sensor {designator!r}; available: {available}")
    return SENSORS_BY_DESIGNATOR[key]
