"""Board catalog (Table I) and per-board sensor maps (Table II)."""

from repro.boards.catalog import (
    BOARD_CATALOG,
    VERSAL_BAND,
    ZYNQ_US_PLUS_BAND,
    BoardSpec,
    boards_by_family,
    get_board,
    list_boards,
)
from repro.boards.versal import VCK190_SENSORS
from repro.boards.zcu102 import (
    SENSITIVE_SENSOR_MAP,
    SENSORS_BY_DESIGNATOR,
    ZCU102_SENSORS,
    SensorSpec,
    get_sensor,
    sensitive_sensors,
    sensor_map_for,
)

__all__ = [
    "BOARD_CATALOG",
    "VERSAL_BAND",
    "ZYNQ_US_PLUS_BAND",
    "BoardSpec",
    "boards_by_family",
    "get_board",
    "list_boards",
    "SENSITIVE_SENSOR_MAP",
    "SENSORS_BY_DESIGNATOR",
    "ZCU102_SENSORS",
    "SensorSpec",
    "get_sensor",
    "sensitive_sensors",
    "sensor_map_for",
    "VCK190_SENSORS",
]
