"""VCK190 (Versal) power-rail and INA226 sensor map.

The VCK190 evaluation board (UG1366) instruments 17 rails with INA226
monitors — matching its Table I entry.  The Versal ACAP splits its
processing system differently from Zynq UltraScale+ (full-power and
low-power PS domains plus the platform-management controller), but the
four *sensitive* domains of Table II have direct equivalents:

========== ===============================================
VCC_PSFP   full-power domain of the Cortex-A72 cores
VCC_PSLP   low-power domain (Cortex-R5 + peripherals)
VCCINT     programmable logic and AI engines
VCC1V1_LP4 LPDDR4 memory
========== ===============================================

so the AmpereBleed pipeline runs unmodified: only the names and shunt
values change.
"""

from __future__ import annotations

from typing import List

from repro.boards.zcu102 import SensorSpec

#: Versal core rails regulate 0.775-0.825 V (Table I).
VCK190_SENSORS: List[SensorSpec] = [
    SensorSpec(
        designator="u76",  # keep the hwmon-recognized designators so
        rail="VCC_PSFP",   # Table II domain discovery works unchanged
        domain="fpd",
        description="current, voltage, and power for the full-power "
                    "domain of the ARM processor cores.",
        shunt_ohms=0.005,
        nominal_voltage=0.80,
        max_current=8.0,
        sensitive=True,
        idle_current=0.30,
    ),
    SensorSpec(
        designator="u77",
        rail="VCC_PSLP",
        domain="lpd",
        description="current, voltage, and power for the low-power "
                    "domain of the ARM processor cores.",
        shunt_ohms=0.005,
        nominal_voltage=0.80,
        max_current=4.0,
        sensitive=True,
        idle_current=0.15,
    ),
    SensorSpec(
        designator="u79",
        rail="VCCINT",
        domain="fpga",
        description="current, voltage, and power for FPGA's logic and "
                    "processing elements.",
        shunt_ohms=0.002,
        nominal_voltage=0.80,
        max_current=30.0,
        sensitive=True,
        idle_current=0.80,
    ),
    SensorSpec(
        designator="u93",
        rail="VCC1V1_LP4",
        domain="ddr",
        description="current, voltage, and power for LPDDR4 memory.",
        shunt_ohms=0.005,
        nominal_voltage=1.1,
        max_current=6.0,
        sensitive=True,
        idle_current=0.22,
    ),
    SensorSpec(
        designator="u78", rail="VCC_SOC", domain="aux",
        description="NoC and DDR-controller supply.",
        shunt_ohms=0.005, nominal_voltage=0.80, max_current=6.0,
        idle_current=0.25,
    ),
    SensorSpec(
        designator="u80", rail="VCC_PMC", domain="aux",
        description="platform management controller supply.",
        shunt_ohms=0.005, nominal_voltage=0.80, max_current=2.0,
        idle_current=0.10,
    ),
    SensorSpec(
        designator="u81", rail="VCC_RAM", domain="aux",
        description="block-RAM / URAM array supply.",
        shunt_ohms=0.005, nominal_voltage=0.80, max_current=4.0,
        idle_current=0.08,
    ),
    SensorSpec(
        designator="u82", rail="VCCAUX", domain="aux",
        description="auxiliary supply.",
        shunt_ohms=0.005, nominal_voltage=1.5, max_current=3.0,
        idle_current=0.12,
    ),
    SensorSpec(
        designator="u83", rail="VCCAUX_PMC", domain="aux",
        description="PMC auxiliary supply.",
        shunt_ohms=0.005, nominal_voltage=1.5, max_current=1.0,
        idle_current=0.03,
    ),
    SensorSpec(
        designator="u84", rail="VCCO_MIO", domain="aux",
        description="multiplexed IO bank supply.",
        shunt_ohms=0.005, nominal_voltage=1.8, max_current=2.0,
        idle_current=0.05,
    ),
    SensorSpec(
        designator="u85", rail="VCC1V8", domain="aux",
        description="1.8 V utility supply.",
        shunt_ohms=0.005, nominal_voltage=1.8, max_current=3.0,
        idle_current=0.10,
    ),
    SensorSpec(
        designator="u86", rail="VCC3V3", domain="aux",
        description="3.3 V utility supply.",
        shunt_ohms=0.005, nominal_voltage=3.3, max_current=3.0,
        idle_current=0.15,
    ),
    SensorSpec(
        designator="u87", rail="VCC1V2_DDR4", domain="aux",
        description="DDR4 DIMM supply.",
        shunt_ohms=0.005, nominal_voltage=1.2, max_current=4.0,
        idle_current=0.15,
    ),
    SensorSpec(
        designator="u88", rail="VADJ_FMC", domain="aux",
        description="FMC adjustable IO supply.",
        shunt_ohms=0.005, nominal_voltage=1.5, max_current=3.0,
        idle_current=0.02,
    ),
    SensorSpec(
        designator="u89", rail="MGTYAVCC", domain="aux",
        description="GTY transceiver analog supply.",
        shunt_ohms=0.005, nominal_voltage=0.88, max_current=4.0,
        idle_current=0.12,
    ),
    SensorSpec(
        designator="u90", rail="MGTYAVTT", domain="aux",
        description="GTY transceiver termination supply.",
        shunt_ohms=0.005, nominal_voltage=1.2, max_current=4.0,
        idle_current=0.10,
    ),
    SensorSpec(
        designator="u91", rail="MGTYVCCAUX", domain="aux",
        description="GTY transceiver auxiliary supply.",
        shunt_ohms=0.005, nominal_voltage=1.5, max_current=1.0,
        idle_current=0.03,
    ),
]
