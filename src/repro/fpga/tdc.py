"""Time-to-digital converter (TDC) voltage sensor: second baseline.

Besides ring oscillators, prior remote power-analysis work builds
delay-line sensors: a signal edge races down a carry chain each clock
cycle and the number of taps it traverses before the capture flop
fires encodes the instantaneous supply voltage (higher voltage ->
faster gates -> more taps).  The paper's related work cites several
such designs (RDS routing-delay sensors, 1LUTSensor, PPWM); this
module provides a representative TDC so the Fig 2-style comparison can
cover the whole crafted-sensor family, not just ROs.

On a stabilized rail the TDC suffers the same blindness as the RO —
millivolts of droop move the tap point by a fraction of a tap — while
its *single-cycle* sampling makes it the strongest crafted baseline
for transient detection.  That contrast (fine in time, coarse in
amplitude) is what the crafted-sensor ablation bench quantifies.
"""

from __future__ import annotations

import numpy as np

from repro.fpga.fabric import CircuitSpec
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import (
    require_int_in_range,
    require_non_negative,
    require_positive,
)


class TdcSensor:
    """A carry-chain delay-line voltage sensor.

    The tap count observed each sample is::

        taps(V) = taps_nominal * (1 + sensitivity * (V - v_ref) / v_ref)

    floored to the integer tap grid, plus per-sample jitter from clock
    and routing noise.

    Args:
        n_taps: physical taps in the delay line (carry-chain length).
        taps_nominal: taps traversed at the reference voltage; leaving
            headroom below ``n_taps`` keeps the line from clipping.
        v_ref: calibration voltage.
        sensitivity: dimensionless voltage-to-delay gain (CMOS gate
            delay near nominal gives ~1-2, like the RO's).
        jitter_taps: RMS sampling jitter in taps.
        clock_hz: sampling clock — one reading per cycle, which is what
            makes TDCs the high-bandwidth crafted sensor.
    """

    def __init__(
        self,
        n_taps: int = 64,
        taps_nominal: float = 32.0,
        v_ref: float = 0.8505,
        sensitivity: float = 1.45,
        jitter_taps: float = 0.6,
        clock_hz: float = 300e6,
    ):
        self.n_taps = require_int_in_range(n_taps, 2, 4096, "n_taps")
        self.taps_nominal = require_positive(taps_nominal, "taps_nominal")
        if taps_nominal >= n_taps:
            raise ValueError("taps_nominal must leave headroom below n_taps")
        self.v_ref = require_positive(v_ref, "v_ref")
        self.sensitivity = require_non_negative(sensitivity, "sensitivity")
        self.jitter_taps = require_non_negative(jitter_taps, "jitter_taps")
        self.clock_hz = require_positive(clock_hz, "clock_hz")

    @property
    def sample_period(self) -> float:
        """Seconds between samples (one per clock cycle)."""
        return 1.0 / self.clock_hz

    def expected_taps(self, voltage: np.ndarray) -> np.ndarray:
        """Noise-free tap position for each supply voltage."""
        voltage = np.asarray(voltage, dtype=np.float64)
        if np.any(voltage <= 0):
            raise ValueError("supply voltage must be > 0")
        delta = (voltage - self.v_ref) / self.v_ref
        return self.taps_nominal * (1.0 + self.sensitivity * delta)

    def counts(self, voltage: np.ndarray, rng: RngLike = None) -> np.ndarray:
        """Sampled integer tap counts, clipped to the physical line."""
        generator = ensure_rng(rng)
        expected = self.expected_taps(np.atleast_1d(voltage))
        noisy = expected + self.jitter_taps * generator.standard_normal(
            expected.shape
        )
        return np.clip(np.floor(noisy), 0, self.n_taps - 1)

    def relative_variation(self, v_low: float, v_high: float) -> float:
        """Noise-free relative tap swing over a voltage excursion.

        The crafted-sensor comparison metric: how much of the sensor's
        dynamic range a given droop actually exercises.
        """
        taps = self.expected_taps(np.array([v_low, v_high]))
        return float(abs(taps[1] - taps[0]) / taps.mean())

    def circuit_spec(self) -> CircuitSpec:
        """Fabric deployment spec: the carry chain + capture flops.

        Carry chains map to dedicated CARRY8 resources, modeled here as
        one LUT per tap plus a capture flip-flop per tap.
        """
        return CircuitSpec(
            name="tdc-sensor",
            utilization={"lut": self.n_taps, "ff": self.n_taps + 32},
            activity={"lut": 1.0, "ff": 0.5},
        )

    def __repr__(self) -> str:
        return (
            f"TdcSensor({self.n_taps} taps, nominal={self.taps_nominal}, "
            f"clock={self.clock_hz / 1e6:.0f} MHz)"
        )
