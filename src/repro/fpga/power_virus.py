"""Power-virus array: the variable-load victim of the Fig 2 sweep.

The paper deploys 160 k power-virus instances (in the style of Gnad et
al., FPL'17 — LUT/FF toggle cells with deliberately long, high-fanout
routing) across the whole ZCU102 fabric, split into 160 groups of 1 k
evenly-distributed instances.  Activating 0..160 groups from the ARM
side steps the FPGA's power draw through 161 distinct levels.

Two second-order effects from the paper are modeled explicitly:

* **Static floor** — "current measurements do not start from 0 ... due
  to the static workloads caused by inactivated but deployed power
  virus instances" (§IV-A).  Every deployed instance leaks.
* **Group heterogeneity** — each group's instances land on different
  routing, so per-group dynamic power varies by a few percent.  The
  cumulative activation curve therefore deviates slightly from a
  perfect line, which is why the measured Pearson correlation is 0.999
  rather than 1.0.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.fpga.fabric import CircuitSpec
from repro.soc.workload import ActivityTimeline, ConstantActivity
from repro.utils.rng import RngLike, spawn
from repro.utils.validation import (
    require_int_in_range,
    require_non_negative,
    require_positive,
)


class PowerVirusArray:
    """A bank of power-virus instances activatable group by group.

    Args:
        n_groups: number of independently activatable groups.
        instances_per_group: virus instances per group (paper: 1000).
        dynamic_power_per_instance: watts drawn by one *active* instance.
            The default 35 uW reflects a Gnad-style routing-heavy toggle
            cell at 300 MHz / 0.85 V and reproduces the ~40 mA-per-group
            current step of Fig 2.
        static_power_per_instance: leakage watts of one *deployed*
            instance (active or not); sets the Fig 2 current floor.
        group_power_spread: relative standard deviation of per-group
            dynamic power (placement/routing heterogeneity).
        seed: RNG seed for the per-group heterogeneity draw.
    """

    def __init__(
        self,
        n_groups: int = 160,
        instances_per_group: int = 1000,
        dynamic_power_per_instance: float = 35e-6,
        static_power_per_instance: float = 3.4e-6,
        group_power_spread: float = 0.03,
        seed: RngLike = None,
    ):
        self.n_groups = require_int_in_range(n_groups, 1, 100_000, "n_groups")
        self.instances_per_group = require_int_in_range(
            instances_per_group, 1, 10_000_000, "instances_per_group"
        )
        self.dynamic_power_per_instance = require_positive(
            dynamic_power_per_instance, "dynamic_power_per_instance"
        )
        self.static_power_per_instance = require_non_negative(
            static_power_per_instance, "static_power_per_instance"
        )
        require_non_negative(group_power_spread, "group_power_spread")
        rng = spawn(seed, "power-virus-groups")
        nominal = self.instances_per_group * self.dynamic_power_per_instance
        # Per-group dynamic power with placement heterogeneity; clipped
        # so a pathological draw can never go non-positive.
        factors = 1.0 + group_power_spread * rng.standard_normal(self.n_groups)
        self.group_dynamic_power = nominal * np.clip(factors, 0.1, None)
        self._active_groups = 0

    @property
    def n_instances(self) -> int:
        """Total deployed instances (paper: 160 000)."""
        return self.n_groups * self.instances_per_group

    @property
    def active_groups(self) -> int:
        """Number of currently activated groups (0..n_groups)."""
        return self._active_groups

    @property
    def active_instances(self) -> int:
        """Number of currently active instances."""
        return self._active_groups * self.instances_per_group

    @property
    def static_power(self) -> float:
        """Leakage of the whole deployed array in watts."""
        return self.n_instances * self.static_power_per_instance

    def set_active_groups(self, count: int) -> None:
        """Activate the first ``count`` groups (the paper's sweep order)."""
        self._active_groups = require_int_in_range(
            count, 0, self.n_groups, "count"
        )

    def dynamic_power_at_level(self, level: Optional[int] = None) -> float:
        """Dynamic power in watts with ``level`` groups active.

        Defaults to the currently set activation level.
        """
        if level is None:
            level = self._active_groups
        level = require_int_in_range(level, 0, self.n_groups, "level")
        return float(np.sum(self.group_dynamic_power[:level]))

    def total_power_at_level(self, level: Optional[int] = None) -> float:
        """Static + dynamic power in watts at an activation level."""
        return self.static_power + self.dynamic_power_at_level(level)

    def timeline(self, level: Optional[int] = None) -> ActivityTimeline:
        """Constant-power activity timeline at an activation level.

        The virus toggles at the fabric clock (300 MHz), ~7 orders of
        magnitude faster than the INA226's conversion window, so its
        power is constant at the sensor's time scale.
        """
        return ConstantActivity(self.total_power_at_level(level))

    def circuit_spec(self) -> CircuitSpec:
        """Fabric deployment spec: one LUT/FF toggle cell per instance."""
        return CircuitSpec(
            name="power-virus-array",
            utilization={"lut": self.n_instances, "ff": self.n_instances},
            activity={"lut": 1.0, "ff": 1.0},
        )

    def sweep_levels(self) -> np.ndarray:
        """All activation levels 0..n_groups (161 levels in the paper)."""
        return np.arange(self.n_groups + 1)
